//! Pins the repository's Table-I reproduction numbers so a regression in
//! any layer (generator seed, formula, product arithmetic) fails loudly.
//! All assertions run from factor-sized state — no product materialised —
//! so this stays fast enough for the default test profile.

use bikron::analytics::butterflies_global;
use bikron::core::{GroundTruth, KroneckerProduct, SelfLoopMode};
use bikron::generators::unicode_like::{unicode_like, UNICODE_EDGES, UNICODE_NU, UNICODE_NW};

#[test]
fn factor_matches_paper_scale() {
    let a = unicode_like();
    assert_eq!(a.num_vertices(), UNICODE_NU + UNICODE_NW);
    assert_eq!(a.num_edges(), UNICODE_EDGES); // paper: 1,256 exactly
                                              // Paper: 1,662 global 4-cycles; the calibrated factor matches exactly.
    assert_eq!(butterflies_global(&a), 1662);
}

#[test]
fn product_row_shape() {
    let a = unicode_like();
    let n_a = a.num_vertices();

    // (A+I) ⊗ A — the construction named in the paper's text.
    let with_loops = KroneckerProduct::new(&a, &a, SelfLoopMode::FactorA).unwrap();
    assert_eq!(with_loops.num_vertices(), n_a * n_a);
    // Parts |U_C| = n_A·|U_A|, |W_C| = n_A·|W_A| — matches the printed row.
    assert_eq!(n_a * UNICODE_NU, 220_472);
    assert_eq!(n_a * UNICODE_NW, 532_952);
    assert_eq!(with_loops.num_edges(), 4_245_280);

    // A ⊗ A — the construction the printed |E_C| actually matches.
    let plain = KroneckerProduct::new(&a, &a, SelfLoopMode::None).unwrap();
    assert_eq!(plain.num_edges(), 3_155_072); // paper's figure, exactly

    // Ground-truth global 4-cycle counts (sublinear path), pinned.
    let gt_loops = GroundTruth::new(with_loops).unwrap();
    assert_eq!(gt_loops.global_squares().unwrap(), 445_892_737);
    let gt_plain = GroundTruth::new(plain).unwrap();
    assert_eq!(gt_plain.global_squares().unwrap(), 354_776_745);
}

#[test]
fn product_structure_predictions() {
    let a = unicode_like();
    let prod = KroneckerProduct::new(&a, &a, SelfLoopMode::FactorA).unwrap();
    let st = bikron::core::predict_structure(&prod);
    assert!(st.bipartite);
    // The factor is disconnected (like the real dataset), so the product
    // is too — with an exactly predicted component count.
    assert!(!st.connected);
    assert_eq!(st.num_components, Some(254_640));
}
