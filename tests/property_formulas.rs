//! Property-based integration tests: random factor graphs, every formula
//! checked against direct computation. These are the adversarial version
//! of the named-graph grid — proptest shrinks any counterexample to a
//! minimal factor pair.

use bikron::analytics::{butterflies_global, butterflies_per_edge, butterflies_per_vertex};
use bikron::core::truth::squares_edge::edge_squares;
use bikron::core::truth::squares_vertex::{global_squares, vertex_squares};
use bikron::core::{predict_structure, KroneckerProduct, SelfLoopMode};
use bikron::graph::{connected_components, is_bipartite, Graph};
use proptest::prelude::*;

/// Random simple loop-free graph on `n ∈ [2, 8]` vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=8).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..=(n * (n - 1) / 2).max(1)).prop_map(
            move |pairs| {
                let edges: Vec<(usize, usize)> =
                    pairs.into_iter().filter(|&(u, v)| u != v).collect();
                Graph::from_edges(n, &edges).unwrap()
            },
        )
    })
}

/// Random bipartite loop-free graph with parts `[1,4] × [1,4]`.
fn arb_bipartite() -> impl Strategy<Value = Graph> {
    ((1usize..=4), (1usize..=4)).prop_flat_map(|(m, n)| {
        proptest::collection::vec((0..m, 0..n), 0..=m * n).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().map(|(u, w)| (u, m + w)).collect();
            Graph::from_edges(m + n, &edges).unwrap()
        })
    })
}

fn all_checks(a: &Graph, b: &Graph, mode: SelfLoopMode) -> Result<(), TestCaseError> {
    let prod = KroneckerProduct::new(a, b, mode).unwrap();
    let g = prod.materialize();

    let truth_v = vertex_squares(&prod).unwrap();
    prop_assert_eq!(&truth_v, &butterflies_per_vertex(&g));

    let truth_e = edge_squares(&prod).unwrap();
    let direct_e = butterflies_per_edge(&g);
    prop_assert_eq!(truth_e.counts.len(), direct_e.counts.len());
    for &(p, q, c) in &truth_e.counts {
        prop_assert_eq!(direct_e.get(p, q), Some(c));
    }

    let global = global_squares(&prod).unwrap();
    prop_assert_eq!(global, butterflies_global(&g));

    let pred = predict_structure(&prod);
    prop_assert_eq!(pred.bipartite, is_bipartite(&g));
    prop_assert_eq!(pred.connected, connected_components(&g).count == 1);
    if let Some(nc) = pred.num_components {
        prop_assert_eq!(nc, connected_components(&g).count);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_factors_mode_none(a in arb_graph(), b in arb_graph()) {
        all_checks(&a, &b, SelfLoopMode::None)?;
    }

    #[test]
    fn any_factors_mode_factor_a(a in arb_graph(), b in arb_graph()) {
        all_checks(&a, &b, SelfLoopMode::FactorA)?;
    }

    #[test]
    fn bipartite_factors_both_modes(a in arb_bipartite(), b in arb_bipartite()) {
        all_checks(&a, &b, SelfLoopMode::None)?;
        all_checks(&a, &b, SelfLoopMode::FactorA)?;
    }

    // Degrees of the product match the d_A ⊗ d_B law everywhere.
    #[test]
    fn degree_kronecker_law(a in arb_graph(), b in arb_bipartite()) {
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let g = prod.materialize();
        for p in 0..g.num_vertices() {
            prop_assert_eq!(g.degree(p) as u64, prod.degree(p));
        }
    }

    // Streaming edges equal materialised edges.
    #[test]
    fn edge_stream_equals_materialisation(a in arb_graph(), b in arb_graph()) {
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let mut streamed: Vec<_> = prod.edges().collect();
        streamed.sort_unstable();
        let mut direct: Vec<_> = prod.materialize().edges().collect();
        direct.sort_unstable();
        prop_assert_eq!(streamed, direct);
    }
}
