//! Cross-crate integration: every ground-truth formula in `bikron-core`
//! must agree with the independent direct algorithms in
//! `bikron-analytics` on materialised products, across a grid of factor
//! shapes, sizes and both self-loop modes.

use bikron::analytics::{butterflies_global, butterflies_per_edge, butterflies_per_vertex};
use bikron::core::truth::squares_edge::edge_squares;
use bikron::core::truth::squares_vertex::{global_squares, vertex_squares};
use bikron::core::{predict_structure, KroneckerProduct, SelfLoopMode};
use bikron::generators::powerlaw::{bipartite_chung_lu, PowerLawParams};
use bikron::generators::rmat::{bipartite_rmat, RmatProbs};
use bikron::generators::{
    complete, complete_bipartite, crown, cycle, grid, hypercube, path, petersen, star, wheel,
};
use bikron::graph::{connected_components, is_bipartite, Graph};

fn verify_product(a: &Graph, b: &Graph, mode: SelfLoopMode) {
    let prod = KroneckerProduct::new(a, b, mode).unwrap();
    let g = prod.materialize();

    // Structure prediction.
    let pred = predict_structure(&prod);
    assert_eq!(pred.bipartite, is_bipartite(&g));
    assert_eq!(pred.connected, connected_components(&g).count == 1);

    // Vertex ground truth.
    let truth_v = vertex_squares(&prod).unwrap();
    assert_eq!(truth_v, butterflies_per_vertex(&g));

    // Edge ground truth.
    let truth_e = edge_squares(&prod).unwrap();
    let direct_e = butterflies_per_edge(&g);
    assert_eq!(truth_e.counts.len(), direct_e.counts.len());
    for &(p, q, c) in &truth_e.counts {
        assert_eq!(direct_e.get(p, q), Some(c), "edge ({p},{q})");
    }

    // Global through three paths.
    let global = global_squares(&prod).unwrap();
    assert_eq!(global, butterflies_global(&g));
    assert_eq!(global * 4, truth_e.total());
    assert_eq!(global * 4, truth_v.iter().sum::<u64>());
}

#[test]
fn named_factor_grid_mode_none() {
    let pairs: Vec<(Graph, Graph)> = vec![
        (cycle(3), path(5)),
        (cycle(5), complete_bipartite(2, 3)),
        (complete(4), crown(3)),
        (wheel(5), hypercube(3)),
        (petersen(), star(4)),
        (cycle(7), grid(2, 3)),
    ];
    for (a, b) in &pairs {
        verify_product(a, b, SelfLoopMode::None);
    }
}

#[test]
fn named_factor_grid_mode_factor_a() {
    let pairs: Vec<(Graph, Graph)> = vec![
        (path(4), cycle(6)),
        (complete_bipartite(2, 3), complete_bipartite(3, 2)),
        (crown(3), hypercube(3)),
        (star(4), crown(4)),
        (grid(2, 3), path(5)),
    ];
    for (a, b) in &pairs {
        verify_product(a, b, SelfLoopMode::FactorA);
    }
}

#[test]
fn random_powerlaw_factors() {
    for seed in 0..4 {
        let params = PowerLawParams {
            nu: 12,
            nw: 18,
            gamma_u: 2.2,
            gamma_w: 2.4,
            max_degree_u: 9,
            max_degree_w: 7,
            target_edges: 40,
        };
        let a = bipartite_chung_lu(&params, seed);
        let b = bipartite_chung_lu(&params, seed + 100);
        verify_product(&a, &b, SelfLoopMode::FactorA);
        verify_product(&a, &b, SelfLoopMode::None);
    }
}

#[test]
fn random_rmat_factors() {
    for seed in 0..3 {
        let a = bipartite_rmat(3, 4, 60, RmatProbs::graph500(), seed);
        let b = cycle(5); // non-bipartite partner
        verify_product(&b, &a, SelfLoopMode::None);
        verify_product(&a, &b, SelfLoopMode::FactorA);
    }
}

#[test]
fn self_product_table1_shape() {
    // C = (A+I) ⊗ A with a random bipartite A: the Table-I construction.
    let params = PowerLawParams {
        nu: 10,
        nw: 14,
        gamma_u: 2.0,
        gamma_w: 2.1,
        max_degree_u: 8,
        max_degree_w: 6,
        target_edges: 36,
    };
    let a = bipartite_chung_lu(&params, 9);
    verify_product(&a, &a, SelfLoopMode::FactorA);
}

#[test]
fn disconnected_factors_formulas_still_exact() {
    // The 4-cycle formulas never needed connectivity — only the
    // connectivity theorems do. Verify on disconnected factors.
    let a = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5), (3, 5)]).unwrap();
    let b = Graph::from_edges(5, &[(0, 1), (2, 3), (3, 4)]).unwrap();
    verify_product(&a, &b, SelfLoopMode::None);
    verify_product(&b, &a, SelfLoopMode::FactorA);
}
