//! The end-to-end validation workflow the paper proposes: generator
//! ground truth must *detect* buggy analytics implementations that pass
//! naive testing, and must *confirm* correct ones, at a scale where no
//! competing implementation exists.

use bikron::analytics::approx::{edge_sampling_estimate, wedge_sampling_estimate};
use bikron::analytics::buggy::{center_not_excluded_global, off_by_one_global, overflowing_global};
use bikron::analytics::butterflies_global;
use bikron::core::{GroundTruth, KroneckerProduct, SelfLoopMode};
use bikron::generators::unicode_like::unicode_like_seeded;
use bikron::generators::{complete_bipartite, crown};

#[test]
fn correct_implementation_validates() {
    let a = crown(4);
    let b = complete_bipartite(2, 4);
    let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
    let gt = GroundTruth::new(prod.clone()).unwrap();
    let claimed = butterflies_global(&prod.materialize());
    assert!(gt.validate_global(claimed).unwrap().ok);
}

#[test]
fn off_by_one_detected() {
    let a = crown(3);
    let prod = KroneckerProduct::new(&a, &a, SelfLoopMode::FactorA).unwrap();
    let gt = GroundTruth::new(prod.clone()).unwrap();
    let claimed = off_by_one_global(&prod.materialize());
    assert!(!gt.validate_global(claimed).unwrap().ok);
}

#[test]
fn wedge_accounting_bug_detected() {
    let a = complete_bipartite(2, 3);
    let b = crown(3);
    let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
    let gt = GroundTruth::new(prod.clone()).unwrap();
    let claimed = center_not_excluded_global(&prod.materialize());
    assert!(!gt.validate_global(claimed).unwrap().ok);
}

#[test]
#[ignore = "scale test: seconds in release, minutes in debug; run with --ignored --release"]
fn overflow_bug_detected_only_at_magnitude() {
    // Small scale: the u32-overflow bug is invisible.
    let small = crown(3);
    let sp = KroneckerProduct::new(&small, &small, SelfLoopMode::FactorA).unwrap();
    let sgt = GroundTruth::new(sp.clone()).unwrap();
    let sg = sp.materialize();
    assert!(sgt.validate_global(overflowing_global(&sg)).unwrap().ok);

    // Even the 4.2M-edge unicode product's count fits in u32 — the bug
    // STILL passes there, which is the hazard.
    let a = unicode_like_seeded(8);
    let prod = KroneckerProduct::new(&a, &a, SelfLoopMode::FactorA).unwrap();
    let gt = GroundTruth::new(prod.clone()).unwrap();
    assert!(4 * gt.global_squares().unwrap() < u32::MAX as u64);

    // A dense biclique factor dials the magnitude past the wrap point on
    // a small (139k edge) product, and the bug surfaces.
    let dense = complete_bipartite(16, 16);
    let dp = KroneckerProduct::new(&dense, &dense, SelfLoopMode::FactorA).unwrap();
    let dgt = GroundTruth::new(dp.clone()).unwrap();
    let truth = dgt.global_squares().unwrap();
    assert!(4 * truth > u32::MAX as u64);
    let dg = dp.materialize();
    assert!(!dgt.validate_global(overflowing_global(&dg)).unwrap().ok);
}

#[test]
fn approximate_counters_land_near_truth() {
    // Estimators should be within 15% on a structured product — and the
    // error is *measurable* because truth is exact.
    let a = crown(4);
    let b = complete_bipartite(3, 3);
    let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
    let gt = GroundTruth::new(prod.clone()).unwrap();
    let truth = gt.global_squares().unwrap() as f64;
    let g = prod.materialize();
    let w = wedge_sampling_estimate(&g, 50_000, 1);
    let e = edge_sampling_estimate(&g, 20_000, 2);
    assert!(
        (w - truth).abs() / truth < 0.15,
        "wedge estimate {w} vs {truth}"
    );
    assert!(
        (e - truth).abs() / truth < 0.15,
        "edge estimate {e} vs {truth}"
    );
}

#[test]
fn ground_truth_is_cheap_at_factor_scale() {
    // Building the oracle must not require anything product-sized: the
    // factor for a ~4M-edge product preprocesses in well under a second.
    let a = unicode_like_seeded(8);
    let prod = KroneckerProduct::new(&a, &a, SelfLoopMode::FactorA).unwrap();
    let t = std::time::Instant::now();
    let gt = GroundTruth::new(prod).unwrap();
    let _ = gt.global_squares().unwrap();
    assert!(
        t.elapsed() < std::time::Duration::from_secs(5),
        "oracle took {:?}",
        t.elapsed()
    );
}
