//! Property tests for the extended ground-truth surfaces: distances,
//! triangles, degree histograms, component counts, streaming partitions
//! and Kronecker-power composition — all against direct computation on
//! materialised products, with proptest shrinking.

use std::collections::BTreeMap;

use bikron::analytics::triangles::triangles_per_vertex;
use bikron::core::stream::PartitionedStream;
use bikron::core::truth::degrees::{degree_histogram, max_degree};
use bikron::core::truth::distance::{diameter, hops_at, ParityTables};
use bikron::core::truth::triangles::vertex_triangles;
use bikron::core::truth::FactorStats;
use bikron::core::{predict_structure, KroneckerProduct, SelfLoopMode};
use bikron::graph::traversal::bfs_distances;
use bikron::graph::{connected_components, Graph};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..=n * 2).prop_map(move |pairs| {
            let edges: Vec<(usize, usize)> = pairs.into_iter().filter(|&(u, v)| u != v).collect();
            Graph::from_edges(n, &edges).unwrap()
        })
    })
}

fn arb_mode() -> impl Strategy<Value = SelfLoopMode> {
    prop_oneof![Just(SelfLoopMode::None), Just(SelfLoopMode::FactorA)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hop_distances_match_bfs(a in arb_graph(6), b in arb_graph(6), mode in arb_mode()) {
        let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
        let ta = ParityTables::compute(&a);
        let tb = ParityTables::compute(&b);
        let g = prod.materialize();
        let sources = [0, prod.num_vertices() / 2];
        for &p in &sources {
            let direct = bfs_distances(&g, p);
            for (q, &dq) in direct.iter().enumerate() {
                prop_assert_eq!(hops_at(&prod, &ta, &tb, p, q), dq);
            }
        }
    }

    #[test]
    fn diameter_matches_bfs(a in arb_graph(5), b in arb_graph(5), mode in arb_mode()) {
        let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
        let ta = ParityTables::compute(&a);
        let tb = ParityTables::compute(&b);
        let g = prod.materialize();
        prop_assert_eq!(diameter(&prod, &ta, &tb), bikron::graph::diameter(&g));
    }

    #[test]
    fn triangles_match_direct(a in arb_graph(6), b in arb_graph(6), mode in arb_mode()) {
        let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
        let g = prod.materialize();
        prop_assert_eq!(vertex_triangles(&prod).unwrap(), triangles_per_vertex(&g));
    }

    #[test]
    fn degree_histogram_matches(a in arb_graph(7), b in arb_graph(7), mode in arb_mode()) {
        let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
        let g = prod.materialize();
        let truth = degree_histogram(&prod);
        let mut direct: BTreeMap<u64, u64> = BTreeMap::new();
        for v in 0..g.num_vertices() {
            *direct.entry(g.degree(v) as u64).or_insert(0) += 1;
        }
        prop_assert_eq!(truth, direct);
        prop_assert_eq!(max_degree(&prod), g.max_degree() as u64);
    }

    #[test]
    fn component_count_exact(a in arb_graph(6), b in arb_graph(6), mode in arb_mode()) {
        let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
        let pred = predict_structure(&prod);
        let real = connected_components(&prod.materialize()).count;
        prop_assert_eq!(pred.num_components, Some(real));
    }

    #[test]
    fn stream_partitions_cover_exactly(
        a in arb_graph(5),
        b in arb_graph(5),
        mode in arb_mode(),
        parts in 1usize..=5,
    ) {
        let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let ps = PartitionedStream::new(&prod, &sa, &sb, parts);
        let mut all: Vec<(usize, usize)> = Vec::new();
        for part in 0..parts {
            all.extend(ps.edges(part));
        }
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        prop_assert_eq!(all.len(), before, "duplicate edges across partitions");
        let mut expected: Vec<(usize, usize)> = prod.edges().collect();
        expected.sort_unstable();
        prop_assert_eq!(all, expected);
    }

    #[test]
    fn kron_compose_matches_product_stats(a in arb_graph(5), b in arb_graph(5)) {
        let fa = FactorStats::compute(&a).unwrap();
        let fb = FactorStats::compute(&b).unwrap();
        let composed = fa.kron_compose(&fb).unwrap();
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let direct = FactorStats::compute(&prod.materialize()).unwrap();
        prop_assert_eq!(composed.squares, direct.squares);
        prop_assert_eq!(composed.degrees, direct.degrees);
        prop_assert_eq!(composed.diag_a3, direct.diag_a3);
        prop_assert_eq!(
            composed.edge_squares.to_dense(),
            direct.edge_squares.to_dense()
        );
    }
}
