//! Differential test: `bikron-serve`'s closed-form answers (Thms 3–5,
//! evaluated from factor-sized state) against brute force on the
//! **materialised** product `(A+I_A)⊗B` / `A⊗B`.
//!
//! The server never builds the product; `bikron_analytics` counts
//! butterflies by enumerating it. Agreement between the two — checked
//! here at the *byte* level of the HTTP bodies, for 100% of product
//! vertices, 100% of ordered vertex pairs, and every neighbors/edge-list
//! page — is end-to-end evidence that the serving path (routing, cache,
//! batch assembly, JSON encoding) preserves ground truth.
//!
//! `handle()` is driven in-process (no TCP): the suite parses real HTTP
//! request bytes through the production parser, so everything except the
//! socket accept loop is exercised.

use std::io::BufReader;

use bikron_analytics::butterfly::{butterflies_per_edge, butterflies_per_vertex};
use bikron_core::{KroneckerProduct, SelfLoopMode};
use bikron_generators::{complete_bipartite, cycle, path, star};
use bikron_graph::Graph;
use bikron_obs::JsonWriter;
use bikron_serve::http::{parse_request, Request};
use bikron_serve::{ServeOptions, ServeState};

/// Parse a GET request through the production HTTP parser.
fn get(path: &str) -> Request {
    let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
    parse_request(&mut BufReader::new(raw.as_bytes())).unwrap()
}

/// Parse a POST request (for `/v1/batch`) through the production parser.
fn post(path: &str, body: &str) -> Request {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    parse_request(&mut BufReader::new(raw.as_bytes())).unwrap()
}

/// Everything the brute-force side knows about one fixture: the served
/// state plus the materialised product and its enumerated counts.
struct Fixture {
    state: ServeState,
    mat: Graph,
    /// Thm 3/4 reference: butterflies at each product vertex, counted on
    /// the materialised graph.
    squares_vertex: Vec<u64>,
    /// Thm 5 reference: butterflies through each materialised edge.
    squares_edge: bikron_analytics::butterfly::EdgeButterflies,
    n_b: usize,
}

fn fixture(a: Graph, b: Graph, mode: SelfLoopMode, options: ServeOptions) -> Fixture {
    let mat = KroneckerProduct::new(&a, &b, mode).unwrap().materialize();
    let n_b = b.num_vertices();
    Fixture {
        state: ServeState::build_with(a, b, mode, options).unwrap(),
        squares_vertex: butterflies_per_vertex(&mat),
        squares_edge: butterflies_per_edge(&mat),
        mat,
        n_b,
    }
}

fn fixtures() -> Vec<Fixture> {
    vec![
        fixture(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::None,
            ServeOptions::default(),
        ),
        // loops-a is the paper's dense-structure mode; also run it with
        // the cache disabled so both compute paths face the brute force.
        fixture(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::FactorA,
            ServeOptions {
                cache_entries: 0,
                ..ServeOptions::default()
            },
        ),
        fixture(
            path(4),
            star(4),
            SelfLoopMode::FactorA,
            ServeOptions::default(),
        ),
    ]
}

/// The exact `/v1/vertex/{p}` body, built from the *materialised* graph
/// (degree + enumerated butterfly count) instead of the closed forms.
fn expected_vertex_body(fx: &Fixture, p: usize, squares: u64) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.u64_field("vertex", p as u64);
    w.u64_field("alpha", (p / fx.n_b) as u64);
    w.u64_field("beta", (p % fx.n_b) as u64);
    w.u64_field("degree", fx.mat.degree(p) as u64);
    w.u64_field("squares", squares);
    w.close_object();
    w.finish()
}

/// The exact `/v1/edge/{p}/{q}` body from materialised adjacency.
fn expected_edge_body(fx: &Fixture, p: usize, q: usize) -> String {
    let squares = fx.squares_edge.get(p, q);
    let mut w = JsonWriter::new();
    w.open_object();
    w.u64_field("p", p as u64);
    w.u64_field("q", q as u64);
    w.bool_field("edge", squares.is_some());
    w.u64_field("degree_p", fx.mat.degree(p) as u64);
    w.u64_field("degree_q", fx.mat.degree(q) as u64);
    match squares {
        Some(s) => w.u64_field("squares", s),
        None => w.null_field("squares"),
    }
    w.close_object();
    w.finish()
}

/// The exact `/v1/neighbors/{p}` page body from the materialised rows.
fn expected_neighbors_body(fx: &Fixture, p: usize, offset: u64, limit: usize) -> String {
    let row = fx.mat.neighbors(p);
    let degree = row.len() as u64;
    let page = &row[(offset as usize).min(row.len())..row.len().min(offset as usize + limit)];
    let mut w = JsonWriter::new();
    w.open_object();
    w.u64_field("vertex", p as u64);
    w.u64_field("degree", degree);
    w.u64_field("offset", offset);
    w.u64_field("count", page.len() as u64);
    let next = offset + page.len() as u64;
    if next < degree && !page.is_empty() {
        w.u64_field("next_offset", next);
    } else {
        w.null_field("next_offset");
    }
    w.key("neighbors");
    w.open_array();
    for &q in page {
        w.u64_element(q as u64);
    }
    w.close_array();
    w.close_object();
    w.finish()
}

/// Differential comparator: serve every vertex and return the indices
/// whose body differs from the brute-force expectation. The happy path
/// asserts this is empty; the failure-injection test asserts a perturbed
/// expectation is *caught* (a comparator that can't fail proves nothing).
fn diff_vertices(fx: &Fixture, expected_squares: &[u64]) -> Vec<usize> {
    (0..fx.mat.num_vertices())
        .filter(|&p| {
            let resp = fx.state.handle(&get(&format!("/v1/vertex/{p}")));
            resp.status != 200 || resp.body != expected_vertex_body(fx, p, expected_squares[p])
        })
        .collect()
}

#[test]
fn every_vertex_matches_materialized_truth() {
    for fx in fixtures() {
        assert_eq!(diff_vertices(&fx, &fx.squares_vertex), Vec::<usize>::new());
    }
}

#[test]
fn comparator_detects_an_injected_wrong_count() {
    // analytics::buggy-style failure injection: an off-by-one in a single
    // vertex's count must surface as exactly that vertex differing.
    let fx = &fixtures()[0];
    let victim = (0..fx.squares_vertex.len())
        .max_by_key(|&p| fx.squares_vertex[p])
        .unwrap();
    let mut wrong = fx.squares_vertex.clone();
    wrong[victim] += 1;
    assert_eq!(diff_vertices(fx, &wrong), vec![victim]);
}

#[test]
fn every_ordered_pair_matches_materialized_truth() {
    for fx in &fixtures() {
        let n = fx.mat.num_vertices();
        for p in 0..n {
            for q in 0..n {
                let resp = fx.state.handle(&get(&format!("/v1/edge/{p}/{q}")));
                assert_eq!(resp.status, 200);
                assert_eq!(
                    resp.body,
                    expected_edge_body(fx, p, q),
                    "edge body diverged at ({p}, {q})"
                );
            }
        }
    }
}

#[test]
fn every_neighbors_page_matches_materialized_truth() {
    for fx in &fixtures() {
        let n = fx.mat.num_vertices();
        for p in 0..n {
            let degree = fx.mat.degree(p) as u64;
            for limit in [1usize, 3, 100] {
                let mut offset = 0u64;
                loop {
                    let resp = fx.state.handle(&get(&format!(
                        "/v1/neighbors/{p}?offset={offset}&limit={limit}"
                    )));
                    assert_eq!(resp.status, 200);
                    assert_eq!(
                        resp.body,
                        expected_neighbors_body(fx, p, offset, limit),
                        "neighbors page diverged at p={p} offset={offset} limit={limit}"
                    );
                    offset += limit as u64;
                    if offset >= degree {
                        break;
                    }
                }
            }
        }
    }
}

#[test]
fn edge_stream_pages_cover_exactly_the_materialized_edge_set() {
    for fx in fixtures() {
        for parts in [1usize, 3] {
            let mut streamed: Vec<(usize, usize)> = Vec::new();
            for part in 0..parts {
                let mut offset = 0u64;
                loop {
                    let resp = fx.state.handle(&get(&format!(
                        "/v1/edges/{part}/{parts}?offset={offset}&limit=7"
                    )));
                    assert_eq!(resp.status, 200);
                    // `edges` is the body's final field: an array of
                    // two-element arrays. Each `split('[')` piece past the
                    // first holds one pair, terminated by its inner `]`.
                    let tail = resp.body.split("\"edges\": [").nth(1).unwrap();
                    let mut count = 0u64;
                    for piece in tail.split('[').skip(1) {
                        let nums: Vec<usize> = piece
                            .split(']')
                            .next()
                            .unwrap()
                            .split(|c: char| !c.is_ascii_digit())
                            .filter(|s| !s.is_empty())
                            .map(|s| s.parse().unwrap())
                            .collect();
                        assert_eq!(nums.len(), 2, "malformed edge pair in {piece:?}");
                        streamed.push((nums[0].min(nums[1]), nums[0].max(nums[1])));
                        count += 1;
                    }
                    if resp.body.contains("\"next_offset\": null") {
                        break;
                    }
                    offset += count;
                }
            }
            streamed.sort_unstable();
            let mut expected: Vec<(usize, usize)> =
                fx.mat.edges().map(|(u, v)| (u.min(v), u.max(v))).collect();
            expected.sort_unstable();
            assert_eq!(streamed, expected, "edge stream with {parts} part(s)");
        }
    }
}

/// Build the batch request body and the byte-expected response — the
/// single-endpoint bodies (trailing newline trimmed) as one JSON array.
fn batch_case(fx: &Fixture) -> (String, String) {
    let n = fx.mat.num_vertices();
    let mut lines = Vec::new();
    let mut singles = Vec::new();
    for p in 0..n.min(6) {
        lines.push(format!("vertex {p}"));
        singles.push(expected_vertex_body(fx, p, fx.squares_vertex[p]));
        lines.push(format!("edge {p} {}", (p + 1) % n));
        singles.push(expected_edge_body(fx, p, (p + 1) % n));
        lines.push(format!("neighbors {p} 0 3"));
        singles.push(expected_neighbors_body(fx, p, 0, 3));
    }
    let body = lines.join("\n") + "\n";
    let expected = format!(
        "[\n{}\n]\n",
        singles
            .iter()
            .map(|s| s.trim_end())
            .collect::<Vec<_>>()
            .join(",\n")
    );
    (body, expected)
}

#[test]
fn batch_equals_sequence_of_singles_cached_and_uncached() {
    // fixtures()[0] has the cache on, [1] has it off; run each twice so
    // the cached state answers once cold and once from the cache — all
    // four responses must be byte-identical to the materialised truth.
    for fx in fixtures().iter().take(2) {
        let (body, expected) = batch_case(fx);
        for round in 0..2 {
            let resp = fx.state.handle(&post("/v1/batch", &body));
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, expected, "batch diverged on round {round}");
        }
    }
}
