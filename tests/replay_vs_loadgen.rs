//! Replay determinism, end to end: record a real access log from a live
//! server, replay it (dry-run and live), and check the two contracts the
//! `bikron replay` tool exists for:
//!
//! 1. **Multiset fidelity** — the requests a live replay issues are
//!    exactly the replayable lines of the recorded log (same path-shape
//!    multiset), verified by recording the *target* server's access log
//!    and diffing it against the source log.
//! 2. **Cache warming** — replaying a log against a server primes its
//!    result cache: under the same subsequent workload, the warmed
//!    server's hit rate beats a cold server's. (This is the CI
//!    warm-start story: snapshot restores the hot set, replay recreates
//!    it from a log when no snapshot exists.)

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bikron_cli::replay::{parse_access_log, ReplayConfig};
use bikron_core::SelfLoopMode;
use bikron_generators::{complete_bipartite, cycle};
use bikron_serve::{ServeOptions, ServeState, Server, ServerConfig};

/// Minimal keep-alive HTTP client (same shape as the serve test suite's).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn get(&mut self, path: &str) -> (u16, String) {
        write!(self.writer, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").expect("write request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            self.reader.read_line(&mut h).expect("header line");
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length value");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8 body"))
    }
}

/// Start a server on port 0, optionally recording an access log.
fn start(access_log: Option<String>) -> (std::net::SocketAddr, Arc<ServeState>) {
    let state = Arc::new(
        ServeState::build_with(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::FactorA,
            ServeOptions {
                access_log,
                ..ServeOptions::default()
            },
        )
        .expect("build state"),
    );
    let server = Server::bind(ServerConfig::default(), Arc::clone(&state)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run().expect("server run"));
    (addr, state)
}

fn temp_log(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "bikron-replay-test-{tag}-{}.log",
            std::process::id()
        ))
        .display()
        .to_string()
}

/// Multiset of path shapes, for order-insensitive comparison.
fn shape_counts(shapes: impl IntoIterator<Item = String>) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for s in shapes {
        *counts.entry(s).or_insert(0) += 1;
    }
    counts
}

fn replay_config(log: &str, addr: std::net::SocketAddr, seed: u64) -> ReplayConfig {
    ReplayConfig::parse(&[
        log.to_string(),
        format!("{}:{}", addr.ip(), addr.port()),
        "--seed".to_string(),
        seed.to_string(),
    ])
    .expect("replay config")
}

#[test]
fn replay_reissues_the_recorded_multiset_and_warms_the_cache() {
    // ---- Record: drive a deterministic workload on the source server.
    let source_log = temp_log("source");
    let _ = std::fs::remove_file(&source_log);
    let (src_addr, src_state) = start(Some(source_log.clone()));
    let mut client = Client::connect(src_addr);
    let n = src_state.num_vertices();
    for round in 0..3 {
        for p in 0..n {
            client.get(&format!("/v1/vertex/{p}"));
        }
        if round == 0 {
            for p in 0..4 {
                client.get(&format!("/v1/edge/{p}/{}", p + 1));
                client.get(&format!("/v1/neighbors/{p}?limit=4"));
            }
        }
    }
    client.get("/v1/stats");
    client.get("/nope/missing"); // 404s replay too (they are not errors)
                                 // Access events are logged after the response is written; flush and
                                 // re-read until the tail line lands.
    let mut lines = Vec::new();
    let mut skipped = 0;
    for _ in 0..50 {
        src_state.flush_logs();
        let text = std::fs::read_to_string(&source_log).expect("source log exists");
        (lines, skipped) = parse_access_log(&text);
        if lines.len() >= 3 * n + 10 {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    // 3n vertex + 4 edge + 4 neighbors + stats + the 404 line.
    assert_eq!(lines.len(), 3 * n + 10);
    assert_eq!(skipped, 0);
    let recorded = shape_counts(lines.iter().map(|l| l.path_shape.clone()));

    // ---- Dry-run: plans without a server, reports the replayable count.
    let mut dry_cfg = replay_config(&source_log, src_addr, 7);
    dry_cfg.dry_run = true;
    let mut out = Vec::new();
    assert!(bikron_cli::replay::run(&dry_cfg, &mut out).expect("dry-run"));
    let dry = String::from_utf8(out).unwrap();
    assert!(
        dry.contains(&format!("{} replayable request(s)", lines.len())),
        "{dry}"
    );

    // ---- Live replay onto a fresh server that records its own log.
    let target_log = temp_log("target");
    let _ = std::fs::remove_file(&target_log);
    let (warm_addr, warm_state) = start(Some(target_log.clone()));
    let cfg = replay_config(&source_log, warm_addr, 7);
    let mut out = Vec::new();
    assert!(bikron_cli::replay::run(&cfg, &mut out).expect("live replay"));
    let summary = String::from_utf8(out).unwrap();
    assert!(
        summary.contains(&format!("{} replayed, 0 skipped, 0 error(s)", lines.len())),
        "{summary}"
    );
    // The worker logs each access *after* writing the response, so the
    // final line can trail the client's read by a beat — flush and
    // re-read until the log is complete (bounded, so a genuine loss
    // still fails the multiset assertion below).
    let expected_target_lines = lines.len() + 1; // + the /v1/stats handshake
    let mut target_lines = Vec::new();
    for _ in 0..50 {
        warm_state.flush_logs();
        let target_text = std::fs::read_to_string(&target_log).expect("target log exists");
        (target_lines, _) = parse_access_log(&target_text);
        if target_lines.len() >= expected_target_lines {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }

    // Multiset fidelity: the target saw exactly the recorded shapes,
    // plus the one /v1/stats handshake replay issues to learn the
    // vertex count.
    let mut replayed = shape_counts(target_lines.iter().map(|l| l.path_shape.clone()));
    let stats_seen = replayed.get_mut("/v1/stats").expect("handshake recorded");
    *stats_seen -= 1;
    if *stats_seen == 0 {
        replayed.remove("/v1/stats");
    }
    let mut expected = recorded.clone();
    expected.retain(|_, c| *c > 0);
    replayed.retain(|_, c| *c > 0);
    assert_eq!(replayed, expected, "replayed multiset diverged from log");

    // ---- Cache warming: same subsequent workload (same log, same seed)
    // against the already-replayed server vs a cold one.
    let (cold_addr, cold_state) = start(None);
    let warm_cache = warm_state.cache().expect("cache enabled");
    let cold_cache = cold_state.cache().expect("cache enabled");
    let (h0, m0) = (warm_cache.local_hits(), warm_cache.local_misses());

    let mut out = Vec::new();
    assert!(bikron_cli::replay::run(&replay_config(&source_log, warm_addr, 7), &mut out).unwrap());
    let mut out = Vec::new();
    assert!(bikron_cli::replay::run(&replay_config(&source_log, cold_addr, 7), &mut out).unwrap());

    let warm_hits = warm_cache.local_hits() - h0;
    let warm_misses = warm_cache.local_misses() - m0;
    let (cold_hits, cold_misses) = (cold_cache.local_hits(), cold_cache.local_misses());
    let rate = |h: u64, m: u64| h * 100 / (h + m).max(1);
    assert!(
        rate(warm_hits, warm_misses) > rate(cold_hits, cold_misses),
        "warmed server hit rate {}% did not beat cold {}% \
         (warm {warm_hits}/{warm_misses}, cold {cold_hits}/{cold_misses})",
        rate(warm_hits, warm_misses),
        rate(cold_hits, cold_misses),
    );
    // The warmed pass is *entirely* hits: identical seed → identical
    // keys, all primed by the first replay.
    assert_eq!(warm_misses, 0, "warm replay re-missed primed keys");

    for path in [&source_log, &target_log] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn replay_respects_count_and_exits_nonzero_on_errors() {
    // A log whose lines all 404 on the target is replayable (404 is an
    // answer, not an error)…
    let log = temp_log("count");
    let mut lines = String::new();
    for i in 0..10 {
        lines.push_str(&format!(
            "{{\"ts_ms\": {i}, \"target\": \"access\", \"method\": \"GET\", \
             \"path\": \"/v1/vertex/{{n}}\", \"status\": 200, \"latency_ns\": 10, \
             \"bytes\": 1, \"cache\": \"miss\", \"trace_id\": \"t\"}}\n"
        ));
    }
    std::fs::write(&log, &lines).unwrap();

    let (addr, _state) = start(None);
    let mut cfg = replay_config(&log, addr, 3);
    cfg.count = 4;
    let mut out = Vec::new();
    assert!(bikron_cli::replay::run(&cfg, &mut out).expect("limited replay"));
    let summary = String::from_utf8(out).unwrap();
    assert!(summary.contains("4 replayed"), "{summary}");

    // …while a dead target is a hard error, not a silent zero-count run.
    // Grab a free port and close it again so nothing is listening there.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let cfg = replay_config(&log, dead_addr, 3);
    let mut out = Vec::new();
    assert!(bikron_cli::replay::run(&cfg, &mut out).is_err());

    let _ = std::fs::remove_file(&log);
}
