//! End-to-end check of the paper's GraphBLAS non-blocking claim: a
//! "relatively simple GraphBLAS code" — here, a deferred [`MatExpr`] —
//! samples 4-cycle counts at edges and vertices of a Kronecker product
//! **without materialising the product**, and the samples agree with both
//! the closed-form ground truth and direct counting.

use bikron::core::truth::squares_edge::edge_squares_at;
use bikron::core::truth::squares_vertex::vertex_squares_at;
use bikron::core::truth::FactorStats;
use bikron::core::{KroneckerProduct, SelfLoopMode};
use bikron::generators::{complete_bipartite, crown, cycle, path};
use bikron::graph::Graph;
use bikron::sparse::MatExpr;

/// Build the deferred expression for the product adjacency `C`.
fn c_expr(a: &Graph, b: &Graph, mode: SelfLoopMode) -> MatExpr {
    let la = MatExpr::leaf(a.adjacency().map(|v| v as i128));
    let lb = MatExpr::leaf(b.adjacency().map(|v| v as i128));
    match mode {
        SelfLoopMode::None => la.kron(lb),
        SelfLoopMode::FactorA => la.plus_identity().kron(lb),
    }
}

/// `◇_pq` sampled through the deferred `C³ ∘ C` expression plus the
/// degree correction of Def. 9 (degrees from the product descriptor).
fn sampled_edge_squares(
    expr_c3_had_c: &MatExpr,
    prod: &KroneckerProduct<'_>,
    p: usize,
    q: usize,
) -> Option<i128> {
    if !prod.has_edge(p, q) {
        return None;
    }
    let w3 = expr_c3_had_c.entry(p, q);
    Some(w3 - prod.degree(p) as i128 - prod.degree(q) as i128 + 1)
}

#[test]
fn deferred_edge_samples_match_ground_truth() {
    let cases = [
        (cycle(5), complete_bipartite(2, 3), SelfLoopMode::None),
        (path(3), cycle(4), SelfLoopMode::FactorA),
        (crown(3), crown(3), SelfLoopMode::FactorA),
    ];
    for (a, b, mode) in &cases {
        let prod = KroneckerProduct::new(a, b, *mode).unwrap();
        let sa = FactorStats::compute(a).unwrap();
        let sb = FactorStats::compute(b).unwrap();
        let c = c_expr(a, b, *mode);
        let c3_had_c = c
            .clone()
            .matmul(c.clone())
            .matmul(c.clone())
            .hadamard(c.clone());
        // Sample every edge (products here are small) through the lazy path.
        for (p, q) in prod.edges() {
            let lazy = sampled_edge_squares(&c3_had_c, &prod, p, q).unwrap();
            let truth = edge_squares_at(&prod, &sa, &sb, p, q).unwrap();
            assert_eq!(lazy as u64, truth, "edge ({p},{q}) mode {mode:?}");
        }
        // Non-edges sample as None.
        assert_eq!(sampled_edge_squares(&c3_had_c, &prod, 0, 0), None);
    }
}

#[test]
fn deferred_vertex_samples_match_ground_truth() {
    let a = cycle(3);
    let b = complete_bipartite(2, 3);
    let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
    let sa = FactorStats::compute(&a).unwrap();
    let sb = FactorStats::compute(&b).unwrap();
    let c = c_expr(&a, &b, SelfLoopMode::None);
    // diag(C⁴) via the fused Kron path: diag((A⁴) ⊗ (B⁴)).
    let pow4 = |g: &Graph| {
        let e = MatExpr::leaf(g.adjacency().map(|v| v as i128));
        e.clone().matmul(e.clone()).matmul(e.clone()).matmul(e)
    };
    let diag_c4 = pow4(&a).kron(pow4(&b)).diag();
    for (p, &dc4) in diag_c4.iter().enumerate() {
        // Def. 8: s_p = ½(diag(C⁴) − d² − w² + d).
        let d = prod.degree(p) as i128;
        let w2: i128 = c
            .row(p)
            .into_iter()
            .map(|(q, v)| v * prod.degree(q) as i128)
            .sum();
        let s = (dc4 - d * d - w2 + d) / 2;
        assert_eq!(
            s as u64,
            vertex_squares_at(&prod, &sa, &sb, p),
            "vertex {p}"
        );
    }
}
