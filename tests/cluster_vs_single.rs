//! Differential test: a sharded serve cluster behind the scatter-gather
//! router against a single-node server over the same program.
//!
//! The cluster contract is *byte identity*: any successful response a
//! client gets from the router must be exactly the bytes a single
//! unsharded `bikron serve` would have produced — same JSON spacing,
//! same field order, same pagination framing. This suite stands up real
//! TCP clusters (2 and 3 shards, each shard a `Server` with a
//! `--shard`-style `ServeState`, fronted by a `RouterServer`) and
//! compares 100% of vertices, 100% of ordered pairs, every neighbors
//! page, the partitioned edge stream, and scatter-gathered batch bodies
//! against the in-process single-node answer.
//!
//! A separate test kills one shard and asserts the failure stays scoped:
//! keys in the dead shard's block 503 with a range-stamped message while
//! every other key keeps answering byte-identically, and `/v1/health`
//! reports `degraded` naming exactly the dead shard.

use std::io::{BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use bikron_core::SelfLoopMode;
use bikron_generators::{complete_bipartite, cycle};
use bikron_router::{RouterConfig, RouterOptions, RouterServer, RouterState};
use bikron_serve::http::parse_request;
use bikron_serve::pool::{Server, ServerConfig};
use bikron_serve::{ServeOptions, ServeState};

const N: usize = 25; // cycle(5) ⊗ K_{2,3}

/// The single-node reference: same program, no sharding, driven
/// in-process (its `handle()` bodies are what the wire carries for 200s).
fn single_node() -> ServeState {
    ServeState::build_with(
        cycle(5),
        complete_bipartite(2, 3),
        SelfLoopMode::None,
        ServeOptions::default(),
    )
    .unwrap()
}

fn single_get(state: &ServeState, path: &str) -> (u16, String) {
    let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
    let req = parse_request(&mut BufReader::new(raw.as_bytes())).unwrap();
    let resp = state.handle(&req);
    (resp.status, resp.body)
}

fn single_post(state: &ServeState, path: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let req = parse_request(&mut BufReader::new(raw.as_bytes())).unwrap();
    let resp = state.handle(&req);
    (resp.status, resp.body)
}

/// Minimal keep-alive HTTP client. One connection serves the whole test
/// run — both because that is how real clients talk to the router and
/// because a fresh dial per request would pay the accept-loop poll
/// interval thousands of times over.
struct Client {
    addr: SocketAddr,
    reader: std::io::BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            addr,
            reader: std::io::BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    /// Send one request and read the Content-Length-framed response:
    /// `(status, head, body)`. Reconnects if the server closed the
    /// previous exchange.
    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String, String) {
        use std::io::BufRead as _;
        let extra = if body.is_empty() {
            String::new()
        } else {
            format!("Content-Length: {}\r\n", body.len())
        };
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}\r\n{body}"
        )
        .expect("send");
        let mut head = String::new();
        loop {
            let mut line = String::new();
            let n = self.reader.read_line(&mut line).expect("read header");
            if n == 0 && head.is_empty() {
                // Server closed the idle connection; redial and retry.
                *self = Client::connect(self.addr);
                return self.request(method, path, body);
            }
            assert!(n > 0, "connection closed mid-response:\n{head}");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length")
            .trim()
            .parse()
            .expect("length");
        let mut buf = vec![0u8; len];
        self.reader.read_exact(&mut buf).expect("read body");
        let closing = head.lines().any(|l| l == "Connection: close");
        if closing {
            *self = Client::connect(self.addr);
        }
        (status, head, String::from_utf8(buf).expect("utf-8 body"))
    }

    fn get(&mut self, path: &str) -> (u16, String, String) {
        self.request("GET", path, "")
    }
}

/// One running cluster: `count` sharded serves plus the router, each on
/// its own thread, all bound to ephemeral loopback ports.
struct Cluster {
    router_addr: SocketAddr,
    router_state: Arc<RouterState>,
    shard_states: Vec<Arc<ServeState>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Cluster {
    fn start(count: usize) -> Cluster {
        let mut shard_states = Vec::new();
        let mut threads = Vec::new();
        let mut urls = Vec::new();
        for index in 0..count {
            let state = Arc::new(
                ServeState::build_with(
                    cycle(5),
                    complete_bipartite(2, 3),
                    SelfLoopMode::None,
                    ServeOptions {
                        shard: Some((index, count)),
                        ..ServeOptions::default()
                    },
                )
                .unwrap(),
            );
            let server = Server::bind(
                ServerConfig {
                    addr: "127.0.0.1:0".to_string(),
                    threads: 2,
                    // Short idle timeout so a dead shard's workers notice
                    // shutdown quickly even with pooled router
                    // connections parked on them.
                    read_timeout: Duration::from_millis(500),
                    ..ServerConfig::default()
                },
                Arc::clone(&state),
            )
            .unwrap();
            urls.push(format!("http://{}", server.local_addr().unwrap()));
            shard_states.push(state);
            threads.push(std::thread::spawn(move || server.run().unwrap()));
        }
        let router_state = Arc::new(
            RouterState::connect(
                &urls,
                RouterOptions {
                    upstream_timeout: Duration::from_secs(5),
                    ..RouterOptions::default()
                },
            )
            .unwrap(),
        );
        let router = RouterServer::bind(
            RouterConfig {
                addr: "127.0.0.1:0".to_string(),
                threads: 4,
                ..RouterConfig::default()
            },
            Arc::clone(&router_state),
        )
        .unwrap();
        let router_addr = router.local_addr().unwrap();
        threads.push(std::thread::spawn(move || router.run().unwrap()));
        Cluster {
            router_addr,
            router_state,
            shard_states,
            threads,
        }
    }

    /// Stop one shard and wait for its listener to close, so subsequent
    /// dials are refused — the closest in-process stand-in for SIGKILL.
    fn kill_shard(&mut self, index: usize) {
        self.shard_states[index].request_shutdown();
        self.threads.remove(index).join().unwrap();
    }

    fn shutdown(mut self) {
        self.router_state.request_shutdown();
        for s in &self.shard_states {
            s.request_shutdown();
        }
        for t in self.threads.drain(..) {
            t.join().unwrap();
        }
    }
}

/// Every path whose single-node answer is a 200 must come back from the
/// router byte-identical. (Error bodies get per-request trace ids
/// stamped at the transport layer, so for non-200s only the status is
/// compared.)
fn assert_same(single: &ServeState, client: &mut Client, path: &str) {
    let (want_status, want_body) = single_get(single, path);
    let (status, _, body) = client.get(path);
    assert_eq!(status, want_status, "{path}");
    if want_status == 200 {
        assert_eq!(body, want_body, "{path}");
    }
}

#[test]
fn cluster_answers_byte_identical_to_single_node() {
    let single = single_node();
    for count in [2usize, 3] {
        let cluster = Cluster::start(count);
        let mut client = Client::connect(cluster.router_addr);

        // 100% of vertices and every neighbors page.
        for p in 0..N {
            assert_same(&single, &mut client, &format!("/v1/vertex/{p}"));
            let degree = {
                let (_, body) = single_get(&single, &format!("/v1/vertex/{p}"));
                body.split("\"degree\": ")
                    .nth(1)
                    .unwrap()
                    .split(',')
                    .next()
                    .unwrap()
                    .trim()
                    .parse::<u64>()
                    .unwrap()
            };
            let mut offset = 0u64;
            loop {
                assert_same(
                    &single,
                    &mut client,
                    &format!("/v1/neighbors/{p}?offset={offset}&limit=4"),
                );
                offset += 4;
                if offset >= degree {
                    break;
                }
            }
        }

        // 100% of ordered pairs, plus clustering on a grid.
        for p in 0..N {
            for q in 0..N {
                assert_same(&single, &mut client, &format!("/v1/edge/{p}/{q}"));
            }
            for q in [0usize, 7, 24] {
                assert_same(&single, &mut client, &format!("/v1/clustering/{p}/{q}"));
            }
        }

        // The partitioned edge stream: the router routes each part to
        // the shard owning its slice of the part space.
        for part in 0..6 {
            assert_same(
                &single,
                &mut client,
                &format!("/v1/edges/{part}/6?limit=11"),
            );
        }

        // Relayed singletons and canonical errors.
        assert_same(&single, &mut client, "/v1/stats");
        assert_same(&single, &mut client, "/v1/vertex/banana");
        assert_same(&single, &mut client, &format!("/v1/vertex/{N}"));
        assert_same(&single, &mut client, "/v1/edge/0/999");

        // Scatter-gathered batch: lines spanning every shard, reassembled
        // in request order, byte-identical to the single-node array.
        let mut lines = Vec::new();
        for p in 0..N {
            lines.push(format!("vertex {p}"));
        }
        lines.push(format!("edge 0 {}", N - 1));
        lines.push(format!("edge {} 0", N - 1));
        lines.push("neighbors 12 0 4".to_string());
        // Interleave so consecutive lines hit different shards.
        lines.reverse();
        let body = lines.join("\n") + "\n";
        let (want_status, want_body) = single_post(&single, "/v1/batch", &body);
        assert_eq!(want_status, 200);
        let (status, _, got) = client.request("POST", "/v1/batch", &body);
        assert_eq!(status, 200, "{count}-shard batch");
        assert_eq!(got, want_body, "{count}-shard batch diverged");

        // Cluster health: ok verdict, one detail row per shard.
        let (status, _, health) = client.get("/v1/health");
        assert_eq!(status, 200);
        assert!(health.contains("\"status\": \"ok\""), "{health}");
        assert!(health.contains("\"role\": \"router\""), "{health}");
        assert!(health.contains(&format!("\"shards\": {count}")), "{health}");

        cluster.shutdown();
    }
}

#[test]
fn killing_one_shard_scopes_failures_to_its_key_range() {
    let single = single_node();
    let mut cluster = Cluster::start(3);
    let mut client = Client::connect(cluster.router_addr);
    // 25 vertices over 3 shards: blocks [0,9), [9,18), [18,25).
    cluster.kill_shard(1);

    // Keys in the dead block: 503 with the owned range named, plus a
    // Retry-After hint; the other blocks keep answering byte-identically.
    for p in 9..18 {
        let (status, head, body) = client.get(&format!("/v1/vertex/{p}"));
        assert_eq!(status, 503, "vertex {p}");
        assert!(body.contains("shard 1"), "{body}");
        assert!(
            body.contains("vertices 9..18 are temporarily unserved"),
            "{body}"
        );
        assert!(head.contains("Retry-After: 1"), "{head}");
    }
    for p in (0..9).chain(18..25) {
        assert_same(&single, &mut client, &format!("/v1/vertex/{p}"));
        assert_same(&single, &mut client, &format!("/v1/edge/{p}/12"));
    }

    // A batch spanning dead and live blocks still returns the array,
    // with the dead slots carrying the scoped error and the live slots
    // byte-identical to the single-node bodies.
    let (status, _, got) = client.request("POST", "/v1/batch", "vertex 3\nvertex 12\nvertex 20\n");
    assert_eq!(status, 200);
    let (_, want3) = single_get(&single, "/v1/vertex/3");
    let (_, want20) = single_get(&single, "/v1/vertex/20");
    assert!(got.contains(want3.trim_end()), "{got}");
    assert!(got.contains(want20.trim_end()), "{got}");
    assert!(got.contains("temporarily unserved"), "{got}");

    // Health degrades and names exactly the dead shard.
    let (status, _, health) = client.get("/v1/health");
    assert_eq!(status, 200);
    assert!(health.contains("\"status\": \"degraded\""), "{health}");
    assert!(health.contains("\"shard\": 1"), "{health}");
    assert_eq!(health.matches("\"down\"").count(), 1, "{health}");
    assert_eq!(health.matches("\"ok\"").count(), 2, "{health}");

    cluster.shutdown();
}
