//! Differential test: expression servers (`bikron serve --expr`) against
//! brute force on the **materialised** chain product.
//!
//! The server answers every query from factor-sized state through the
//! chained Thm 3–7 evaluators ([`bikron_core::KronChain`]); this suite
//! materialises the same programs — a three-factor `(A+I)⊗B⊗C`, a
//! `A^{⊗3}` tower, and a bare chain where Thm 6's hypotheses hold — and
//! recounts 4-cycles with the direct butterfly algorithms. Bodies are
//! compared at the byte level wherever the expectation is fully
//! derivable from the replica (vertex, edge, neighbors, community,
//! scatter), and field-by-field for the clustering surface, whose
//! Thm 6 `bound ≤ Γ` invariant gets its own failure-injection check:
//! a comparator that cannot catch a violated bound proves nothing.

use std::io::BufReader;

use bikron_analytics::{butterflies_per_edge, butterflies_per_vertex, EdgeButterflies};
use bikron_core::KronChain;
use bikron_generators::{complete_bipartite, crown, cycle};
use bikron_graph::Graph;
use bikron_obs::JsonWriter;
use bikron_serve::http::{parse_request, Request};
use bikron_serve::{ServeOptions, ServeState};

/// Parse a GET request through the production HTTP parser.
fn get(path: &str) -> Request {
    let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
    parse_request(&mut BufReader::new(raw.as_bytes())).unwrap()
}

/// One served program plus its materialised replica.
struct Fixture {
    state: ServeState,
    mat: Graph,
    /// Per-level factor sizes, for local (server-independent) index
    /// arithmetic: level 0 is most significant.
    sizes: Vec<usize>,
    squares_vertex: Vec<u64>,
    squares_edge: EdgeButterflies,
    canonical: String,
}

impl Fixture {
    /// Recombine per-level coordinates into a product id using only the
    /// factor sizes (mixed-radix, level 0 most significant).
    fn combine(&self, coords: &[usize]) -> usize {
        coords
            .iter()
            .zip(&self.sizes)
            .fold(0usize, |acc, (&c, &n)| acc * n + c)
    }

    /// Split a product id into per-level coordinates.
    fn split(&self, p: usize) -> Vec<usize> {
        let mut rem = p;
        let mut out = vec![0usize; self.sizes.len()];
        for i in (0..self.sizes.len()).rev() {
            out[i] = rem % self.sizes[i];
            rem /= self.sizes[i];
        }
        out
    }
}

fn fixture(
    bindings: Vec<(&str, Graph)>,
    levels: &[(&str, bool)],
    options: ServeOptions,
) -> Fixture {
    let owned: Vec<(String, Graph)> = bindings
        .iter()
        .map(|(n, g)| (n.to_string(), g.clone()))
        .collect();
    let level_spec: Vec<(String, bool)> =
        levels.iter().map(|(n, id)| (n.to_string(), *id)).collect();
    let chain = KronChain::new(owned.clone(), &level_spec).unwrap();
    let mat = chain.materialize();
    let sizes = (0..chain.num_levels())
        .map(|i| chain.level_info(i).1.num_vertices())
        .collect();
    let canonical = chain.canonical().to_string();
    Fixture {
        state: ServeState::build_expr(owned, &level_spec, options).unwrap(),
        squares_vertex: butterflies_per_vertex(&mat),
        squares_edge: butterflies_per_edge(&mat),
        mat,
        sizes,
        canonical,
    }
}

/// The three programs under test. `fixtures()[2]` is identity-free with
/// every factor degree ≥ 2 and strictly positive factor clustering, so
/// the Thm 6 bound is defined (and non-trivial) on every edge.
fn fixtures() -> Vec<Fixture> {
    vec![
        fixture(
            vec![
                ("A", cycle(5)),
                ("B", complete_bipartite(2, 3)),
                ("C", crown(3)),
            ],
            &[("A", true), ("B", false), ("C", false)],
            ServeOptions::default(),
        ),
        // The tower, with the cache disabled so the uncached compute path
        // faces the brute force too.
        fixture(
            vec![("A", cycle(5))],
            &[("A", false), ("A", false), ("A", false)],
            ServeOptions {
                cache_entries: 0,
                ..ServeOptions::default()
            },
        ),
        fixture(
            vec![
                ("A", complete_bipartite(2, 2)),
                ("B", complete_bipartite(2, 3)),
                ("C", cycle(4)),
            ],
            &[("A", false), ("B", false), ("C", false)],
            ServeOptions::default(),
        ),
    ]
}

/// The exact chain `/v1/vertex/{p}` body from the replica: coordinates
/// by local mixed-radix arithmetic, counts by direct enumeration.
fn expected_vertex_body(fx: &Fixture, p: usize, squares: u64) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.u64_field("vertex", p as u64);
    w.key("coords");
    w.open_array();
    for c in fx.split(p) {
        w.u64_element(c as u64);
    }
    w.close_array();
    w.u64_field("degree", fx.mat.degree(p) as u64);
    w.u64_field("squares", squares);
    w.close_object();
    w.finish()
}

/// The exact `/v1/edge/{p}/{q}` body from materialised adjacency.
fn expected_edge_body(fx: &Fixture, p: usize, q: usize) -> String {
    let squares = fx.squares_edge.get(p, q);
    let mut w = JsonWriter::new();
    w.open_object();
    w.u64_field("p", p as u64);
    w.u64_field("q", q as u64);
    w.bool_field("edge", squares.is_some());
    w.u64_field("degree_p", fx.mat.degree(p) as u64);
    w.u64_field("degree_q", fx.mat.degree(q) as u64);
    match squares {
        Some(s) => w.u64_field("squares", s),
        None => w.null_field("squares"),
    }
    w.close_object();
    w.finish()
}

/// The exact `/v1/neighbors/{p}` page body from the materialised rows.
fn expected_neighbors_body(fx: &Fixture, p: usize, offset: u64, limit: usize) -> String {
    let row = fx.mat.neighbors(p);
    let degree = row.len() as u64;
    let page = &row[(offset as usize).min(row.len())..row.len().min(offset as usize + limit)];
    let mut w = JsonWriter::new();
    w.open_object();
    w.u64_field("vertex", p as u64);
    w.u64_field("degree", degree);
    w.u64_field("offset", offset);
    w.u64_field("count", page.len() as u64);
    let next = offset + page.len() as u64;
    if next < degree && !page.is_empty() {
        w.u64_field("next_offset", next);
    } else {
        w.null_field("next_offset");
    }
    w.key("neighbors");
    w.open_array();
    for &q in page {
        w.u64_element(q as u64);
    }
    w.close_array();
    w.close_object();
    w.finish()
}

/// The exact chain `/v1/community` body: `m_in`/`m_out` brute-forced on
/// the replica, density corollaries null (pair-only statements).
fn expected_community_body(fx: &Fixture, sets: &[Vec<usize>]) -> String {
    let mut coords_list: Vec<Vec<usize>> = vec![Vec::new()];
    for s in sets {
        let mut next = Vec::with_capacity(coords_list.len() * s.len());
        for c in &coords_list {
            for &v in s {
                let mut c2 = c.clone();
                c2.push(v);
                next.push(c2);
            }
        }
        coords_list = next;
    }
    let ids: Vec<usize> = coords_list.iter().map(|c| fx.combine(c)).collect();
    let idset: std::collections::HashSet<usize> = ids.iter().copied().collect();
    let (mut m_in2, mut m_out) = (0u64, 0u64);
    for &p in &ids {
        for &q in fx.mat.neighbors(p) {
            if idset.contains(&q) {
                m_in2 += 1;
            } else {
                m_out += 1;
            }
        }
    }
    let mut w = JsonWriter::new();
    w.open_object();
    w.string_field("theorem", "thm7");
    w.u64_field("size", ids.len() as u64);
    w.u64_field("m_in", m_in2 / 2);
    w.u64_field("m_out", m_out);
    w.null_field("rho_in");
    w.null_field("rho_in_lower_bound");
    w.null_field("rho_out_upper_bound");
    w.close_object();
    w.finish()
}

/// The exact `/v1/scatter/degree-squares` JSON page from the replica.
fn expected_scatter_body(fx: &Fixture, offset: u64, limit: usize) -> String {
    let n = fx.mat.num_vertices() as u64;
    let start = offset.min(n);
    let end = n.min(offset + limit as u64);
    let mut w = JsonWriter::new();
    w.open_object();
    w.u64_field("offset", offset);
    w.u64_field("count", end - start);
    if end < n && end > start {
        w.u64_field("next_offset", end);
    } else {
        w.null_field("next_offset");
    }
    w.key("rows");
    w.open_array();
    for p in start..end {
        w.array_element();
        w.open_array();
        w.u64_element(p);
        w.u64_element(fx.mat.degree(p as usize) as u64);
        w.u64_element(fx.squares_vertex[p as usize]);
        w.close_array();
    }
    w.close_array();
    w.close_object();
    w.finish()
}

/// Extract a float field; `None` for a missing key or a JSON `null`.
fn field_f64(body: &str, key: &str) -> Option<f64> {
    let tail = body.split(&format!("\"{key}\": ")).nth(1)?;
    let raw = tail.split([',', '\n', '}']).next()?.trim();
    if raw == "null" {
        return None;
    }
    raw.parse().ok()
}

/// Differential comparator for `/v1/vertex`: indices whose body differs
/// from the brute-force expectation.
fn diff_vertices(fx: &Fixture, expected_squares: &[u64]) -> Vec<usize> {
    (0..fx.mat.num_vertices())
        .filter(|&p| {
            let resp = fx.state.handle(&get(&format!("/v1/vertex/{p}")));
            resp.status != 200 || resp.body != expected_vertex_body(fx, p, expected_squares[p])
        })
        .collect()
}

/// Thm 6 comparator: edges where the server's reported `bound` exceeds
/// the replica's exact Γ (scaled by `gamma_scale`; 1.0 is the honest
/// check, < 1.0 simulates an over-claiming bound evaluator).
fn bound_violations(fx: &Fixture, gamma_scale: f64) -> (usize, Vec<(usize, usize)>) {
    let mut bounds_seen = 0usize;
    let mut violations = Vec::new();
    for p in 0..fx.mat.num_vertices() {
        for &q in fx.mat.neighbors(p) {
            if q < p {
                continue;
            }
            let resp = fx.state.handle(&get(&format!("/v1/clustering/{p}/{q}")));
            assert_eq!(resp.status, 200);
            if let Some(b) = field_f64(&resp.body, "bound") {
                bounds_seen += 1;
                let s = fx.squares_edge.get(p, q).unwrap() as f64;
                let denom =
                    ((fx.mat.degree(p) as i128 - 1) * (fx.mat.degree(q) as i128 - 1)) as f64;
                let gamma = gamma_scale * (s / denom);
                if b > gamma + 1e-12 {
                    violations.push((p, q));
                }
            }
        }
    }
    (bounds_seen, violations)
}

#[test]
fn every_vertex_matches_materialized_truth() {
    for fx in fixtures() {
        assert_eq!(
            diff_vertices(&fx, &fx.squares_vertex),
            Vec::<usize>::new(),
            "{}",
            fx.canonical
        );
    }
}

#[test]
fn comparator_detects_an_injected_wrong_count() {
    let fx = &fixtures()[0];
    let victim = (0..fx.squares_vertex.len())
        .max_by_key(|&p| fx.squares_vertex[p])
        .unwrap();
    let mut wrong = fx.squares_vertex.clone();
    wrong[victim] += 1;
    assert_eq!(diff_vertices(fx, &wrong), vec![victim]);
}

#[test]
fn every_ordered_pair_matches_materialized_truth() {
    for fx in &fixtures() {
        let n = fx.mat.num_vertices();
        for p in 0..n {
            for q in 0..n {
                let resp = fx.state.handle(&get(&format!("/v1/edge/{p}/{q}")));
                assert_eq!(resp.status, 200);
                assert_eq!(
                    resp.body,
                    expected_edge_body(fx, p, q),
                    "[{}] edge body diverged at ({p}, {q})",
                    fx.canonical
                );
            }
        }
    }
}

#[test]
fn every_neighbors_page_matches_materialized_truth() {
    for fx in &fixtures() {
        let n = fx.mat.num_vertices();
        for p in 0..n {
            let degree = fx.mat.degree(p) as u64;
            for limit in [1usize, 3, 100] {
                let mut offset = 0u64;
                loop {
                    let resp = fx.state.handle(&get(&format!(
                        "/v1/neighbors/{p}?offset={offset}&limit={limit}"
                    )));
                    assert_eq!(resp.status, 200);
                    assert_eq!(
                        resp.body,
                        expected_neighbors_body(fx, p, offset, limit),
                        "[{}] neighbors diverged at p={p} offset={offset} limit={limit}",
                        fx.canonical
                    );
                    offset += limit as u64;
                    if offset >= degree {
                        break;
                    }
                }
            }
        }
    }
}

#[test]
fn clustering_fields_match_materialized_truth() {
    for fx in &fixtures() {
        let n = fx.mat.num_vertices();
        for p in 0..n {
            for q in 0..n {
                let resp = fx.state.handle(&get(&format!("/v1/clustering/{p}/{q}")));
                assert_eq!(resp.status, 200);
                let body = &resp.body;
                let tag = format!("[{}] ({p},{q})", fx.canonical);
                assert!(
                    body.contains(&format!("\"degree_p\": {}", fx.mat.degree(p))),
                    "{tag}: {body}"
                );
                assert!(
                    body.contains(&format!("\"degree_q\": {}", fx.mat.degree(q))),
                    "{tag}: {body}"
                );
                match fx.squares_edge.get(p, q) {
                    Some(s) => {
                        assert!(body.contains("\"edge\": true"), "{tag}: {body}");
                        assert!(body.contains(&format!("\"squares\": {s}")), "{tag}: {body}");
                        let denom = (fx.mat.degree(p) as i128 - 1) * (fx.mat.degree(q) as i128 - 1);
                        if denom > 0 {
                            // Same division the server performs — the
                            // shortest round-trip spelling must agree.
                            let gamma = s as f64 / denom as f64;
                            assert!(
                                body.contains(&format!("\"gamma\": {gamma}")),
                                "{tag}: {body}"
                            );
                        } else {
                            assert!(body.contains("\"gamma\": null"), "{tag}: {body}");
                        }
                    }
                    None => {
                        assert!(body.contains("\"edge\": false"), "{tag}: {body}");
                        assert!(body.contains("\"squares\": null"), "{tag}: {body}");
                        assert!(body.contains("\"gamma\": null"), "{tag}: {body}");
                    }
                }
            }
        }
    }
}

#[test]
fn thm6_bound_holds_on_every_edge_of_the_bare_chain() {
    let fxs = fixtures();
    // Identity-free, all degrees ≥ 2: the bound must be present on every
    // edge and never exceed the exact Γ.
    let bare = &fxs[2];
    let (seen, violations) = bound_violations(bare, 1.0);
    assert_eq!(seen, bare.mat.num_edges(), "bound defined on every edge");
    assert_eq!(violations, Vec::<(usize, usize)>::new());
    // The lifted program breaks Thm 6's hypotheses — no bound anywhere.
    let (seen, _) = bound_violations(&fxs[0], 1.0);
    assert_eq!(seen, 0, "no bound under (A+I)");
}

#[test]
fn comparator_detects_an_injected_bound_violation() {
    // Shrinking the replica's Γ simulates a server whose bound evaluator
    // over-claims; the comparator must flag it. The factors all have
    // strictly positive clustering, so the genuine bounds are > 0 and a
    // zeroed Γ is below every one of them.
    let bare = &fixtures()[2];
    let (seen, violations) = bound_violations(bare, 0.0);
    assert!(seen > 0);
    assert!(
        !violations.is_empty(),
        "a zeroed Γ must register as a bound violation"
    );
}

#[test]
fn community_bodies_match_materialized_truth() {
    for fx in &fixtures() {
        let set_choices: Vec<Vec<Vec<usize>>> = vec![
            // Singletons, a mixed mid-size choice, and full levels.
            fx.sizes.iter().map(|_| vec![0]).collect(),
            fx.sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (0..n).skip(i % 2).step_by(2).collect())
                .collect(),
            fx.sizes.iter().map(|&n| (0..n).collect()).collect(),
        ];
        for sets in set_choices {
            let query: Vec<String> = sets
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let ids: Vec<String> = s.iter().map(usize::to_string).collect();
                    format!("s{i}={}", ids.join(","))
                })
                .collect();
            let resp = fx
                .state
                .handle(&get(&format!("/v1/community?{}", query.join("&"))));
            assert_eq!(resp.status, 200, "[{}] {:?}", fx.canonical, resp.body);
            assert_eq!(
                resp.body,
                expected_community_body(fx, &sets),
                "[{}] community diverged for {sets:?}",
                fx.canonical
            );
        }
    }
}

#[test]
fn scatter_pages_match_materialized_truth() {
    for fx in &fixtures() {
        let n = fx.mat.num_vertices() as u64;
        for limit in [7usize, 64] {
            let mut offset = 0u64;
            loop {
                let resp = fx.state.handle(&get(&format!(
                    "/v1/scatter/degree-squares?offset={offset}&limit={limit}"
                )));
                assert_eq!(resp.status, 200);
                assert_eq!(
                    resp.body,
                    expected_scatter_body(fx, offset, limit),
                    "[{}] scatter diverged at offset={offset} limit={limit}",
                    fx.canonical
                );
                offset += limit as u64;
                if offset >= n {
                    break;
                }
            }
        }
        // CSV rows carry the same numbers.
        let resp = fx
            .state
            .handle(&get("/v1/scatter/degree-squares?format=csv&limit=64"));
        assert_eq!(resp.status, 200);
        let mut lines = resp.body.lines();
        assert_eq!(lines.next(), Some("vertex,degree,squares"));
        for (p, line) in lines.enumerate() {
            assert_eq!(
                line,
                format!("{p},{},{}", fx.mat.degree(p), fx.squares_vertex[p]),
                "[{}] csv row {p}",
                fx.canonical
            );
        }
    }
}

#[test]
fn stats_reports_canonical_expression_and_replica_totals() {
    let expected = ["(A+I)⊗B⊗C", "A⊗A⊗A", "A⊗B⊗C"];
    for (fx, want) in fixtures().iter().zip(expected) {
        assert_eq!(fx.canonical, want);
        let resp = fx.state.handle(&get("/v1/stats"));
        assert_eq!(resp.status, 200);
        assert!(
            resp.body.contains(&format!("\"expr\": \"{want}\"")),
            "{}",
            resp.body
        );
        assert!(resp
            .body
            .contains(&format!("\"vertices\": {}", fx.mat.num_vertices())));
        assert!(resp
            .body
            .contains(&format!("\"edges\": {}", fx.mat.num_edges())));
        let global = fx.squares_vertex.iter().sum::<u64>() / 4;
        assert!(
            resp.body.contains(&format!("\"global_squares\": {global}")),
            "{}",
            resp.body
        );
    }
}
