#![warn(missing_docs)]

//! Facade crate re-exporting the bikron workspace.
pub use bikron_analytics as analytics;
pub use bikron_core as core;
pub use bikron_distsim as distsim;
pub use bikron_generators as generators;
pub use bikron_graph as graph;
pub use bikron_sparse as sparse;
