#![warn(missing_docs)]

//! Offline stand-in for the subset of
//! [proptest](https://docs.rs/proptest) this workspace's property tests
//! use: the [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`collection::vec`], [`strategy::Just`],
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its case index and seed instead of a minimised input) and no
//! persistence of regression files. Case generation is deterministic per
//! test name, so failures reproduce across runs.

/// Test-runner types: configuration, RNG, and failure type.
pub mod test_runner {
    /// Error signalled by `prop_assert!`-style macros inside a property.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Construct a failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }

    impl From<&str> for TestCaseError {
        fn from(s: &str) -> Self {
            TestCaseError(s.to_string())
        }
    }

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256++ RNG driving case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from a test-name hash and case index, deterministically.
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform draw below `span` (> 0).
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<F, R>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> R,
        {
            Map { base: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns.
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> S,
            S: Strategy,
        {
            FlatMap { base: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe strategy view backing [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, R> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> R,
    {
        type Value = R;
        fn generate(&self, rng: &mut TestRng) -> R {
            (self.f)(self.base.generate(rng))
        }
    }

    /// `prop_flat_map` adapter.
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> S2,
        S2: Strategy,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty set of alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_int_strategies!(usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fail the surrounding property unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(
                    concat!("assertion failed: ", stringify!($cond)),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the surrounding property unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($lhs), stringify!($rhs), l, r,
                )),
            );
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+), l, r,
                )),
            );
        }
    }};
}

/// Fail the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` runs
/// `cases` random inputs and panics (with case index and test name) on
/// the first failing case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    stringify!($name),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                )*
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -2i64..=2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
        }

        #[test]
        fn vec_and_tuple_compose(v in crate::collection::vec((0usize..5, 0usize..5), 0..=8)) {
            prop_assert!(v.len() <= 8);
            for &(a, b) in &v {
                prop_assert!(a < 5 && b < 5);
            }
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..=6).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k {} must be below n {}", k, n);
        }

        #[test]
        fn oneof_picks_an_alternative(m in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assert!(m == 1 || m == 2);
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let s = (0usize..1000, 0usize..1000);
        let mut r1 = TestRng::deterministic("t", 5);
        let mut r2 = TestRng::deterministic("t", 5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed at case 0")]
    fn failing_case_panics_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
