#![warn(missing_docs)]

//! Offline stand-in for the subset of [rayon](https://docs.rs/rayon) this
//! workspace uses.
//!
//! The build container has no crates.io access, so the workspace maps the
//! `rayon` dependency name onto this path crate (see `[workspace.dependencies]`
//! in the root manifest). It reimplements — with **real OS-thread
//! parallelism** via [`std::thread::scope`] — exactly the combinator chains
//! the kernels in `bikron-sparse`, `bikron-core`, `bikron-graph`, and
//! `bikron-analytics` rely on:
//!
//! * `(range).into_par_iter().map(f).collect()` / `.try_reduce(..)`
//! * `(range).into_par_iter().map_init(init, f).collect()`
//! * `vec.into_par_iter().map(f).collect()` (element type must be `Copy`)
//! * `slice.par_iter().map(f).collect()` / `.for_each(f)`
//! * `a.par_iter_mut().zip(b.par_iter_mut()).enumerate().for_each(f)`
//! * [`join`], [`current_num_threads`]
//!
//! Work is split into one contiguous chunk per available hardware thread
//! and each chunk runs on a fresh scoped thread. That trades rayon's
//! work-stealing pool for zero dependencies; call sites already gate
//! parallel dispatch behind size thresholds, so the extra spawn cost is
//! amortised over large inputs only. `collect` preserves input order, so
//! results are deterministic exactly as with rayon's indexed iterators.

use std::ops::Range;

/// Re-exports that mirror `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator};
}

/// Number of worker threads a parallel region may use (rayon API parity).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, and return both results
/// (rayon's binary fork-join primitive).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon-shim: join worker panicked"))
    })
}

/// Split `0..len` into at most [`current_num_threads`] contiguous chunks
/// and run `work(lo, hi)` for each on its own scoped thread. Returns the
/// per-chunk results in chunk order.
fn run_chunked<R, W>(len: usize, work: W) -> Vec<R>
where
    R: Send,
    W: Fn(usize, usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let threads = current_num_threads().min(len);
    if threads <= 1 {
        return vec![work(0, len)];
    }
    let chunk = len.div_ceil(threads);
    let mut bounds = Vec::new();
    let mut lo = 0;
    while lo < len {
        let hi = (lo + chunk).min(len);
        bounds.push((lo, hi));
        lo = hi;
    }
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|(lo, hi)| s.spawn(move || work(lo, hi)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon-shim: worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------------
// Entry-point traits (the names call sites import from the prelude).
// ---------------------------------------------------------------------------

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// The parallel iterator produced.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types whose shared references yield a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator produced.
    type Iter;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Types whose mutable references yield a parallel iterator (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The parallel iterator produced.
    type Iter;
    /// Borrowing parallel iterator over `&mut self`.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Copy + Send + Sync> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { slice: self }
    }
}

// ---------------------------------------------------------------------------
// Sources.
// ---------------------------------------------------------------------------

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Map each index through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> MapRange<F>
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
    {
        MapRange {
            range: self.range,
            f,
        }
    }

    /// Map with per-thread scratch state created by `init` (rayon's
    /// `map_init`).
    pub fn map_init<INIT, S, F, R>(self, init: INIT, f: F) -> MapInitRange<INIT, F>
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
        R: Send,
    {
        MapInitRange {
            range: self.range,
            init,
            f,
        }
    }

    /// Apply `f` to each index in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = self.range.start;
        let len = self.range.len();
        run_chunked(len, |lo, hi| {
            for i in lo..hi {
                f(start + i);
            }
        });
    }
}

/// `ParRange::map` adapter.
pub struct MapRange<F> {
    range: Range<usize>,
    f: F,
}

impl<F> MapRange<F> {
    /// Collect the mapped results, preserving index order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(usize) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let start = self.range.start;
        let len = self.range.len();
        let f = &self.f;
        run_chunked(len, |lo, hi| {
            (lo..hi).map(|i| f(start + i)).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Fold `Option`-valued items, short-circuiting on `None` (the one
    /// `try_reduce` shape used in this workspace: `Item = Option<T>`).
    pub fn try_reduce<T, ID, OP>(self, identity: ID, op: OP) -> Option<T>
    where
        F: Fn(usize) -> Option<T> + Sync,
        T: Send,
        ID: Fn() -> T + Sync,
        OP: Fn(T, T) -> Option<T> + Sync,
    {
        let start = self.range.start;
        let len = self.range.len();
        let f = &self.f;
        let op = &op;
        let identity = &identity;
        let partials = run_chunked(len, |lo, hi| -> Option<T> {
            let mut acc = identity();
            for i in lo..hi {
                acc = op(acc, f(start + i)?)?;
            }
            Some(acc)
        });
        let mut acc = identity();
        for p in partials {
            acc = op(acc, p?)?;
        }
        Some(acc)
    }
}

/// `ParRange::map_init` adapter.
pub struct MapInitRange<INIT, F> {
    range: Range<usize>,
    init: INIT,
    f: F,
}

impl<INIT, F> MapInitRange<INIT, F> {
    /// Collect the mapped results, preserving index order. `init` runs
    /// once per worker chunk.
    pub fn collect<C, S, R>(self) -> C
    where
        INIT: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let start = self.range.start;
        let len = self.range.len();
        let f = &self.f;
        let init = &self.init;
        run_chunked(len, |lo, hi| {
            let mut state = init();
            (lo..hi)
                .map(|i| f(&mut state, start + i))
                .collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Parallel iterator over an owned `Vec` of `Copy` items.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Copy + Send + Sync> ParVec<T> {
    /// Map each element through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> MapVec<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        MapVec {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to each element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let items = &self.items;
        run_chunked(items.len(), |lo, hi| {
            for &x in &items[lo..hi] {
                f(x);
            }
        });
    }
}

/// `ParVec::map` adapter.
pub struct MapVec<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Copy + Send + Sync, F> MapVec<T, F> {
    /// Collect the mapped results, preserving element order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let items = &self.items;
        let f = &self.f;
        run_chunked(items.len(), |lo, hi| {
            items[lo..hi].iter().map(|&x| f(x)).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Map each `&T` through `f` in parallel.
    pub fn map<F, R>(self, f: F) -> MapSlice<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        MapSlice {
            slice: self.slice,
            f,
        }
    }

    /// Apply `f` to each `&T` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let slice = self.slice;
        run_chunked(slice.len(), |lo, hi| {
            for x in &slice[lo..hi] {
                f(x);
            }
        });
    }
}

/// `ParSlice::map` adapter.
pub struct MapSlice<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> MapSlice<'a, T, F> {
    /// Collect the mapped results, preserving element order.
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let slice = self.slice;
        let f = &self.f;
        run_chunked(slice.len(), |lo, hi| {
            slice[lo..hi].iter().map(f).collect::<Vec<R>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Borrowing parallel iterator over a mutable slice.
pub struct ParSliceMut<'a, T> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Pair up with a second mutable parallel iterator of the same length.
    pub fn zip<U: Send>(self, other: ParSliceMut<'a, U>) -> ZipMut<'a, T, U> {
        assert_eq!(
            self.slice.len(),
            other.slice.len(),
            "rayon-shim: zip of unequal lengths"
        );
        ZipMut {
            a: self.slice,
            b: other.slice,
        }
    }

    /// Apply `f` to each `&mut T` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let len = self.slice.len();
        let chunk = len.div_ceil(current_num_threads().max(1)).max(1);
        let f = &f;
        std::thread::scope(|s| {
            for part in self.slice.chunks_mut(chunk) {
                s.spawn(move || {
                    for x in part {
                        f(x);
                    }
                });
            }
        });
    }
}

/// Zip of two mutable-slice parallel iterators.
pub struct ZipMut<'a, T, U> {
    a: &'a mut [T],
    b: &'a mut [U],
}

impl<'a, T: Send, U: Send> ZipMut<'a, T, U> {
    /// Attach the element index to each pair.
    pub fn enumerate(self) -> EnumerateZipMut<'a, T, U> {
        EnumerateZipMut {
            a: self.a,
            b: self.b,
        }
    }

    /// Apply `f` to each `(&mut T, &mut U)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((&mut T, &mut U)) + Sync,
    {
        self.enumerate().for_each(|(_, pair)| f(pair));
    }
}

/// Enumerated zip of two mutable-slice parallel iterators.
pub struct EnumerateZipMut<'a, T, U> {
    a: &'a mut [T],
    b: &'a mut [U],
}

impl<'a, T: Send, U: Send> EnumerateZipMut<'a, T, U> {
    /// Apply `f` to each `(index, (&mut T, &mut U))` in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, (&mut T, &mut U))) + Sync,
    {
        let len = self.a.len();
        let chunk = len.div_ceil(current_num_threads().max(1)).max(1);
        let f = &f;
        std::thread::scope(|s| {
            let mut base = 0usize;
            let mut ra = self.a;
            let mut rb = self.b;
            while !ra.is_empty() {
                let take = chunk.min(ra.len());
                let (ha, ta) = ra.split_at_mut(take);
                let (hb, tb) = rb.split_at_mut(take);
                ra = ta;
                rb = tb;
                let lo = base;
                base += take;
                s.spawn(move || {
                    for (off, (x, y)) in ha.iter_mut().zip(hb.iter_mut()).enumerate() {
                        f((lo + off, (x, y)));
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_map_collect_ordered() {
        let v: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v.len(), 10_000);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i * 2));
    }

    #[test]
    fn range_map_init_collect_ordered() {
        let v: Vec<usize> = (0..5_000)
            .into_par_iter()
            .map_init(|| 7usize, |s, i| i + *s)
            .collect();
        assert!(v.iter().enumerate().all(|(i, &x)| x == i + 7));
    }

    #[test]
    fn vec_into_par_iter_map() {
        let items: Vec<(usize, usize)> = (0..1000).map(|i| (i, i + 1)).collect();
        let out: Vec<usize> = items.into_par_iter().map(|(a, b)| a + b).collect();
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i + 1));
    }

    #[test]
    fn slice_for_each_visits_all() {
        let items: Vec<usize> = (0..4096).collect();
        let sum = AtomicUsize::new(0);
        items.par_iter().for_each(|&x| {
            sum.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4096 * 4095 / 2);
    }

    #[test]
    fn zip_enumerate_for_each_disjoint() {
        let mut a = vec![0usize; 2048];
        let mut b = vec![0usize; 2048];
        {
            let mut sa: Vec<&mut [usize]> = a.chunks_mut(1).collect();
            let mut sb: Vec<&mut [usize]> = b.chunks_mut(1).collect();
            sa.par_iter_mut()
                .zip(sb.par_iter_mut())
                .enumerate()
                .for_each(|(p, (x, y))| {
                    x[0] = p;
                    y[0] = 2 * p;
                });
        }
        assert!(a.iter().enumerate().all(|(i, &x)| x == i));
        assert!(b.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    fn try_reduce_short_circuits_none() {
        let all: Option<usize> = (0..100)
            .into_par_iter()
            .map(Some)
            .try_reduce(|| 0, |a, b| Some(a.max(b)));
        assert_eq!(all, Some(99));
        let none: Option<usize> = (0..100)
            .into_par_iter()
            .map(|i| if i == 50 { None } else { Some(i) })
            .try_reduce(|| 0, |a, b| Some(a.max(b)));
        assert_eq!(none, None);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
