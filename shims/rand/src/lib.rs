#![warn(missing_docs)]

//! Offline stand-in for the subset of [rand](https://docs.rs/rand) this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! and `Rng::gen_bool`.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! high-quality, deterministic PRNG, but *not* bit-compatible with rand's
//! ChaCha12-based `StdRng`. Seed-calibrated constants in the workspace
//! (the `unicode_like` factor's 4-cycle census, Table-I pins) were
//! re-derived against this stream; see EXPERIMENTS.md.

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (`f64`/`f32` in `[0, 1)`, integers uniform over their range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`Range` or `RangeInclusive` of
    /// supported numeric types). Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (rand's `Standard`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly (rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by Lemire's widening-multiply rejection —
/// unbiased, and branch-light for spans far from `2^64`.
fn uniform_u64_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = f64::sample_standard(rng);
        // Clamp below end so the half-open contract survives rounding.
        let v = self.start + x * (self.end - self.start);
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

/// Concrete generators (rand's `rngs` module).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's
    /// `StdRng`. Not bit-compatible with the real `StdRng` stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Same engine under the `SmallRng` name for API parity.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>().to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_interval_and_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(3usize..17);
            assert!((3..17).contains(&y));
            let z = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&z));
            let w = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&w));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }
}
