#![warn(missing_docs)]

//! Offline stand-in for the subset of
//! [crossbeam](https://docs.rs/crossbeam) this workspace uses: bounded
//! MPSC channels (`crossbeam::channel::{bounded, Sender, Receiver}`),
//! backed by [`std::sync::mpsc::sync_channel`].
//!
//! Semantics match for the workspace's usage pattern (single consumer per
//! receiver, clonable senders, blocking `send`/`recv`). Crossbeam's
//! multi-consumer receivers and `select!` are not provided.

/// Bounded channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when all senders have disconnected.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Sending half of a bounded channel. Clonable.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or the channel is closed).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a bounded channel. Single-consumer.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives (or all senders disconnect).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive; `None` when the queue is currently empty
        /// or the channel is closed.
        pub fn try_recv(&self) -> Option<T> {
            self.0.try_recv().ok()
        }
    }

    /// Create a bounded channel with the given capacity (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = bounded::<u64>(1);
        let tx2 = tx.clone();
        std::thread::scope(|s| {
            s.spawn(move || tx.send(7).unwrap());
            s.spawn(move || tx2.send(8).unwrap());
            let a = rx.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 15);
        });
    }

    #[test]
    fn recv_errors_after_disconnect() {
        let (tx, rx) = bounded::<u64>(1);
        drop(tx);
        assert!(rx.recv().is_err());
    }
}
