#![warn(missing_docs)]

//! Offline stand-in for the subset of
//! [criterion](https://docs.rs/criterion) this workspace's benches use.
//!
//! Runs each benchmark as warmup + `sample_size` timed samples and prints
//! `name  time: [min median max]` per-iteration figures to stdout. No
//! statistical analysis, HTML reports, or baseline persistence — this
//! keeps `cargo bench` functional in the offline container; the obs-layer
//! `perf_report` binary (`BENCH_kron.json`) is the repo's durable perf
//! record.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into().label, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration workload size (printed, not analysed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        match t {
            Throughput::Elements(n) => println!("  throughput: {n} elements/iter"),
            Throughput::Bytes(n) => println!("  throughput: {n} bytes/iter"),
        }
        self
    }

    /// Benchmark a closure under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, id.into().label);
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id.into().label);
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op hook).
    pub fn finish(self) {}
}

/// Identifier for one benchmark (name, optionally parameterised).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Workload-size annotation for throughput reporting.
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Time `f`, recording one sample per configured run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let t = Instant::now();
        black_box(f());
        let once = t.elapsed().as_nanos().max(1) as u64;
        // Aim for ~30ms per sample, capped to keep total time sane.
        let iters = (30_000_000 / once).clamp(1, 1_000_000);
        let t = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples_ns
            .push(t.elapsed().as_nanos() as f64 / iters as f64);
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples_ns: Vec::new(),
    };
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples_ns.is_empty() {
        println!("  {label}  (no samples)");
        return;
    }
    b.samples_ns.sort_by(|a, c| a.total_cmp(c));
    let min = b.samples_ns[0];
    let med = b.samples_ns[b.samples_ns.len() / 2];
    let max = b.samples_ns[b.samples_ns.len() - 1];
    println!(
        "  {label}  time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(med),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declare a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        c.benchmark_group("g")
            .sample_size(2)
            .bench_function("inc", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function(BenchmarkId::new("solo", 3), |b| b.iter(|| black_box(2 * 2)));
    }
}
