//! Connected components via BFS.
//!
//! Used both to check the paper's Assump. 1 preconditions (factors must be
//! connected) and to validate the connectivity *conclusions* of Thms. 1–2
//! empirically on materialised products.

use std::collections::VecDeque;

use bikron_sparse::Ix;

use crate::graph::Graph;

/// A component labelling of the vertex set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the component id of `v` (ids are dense, 0-based,
    /// assigned in order of discovery by vertex index).
    pub label: Vec<Ix>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Sizes of each component, indexed by component id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.label {
            sizes[l] += 1;
        }
        sizes
    }

    /// Vertices of component `id`.
    pub fn members(&self, id: Ix) -> Vec<Ix> {
        self.label
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == id)
            .map(|(v, _)| v)
            .collect()
    }
}

/// Label connected components by repeated BFS.
pub fn connected_components(g: &Graph) -> Components {
    let n = g.num_vertices();
    const UNSET: Ix = Ix::MAX;
    let mut label = vec![UNSET; n];
    let mut count = 0usize;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if label[start] != UNSET {
            continue;
        }
        label[start] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if label[u] == UNSET {
                    label[u] = count;
                    queue.push_back(u);
                }
            }
        }
        count += 1;
    }
    Components { label, count }
}

/// Whether the graph is connected (the empty graph is vacuously connected;
/// a graph with ≥2 vertices needs exactly one component).
pub fn is_connected(g: &Graph) -> bool {
    g.num_vertices() <= 1 || connected_components(g).count == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!(is_connected(&g));
        assert_eq!(c.sizes(), vec![4]);
    }

    #[test]
    fn two_components_and_isolated() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.label, vec![0, 0, 1, 1, 2]);
        assert_eq!(c.members(1), vec![2, 3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_connected_by_convention() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(is_connected(&g));
        assert_eq!(connected_components(&g).count, 0);
    }

    #[test]
    fn self_loops_do_not_merge_components() {
        let g = Graph::from_edges(2, &[(0, 0), (1, 1)]).unwrap();
        assert_eq!(connected_components(&g).count, 2);
    }

    #[test]
    fn sizes_sum_to_order() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (4, 5)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.sizes().iter().sum::<usize>(), 7);
    }
}
