//! Degree statistics and distribution summaries used by the figure
//! harnesses (Fig. 5 plots degree vs 4-cycle count; Table I reports order,
//! size, and part sizes).

use std::collections::BTreeMap;

use crate::bipartite::Bipartition;
use crate::graph::Graph;

/// Summary statistics of a graph, in the shape of the paper's Table I row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GraphSummary {
    /// Vertex count.
    pub num_vertices: usize,
    /// Undirected edge count.
    pub num_edges: usize,
    /// Self loop count.
    pub num_self_loops: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Bipartite part sizes, when the graph is bipartite.
    pub parts: Option<(usize, usize)>,
}

/// Compute a [`GraphSummary`], attaching part sizes if a bipartition is given.
pub fn summarize(g: &Graph, bip: Option<&Bipartition>) -> GraphSummary {
    GraphSummary {
        num_vertices: g.num_vertices(),
        num_edges: g.num_edges(),
        num_self_loops: g.num_self_loops(),
        max_degree: g.max_degree(),
        parts: bip.map(|b| (b.u_len(), b.w_len())),
    }
}

/// Degree histogram: degree → number of vertices with that degree.
pub fn degree_histogram(g: &Graph) -> BTreeMap<usize, usize> {
    let mut h = BTreeMap::new();
    for v in 0..g.num_vertices() {
        *h.entry(g.degree(v)).or_insert(0) += 1;
    }
    h
}

/// Mean degree (0 for the empty graph).
pub fn mean_degree(g: &Graph) -> f64 {
    if g.num_vertices() == 0 {
        return 0.0;
    }
    g.nnz() as f64 / g.num_vertices() as f64
}

/// Pairs `(degree, count)` aggregated over vertices, for log-log plots like
/// Fig. 5: given a per-vertex statistic, produce `(d_v, stat_v)` points.
pub fn degree_vs_statistic(g: &Graph, stat: &[u64]) -> Vec<(u64, u64)> {
    assert_eq!(stat.len(), g.num_vertices(), "statistic length mismatch");
    (0..g.num_vertices())
        .map(|v| (g.degree(v) as u64, stat[v]))
        .collect()
}

/// Bin `(degree, stat)` pairs by degree and average the statistic within
/// each bin — the "degree-binned average" presentation used in bipartite
/// BTER evaluations the paper cites.
pub fn degree_binned_mean(points: &[(u64, u64)]) -> Vec<(u64, f64)> {
    let mut sums: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    for &(d, s) in points {
        let e = sums.entry(d).or_insert((0, 0));
        e.0 += s;
        e.1 += 1;
    }
    sums.into_iter()
        .map(|(d, (sum, cnt))| (d, sum as f64 / cnt as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::bipartition;

    #[test]
    fn summary_of_star() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let b = bipartition(&g).unwrap();
        let s = summarize(&g, Some(&b));
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.parts, Some((1, 3)));
    }

    #[test]
    fn histogram_counts() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let h = degree_histogram(&g);
        assert_eq!(h.get(&1), Some(&3));
        assert_eq!(h.get(&3), Some(&1));
    }

    #[test]
    fn mean_degree_path() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!((mean_degree(&g) - 4.0 / 3.0).abs() < 1e-12);
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(mean_degree(&empty), 0.0);
    }

    #[test]
    fn degree_vs_statistic_pairs() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let pts = degree_vs_statistic(&g, &[5, 6, 7]);
        assert_eq!(pts, vec![(1, 5), (2, 6), (1, 7)]);
    }

    #[test]
    fn binned_mean_averages_ties() {
        let pts = vec![(1u64, 5u64), (2, 6), (1, 7)];
        let b = degree_binned_mean(&pts);
        assert_eq!(b, vec![(1, 6.0), (2, 6.0)]);
    }
}
