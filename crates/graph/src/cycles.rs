//! Odd-cycle witnesses and girth.
//!
//! Thm. 1's proof hinges on factor `A` containing an odd cycle; the
//! generator surfaces that witness so error messages and tests can point at
//! the certificate rather than just a boolean.

use std::collections::VecDeque;

use bikron_sparse::Ix;

use crate::graph::Graph;

/// Find an odd closed walk certificate: a self loop `[v]`, or an odd cycle
/// as a vertex sequence `v_0, v_1, …, v_{2k}` (closing edge back to `v_0`
/// implied). Returns `None` iff the graph is bipartite.
pub fn odd_cycle(g: &Graph) -> Option<Vec<Ix>> {
    // A self loop is the shortest odd closed walk.
    for v in 0..g.num_vertices() {
        if g.has_edge(v, v) {
            return Some(vec![v]);
        }
    }
    // BFS 2-colouring; a same-colour edge (u, v) closes an odd cycle through
    // the BFS-tree paths to the nearest common ancestor.
    let n = g.num_vertices();
    const UNSET: u8 = u8::MAX;
    let mut colour = vec![UNSET; n];
    let mut parent = vec![Ix::MAX; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if colour[start] != UNSET {
            continue;
        }
        colour[start] = 0;
        parent[start] = start;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if u == v {
                    return Some(vec![v]);
                }
                if colour[u] == UNSET {
                    colour[u] = 1 - colour[v];
                    parent[u] = v;
                    queue.push_back(u);
                } else if colour[u] == colour[v] {
                    return Some(extract_cycle(&parent, v, u));
                }
            }
        }
    }
    None
}

/// Walk both tree paths up to the common ancestor, then splice.
fn extract_cycle(parent: &[Ix], mut a: Ix, mut b: Ix) -> Vec<Ix> {
    let mut path_a = vec![a];
    let mut path_b = vec![b];
    // Climb to roots collecting ancestry, then find the first shared vertex.
    while parent[a] != a {
        a = parent[a];
        path_a.push(a);
    }
    while parent[b] != b {
        b = parent[b];
        path_b.push(b);
    }
    // Find lowest common ancestor by position-from-root alignment.
    let mut ia = path_a.len();
    let mut ib = path_b.len();
    while ia > 0 && ib > 0 && path_a[ia - 1] == path_b[ib - 1] {
        ia -= 1;
        ib -= 1;
    }
    // After alignment the common suffix starts at path_a[ia] == path_b[ib]
    // (the LCA). Cycle: a-endpoint down to the LCA inclusive, then the
    // b-side back up excluding the LCA; the closing edge (b, a) is implied.
    let mut cycle: Vec<Ix> = path_a[..=ia].to_vec();
    cycle.extend(path_b[..ib].iter().rev());
    cycle
}

/// Whether the graph contains any odd cycle (i.e. is non-bipartite).
pub fn has_odd_cycle(g: &Graph) -> bool {
    odd_cycle(g).is_some()
}

/// Girth (length of shortest cycle) by BFS from every vertex; intended for
/// small factor graphs. Self loops count as girth 1; `None` for forests.
pub fn girth(g: &Graph) -> Option<u64> {
    let n = g.num_vertices();
    for v in 0..n {
        if g.has_edge(v, v) {
            return Some(1);
        }
    }
    let mut best: Option<u64> = None;
    for s in 0..n {
        let mut dist = vec![u64::MAX; n];
        let mut parent = vec![Ix::MAX; n];
        let mut queue = VecDeque::new();
        dist[s] = 0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if u == v {
                    continue;
                }
                if dist[u] == u64::MAX {
                    dist[u] = dist[v] + 1;
                    parent[u] = v;
                    queue.push_back(u);
                } else if parent[v] != u {
                    // Non-tree edge closes a cycle of length dist[v]+dist[u]+1.
                    let len = dist[v] + dist[u] + 1;
                    best = Some(best.map_or(len, |b| b.min(len)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle_graph(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    fn verify_odd_cycle(g: &Graph, cyc: &[Ix]) {
        assert!(cyc.len() % 2 == 1, "cycle {cyc:?} not odd");
        if cyc.len() == 1 {
            assert!(g.has_edge(cyc[0], cyc[0]));
            return;
        }
        for w in cyc.windows(2) {
            assert!(g.has_edge(w[0], w[1]), "missing edge {:?}", (w[0], w[1]));
        }
        assert!(g.has_edge(*cyc.last().unwrap(), cyc[0]));
        let mut sorted = cyc.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), cyc.len(), "cycle repeats vertices: {cyc:?}");
    }

    #[test]
    fn triangle_witness() {
        let g = cycle_graph(3);
        let c = odd_cycle(&g).unwrap();
        verify_odd_cycle(&g, &c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn pentagon_witness() {
        let g = cycle_graph(5);
        let c = odd_cycle(&g).unwrap();
        verify_odd_cycle(&g, &c);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn even_cycle_none() {
        assert!(odd_cycle(&cycle_graph(6)).is_none());
        assert!(!has_odd_cycle(&cycle_graph(4)));
    }

    #[test]
    fn self_loop_is_odd_closed_walk() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 1)]).unwrap();
        assert_eq!(odd_cycle(&g), Some(vec![1]));
    }

    #[test]
    fn odd_cycle_in_larger_graph() {
        // Bipartite square plus a chord making a triangle.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 1)]).unwrap();
        // 0-1 edge + 0-4-1 path = triangle 0,4,1.
        let c = odd_cycle(&g).unwrap();
        verify_odd_cycle(&g, &c);
    }

    #[test]
    fn girth_values() {
        assert_eq!(girth(&cycle_graph(3)), Some(3));
        assert_eq!(girth(&cycle_graph(4)), Some(4));
        assert_eq!(girth(&cycle_graph(7)), Some(7));
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(girth(&path), None);
        let looped = Graph::from_edges(2, &[(0, 1), (0, 0)]).unwrap();
        assert_eq!(girth(&looped), Some(1));
    }

    #[test]
    fn girth_prefers_shorter_cycle() {
        // C5 with a chord creating a triangle.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]).unwrap();
        assert_eq!(girth(&g), Some(3));
    }
}
