//! Bipartiteness (paper Def. 7).
//!
//! A graph is bipartite iff it 2-colours, iff it has no odd cycle. The
//! colouring here ignores self loops when asked to (a bipartite graph "with
//! all self loops added" — the paper's Assump. 1(ii) input `A + I_A` — is
//! not bipartite in the strict sense, but its loop-free core is; callers
//! choose the policy explicitly).

use std::collections::VecDeque;

use bikron_sparse::Ix;

use crate::graph::Graph;

/// The two-part vertex split `U ∪ W = V` of a bipartite graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bipartition {
    /// Vertices coloured 0 ("left"/U side). Sorted ascending.
    pub u: Vec<Ix>,
    /// Vertices coloured 1 ("right"/W side). Sorted ascending.
    pub w: Vec<Ix>,
    /// `side[v]` is 0 for U, 1 for W.
    pub side: Vec<u8>,
}

impl Bipartition {
    /// Which side vertex `v` is on: `0` = U, `1` = W.
    #[inline]
    pub fn side_of(&self, v: Ix) -> u8 {
        self.side[v]
    }

    /// `|U|`.
    pub fn u_len(&self) -> usize {
        self.u.len()
    }

    /// `|W|`.
    pub fn w_len(&self) -> usize {
        self.w.len()
    }
}

/// Attempt to 2-colour the graph by BFS over every component.
///
/// Self loops make a graph non-bipartite (a loop is an odd closed walk);
/// use [`bipartition_ignoring_loops`] for the `A + I_A` case. Isolated
/// vertices are assigned to U by convention, so the bipartition is
/// deterministic: the lowest-indexed vertex of each component goes to U.
///
/// ```
/// use bikron_graph::{bipartition, Graph};
///
/// let square = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let b = bipartition(&square).unwrap();
/// assert_eq!((b.u, b.w), (vec![0, 2], vec![1, 3]));
///
/// let triangle = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
/// assert!(bipartition(&triangle).is_none());
/// ```
pub fn bipartition(g: &Graph) -> Option<Bipartition> {
    if g.num_self_loops() > 0 {
        return None;
    }
    bipartition_ignoring_loops(g)
}

/// 2-colour the graph treating self loops as absent.
pub fn bipartition_ignoring_loops(g: &Graph) -> Option<Bipartition> {
    let n = g.num_vertices();
    const UNSET: u8 = u8::MAX;
    let mut side = vec![UNSET; n];
    let mut queue = VecDeque::new();
    for start in 0..n {
        if side[start] != UNSET {
            continue;
        }
        side[start] = 0;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let sv = side[v];
            for &u in g.neighbors(v) {
                if u == v {
                    continue; // ignore loop
                }
                if side[u] == UNSET {
                    side[u] = 1 - sv;
                    queue.push_back(u);
                } else if side[u] == sv {
                    return None; // odd cycle
                }
            }
        }
    }
    let u: Vec<Ix> = (0..n).filter(|&v| side[v] == 0).collect();
    let w: Vec<Ix> = (0..n).filter(|&v| side[v] == 1).collect();
    Some(Bipartition { u, w, side })
}

/// Whether the graph is bipartite (strict: self loops disqualify).
pub fn is_bipartite(g: &Graph) -> bool {
    bipartition(g).is_some()
}

/// Relabel a bipartite graph so all of `U` precedes all of `W`, producing
/// the block anti-diagonal adjacency of Def. 7. Returns the relabelled
/// graph and the old→new vertex map.
pub fn to_block_antidiagonal(g: &Graph, bip: &Bipartition) -> (Graph, Vec<Ix>) {
    let n = g.num_vertices();
    let mut new_id = vec![0 as Ix; n];
    let mut next = 0 as Ix;
    for &v in &bip.u {
        new_id[v] = next;
        next += 1;
    }
    for &v in &bip.w {
        new_id[v] = next;
        next += 1;
    }
    let edges: Vec<(Ix, Ix)> = g.edges().map(|(a, b)| (new_id[a], new_id[b])).collect();
    let h = Graph::from_edges(n, &edges).expect("relabel keeps edges in range");
    (h, new_id)
}

/// The bipartite double cover `G × K₂`: vertices `(v, parity)` flattened
/// as `2v + parity`, with edges `{(u,0),(v,1)}` and `{(u,1),(v,0)}` for
/// every edge `{u,v}` of `G`. Always bipartite; connected iff `G` is
/// connected *and* non-bipartite. Walk parity in `G` becomes plain
/// reachability here — the structure behind
/// [`crate::traversal::parity_distances`] and Thm. 1's proof.
pub fn double_cover(g: &Graph) -> Graph {
    let n = g.num_vertices();
    let mut edges = Vec::with_capacity(g.nnz());
    for (u, v) in g.edges() {
        edges.push((2 * u, 2 * v + 1));
        edges.push((2 * u + 1, 2 * v));
    }
    Graph::from_edges(2 * n, &edges).expect("cover endpoints in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::connected_components;
    use crate::traversal::{bfs_distances, parity_distances, UNREACHABLE};

    #[test]
    fn double_cover_of_odd_cycle_is_even_cycle() {
        // Cover of C5 is C10: connected, bipartite.
        let edges: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let g = Graph::from_edges(5, &edges).unwrap();
        let c = double_cover(&g);
        assert_eq!(c.num_vertices(), 10);
        assert_eq!(c.num_edges(), 10);
        assert!(is_bipartite(&c));
        assert_eq!(connected_components(&c).count, 1);
    }

    #[test]
    fn double_cover_of_bipartite_graph_splits() {
        // Cover of a bipartite graph is two disjoint copies.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = double_cover(&g);
        assert_eq!(connected_components(&c).count, 2);
        assert!(is_bipartite(&c));
    }

    #[test]
    fn cover_distances_equal_parity_distances() {
        // BFS in the cover from (s, 0) reaches (v, par) at exactly the
        // shortest walk of that parity in G.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (1, 5)]).unwrap();
        let c = double_cover(&g);
        for s in 0..g.num_vertices() {
            let (even, odd) = parity_distances(&g, s);
            let cover = bfs_distances(&c, 2 * s);
            for v in 0..g.num_vertices() {
                assert_eq!(cover[2 * v], even[v], "even ({s},{v})");
                assert_eq!(cover[2 * v + 1], odd[v], "odd ({s},{v})");
            }
        }
        let _ = UNREACHABLE;
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let b = bipartition(&g).unwrap();
        assert_eq!(b.u, vec![0, 2]);
        assert_eq!(b.w, vec![1, 3]);
        assert!(is_bipartite(&g));
    }

    #[test]
    fn odd_cycle_is_not() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(bipartition(&g).is_none());
    }

    #[test]
    fn self_loop_breaks_strict_bipartiteness() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 0)]).unwrap();
        assert!(!is_bipartite(&g));
        // ...but the loop-free core 2-colours.
        let b = bipartition_ignoring_loops(&g).unwrap();
        assert_eq!(b.side, vec![0, 1]);
    }

    #[test]
    fn disconnected_components_coloured_independently() {
        // Two disjoint edges.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let b = bipartition(&g).unwrap();
        assert_eq!(b.side_of(0), 0);
        assert_eq!(b.side_of(2), 0);
        assert_eq!(b.u_len(), 2);
        assert_eq!(b.w_len(), 2);
    }

    #[test]
    fn isolated_vertices_go_to_u() {
        let g = Graph::from_edges(3, &[(1, 2)]).unwrap();
        let b = bipartition(&g).unwrap();
        assert_eq!(b.side_of(0), 0);
    }

    #[test]
    fn block_antidiagonal_relabel() {
        // Star with centre 1: U = {1}, W = {0, 2, 3}? BFS from 0: side(0)=0,
        // side(1)=1, side(2)=side(3)=0. U = {0,2,3}, W = {1}.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]).unwrap();
        let b = bipartition(&g).unwrap();
        assert_eq!(b.u, vec![0, 2, 3]);
        let (h, map) = to_block_antidiagonal(&g, &b);
        // In h, vertices 0..3 are U first then W: centre must be vertex 3.
        assert_eq!(map[1], 3);
        assert_eq!(h.degree(3), 3);
        let hb = bipartition(&h).unwrap();
        assert_eq!(hb.u, vec![0, 1, 2]);
        assert_eq!(hb.w, vec![3]);
    }

    #[test]
    fn komplete_bipartite_k23() {
        let mut edges = Vec::new();
        for u in 0..2 {
            for w in 0..3 {
                edges.push((u, 2 + w));
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        let b = bipartition(&g).unwrap();
        assert_eq!(b.u_len(), 2);
        assert_eq!(b.w_len(), 3);
    }
}
