#![warn(missing_docs)]

//! # bikron-graph
//!
//! Undirected graph layer over [`bikron_sparse`] CSR adjacency matrices,
//! with the structural predicates and traversals the paper's constructions
//! depend on:
//!
//! * [`Graph`] — simple undirected graphs with an explicit self-loop policy,
//! * [`bipartite`] — 2-colouring and the `U ∪ W` [`bipartite::Bipartition`] of Def. 7,
//! * [`connectivity`] — connected components (needed to check Assump. 1 and
//!   to validate Thms. 1–2 empirically),
//! * [`traversal`] — BFS, hop distances, eccentricity and diameter,
//! * [`cycles`] — odd-cycle witnesses (non-bipartiteness certificates) and
//!   girth for small factors,
//! * [`degeneracy`] — core decomposition, used by the direct butterfly
//!   counting baselines,
//! * [`io`] — edge-list and MatrixMarket readers/writers (KONECT-style
//!   datasets drop in directly),
//! * [`stats`] — degree distributions and summaries for the figures.

pub mod bipartite;
pub mod connectivity;
pub mod cycles;
pub mod degeneracy;
pub mod graph;
pub mod io;
pub mod stats;
pub mod traversal;

pub use bipartite::{bipartition, is_bipartite, Bipartition};
pub use connectivity::{connected_components, is_connected, Components};
pub use graph::{Graph, GraphError};
pub use traversal::{bfs_distances, diameter, eccentricity};
