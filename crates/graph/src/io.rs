//! Graph readers and writers.
//!
//! Two formats cover the datasets the paper draws on:
//! * whitespace-separated **edge lists** (`u v` per line, `%`/`#` comments)
//!   — the KONECT download format, 1-based or 0-based;
//! * **MatrixMarket** `coordinate pattern` files — the SuiteSparse / UF
//!   collection format.
//!
//! KONECT bipartite files index the two vertex sets independently
//! ("bip" format: left vertices `1..m`, right vertices `1..n` in separate
//! columns); [`read_bipartite_edge_list`] offsets the right column so the
//! result is a unipartite adjacency over `m + n` vertices, block
//! anti-diagonal as in Def. 7.

use std::io::{BufRead, BufReader, Read, Write};

use crate::graph::{Graph, GraphError};

fn parse_line(line: &str) -> Option<(usize, usize)> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('%') || trimmed.starts_with('#') {
        return None;
    }
    let mut it = trimmed.split_whitespace();
    let u = it.next()?.parse().ok()?;
    let v = it.next()?.parse().ok()?;
    Some((u, v))
}

/// Read a unipartite edge list. `one_based` subtracts 1 from every index.
/// The vertex count is `max index + 1` unless `n` is given.
pub fn read_edge_list<R: Read>(
    reader: R,
    one_based: bool,
    n: Option<usize>,
) -> Result<Graph, GraphError> {
    let br = BufReader::new(reader);
    let mut edges = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in br.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Io(format!("line {}: {e}", lineno + 1)))?;
        if let Some((mut u, mut v)) = parse_line(&line) {
            if one_based {
                if u == 0 || v == 0 {
                    return Err(GraphError::Io(format!(
                        "line {}: zero index in 1-based file",
                        lineno + 1
                    )));
                }
                u -= 1;
                v -= 1;
            }
            max_v = max_v.max(u).max(v);
            edges.push((u, v));
        }
    }
    let n = n.unwrap_or(if edges.is_empty() { 0 } else { max_v + 1 });
    Graph::from_edges(n, &edges)
}

/// Read a KONECT-style bipartite edge list: left column indexes `U`,
/// right column indexes `W` independently. Produces a graph on
/// `|U| + |W|` vertices with `U` first. Returns the graph and `(|U|, |W|)`.
pub fn read_bipartite_edge_list<R: Read>(
    reader: R,
    one_based: bool,
) -> Result<(Graph, (usize, usize)), GraphError> {
    let br = BufReader::new(reader);
    let mut raw = Vec::new();
    let (mut max_u, mut max_w) = (0usize, 0usize);
    for (lineno, line) in br.lines().enumerate() {
        let line = line.map_err(|e| GraphError::Io(format!("line {}: {e}", lineno + 1)))?;
        if let Some((mut u, mut w)) = parse_line(&line) {
            if one_based {
                if u == 0 || w == 0 {
                    return Err(GraphError::Io(format!(
                        "line {}: zero index in 1-based file",
                        lineno + 1
                    )));
                }
                u -= 1;
                w -= 1;
            }
            max_u = max_u.max(u);
            max_w = max_w.max(w);
            raw.push((u, w));
        }
    }
    if raw.is_empty() {
        return Ok((Graph::from_edges(0, &[])?, (0, 0)));
    }
    let nu = max_u + 1;
    let nw = max_w + 1;
    let edges: Vec<(usize, usize)> = raw.into_iter().map(|(u, w)| (u, nu + w)).collect();
    let g = Graph::from_edges(nu + nw, &edges)?;
    Ok((g, (nu, nw)))
}

/// Write a 0-based edge list (one `u v` line per undirected edge).
pub fn write_edge_list<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    for (u, v) in g.edges() {
        writeln!(writer, "{u} {v}").map_err(|e| GraphError::Io(e.to_string()))?;
    }
    Ok(())
}

/// Read a MatrixMarket `coordinate` file as an undirected graph. Both
/// `general` and `symmetric` symmetry are accepted; values (if present)
/// are ignored — only the pattern matters for adjacency.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let br = BufReader::new(reader);
    let mut lines = br.lines();
    let header = lines
        .next()
        .ok_or_else(|| GraphError::Io("empty MatrixMarket file".into()))?
        .map_err(|e| GraphError::Io(e.to_string()))?;
    if !header.starts_with("%%MatrixMarket") {
        return Err(GraphError::Io("missing %%MatrixMarket header".into()));
    }
    let lower = header.to_ascii_lowercase();
    if !lower.contains("coordinate") {
        return Err(GraphError::Io("only coordinate format supported".into()));
    }
    let mut size_line = None;
    let mut body = Vec::new();
    for line in lines {
        let line = line.map_err(|e| GraphError::Io(e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        if size_line.is_none() {
            size_line = Some(t.to_string());
        } else {
            body.push(t.to_string());
        }
    }
    let size = size_line.ok_or_else(|| GraphError::Io("missing size line".into()))?;
    let mut it = size.split_whitespace();
    let nrows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| GraphError::Io("bad size line".into()))?;
    let ncols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| GraphError::Io("bad size line".into()))?;
    if nrows != ncols {
        return Err(GraphError::NotSquare { nrows, ncols });
    }
    let mut edges = Vec::with_capacity(body.len());
    for (i, line) in body.iter().enumerate() {
        let (u, v) = parse_line(line)
            .ok_or_else(|| GraphError::Io(format!("bad entry on body line {}", i + 1)))?;
        if u == 0 || v == 0 {
            return Err(GraphError::Io(format!(
                "body line {}: MatrixMarket is 1-based",
                i + 1
            )));
        }
        edges.push((u - 1, v - 1));
    }
    Graph::from_edges(nrows, &edges)
}

/// Write a graph as MatrixMarket `coordinate pattern symmetric`.
pub fn write_matrix_market<W: Write>(g: &Graph, mut writer: W) -> Result<(), GraphError> {
    let n = g.num_vertices();
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern symmetric")
        .map_err(|e| GraphError::Io(e.to_string()))?;
    writeln!(writer, "{n} {n} {}", g.num_edges()).map_err(|e| GraphError::Io(e.to_string()))?;
    for (u, v) in g.edges() {
        // symmetric MM stores the lower triangle: row >= col, 1-based.
        writeln!(writer, "{} {}", v + 1, u + 1).map_err(|e| GraphError::Io(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_round_trip() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], false, Some(4)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_one_based() {
        let data = "% KONECT header\n# another comment\n1 2\n2 3\n";
        let g = read_edge_list(data.as_bytes(), true, None).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn one_based_rejects_zero() {
        assert!(read_edge_list("0 1\n".as_bytes(), true, None).is_err());
    }

    #[test]
    fn bipartite_list_offsets_right_column() {
        // 2 left, 3 right vertices.
        let data = "1 1\n1 3\n2 2\n";
        let (g, (nu, nw)) = read_bipartite_edge_list(data.as_bytes(), true).unwrap();
        assert_eq!((nu, nw), (2, 3));
        assert_eq!(g.num_vertices(), 5);
        assert!(g.has_edge(0, 2)); // left 1 ↔ right 1
        assert!(g.has_edge(0, 4)); // left 1 ↔ right 3
        assert!(g.has_edge(1, 3)); // left 2 ↔ right 2
        assert!(crate::bipartite::is_bipartite(&g));
    }

    #[test]
    fn matrix_market_round_trip() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (2, 2)]).unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn matrix_market_rejects_garbage() {
        assert!(read_matrix_market("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(
            read_matrix_market("%%MatrixMarket matrix array real general\n".as_bytes()).is_err()
        );
        assert!(read_matrix_market(
            "%%MatrixMarket matrix coordinate pattern general\n2 3 0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn empty_bipartite_file() {
        let (g, (nu, nw)) = read_bipartite_edge_list("".as_bytes(), true).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!((nu, nw), (0, 0));
    }
}
