//! The core undirected [`Graph`] type.
//!
//! A `Graph` wraps a symmetric binary CSR adjacency matrix. Self loops are
//! permitted (the paper's Assump. 1(ii) adds all of them to one factor) but
//! tracked explicitly, because every ground-truth formula is sensitive to
//! the self-loop structure (§II-B).
//!
//! Edge conventions:
//! * `num_edges()` counts undirected edges — each `{i, j}` pair once, and
//!   each self loop once.
//! * `nnz()` counts stored adjacency entries — `2·|E_offdiag| + |loops|`.

use std::fmt;

use bikron_sparse::{Coo, Csr, Ix};

/// Errors for graph construction and accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint was `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: Ix,
        /// The graph order.
        n: Ix,
    },
    /// Adjacency matrix was not square.
    NotSquare {
        /// Supplied row count.
        nrows: Ix,
        /// Supplied column count.
        ncols: Ix,
    },
    /// Adjacency matrix was not symmetric.
    NotSymmetric,
    /// Parse or IO failure (see [`crate::io`]).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph of order {n}")
            }
            GraphError::NotSquare { nrows, ncols } => {
                write!(f, "adjacency matrix is {nrows}x{ncols}, not square")
            }
            GraphError::NotSymmetric => write!(f, "adjacency matrix is not symmetric"),
            GraphError::Io(msg) => write!(f, "graph io: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A simple undirected graph stored as a binary CSR adjacency matrix.
///
/// ```
/// use bikron_graph::Graph;
///
/// // A 4-cycle with one self loop.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 2)]).unwrap();
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 5);
/// assert_eq!(g.num_self_loops(), 1);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(3, 0));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Graph {
    adj: Csr<u64>,
    num_loops: usize,
}

impl Graph {
    /// Build from an undirected edge list; duplicates are collapsed.
    /// Each pair `(i, j)` adds both `(i, j)` and `(j, i)` entries; `(i, i)`
    /// adds one diagonal entry (a self loop).
    pub fn from_edges(n: Ix, edges: &[(Ix, Ix)]) -> Result<Self, GraphError> {
        let mut coo = Coo::with_capacity(n, n, edges.len() * 2);
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: u.max(v),
                    n,
                });
            }
            coo.push_symmetric(u, v, 1u64)
                .expect("bounds already checked");
        }
        // Duplicate edges collapse to 1 (binary adjacency).
        let adj = Csr::from_coo(coo, |_, _| 1, |v| v == 0);
        Ok(Self::from_adjacency_unchecked(adj))
    }

    /// Wrap an existing symmetric binary adjacency matrix.
    pub fn from_adjacency(adj: Csr<u64>) -> Result<Self, GraphError> {
        if adj.nrows() != adj.ncols() {
            return Err(GraphError::NotSquare {
                nrows: adj.nrows(),
                ncols: adj.ncols(),
            });
        }
        if !adj.is_pattern_symmetric() {
            return Err(GraphError::NotSymmetric);
        }
        // Normalise values to 1 (binary adjacency).
        let adj = adj.map(|_| 1u64);
        Ok(Self::from_adjacency_unchecked(adj))
    }

    fn from_adjacency_unchecked(adj: Csr<u64>) -> Self {
        let num_loops = (0..adj.nrows())
            .filter(|&i| adj.get(i, i).is_some())
            .count();
        Graph { adj, num_loops }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> Ix {
        self.adj.nrows()
    }

    /// Number of undirected edges (self loops counted once each).
    #[inline]
    pub fn num_edges(&self) -> usize {
        (self.adj.nnz() - self.num_loops) / 2 + self.num_loops
    }

    /// Number of stored adjacency entries (`2|E| − |loops|`).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.adj.nnz()
    }

    /// Number of self loops.
    #[inline]
    pub fn num_self_loops(&self) -> usize {
        self.num_loops
    }

    /// Whether the graph has no self loops (`D_A = O_A`, Def. 6).
    #[inline]
    pub fn has_no_self_loops(&self) -> bool {
        self.num_loops == 0
    }

    /// Whether every vertex has a self loop ("full self loops", Def. 6).
    #[inline]
    pub fn has_full_self_loops(&self) -> bool {
        self.num_loops == self.num_vertices()
    }

    /// Neighbours of `v` (sorted), including `v` itself if it has a loop.
    #[inline]
    pub fn neighbors(&self, v: Ix) -> &[Ix] {
        self.adj.row(v).0
    }

    /// Degree of `v`: stored adjacency entries in row `v`. A self loop
    /// contributes 1, matching the paper's `d_A = A·1` convention.
    #[inline]
    pub fn degree(&self, v: Ix) -> usize {
        self.adj.row_nnz(v)
    }

    /// Degree vector `d_A = A·1`.
    pub fn degrees(&self) -> Vec<u64> {
        (0..self.num_vertices())
            .map(|v| self.degree(v) as u64)
            .collect()
    }

    /// Maximum degree.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Adjacency test.
    #[inline]
    pub fn has_edge(&self, u: Ix, v: Ix) -> bool {
        self.adj.get(u, v).is_some()
    }

    /// Borrow the adjacency matrix.
    #[inline]
    pub fn adjacency(&self) -> &Csr<u64> {
        &self.adj
    }

    /// Iterate undirected edges once each as `(u, v)` with `u <= v`.
    pub fn edges(&self) -> impl Iterator<Item = (Ix, Ix)> + '_ {
        self.adj
            .iter()
            .filter(|&(r, c, _)| r <= c)
            .map(|(r, c, _)| (r, c))
    }

    /// A copy with all self loops added (`A + I_A`, used by Assump. 1(ii)).
    pub fn with_full_self_loops(&self) -> Graph {
        let n = self.num_vertices();
        let mut coo = Coo::with_capacity(n, n, self.nnz() + n);
        for (r, c, _) in self.adj.iter() {
            coo.push(r, c, 1u64).expect("in-range");
        }
        for i in 0..n {
            coo.push(i, i, 1u64).expect("in-range");
        }
        let adj = Csr::from_coo(coo, |_, _| 1, |v| v == 0);
        Self::from_adjacency_unchecked(adj)
    }

    /// A copy with all self loops removed (`A − I ∘ A`).
    pub fn without_self_loops(&self) -> Graph {
        let adj = bikron_sparse::select(&self.adj, bikron_sparse::Select::OffDiagonal);
        Self::from_adjacency_unchecked(adj)
    }

    /// The subgraph induced by `vertices` (must be strictly increasing),
    /// with vertices relabelled to `0..vertices.len()`.
    pub fn induced_subgraph(&self, vertices: &[Ix]) -> Result<Graph, GraphError> {
        let sub = bikron_sparse::extract_principal(&self.adj, vertices)
            .map_err(|e| GraphError::Io(e.to_string()))?;
        Ok(Self::from_adjacency_unchecked(sub))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_basics() {
        // Path 0-1-2 plus loop at 2.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 2)]).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.nnz(), 5);
        assert_eq!(g.num_self_loops(), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2); // neighbor 1 + self loop
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degrees(), vec![1, 1]);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn from_adjacency_checks() {
        let coo = Coo::from_triplets(2, 2, vec![(0usize, 1usize, 1u64)]).unwrap();
        let asym = Csr::from_coo(coo, |a, _| a, |v| v == 0);
        assert_eq!(
            Graph::from_adjacency(asym).unwrap_err(),
            GraphError::NotSymmetric
        );
        let coo = Coo::from_triplets(2, 3, vec![(0usize, 1usize, 1u64)]).unwrap();
        let rect = Csr::from_coo(coo, |a, _| a, |v| v == 0);
        assert!(matches!(
            Graph::from_adjacency(rect),
            Err(GraphError::NotSquare { .. })
        ));
    }

    #[test]
    fn self_loop_transforms() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert!(g.has_no_self_loops());
        let gl = g.with_full_self_loops();
        assert!(gl.has_full_self_loops());
        assert_eq!(gl.num_edges(), g.num_edges() + 3);
        assert_eq!(gl.degree(1), 3);
        let back = gl.without_self_loops();
        assert_eq!(back, g);
    }

    #[test]
    fn edges_iterator_yields_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3), (1, 1)]).unwrap();
        let mut e: Vec<_> = g.edges().collect();
        e.sort();
        assert_eq!(e, vec![(0, 1), (1, 1), (2, 3)]);
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        let g1 = Graph::from_edges(1, &[]).unwrap();
        assert!(g1.has_no_self_loops());
        assert!(!g1.has_full_self_loops());
    }

    #[test]
    fn induced_subgraph_relabels() {
        // Square 0-1-2-3 plus pendant 4; induce on {0, 1, 2, 3}.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (2, 4)]).unwrap();
        let s = g.induced_subgraph(&[0, 1, 2, 3]).unwrap();
        assert_eq!(s.num_vertices(), 4);
        assert_eq!(s.num_edges(), 4);
        assert!(s.has_edge(0, 3));
        // Induce on non-contiguous set {1, 3, 4}: only old edges inside.
        let t = g.induced_subgraph(&[1, 3, 4]).unwrap();
        assert_eq!(t.num_edges(), 0);
        let u = g.induced_subgraph(&[2, 3, 4]).unwrap();
        assert_eq!(u.num_edges(), 2); // (2,3) → (0,1); (2,4) → (0,2)
        assert!(u.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_rejects_unsorted() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(g.induced_subgraph(&[1, 0]).is_err());
    }

    #[test]
    fn degrees_match_adjacency_row_sums() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (3, 4), (4, 4)]).unwrap();
        let d = g.degrees();
        assert_eq!(d, vec![3, 1, 1, 2, 2]);
        assert_eq!(d.iter().sum::<u64>() as usize, g.nnz());
    }
}
