//! BFS-based distances, eccentricity and diameter.
//!
//! `hops_A(i, j)` from the paper's §III-A is [`bfs_distances`]; diameter
//! and eccentricity ground truths from prior Kronecker work carry over to
//! this paper's constructions and are exposed for benchmarking parity.

use std::collections::VecDeque;

use bikron_sparse::Ix;
use rayon::prelude::*;

use crate::graph::Graph;

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u64 = u64::MAX;

/// Hop distances from `source` to every vertex (`UNREACHABLE` where no
/// walk exists).
pub fn bfs_distances(g: &Graph, source: Ix) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![UNREACHABLE; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v];
        for &u in g.neighbors(v) {
            if dist[u] == UNREACHABLE {
                dist[u] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Hop distance between two vertices, if connected.
pub fn hops(g: &Graph, i: Ix, j: Ix) -> Option<u64> {
    let d = bfs_distances(g, i)[j];
    (d != UNREACHABLE).then_some(d)
}

/// Eccentricity of `v`: max finite distance from `v`. `None` when some
/// vertex is unreachable (disconnected graph).
pub fn eccentricity(g: &Graph, v: Ix) -> Option<u64> {
    let d = bfs_distances(g, v);
    let mut ecc = 0;
    for &x in &d {
        if x == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(x);
    }
    Some(ecc)
}

/// Exact diameter by all-pairs BFS (parallel over sources). `None` for
/// disconnected or empty graphs.
pub fn diameter(g: &Graph) -> Option<u64> {
    let n = g.num_vertices();
    if n == 0 {
        return None;
    }
    (0..n)
        .into_par_iter()
        .map(|v| eccentricity(g, v))
        .try_reduce(|| 0, |a, b| Some(a.max(b)))
}

/// Shortest **even** and **odd** walk lengths from `source` to every
/// vertex: BFS over the bipartite double cover `G × K₂`.
///
/// `(even[v], odd[v])` are the minimum lengths of walks of each parity
/// (`UNREACHABLE` when none exists — e.g. odd walks within a bipartite
/// component). Walks may repeat edges, so any length of matching parity
/// `≥` the returned value is realisable by pacing back and forth. This is
/// exactly the quantity Thm. 1's proof manipulates with odd-cycle detours.
pub fn parity_distances(g: &Graph, source: Ix) -> (Vec<u64>, Vec<u64>) {
    let n = g.num_vertices();
    // State (v, parity) — flattened as 2v + parity.
    let mut dist = vec![UNREACHABLE; 2 * n];
    let mut queue = VecDeque::new();
    dist[2 * source] = 0;
    queue.push_back(2 * source);
    while let Some(s) = queue.pop_front() {
        let (v, par) = (s / 2, s % 2);
        let d = dist[s];
        for &u in g.neighbors(v) {
            let t = 2 * u + (1 - par);
            if dist[t] == UNREACHABLE {
                dist[t] = d + 1;
                queue.push_back(t);
            }
        }
    }
    let even = (0..n).map(|v| dist[2 * v]).collect();
    let odd = (0..n).map(|v| dist[2 * v + 1]).collect();
    (even, odd)
}

/// The layered structure of a BFS from `source`: `layers[h]` holds the
/// vertices at distance exactly `h`, in increasing vertex order.
pub fn bfs_layers(g: &Graph, source: Ix) -> Vec<Vec<Ix>> {
    let dist = bfs_distances(g, source);
    let max = dist
        .iter()
        .filter(|&&d| d != UNREACHABLE)
        .max()
        .copied()
        .unwrap_or(0);
    let mut layers = vec![Vec::new(); (max + 1) as usize];
    for (v, &d) in dist.iter().enumerate() {
        if d != UNREACHABLE {
            layers[d as usize].push(v);
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn path_distances() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(hops(&g, 1, 4), Some(3));
    }

    #[test]
    fn disconnected_unreachable() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(hops(&g, 0, 2), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn path_diameter_and_eccentricity() {
        let g = path(6);
        assert_eq!(diameter(&g), Some(5));
        assert_eq!(eccentricity(&g, 0), Some(5));
        assert_eq!(eccentricity(&g, 2), Some(3));
    }

    #[test]
    fn cycle_diameter() {
        let n = 8;
        let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        edges.pop();
        edges.push((n - 1, 0));
        let g = Graph::from_edges(n, &edges).unwrap();
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn bfs_layers_structure() {
        let g = path(4);
        let layers = bfs_layers(&g, 1);
        assert_eq!(layers, vec![vec![1], vec![0, 2], vec![3]]);
    }

    #[test]
    fn parity_distances_on_odd_cycle() {
        // C5: from 0, vertex 1 has odd distance 1 and even distance 4
        // (around the other way).
        let n = 5;
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let (even, odd) = parity_distances(&g, 0);
        assert_eq!(odd[1], 1);
        assert_eq!(even[1], 4);
        assert_eq!(even[0], 0);
        assert_eq!(odd[0], 5); // around the cycle once
    }

    #[test]
    fn parity_distances_on_bipartite_graph() {
        // Bipartite: wrong-parity walks never exist.
        let g = path(4);
        let (even, odd) = parity_distances(&g, 0);
        assert_eq!(even, vec![0, UNREACHABLE, 2, UNREACHABLE]);
        assert_eq!(odd, vec![UNREACHABLE, 1, UNREACHABLE, 3]);
    }

    #[test]
    fn parity_distances_with_branches() {
        // Triangle with a tail: the tail vertex gets both parities.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        let (even, odd) = parity_distances(&g, 0);
        assert_eq!(odd[3], 3); // 0-1-2-3
        assert_eq!(even[3], 2); // 0-2-3? no: 0-2 is an edge → 0-2-3 length 2
    }

    #[test]
    fn self_loop_does_not_shorten_paths() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (1, 1)]).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2]);
    }
}
