//! Core decomposition and degeneracy ordering.
//!
//! §I cites `O(|E|·δ(G))` bounds for 4-cycle detection where `δ(G)` is the
//! degeneracy; the direct butterfly counters in `bikron-analytics` use the
//! degeneracy order to bound wedge work, so the decomposition lives here.

use bikron_sparse::Ix;

use crate::graph::Graph;

/// Result of the peeling process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` is the core number of `v`.
    pub core: Vec<u64>,
    /// Vertices in peel order (non-decreasing core number).
    pub order: Vec<Ix>,
    /// `rank[v]` is the position of `v` in `order`.
    pub rank: Vec<usize>,
    /// The degeneracy `δ(G) = max_v core[v]`.
    pub degeneracy: u64,
}

/// Matula–Beck bucket peeling: O(|V| + |E|). Self loops are ignored for
/// degree purposes (a loop never contributes to a k-core in the simple
/// graph sense).
pub fn core_decomposition(g: &Graph) -> CoreDecomposition {
    let n = g.num_vertices();
    let simple_degree = |v: Ix| -> usize { g.degree(v) - usize::from(g.has_edge(v, v)) };
    let mut deg: Vec<usize> = (0..n).map(simple_degree).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);

    // Bucket sort vertices by degree.
    let mut bin = vec![0usize; maxd + 2];
    for &d in &deg {
        bin[d] += 1;
    }
    let mut start = 0usize;
    for b in bin.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut vert = vec![0 as Ix; n];
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            pos[v] = cursor[deg[v]];
            vert[pos[v]] = v;
            cursor[deg[v]] += 1;
        }
    }

    let mut core = vec![0u64; n];
    let mut degeneracy = 0u64;
    for i in 0..n {
        let v = vert[i];
        degeneracy = degeneracy.max(deg[v] as u64);
        core[v] = degeneracy;
        for &u in g.neighbors(v) {
            if u == v {
                continue;
            }
            if deg[u] > deg[v] {
                // Move u one bucket down: swap with the first element of its bucket.
                let du = deg[u];
                let pu = pos[u];
                let pw = bin[du];
                let w = vert[pw];
                if u != w {
                    vert[pu] = w;
                    vert[pw] = u;
                    pos[w] = pu;
                    pos[u] = pw;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    let order = vert;
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v] = i;
    }
    CoreDecomposition {
        core,
        order,
        rank,
        degeneracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_1_degenerate() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
        assert!(d.core.iter().all(|&c| c <= 1));
    }

    #[test]
    fn clique_core_numbers() {
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 4);
        assert_eq!(d.core, vec![4; 5]);
    }

    #[test]
    fn clique_with_pendant() {
        // Triangle 0-1-2 plus pendant 3 attached to 0.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.core[3], 1);
        assert_eq!(d.core[0], 2);
        assert_eq!(d.degeneracy, 2);
        // Peel order starts with the pendant.
        assert_eq!(d.order[0], 3);
    }

    #[test]
    fn rank_inverts_order() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let d = core_decomposition(&g);
        for (i, &v) in d.order.iter().enumerate() {
            assert_eq!(d.rank[v], i);
        }
    }

    #[test]
    fn self_loops_ignored() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 0)]).unwrap();
        let d = core_decomposition(&g);
        assert_eq!(d.degeneracy, 1);
    }

    #[test]
    fn complete_bipartite_degeneracy() {
        // K_{2,3}: degeneracy is 2.
        let mut edges = Vec::new();
        for u in 0..2 {
            for w in 0..3 {
                edges.push((u, 2 + w));
            }
        }
        let g = Graph::from_edges(5, &edges).unwrap();
        assert_eq!(core_decomposition(&g).degeneracy, 2);
    }
}
