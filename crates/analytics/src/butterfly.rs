//! Exact 4-cycle ("butterfly"/"square") counting.
//!
//! All counters require a **simple graph without self loops** (the
//! paper's Defs. 8–9 assume the same) and count 4-cycles — closed walks of
//! length 4 visiting 4 distinct vertices — once each regardless of
//! chords, so they are correct on non-bipartite graphs too (needed for the
//! Assump. 1(i) factor `A`).
//!
//! Identities used:
//! * per vertex: `s_i = Σ_{v≠i} C(codeg(i,v), 2)` where `codeg(i,v)` is
//!   the number of common neighbours (every 4-cycle through `i` pairs `i`
//!   with exactly one diagonally-opposite vertex `v`);
//! * global: `Σ_i s_i = 4·(global count)`;
//! * per edge `(i,j)`: `◇_ij = Σ_{a∈N_i∖{j}} (|N_a ∩ N_j| − 1)` (the `−1`
//!   removes `b = i`, which always lies in the intersection).

use rayon::prelude::*;

use bikron_graph::Graph;
use bikron_sparse::Ix;

/// Per-edge butterfly counts keyed by the undirected edge `(u, v)`, `u <= v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeButterflies {
    /// `(u, v, count)` triples sorted by `(u, v)`.
    pub counts: Vec<(Ix, Ix, u64)>,
}

impl EdgeButterflies {
    /// Look up the count of edge `{u, v}`.
    pub fn get(&self, u: Ix, v: Ix) -> Option<u64> {
        let key = (u.min(v), u.max(v));
        self.counts
            .binary_search_by_key(&key, |&(a, b, _)| (a, b))
            .ok()
            .map(|i| self.counts[i].2)
    }

    /// Sum of all per-edge counts; equals `4 · global` since each 4-cycle
    /// has 4 edges.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&(_, _, c)| c).sum()
    }
}

fn assert_simple(g: &Graph) {
    assert!(
        g.has_no_self_loops(),
        "butterfly counting requires a graph without self loops"
    );
}

/// Per-vertex 4-cycle participation by wedge tally — the paper's "simple
/// algorithm" (§I): a depth-2 sweep from each vertex.
///
/// Cost `O(Σ_a d_a²)` time, `O(|V|)` working memory.
pub fn butterflies_per_vertex(g: &Graph) -> Vec<u64> {
    assert_simple(g);
    let obs = bikron_obs::global();
    let _phase = obs.phase("analytics.butterflies_per_vertex");
    let n = g.num_vertices();
    let mut counts = vec![0u64; n];
    let mut codeg = vec![0u64; n];
    let mut touched: Vec<Ix> = Vec::new();
    let mut wedges = 0u64;
    for (i, count) in counts.iter_mut().enumerate() {
        for &a in g.neighbors(i) {
            for &v in g.neighbors(a) {
                if v == i {
                    continue;
                }
                if codeg[v] == 0 {
                    touched.push(v);
                }
                codeg[v] += 1;
                wedges += 1;
            }
        }
        let mut s = 0u64;
        for &v in &touched {
            let w = codeg[v];
            s += w * (w - 1) / 2;
            codeg[v] = 0;
        }
        touched.clear();
        *count = s;
    }
    obs.counter("analytics.wedges_visited").add(wedges);
    obs.counter("analytics.wedges_closed")
        .add(counts.iter().sum::<u64>());
    record_vertex_butterfly_distribution(&counts);
    counts
}

/// Feed per-vertex butterfly counts into the
/// `analytics.vertex_butterflies` histogram — the distribution whose
/// p99/max tail is the paper's dense-structure signal (a few vertices
/// carry most of the 4-cycle mass in skewed Kronecker products).
fn record_vertex_butterfly_distribution(counts: &[u64]) {
    let hist = bikron_obs::global().histogram("analytics.vertex_butterflies");
    // Fold into a local histogram first: one pass of private increments,
    // then a single 65-bucket merge, so the shared atomics see O(1)
    // traffic regardless of |V|.
    let local = bikron_obs::Histogram::new();
    for &c in counts {
        local.record(c);
    }
    hist.merge_from(&local);
}

/// Rayon-parallel version of [`butterflies_per_vertex`]; deterministic.
pub fn butterflies_per_vertex_parallel(g: &Graph) -> Vec<u64> {
    assert_simple(g);
    let obs = bikron_obs::global();
    let _phase = obs.phase("analytics.butterflies_per_vertex");
    let wedge_counter = obs.counter("analytics.wedges_visited");
    let n = g.num_vertices();
    let counts: Vec<u64> = (0..n)
        .into_par_iter()
        .map_init(
            || (vec![0u64; n], Vec::<Ix>::new()),
            |(codeg, touched), i| {
                let mut wedges = 0u64;
                for &a in g.neighbors(i) {
                    for &v in g.neighbors(a) {
                        if v == i {
                            continue;
                        }
                        if codeg[v] == 0 {
                            touched.push(v);
                        }
                        codeg[v] += 1;
                        wedges += 1;
                    }
                }
                let mut s = 0u64;
                for &v in touched.iter() {
                    let w = codeg[v];
                    s += w * (w - 1) / 2;
                    codeg[v] = 0;
                }
                touched.clear();
                // One relaxed add per vertex, amortised over its d² sweep.
                wedge_counter.add(wedges);
                s
            },
        )
        .collect();
    obs.counter("analytics.wedges_closed")
        .add(counts.iter().sum::<u64>());
    record_vertex_butterfly_distribution(&counts);
    counts
}

/// Global 4-cycle count: `Σ_i s_i / 4`.
///
/// ```
/// use bikron_analytics::butterflies_global;
/// use bikron_graph::Graph;
///
/// // K_{2,3} has C(2,2)·C(3,2) = 3 butterflies.
/// let g = Graph::from_edges(5, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]).unwrap();
/// assert_eq!(butterflies_global(&g), 3);
/// ```
pub fn butterflies_global(g: &Graph) -> u64 {
    let obs = bikron_obs::global();
    let _phase = obs.phase("analytics.butterflies_global");
    obs.counter("analytics.butterfly_calls").inc();
    let per_vertex = if g.num_vertices() >= 2048 {
        butterflies_per_vertex_parallel(g)
    } else {
        butterflies_per_vertex(g)
    };
    let total: u64 = per_vertex.iter().sum();
    debug_assert_eq!(total % 4, 0, "per-vertex counts must sum to 4·global");
    total / 4
}

/// Sorted-slice intersection size.
#[inline]
fn intersection_size(a: &[Ix], b: &[Ix]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Exact per-edge butterfly counts.
///
/// For each undirected edge `{i, j}` (emitted with `i < j`), the count is
/// `Σ_{a∈N_i∖{j}} (|N_a ∩ N_j| − 1)`. Edges are processed in parallel.
pub fn butterflies_per_edge(g: &Graph) -> EdgeButterflies {
    assert_simple(g);
    let obs = bikron_obs::global();
    let _phase = obs.phase("analytics.butterflies_per_edge");
    let closed_counter = obs.counter("analytics.wedges_closed");
    let edges: Vec<(Ix, Ix)> = g.edges().collect();
    let counts: Vec<(Ix, Ix, u64)> = edges
        .into_par_iter()
        .map(|(i, j)| {
            let nj = g.neighbors(j);
            let mut total = 0u64;
            for &a in g.neighbors(i) {
                if a == j {
                    continue;
                }
                // i is always in N_a ∩ N_j (a ~ i and j ~ i), hence −1.
                total += intersection_size(g.neighbors(a), nj) - 1;
            }
            closed_counter.add(total);
            (i, j, total)
        })
        .collect();
    // `edges()` already yields (i, j) with i <= j in sorted order.
    EdgeButterflies { counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn c4_has_one_square() {
        let g = cycle(4);
        assert_eq!(butterflies_global(&g), 1);
        assert_eq!(butterflies_per_vertex(&g), vec![1, 1, 1, 1]);
        let e = butterflies_per_edge(&g);
        assert_eq!(e.get(0, 1), Some(1));
        assert_eq!(e.total(), 4);
    }

    #[test]
    fn c6_has_none() {
        assert_eq!(butterflies_global(&cycle(6)), 0);
    }

    #[test]
    fn k_mn_closed_form() {
        // K_{m,n}: C(m,2)·C(n,2) butterflies.
        for (m, n) in [(2, 2), (2, 3), (3, 3), (3, 4), (4, 5)] {
            let g = complete_bipartite(m, n);
            let c2 = |x: usize| (x * (x - 1) / 2) as u64;
            assert_eq!(
                butterflies_global(&g),
                c2(m) * c2(n),
                "K_{{{m},{n}}} mismatch"
            );
        }
    }

    #[test]
    fn k_mn_per_vertex_closed_form() {
        // In K_{m,n}, a left vertex u is in (m−1)·C(n,2) butterflies.
        let (m, n) = (3, 4);
        let g = complete_bipartite(m, n);
        let s = butterflies_per_vertex(&g);
        let c2 = |x: usize| (x * (x - 1) / 2) as u64;
        for &su in &s[..m] {
            assert_eq!(su, (m as u64 - 1) * c2(n));
        }
        for &sw in &s[m..] {
            assert_eq!(sw, (n as u64 - 1) * c2(m));
        }
    }

    #[test]
    fn k4_complete_graph() {
        // K4 has 3 four-cycles; each vertex is in all 3; each edge in 2? A
        // 4-cycle in K4 uses all 4 vertices and 4 of the 6 edges, so each
        // edge is in 3·4/6 = 2 cycles.
        let mut edges = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(4, &edges).unwrap();
        assert_eq!(butterflies_global(&g), 3);
        assert_eq!(butterflies_per_vertex(&g), vec![3, 3, 3, 3]);
        let e = butterflies_per_edge(&g);
        for &(_, _, c) in &e.counts {
            assert_eq!(c, 2);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = complete_bipartite(6, 7);
        assert_eq!(
            butterflies_per_vertex(&g),
            butterflies_per_vertex_parallel(&g)
        );
    }

    #[test]
    fn vertex_edge_global_consistency() {
        // Hypercube Q3: per-vertex sums = 4·global, per-edge sums = 4·global.
        let mut edges = Vec::new();
        for v in 0..8usize {
            for b in 0..3 {
                let u = v ^ (1 << b);
                if u > v {
                    edges.push((v, u));
                }
            }
        }
        let g = Graph::from_edges(8, &edges).unwrap();
        let global = butterflies_global(&g);
        assert_eq!(global, 6); // 2^{d-2}·C(d,2) = 2·3
        let sv: u64 = butterflies_per_vertex(&g).iter().sum();
        assert_eq!(sv, 4 * global);
        assert_eq!(butterflies_per_edge(&g).total(), 4 * global);
    }

    #[test]
    fn per_edge_relation_to_per_vertex() {
        // s_i = ½ Σ_{j∈N_i} ◇_ij (each cycle at i uses 2 incident edges).
        let g = complete_bipartite(3, 4);
        let s = butterflies_per_vertex(&g);
        let e = butterflies_per_edge(&g);
        for (i, &si) in s.iter().enumerate() {
            let sum: u64 = g.neighbors(i).iter().map(|&j| e.get(i, j).unwrap()).sum();
            assert_eq!(2 * si, sum);
        }
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loops_rejected() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 0)]).unwrap();
        butterflies_global(&g);
    }

    #[test]
    fn empty_and_tree() {
        let empty = Graph::from_edges(5, &[]).unwrap();
        assert_eq!(butterflies_global(&empty), 0);
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(butterflies_global(&star), 0);
        assert_eq!(butterflies_per_edge(&star).total(), 0);
    }
}
