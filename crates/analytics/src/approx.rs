//! Sampling estimators of the global 4-cycle count.
//!
//! §I motivates the generator partly as a validation tool for
//! *approximate* counters: an estimator's error can only be measured
//! against ground truth. Two standard estimators are provided.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use bikron_graph::Graph;
use bikron_sparse::Ix;

#[inline]
fn intersection_size(a: &[Ix], b: &[Ix]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Wedge-sampling estimator.
///
/// A *wedge* is a path `u–a–v` (`u < v`, centre `a`). For a uniformly
/// random wedge, the number of 4-cycles that contain it is
/// `codeg(u,v) − 1`, and each 4-cycle contains exactly 4 wedges, so
/// `E[codeg(u,v) − 1] · W / 4` is unbiased for the global count, where
/// `W = Σ_a C(d_a, 2)` is the total wedge count.
pub fn wedge_sampling_estimate(g: &Graph, samples: usize, seed: u64) -> f64 {
    assert!(g.has_no_self_loops());
    let n = g.num_vertices();
    // Cumulative wedge counts per centre for weighted centre sampling.
    let mut cum = Vec::with_capacity(n);
    let mut total_wedges = 0u64;
    for v in 0..n {
        let d = g.degree(v) as u64;
        total_wedges += d * d.saturating_sub(1) / 2;
        cum.push(total_wedges);
    }
    if total_wedges == 0 || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0f64;
    for _ in 0..samples {
        let x = rng.gen_range(0..total_wedges);
        let a = cum.partition_point(|&c| c <= x);
        let na = g.neighbors(a);
        // Uniform unordered neighbour pair.
        let d = na.len();
        let i = rng.gen_range(0..d);
        let mut j = rng.gen_range(0..d - 1);
        if j >= i {
            j += 1;
        }
        let (u, v) = (na[i], na[j]);
        let codeg = intersection_size(g.neighbors(u), g.neighbors(v));
        acc += (codeg - 1) as f64; // ≥1: `a` itself is a common neighbour
    }
    (acc / samples as f64) * (total_wedges as f64) / 4.0
}

/// Edge-sampling estimator: sample edges uniformly, compute the exact
/// per-edge count for each, scale by `|E| / 4`.
pub fn edge_sampling_estimate(g: &Graph, samples: usize, seed: u64) -> f64 {
    assert!(g.has_no_self_loops());
    let edges: Vec<(Ix, Ix)> = g.edges().collect();
    if edges.is_empty() || samples == 0 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut acc = 0f64;
    for _ in 0..samples {
        let (i, j) = edges[rng.gen_range(0..edges.len())];
        let nj = g.neighbors(j);
        let mut count = 0u64;
        for &a in g.neighbors(i) {
            if a == j {
                continue;
            }
            count += intersection_size(g.neighbors(a), nj) - 1;
        }
        acc += count as f64;
    }
    (acc / samples as f64) * (edges.len() as f64) / 4.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::butterflies_global;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn wedge_estimator_exact_on_regular_structure() {
        // On K_{n,n} every wedge has the same closure count (n − 1), so
        // the estimate is exact for any sample size.
        let g = complete_bipartite(4, 4);
        let truth = butterflies_global(&g) as f64;
        let est = wedge_sampling_estimate(&g, 32, 7);
        assert!(
            (est - truth).abs() < 1e-9,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn edge_estimator_exact_on_edge_transitive() {
        let g = complete_bipartite(3, 4);
        let truth = butterflies_global(&g) as f64;
        let est = edge_sampling_estimate(&g, 16, 3);
        assert!((est - truth).abs() < 1e-9);
    }

    #[test]
    fn estimators_converge_on_irregular_graph() {
        // Two overlapping bicliques — wedge closure varies across wedges.
        let mut edges = Vec::new();
        for u in 0..4 {
            for w in 0..3 {
                edges.push((u, 6 + w));
            }
        }
        for u in 3..6 {
            for w in 2..5 {
                edges.push((u, 6 + w));
            }
        }
        let g = Graph::from_edges(11, &edges).unwrap();
        let truth = butterflies_global(&g) as f64;
        let est_w = wedge_sampling_estimate(&g, 20_000, 11);
        let est_e = edge_sampling_estimate(&g, 20_000, 13);
        assert!(
            (est_w - truth).abs() / truth < 0.1,
            "wedge estimate {est_w} vs {truth}"
        );
        assert!(
            (est_e - truth).abs() / truth < 0.1,
            "edge estimate {est_e} vs {truth}"
        );
    }

    #[test]
    fn zero_on_empty_or_acyclic() {
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        // Wedges exist but never close.
        assert_eq!(wedge_sampling_estimate(&path, 100, 1), 0.0);
        let empty = Graph::from_edges(4, &[]).unwrap();
        assert_eq!(wedge_sampling_estimate(&empty, 100, 1), 0.0);
        assert_eq!(edge_sampling_estimate(&empty, 100, 1), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = complete_bipartite(4, 4);
        assert_eq!(
            wedge_sampling_estimate(&g, 50, 5),
            wedge_sampling_estimate(&g, 50, 5)
        );
    }
}
