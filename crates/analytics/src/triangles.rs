//! Triangle counting for the non-bipartite factors of Assump. 1(i).
//!
//! The paper's §III opening requires factor `A` to contain an odd cycle;
//! triangle statistics also connect this work to the prior Kronecker
//! ground-truth papers it extends (\[3\], \[12\]), whose formulas are about
//! `t_i = ½·diag(A³)_i`.

use rayon::prelude::*;

use bikron_graph::Graph;
use bikron_sparse::Ix;

#[inline]
fn intersection_size(a: &[Ix], b: &[Ix]) -> u64 {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Per-vertex triangle counts `t_i` (each triangle counted once per
/// corner). Requires no self loops.
pub fn triangles_per_vertex(g: &Graph) -> Vec<u64> {
    assert!(
        g.has_no_self_loops(),
        "triangle counting requires no self loops"
    );
    (0..g.num_vertices())
        .into_par_iter()
        .map(|i| {
            let ni = g.neighbors(i);
            // Each triangle (i, j, k) is found twice from i (via j and k).
            let twice: u64 = ni
                .iter()
                .map(|&j| intersection_size(ni, g.neighbors(j)))
                .sum();
            twice / 2
        })
        .collect()
}

/// Per-edge triangle counts `Δ_ij = |N_i ∩ N_j|` keyed `(u, v, count)`
/// with `u < v`.
pub fn triangles_per_edge(g: &Graph) -> Vec<(Ix, Ix, u64)> {
    assert!(
        g.has_no_self_loops(),
        "triangle counting requires no self loops"
    );
    let edges: Vec<(Ix, Ix)> = g.edges().collect();
    edges
        .into_par_iter()
        .map(|(u, v)| (u, v, intersection_size(g.neighbors(u), g.neighbors(v))))
        .collect()
}

/// Global triangle count: `Σ t_i / 3`.
pub fn triangles_global(g: &Graph) -> u64 {
    let total: u64 = triangles_per_vertex(g).iter().sum();
    debug_assert_eq!(total % 3, 0);
    total / 3
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn k3_and_k4() {
        assert_eq!(triangles_global(&complete(3)), 1);
        assert_eq!(triangles_global(&complete(4)), 4);
        assert_eq!(triangles_per_vertex(&complete(4)), vec![3, 3, 3, 3]);
    }

    #[test]
    fn bipartite_has_none() {
        let g = Graph::from_edges(4, &[(0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        assert_eq!(triangles_global(&g), 0);
    }

    #[test]
    fn per_edge_counts() {
        let g = complete(4);
        for &(_, _, c) in &triangles_per_edge(&g) {
            assert_eq!(c, 2); // every K4 edge is in 2 triangles
        }
    }

    #[test]
    fn triangle_with_pendant() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
        assert_eq!(triangles_per_vertex(&g), vec![1, 1, 1, 0]);
        assert_eq!(triangles_global(&g), 1);
    }
}
