//! Direct measurement of bipartite community statistics (Def. 11).
//!
//! Given a vertex subset `S = R ∪ T` of a bipartite graph (`R ⊂ U`,
//! `T ⊂ W`), compute the internal/external edge counts and densities the
//! paper defines. `bikron-core` predicts these for Kronecker products of
//! factor communities (Thm. 7); these functions measure them, so tests can
//! pin prediction against measurement.

use bikron_graph::{Bipartition, Graph};
use bikron_sparse::Ix;

/// Measured community statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct CommunityStats {
    /// `m_in(S)`: edges with both endpoints in `S`.
    pub m_in: u64,
    /// `m_out(S)`: edges with exactly one endpoint in `S`.
    pub m_out: u64,
    /// `|R| = |S ∩ U|`.
    pub r_len: usize,
    /// `|T| = |S ∩ W|`.
    pub t_len: usize,
    /// `ρ_in(S) = m_in / (|R|·|T|)`; `None` when a part is empty.
    pub rho_in: Option<f64>,
    /// `ρ_out(S) = m_out / (|R||W| + |U||T| − 2|R||T|)`; `None` when the
    /// denominator is 0.
    pub rho_out: Option<f64>,
}

/// Measure Def. 11 statistics for the subset `s` (vertex ids) of bipartite
/// graph `g` with bipartition `bip`.
///
/// Self loops are counted in neither `m_in` nor `m_out` for vertices of
/// `S`: the paper's Def. 11 formula `½·1ᵗA1` assumes a loop-free bipartite
/// `A` (the Assump. 1(ii) product has no loops because factor `B` has
/// none, so this matches the paper's setting).
pub fn community_stats(g: &Graph, bip: &Bipartition, s: &[Ix]) -> CommunityStats {
    let n = g.num_vertices();
    let mut in_s = vec![false; n];
    for &v in s {
        in_s[v] = true;
    }
    let (mut m_in, mut m_out) = (0u64, 0u64);
    for (u, v) in g.edges() {
        if u == v {
            continue;
        }
        match (in_s[u], in_s[v]) {
            (true, true) => m_in += 1,
            (true, false) | (false, true) => m_out += 1,
            _ => {}
        }
    }
    let r_len = s.iter().filter(|&&v| bip.side_of(v) == 0).count();
    let t_len = s.len() - r_len;
    let u_len = bip.u_len() as u64;
    let w_len = bip.w_len() as u64;
    let (r, t) = (r_len as u64, t_len as u64);
    let rho_in = (r * t > 0).then(|| m_in as f64 / (r * t) as f64);
    let denom = r * w_len + u_len * t - 2 * r * t;
    let rho_out = (denom > 0).then(|| m_out as f64 / denom as f64);
    CommunityStats {
        m_in,
        m_out,
        r_len,
        t_len,
        rho_in,
        rho_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_graph::bipartition;

    fn k23_plus_tail() -> (Graph, Bipartition) {
        // K_{2,3} on {0,1}×{2,3,4} plus tail 4-5.
        let g = Graph::from_edges(6, &[(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (4, 5)])
            .unwrap();
        let b = bipartition(&g).unwrap();
        (g, b)
    }

    #[test]
    fn full_biclique_community() {
        let (g, b) = k23_plus_tail();
        let s = [0, 1, 2, 3, 4];
        let st = community_stats(&g, &b, &s);
        assert_eq!(st.m_in, 6);
        assert_eq!(st.m_out, 1); // the tail edge
        assert_eq!((st.r_len, st.t_len), (2, 3));
        assert_eq!(st.rho_in, Some(1.0));
    }

    #[test]
    fn partial_community() {
        let (g, b) = k23_plus_tail();
        let s = [0, 2, 3];
        let st = community_stats(&g, &b, &s);
        assert_eq!(st.m_in, 2); // (0,2), (0,3)
        assert_eq!(st.m_out, 3); // (0,4), (1,2), (1,3)
        assert_eq!(st.rho_in, Some(1.0)); // 2 / (1·2)
    }

    #[test]
    fn one_sided_subset_has_no_internal_density() {
        let (g, b) = k23_plus_tail();
        let s = [0, 1]; // both in U
        let st = community_stats(&g, &b, &s);
        assert_eq!(st.m_in, 0);
        assert_eq!(st.rho_in, None);
        assert_eq!(st.m_out, 6);
    }

    #[test]
    fn empty_subset() {
        let (g, b) = k23_plus_tail();
        let st = community_stats(&g, &b, &[]);
        assert_eq!(st.m_in, 0);
        assert_eq!(st.m_out, 0);
        assert_eq!(st.rho_in, None);
    }

    #[test]
    fn whole_graph_has_no_external_edges() {
        let (g, b) = k23_plus_tail();
        let all: Vec<usize> = (0..6).collect();
        let st = community_stats(&g, &b, &all);
        assert_eq!(st.m_out, 0);
        assert_eq!(st.m_in, g.num_edges() as u64);
    }
}
