//! k-tip decomposition — the *vertex* peeling counterpart of the k-wing
//! decomposition (both from Sarıyüce–Pinar's bipartite peeling framework,
//! the paper's reference \[4\]).
//!
//! The k-tip of a bipartite graph is the maximal subgraph in which every
//! vertex of the peeled side participates in at least `k` butterflies
//! (within the subgraph). Peeling removes minimum-butterfly vertices of
//! one side; the tip number of a vertex is the largest `k` whose k-tip
//! contains it.
//!
//! When a vertex `u` is peeled, every butterfly `(u, v | a, b)` it forms
//! with another same-side vertex `v` disappears, decrementing `v`'s
//! count. Butterflies through `u` are enumerated by common-neighbour
//! counting restricted to the still-alive side.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bikron_graph::{Bipartition, Graph};
use bikron_sparse::Ix;

/// Result of tip peeling for one side of the bipartition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TipDecomposition {
    /// The peeled-side vertices, in input order.
    pub vertices: Vec<Ix>,
    /// `tip[i]` is the tip number of `vertices[i]`.
    pub tip: Vec<u64>,
    /// Maximum tip number.
    pub max_tip: u64,
}

impl TipDecomposition {
    /// Tip number of vertex `v` (must be on the peeled side).
    pub fn get(&self, v: Ix) -> Option<u64> {
        self.vertices.binary_search(&v).ok().map(|i| self.tip[i])
    }
}

/// Butterflies between same-side vertices `u` and each alive partner,
/// returned as `(partner, count)` with `count = C(codeg_alive, 2)`…
/// actually butterflies pairing `u` with `v` need `C(codeg(u,v), 2)`
/// where codeg counts *alive opposite-side* common neighbours.
fn partner_butterflies(
    g: &Graph,
    u: Ix,
    alive_same: &[bool],
    alive_opp: &[bool],
) -> Vec<(Ix, u64)> {
    use std::collections::BTreeMap;
    let mut codeg: BTreeMap<Ix, u64> = BTreeMap::new();
    for &w in g.neighbors(u) {
        if !alive_opp[w] {
            continue;
        }
        for &v in g.neighbors(w) {
            if v != u && alive_same[v] {
                *codeg.entry(v).or_insert(0) += 1;
            }
        }
    }
    codeg
        .into_iter()
        .map(|(v, c)| (v, c * c.saturating_sub(1) / 2))
        .collect()
}

/// Peel `side` (0 = U, 1 = W) of a bipartite graph. Opposite-side
/// vertices are never removed (standard tip semantics).
pub fn tip_decomposition(g: &Graph, bip: &Bipartition, side: u8) -> TipDecomposition {
    let obs = bikron_obs::global();
    let _phase = obs.phase("analytics.tip_decomposition");
    let n = g.num_vertices();
    let vertices: Vec<Ix> = (0..n).filter(|&v| bip.side_of(v) == side).collect();
    obs.counter("analytics.tip.vertices_peeled")
        .add(vertices.len() as u64);
    let mut alive_same = vec![false; n];
    let mut alive_opp = vec![false; n];
    for v in 0..n {
        if bip.side_of(v) == side {
            alive_same[v] = true;
        } else {
            alive_opp[v] = true;
        }
    }

    // Initial butterfly counts per peeled-side vertex.
    let mut count: Vec<u64> = vec![0; n];
    for &u in &vertices {
        count[u] = partner_butterflies(g, u, &alive_same, &alive_opp)
            .iter()
            .map(|&(_, c)| c)
            .sum();
    }

    let mut heap: BinaryHeap<Reverse<(u64, Ix)>> =
        vertices.iter().map(|&u| Reverse((count[u], u))).collect();
    let mut tip_of = vec![0u64; n];
    let mut k = 0u64;
    let mut removed = 0usize;
    while removed < vertices.len() {
        let Reverse((c, u)) = heap.pop().expect("heap covers alive vertices");
        if !alive_same[u] || c != count[u] {
            continue;
        }
        k = k.max(c);
        tip_of[u] = k;
        // Decrement partners *before* removing u so codeg still sees u's
        // wedges... order matters: compute partner losses with u alive.
        let partners = partner_butterflies(g, u, &alive_same, &alive_opp);
        alive_same[u] = false;
        removed += 1;
        for (v, lost) in partners {
            if alive_same[v] && lost > 0 {
                count[v] -= lost.min(count[v]);
                heap.push(Reverse((count[v], v)));
            }
        }
    }
    let tip: Vec<u64> = vertices.iter().map(|&u| tip_of[u]).collect();
    let max_tip = tip.iter().copied().max().unwrap_or(0);
    TipDecomposition {
        vertices,
        tip,
        max_tip,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_graph::bipartition;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn k_mn_uniform_tips() {
        // In K_{3,4} every left vertex is in (m−1)·C(n,2) = 2·6 = 12
        // butterflies; symmetry ⇒ uniform tip numbers equal to that.
        let g = complete_bipartite(3, 4);
        let b = bipartition(&g).unwrap();
        let t = tip_decomposition(&g, &b, 0);
        assert_eq!(t.vertices, vec![0, 1, 2]);
        assert_eq!(t.max_tip, 12);
        assert!(t.tip.iter().all(|&x| x == 12));
    }

    #[test]
    fn acyclic_all_zero() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let b = bipartition(&g).unwrap();
        let t = tip_decomposition(&g, &b, 0);
        assert_eq!(t.max_tip, 0);
    }

    #[test]
    fn weak_vertex_peels_first() {
        // K_{3,3} plus one extra left vertex attached to one right vertex:
        // the pendant left vertex has no butterflies → tip 0; biclique
        // vertices keep 2·C(3,2) = 6.
        let mut edges = Vec::new();
        for u in 0..3 {
            for w in 0..3 {
                edges.push((u, 4 + w));
            }
        }
        edges.push((3, 4));
        let g = Graph::from_edges(7, &edges).unwrap();
        let b = bipartition(&g).unwrap();
        let t = tip_decomposition(&g, &b, 0);
        assert_eq!(t.get(3), Some(0));
        assert_eq!(t.get(0), Some(6));
        assert_eq!(t.max_tip, 6);
    }

    #[test]
    fn peel_other_side() {
        let g = complete_bipartite(2, 5);
        let b = bipartition(&g).unwrap();
        // Right side: each right vertex pairs with 4 others × C(2,2)=1.
        let t = tip_decomposition(&g, &b, 1);
        assert_eq!(t.vertices.len(), 5);
        assert!(t.tip.iter().all(|&x| x == 4));
    }

    #[test]
    fn tip_bounded_by_initial_count() {
        let g = complete_bipartite(3, 3);
        let b = bipartition(&g).unwrap();
        let t = tip_decomposition(&g, &b, 0);
        let per_vertex = crate::butterfly::butterflies_per_vertex(&g);
        for (i, &v) in t.vertices.iter().enumerate() {
            assert!(t.tip[i] <= per_vertex[v]);
        }
    }
}
