//! Bipartite clustering-coefficient variants from the literature the
//! paper surveys (\[14\] Robins–Alexander, \[16\] Opsahl, \[27\] the
//! metamorphosis coefficient).
//!
//! * **Robins–Alexander**: `4·(#4-cycles) / (#paths of length 3)`. In a
//!   triangle-free graph `L₃ = Σ_{(i,j)∈E} (d_i−1)(d_j−1)`, so this
//!   coincides with the edge-averaged Def. 10 coefficient
//!   ([`crate::clustering::global_edge_clustering`]) — a fact the test
//!   below pins.
//! * **Opsahl**: fraction of length-3 paths ("4-paths" in his wording)
//!   that close into a 4-cycle, evaluated per ordered path; for the
//!   global coefficient this equals Robins–Alexander up to the same
//!   normalisation in triangle-free graphs, so we expose the L₃ census
//!   and the closure census separately.
//! * **Metamorphosis coefficient** (per vertex): the average of Def. 10
//!   edge coefficients over a vertex's incident edges.

use bikron_graph::Graph;

use crate::butterfly::{butterflies_global, butterflies_per_edge};

/// Number of paths of length 3 (3 edges, 4 distinct vertices) in a
/// triangle-free graph: `Σ_{(i,j)∈E} (d_i−1)(d_j−1)`.
///
/// Panics if the graph has triangles or self loops (the census formula
/// overcounts otherwise).
pub fn three_paths_triangle_free(g: &Graph) -> u128 {
    assert!(g.has_no_self_loops());
    debug_assert_eq!(
        crate::triangles::triangles_global(g),
        0,
        "three_paths census requires a triangle-free graph"
    );
    g.edges()
        .map(|(i, j)| {
            let di = g.degree(i) as u128;
            let dj = g.degree(j) as u128;
            (di - 1) * (dj - 1)
        })
        .sum()
}

/// The Robins–Alexander bipartite clustering coefficient:
/// `C₄ = 4·(#squares) / L₃`. `None` when the graph has no 3-paths.
pub fn robins_alexander(g: &Graph) -> Option<f64> {
    let l3 = three_paths_triangle_free(g);
    (l3 > 0).then(|| 4.0 * butterflies_global(g) as f64 / l3 as f64)
}

/// Per-vertex metamorphosis coefficient: mean of the Def. 10 edge
/// coefficients over edges incident to each vertex (`None` where no
/// incident edge has a defined coefficient).
pub fn metamorphosis_per_vertex(g: &Graph) -> Vec<Option<f64>> {
    let per_edge = butterflies_per_edge(g);
    let mut sums = vec![(0.0f64, 0usize); g.num_vertices()];
    for &(u, v, c) in &per_edge.counts {
        let du = g.degree(u) as u64;
        let dv = g.degree(v) as u64;
        let denom = (du - 1) * (dv - 1);
        if denom > 0 {
            let gamma = c as f64 / denom as f64;
            for x in [u, v] {
                sums[x].0 += gamma;
                sums[x].1 += 1;
            }
        }
    }
    sums.into_iter()
        .map(|(s, n)| (n > 0).then(|| s / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clustering::global_edge_clustering;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn robins_alexander_equals_global_edge_clustering() {
        // The documented equivalence, on an irregular bipartite graph.
        let g = Graph::from_edges(
            7,
            &[
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 3),
                (1, 4),
                (2, 5),
                (2, 6),
                (1, 6),
            ],
        )
        .unwrap();
        let ra = robins_alexander(&g).unwrap();
        let gec = global_edge_clustering(&g).unwrap();
        assert!((ra - gec).abs() < 1e-12, "{ra} vs {gec}");
    }

    #[test]
    fn complete_bipartite_is_one() {
        let g = complete_bipartite(3, 4);
        assert!((robins_alexander(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_has_zero_coefficient() {
        // A double star has 3-paths but no squares.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5)]).unwrap();
        assert_eq!(robins_alexander(&g), Some(0.0));
        // A single star has no 3-paths at all.
        let s = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(robins_alexander(&s), None);
    }

    #[test]
    fn three_path_census_c6() {
        // C6: every edge has (2−1)(2−1) = 1 → 6 three-paths.
        let edges: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        let g = Graph::from_edges(6, &edges).unwrap();
        assert_eq!(three_paths_triangle_free(&g), 6);
    }

    #[test]
    fn metamorphosis_values() {
        let g = complete_bipartite(2, 3);
        let m = metamorphosis_per_vertex(&g);
        // Every edge coefficient is 1 → every vertex mean is 1.
        assert!(m.iter().all(|x| x == &Some(1.0)));
        // A path's interior edges have undefined coefficients.
        let p = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mp = metamorphosis_per_vertex(&p);
        assert!(mp.iter().all(Option::is_none));
    }
}
