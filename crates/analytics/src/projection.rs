//! One-mode (unipartite) projection of a bipartite graph.
//!
//! Projecting onto side `U` connects `u, v ∈ U` when they share a
//! neighbour, weighting the edge by the co-neighbour count
//! `w(u,v) = |N(u) ∩ N(v)|`. Projections are the standard first step of
//! much bipartite analysis the paper's intro surveys (interlocking
//! directors, term–document similarity), and they tie directly back to
//! butterflies:
//!
//! `Σ_{u<v ∈ U} C(w(u,v), 2) = global butterfly count`
//!
//! (each butterfly is one co-neighbour *pair* for exactly one `U`-side
//! vertex pair) — an identity the tests pin, giving yet another
//! independent counting path.

use std::collections::BTreeMap;

use bikron_graph::{Bipartition, Graph};
use bikron_sparse::Ix;

/// A weighted projection: vertices are the chosen side's vertices
/// (original ids), edges carry co-neighbour multiplicities.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Projection {
    /// Vertices of the projected side, ascending (original graph ids).
    pub vertices: Vec<Ix>,
    /// Weighted edges `(u, v, w)` with `u < v`, sorted; `w ≥ 1`.
    pub edges: Vec<(Ix, Ix, u64)>,
}

impl Projection {
    /// Co-neighbour weight of `{u, v}`, 0 when they share nothing.
    pub fn weight(&self, u: Ix, v: Ix) -> u64 {
        let key = (u.min(v), u.max(v));
        self.edges
            .binary_search_by_key(&key, |&(a, b, _)| (a, b))
            .map(|i| self.edges[i].2)
            .unwrap_or(0)
    }

    /// `Σ C(w, 2)` over the projection's edges — equals the bipartite
    /// graph's global butterfly count.
    pub fn butterfly_mass(&self) -> u64 {
        self.edges.iter().map(|&(_, _, w)| w * (w - 1) / 2).sum()
    }
}

/// Project onto side `side` (0 = U, 1 = W) of a bipartite graph.
/// Requires no self loops; cost `O(Σ_{m ∈ other side} d_m²)`.
pub fn project(g: &Graph, bip: &Bipartition, side: u8) -> Projection {
    assert!(g.has_no_self_loops(), "projection requires no self loops");
    let vertices: Vec<Ix> = (0..g.num_vertices())
        .filter(|&v| bip.side_of(v) == side)
        .collect();
    // Accumulate co-neighbour counts by enumerating wedges centred on the
    // opposite side.
    let mut weights: BTreeMap<(Ix, Ix), u64> = BTreeMap::new();
    for m in 0..g.num_vertices() {
        if bip.side_of(m) == side {
            continue;
        }
        let nbrs = g.neighbors(m);
        for (x, &u) in nbrs.iter().enumerate() {
            for &v in &nbrs[x + 1..] {
                *weights.entry((u, v)).or_insert(0) += 1;
            }
        }
    }
    let edges: Vec<(Ix, Ix, u64)> = weights.into_iter().map(|((u, v), w)| (u, v, w)).collect();
    Projection { vertices, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::butterflies_global;
    use bikron_graph::bipartition;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn projection_of_biclique_is_weighted_clique() {
        let g = complete_bipartite(3, 4);
        let b = bipartition(&g).unwrap();
        let p = project(&g, &b, 0);
        assert_eq!(p.vertices, vec![0, 1, 2]);
        assert_eq!(p.edges.len(), 3); // C(3,2) pairs
        for &(_, _, w) in &p.edges {
            assert_eq!(w, 4); // all 4 right vertices shared
        }
        assert_eq!(p.weight(0, 2), 4);
        assert_eq!(p.weight(0, 0), 0);
    }

    #[test]
    fn butterfly_identity() {
        // Σ C(w,2) over either side's projection = butterflies.
        for g in [
            complete_bipartite(3, 4),
            Graph::from_edges(
                8,
                &[
                    (0, 4),
                    (0, 5),
                    (1, 4),
                    (1, 5),
                    (2, 6),
                    (3, 6),
                    (2, 7),
                    (3, 7),
                    (1, 6),
                ],
            )
            .unwrap(),
        ] {
            let b = bipartition(&g).unwrap();
            let truth = butterflies_global(&g);
            assert_eq!(project(&g, &b, 0).butterfly_mass(), truth);
            assert_eq!(project(&g, &b, 1).butterfly_mass(), truth);
        }
    }

    #[test]
    fn star_projects_to_clique_of_weight_one() {
        // Star centred at 0 (side U holds the leaves' opposite): project
        // onto the leaf side: all leaf pairs share the centre once.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let b = bipartition(&g).unwrap();
        let leaves_side = b.side_of(1);
        let p = project(&g, &b, leaves_side);
        assert_eq!(p.edges.len(), 3);
        assert!(p.edges.iter().all(|&(_, _, w)| w == 1));
        assert_eq!(p.butterfly_mass(), 0);
    }

    #[test]
    fn disconnected_sides_stay_unconnected() {
        let g = Graph::from_edges(6, &[(0, 3), (1, 3), (2, 4)]).unwrap();
        let b = bipartition(&g).unwrap();
        let p = project(&g, &b, 0);
        assert_eq!(p.weight(0, 1), 1);
        assert_eq!(p.weight(0, 2), 0);
        assert_eq!(p.weight(1, 2), 0);
    }
}
