//! Exact 4-cycle **enumeration** — listing, not just counting.
//!
//! The paper's future work targets "massive-scale bipartite graph pattern
//! matching algorithms that include 4-cycle counting"; a pattern matcher
//! must produce the matches themselves. This module enumerates each
//! 4-cycle exactly once in a canonical form, with a visitor API so
//! callers can stream matches without buffering, plus a capped collector
//! for tests and samples.
//!
//! Canonical form: a 4-cycle on vertices `{x₀, x₁, x₂, x₃}` traversed as
//! `x₀ – x₁ – x₂ – x₃ – x₀` is reported with `x₀ = min` and `x₁ < x₃`
//! (the two neighbours of `x₀` on the cycle ordered), which picks exactly
//! one of the 8 symmetries.

use bikron_graph::Graph;
use bikron_sparse::Ix;

/// A canonical 4-cycle `a – b – c – d – a` with `a = min(a,b,c,d)` and
/// `b < d`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FourCycle {
    /// Smallest vertex on the cycle.
    pub a: Ix,
    /// Neighbour of `a` (smaller of the two).
    pub b: Ix,
    /// Vertex opposite `a`.
    pub c: Ix,
    /// Neighbour of `a` (larger of the two).
    pub d: Ix,
}

impl FourCycle {
    /// Verify the cycle exists in `g` and is canonical.
    pub fn validate(&self, g: &Graph) -> bool {
        let vs = [self.a, self.b, self.c, self.d];
        let distinct = {
            let mut s = vs;
            s.sort_unstable();
            s.windows(2).all(|w| w[0] != w[1])
        };
        distinct
            && self.a < self.b
            && self.a < self.c
            && self.a < self.d
            && self.b < self.d
            && g.has_edge(self.a, self.b)
            && g.has_edge(self.b, self.c)
            && g.has_edge(self.c, self.d)
            && g.has_edge(self.d, self.a)
    }
}

/// Visit every 4-cycle exactly once. Returns the number visited. The
/// visitor may return `false` to stop early.
pub fn for_each_four_cycle(g: &Graph, mut visit: impl FnMut(FourCycle) -> bool) -> u64 {
    assert!(g.has_no_self_loops(), "enumeration requires no self loops");
    let n = g.num_vertices();
    let mut count = 0u64;
    // For the canonical anchor a (cycle minimum), pair each two-hop
    // target c (c > a) with wedge middles b, d > a; choose b < d.
    let mut middles: Vec<Ix> = Vec::new();
    for a in 0..n {
        // Group wedges a–m–c by target c, keeping only m > a, c > a.
        use std::collections::BTreeMap;
        let mut by_target: BTreeMap<Ix, Vec<Ix>> = BTreeMap::new();
        for &m in g.neighbors(a) {
            if m <= a {
                continue;
            }
            for &c in g.neighbors(m) {
                if c > a && c != m {
                    by_target.entry(c).or_default().push(m);
                }
            }
        }
        for (c, ms) in by_target {
            middles.clear();
            middles.extend(ms);
            middles.sort_unstable();
            for i in 0..middles.len() {
                for j in (i + 1)..middles.len() {
                    let (b, d) = (middles[i], middles[j]);
                    count += 1;
                    if !visit(FourCycle { a, b, c, d }) {
                        return count;
                    }
                }
            }
        }
    }
    count
}

/// Collect up to `cap` canonical 4-cycles (and the true total count).
pub fn enumerate_four_cycles(g: &Graph, cap: usize) -> (Vec<FourCycle>, u64) {
    let mut out = Vec::new();
    let total = for_each_four_cycle(g, |fc| {
        if out.len() < cap {
            out.push(fc);
        }
        true
    });
    (out, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::butterfly::butterflies_global;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn c4_single_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let (cycles, total) = enumerate_four_cycles(&g, 10);
        assert_eq!(total, 1);
        assert_eq!(
            cycles,
            vec![FourCycle {
                a: 0,
                b: 1,
                c: 2,
                d: 3
            }]
        );
        assert!(cycles[0].validate(&g));
    }

    #[test]
    fn enumeration_count_matches_counting() {
        for g in [
            complete_bipartite(3, 4),
            complete_bipartite(4, 4),
            Graph::from_edges(
                8,
                &[
                    (0, 4),
                    (0, 5),
                    (1, 4),
                    (1, 5),
                    (2, 6),
                    (3, 6),
                    (2, 7),
                    (3, 7),
                ],
            )
            .unwrap(),
        ] {
            let (cycles, total) = enumerate_four_cycles(&g, usize::MAX);
            assert_eq!(total, butterflies_global(&g));
            assert_eq!(cycles.len() as u64, total);
            // All canonical, valid, and distinct.
            for fc in &cycles {
                assert!(fc.validate(&g), "{fc:?}");
            }
            let mut sorted = cycles.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), cycles.len());
        }
    }

    #[test]
    fn enumeration_on_non_bipartite_graph() {
        // K4: 3 distinct 4-cycles despite the chords.
        let mut edges = Vec::new();
        for i in 0..4 {
            for j in (i + 1)..4 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(4, &edges).unwrap();
        let (cycles, total) = enumerate_four_cycles(&g, 10);
        assert_eq!(total, 3);
        for fc in &cycles {
            assert!(fc.validate(&g));
        }
    }

    #[test]
    fn early_stop() {
        let g = complete_bipartite(4, 4);
        let mut seen = 0;
        let visited = for_each_four_cycle(&g, |_| {
            seen += 1;
            seen < 5
        });
        assert_eq!(visited, 5);
    }

    #[test]
    fn cap_limits_collection_not_count() {
        let g = complete_bipartite(4, 4);
        let (cycles, total) = enumerate_four_cycles(&g, 3);
        assert_eq!(cycles.len(), 3);
        assert_eq!(total, 36); // C(4,2)² = 36
    }

    #[test]
    fn acyclic_yields_nothing() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        let (cycles, total) = enumerate_four_cycles(&g, 10);
        assert!(cycles.is_empty());
        assert_eq!(total, 0);
    }
}
