//! Deliberately faulty butterfly counters.
//!
//! The generator's stated purpose (§I) is validation: "if an
//! implementation of a complex graph statistic has a minor error (say a
//! global count of 4-cycles is off by 1), it is difficult to know, without
//! a competing implementation". These counters reproduce realistic bug
//! classes; tests and the `validate_analytics` example assert that
//! ground-truth comparison *detects* each of them.

use bikron_graph::Graph;

use crate::butterfly::butterflies_global;

/// Bug class: off-by-one in the final division/adjustment — a classic
/// wedge-accounting slip. Returns `truth + 1` whenever the graph has any
/// butterfly (an error that no internal consistency check would flag).
pub fn off_by_one_global(g: &Graph) -> u64 {
    let t = butterflies_global(g);
    if t > 0 {
        t + 1
    } else {
        0
    }
}

/// Bug class: forgetting to exclude the wedge centre when counting
/// closures — every wedge looks closed once too often, inflating the
/// count by (number of wedges)/4-ish. Implemented faithfully: counts
/// `codeg(u,v)` instead of `codeg(u,v) − 1` per wedge.
pub fn center_not_excluded_global(g: &Graph) -> u64 {
    assert!(g.has_no_self_loops());
    let n = g.num_vertices();
    let mut codeg = vec![0u64; n];
    let mut touched = Vec::new();
    let mut total = 0u64;
    for i in 0..n {
        for &a in g.neighbors(i) {
            for &v in g.neighbors(a) {
                if v == i {
                    continue;
                }
                if codeg[v] == 0 {
                    touched.push(v);
                }
                codeg[v] += 1;
            }
        }
        for &v in &touched {
            let w = codeg[v];
            // BUG: should be C(w, 2) = w(w−1)/2; uses w²/2 rounded down.
            total += w * w / 2;
            codeg[v] = 0;
        }
        touched.clear();
    }
    total / 4
}

/// Bug class: 32-bit intermediate overflow. Counts correctly but
/// accumulates wedge pair counts in a `u32`, silently wrapping on graphs
/// whose counts exceed `u32::MAX` — invisible at small test scale, wrong
/// at benchmark scale (exactly the failure mode that motivated
/// trillion-edge validation runs).
pub fn overflowing_global(g: &Graph) -> u64 {
    assert!(g.has_no_self_loops());
    let n = g.num_vertices();
    let mut codeg = vec![0u32; n];
    let mut touched = Vec::new();
    let mut total: u32 = 0;
    for i in 0..n {
        for &a in g.neighbors(i) {
            for &v in g.neighbors(a) {
                if v == i {
                    continue;
                }
                if codeg[v] == 0 {
                    touched.push(v);
                }
                codeg[v] += 1;
            }
        }
        for &v in &touched {
            let w = codeg[v];
            total = total.wrapping_add(w * (w.wrapping_sub(1)) / 2);
            codeg[v] = 0;
        }
        touched.clear();
    }
    (total / 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn off_by_one_detected_by_ground_truth() {
        let g = complete_bipartite(3, 3);
        let truth = butterflies_global(&g);
        assert_ne!(off_by_one_global(&g), truth);
    }

    #[test]
    fn off_by_one_hides_on_butterfly_free_graphs() {
        // The bug is invisible without butterflies — which is why factors
        // with *known nonzero* counts matter for validation.
        let path = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(off_by_one_global(&path), butterflies_global(&path));
    }

    #[test]
    fn center_bug_inflates() {
        let g = complete_bipartite(3, 4);
        assert!(center_not_excluded_global(&g) > butterflies_global(&g));
    }

    #[test]
    fn overflow_bug_matches_at_small_scale() {
        // At small scale the overflow bug is indistinguishable from correct —
        // the motivating hazard.
        let g = complete_bipartite(4, 4);
        assert_eq!(overflowing_global(&g), butterflies_global(&g));
    }
}
