//! k-wing (bitruss) decomposition by butterfly-support peeling.
//!
//! The *k-wing* of a bipartite graph (Sarıyüce–Pinar's wing decomposition,
//! a.k.a. Zou's bitruss) is the maximal subgraph in which every edge
//! participates in at least `k` butterflies *within the subgraph*. The
//! wing number of an edge is the largest `k` whose k-wing contains it.
//!
//! The paper's Rem. 1 observes that engineering ground-truth wing
//! decompositions out of Kronecker products is hard because products
//! essentially always contain butterflies; this module provides the
//! direct decomposition so the examples can demonstrate exactly that.
//!
//! Algorithm: standard support peeling. Compute per-edge butterfly
//! supports, repeatedly remove a minimum-support edge, and for every
//! butterfly through it decrement the supports of the other three edges.
//! A lazy binary heap handles the decrease-key.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bikron_graph::Graph;
use bikron_sparse::Ix;

use crate::butterfly::butterflies_per_edge;

/// Result of the peeling: wing numbers aligned with `edges`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WingDecomposition {
    /// Undirected edges `(u, v)` with `u < v`, sorted.
    pub edges: Vec<(Ix, Ix)>,
    /// `wing[e]` is the wing number of `edges[e]`.
    pub wing: Vec<u64>,
    /// The maximum wing number present.
    pub max_wing: u64,
}

impl WingDecomposition {
    /// Wing number of edge `{u, v}`.
    pub fn get(&self, u: Ix, v: Ix) -> Option<u64> {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).ok().map(|i| self.wing[i])
    }
}

/// Compute the wing (bitruss) decomposition. Requires no self loops.
pub fn wing_decomposition(g: &Graph) -> WingDecomposition {
    let obs = bikron_obs::global();
    let _phase = obs.phase("analytics.wing_decomposition");
    let per_edge = butterflies_per_edge(g);
    let edges: Vec<(Ix, Ix)> = per_edge.counts.iter().map(|&(u, v, _)| (u, v)).collect();
    let mut support: Vec<u64> = per_edge.counts.iter().map(|&(_, _, c)| c).collect();
    let m = edges.len();
    obs.counter("analytics.wing.edges_peeled").add(m as u64);
    let mut support_updates = 0u64;

    let edge_id = |u: Ix, v: Ix| -> Option<usize> {
        let key = (u.min(v), u.max(v));
        edges.binary_search(&key).ok()
    };

    let mut alive = vec![true; m];
    let mut wing = vec![0u64; m];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..m).map(|e| Reverse((support[e], e))).collect();

    let mut k = 0u64;
    let mut removed = 0usize;
    while removed < m {
        let Reverse((s, e)) = heap.pop().expect("heap tracks all alive edges");
        if !alive[e] || s != support[e] {
            continue; // stale entry
        }
        alive[e] = false;
        removed += 1;
        k = k.max(s);
        wing[e] = k;

        // Enumerate butterflies through e = (u, w) among alive edges:
        // partners w' ∈ N_u, u' ∈ N_w with alive (u,w'), (u',w), (u',w').
        let (u, w) = edges[e];
        for &wp in g.neighbors(u) {
            if wp == w {
                continue;
            }
            let Some(e_uwp) = edge_id(u, wp) else {
                continue;
            };
            if !alive[e_uwp] {
                continue;
            }
            for &up in g.neighbors(w) {
                if up == u || up == wp {
                    continue;
                }
                let Some(e_upw) = edge_id(up, w) else {
                    continue;
                };
                if !alive[e_upw] {
                    continue;
                }
                let Some(e_upwp) = edge_id(up, wp) else {
                    continue;
                };
                if !alive[e_upwp] {
                    continue;
                }
                // Butterfly {e, (u,wp), (up,w), (up,wp)}: e is gone, so the
                // other three lose one unit of support each.
                for other in [e_uwp, e_upw, e_upwp] {
                    if support[other] > 0 {
                        support[other] -= 1;
                        support_updates += 1;
                        heap.push(Reverse((support[other], other)));
                    }
                }
            }
        }
    }
    obs.counter("analytics.wing.support_updates")
        .add(support_updates);
    let max_wing = wing.iter().copied().max().unwrap_or(0);
    WingDecomposition {
        edges,
        wing,
        max_wing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn acyclic_graph_all_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let d = wing_decomposition(&g);
        assert_eq!(d.max_wing, 0);
        assert!(d.wing.iter().all(|&w| w == 0));
    }

    #[test]
    fn single_square() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let d = wing_decomposition(&g);
        assert_eq!(d.max_wing, 1);
        assert!(d.wing.iter().all(|&w| w == 1));
    }

    #[test]
    fn k22_every_edge_wing_one() {
        let g = complete_bipartite(2, 2);
        let d = wing_decomposition(&g);
        assert_eq!(d.max_wing, 1);
    }

    #[test]
    fn k_mn_uniform_wing() {
        // In K_{m,n} every edge is in (m−1)(n−1) butterflies and the graph
        // is edge-transitive, so the wing number is uniform and equals the
        // initial support (peeling one edge can't isolate another first).
        let g = complete_bipartite(3, 3);
        let d = wing_decomposition(&g);
        assert_eq!(d.max_wing, 4);
        assert!(d.wing.iter().all(|&w| w == 4));
    }

    #[test]
    fn square_with_pendant_edge() {
        // C4 plus a pendant: pendant edge wing 0, square edges wing 1.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)]).unwrap();
        let d = wing_decomposition(&g);
        assert_eq!(d.get(0, 4), Some(0));
        assert_eq!(d.get(0, 1), Some(1));
        assert_eq!(d.get(2, 3), Some(1));
    }

    #[test]
    fn nested_density_layers() {
        // K_{3,3} plus a weak square hanging off one vertex: the weak
        // square peels at k=1, the biclique at k=4.
        let mut edges = Vec::new();
        for u in 0..3 {
            for w in 0..3 {
                edges.push((u, 3 + w));
            }
        }
        // Extra square: 0 - 6.. wait use fresh vertices 6,7,8: 0-6, 6-7(no..)
        // bipartite square 0,7 on one side and 6,8 on the other:
        edges.push((0, 6));
        edges.push((7, 6));
        edges.push((7, 8));
        edges.push((0, 8));
        let g = Graph::from_edges(9, &edges).unwrap();
        let d = wing_decomposition(&g);
        assert_eq!(d.get(0, 6), Some(1));
        assert_eq!(d.get(7, 8), Some(1));
        assert_eq!(d.get(0, 3), Some(4));
        assert_eq!(d.max_wing, 4);
    }

    #[test]
    fn wing_monotone_under_support() {
        // Wing number never exceeds the initial support.
        let g = complete_bipartite(3, 4);
        let per_edge = butterflies_per_edge(&g);
        let d = wing_decomposition(&g);
        for (i, &(u, v, s)) in per_edge.counts.iter().enumerate() {
            assert!(
                d.wing[i] <= s,
                "edge ({u},{v}) wing {} > support {s}",
                d.wing[i]
            );
        }
    }
}
