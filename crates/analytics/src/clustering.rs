//! Bipartite edge clustering coefficients, computed directly (Def. 10).
//!
//! `Γ(i,j) = ◇_ij / ((d_i − 1)(d_j − 1))` — the fraction of possible
//! butterflies through edge `(i,j)` that exist. The denominator is the
//! count of pairs `(a, b)` with `a ∈ N_i∖{j}`, `b ∈ N_j∖{i}`; in bipartite
//! graphs those sets are disjoint so every pair is a candidate.

use bikron_graph::Graph;
use bikron_sparse::Ix;

use crate::butterfly::butterflies_per_edge;

/// Per-edge clustering coefficients: `(u, v, Γ)` with `u < v`, sorted.
/// Edges with a degree-1 endpoint have no possible butterfly; their
/// coefficient is reported as `None`.
pub fn edge_clustering(g: &Graph) -> Vec<(Ix, Ix, Option<f64>)> {
    let per_edge = butterflies_per_edge(g);
    per_edge
        .counts
        .iter()
        .map(|&(u, v, c)| {
            let du = g.degree(u) as u64;
            let dv = g.degree(v) as u64;
            let denom = (du - 1) * (dv - 1);
            let gamma = (denom > 0).then(|| c as f64 / denom as f64);
            (u, v, gamma)
        })
        .collect()
}

/// The global "metamorphosis"-style coefficient: ratio of total butterfly
/// incidences to total possible, `Σ_e ◇_e / Σ_e (d_i−1)(d_j−1)`.
pub fn global_edge_clustering(g: &Graph) -> Option<f64> {
    let per_edge = butterflies_per_edge(g);
    let mut num = 0u128;
    let mut den = 0u128;
    for &(u, v, c) in &per_edge.counts {
        let du = g.degree(u) as u128;
        let dv = g.degree(v) as u128;
        num += c as u128;
        den += (du - 1) * (dv - 1);
    }
    (den > 0).then(|| num as f64 / den as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_bipartite(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for w in 0..n {
                edges.push((u, m + w));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn complete_bipartite_is_perfectly_clustered() {
        // Every candidate pair closes: Γ = 1 on all edges.
        let g = complete_bipartite(3, 4);
        for (_, _, gamma) in edge_clustering(&g) {
            assert_eq!(gamma, Some(1.0));
        }
        assert_eq!(global_edge_clustering(&g), Some(1.0));
    }

    #[test]
    fn square_edges_also_perfect() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for (_, _, gamma) in edge_clustering(&g) {
            assert_eq!(gamma, Some(1.0));
        }
    }

    #[test]
    fn tree_edges_undefined_or_zero() {
        let star = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        for (_, _, gamma) in edge_clustering(&star) {
            assert_eq!(gamma, None); // leaf endpoint ⇒ no candidates
        }
        assert_eq!(global_edge_clustering(&star), None);
    }

    #[test]
    fn partial_clustering() {
        // K_{2,3} minus one edge: coefficients drop below 1 on edges that
        // lost candidate closures.
        let edges = vec![(0, 2), (0, 3), (0, 4), (1, 2), (1, 3)];
        let g = Graph::from_edges(5, &edges).unwrap();
        let cc = edge_clustering(&g);
        // Edge (0,4): candidates (d0−1)(d4−1) = 2·0 = 0 → None.
        let e04 = cc.iter().find(|&&(u, v, _)| (u, v) == (0, 4)).unwrap();
        assert_eq!(e04.2, None);
        // Edge (0,2): ◇ = 2 (with 1-2-3... butterflies 0,2,1,3: yes; so
        // candidates (3−1)(2−1)=2, count: butterfly {0,1}×{2,3} = via (0,2):
        // pairs (a,b): a∈{3,4}, b∈{1}: (3,1) closes, (4,1) doesn't → ◇=1, Γ=1/2.
        let e02 = cc.iter().find(|&&(u, v, _)| (u, v) == (0, 2)).unwrap();
        assert_eq!(e02.2, Some(0.5));
        let g_all = global_edge_clustering(&g).unwrap();
        assert!(g_all > 0.0 && g_all < 1.0);
    }
}
