#![warn(missing_docs)]

//! # bikron-analytics
//!
//! Direct (combinatorial) implementations of the bipartite analytics the
//! paper's generator is designed to *validate*. Everything here is
//! independent of the Kronecker ground-truth formulas in `bikron-core` —
//! that independence is the point: agreement between the two paths is the
//! correctness evidence, and disagreement (see [`buggy`]) is what the
//! generator exists to catch.
//!
//! * [`butterfly`] — exact 4-cycle (butterfly) counting: global,
//!   per-vertex, and per-edge, with the paper's simple
//!   BFS-into-the-second-neighbourhood baseline and a rayon-parallel
//!   wedge-hash implementation.
//! * [`approx`] — sampling estimators (wedge sampling and edge sampling)
//!   of the global count.
//! * [`triangles`] — triangle counts for the non-bipartite factors of
//!   Assump. 1(i).
//! * [`wing`] — k-wing (bitruss) decomposition by support peeling
//!   (Sarıyüce–Pinar / Zou comparators from §I).
//! * [`clustering`] — the bipartite edge clustering coefficient Γ of
//!   Def. 10 computed directly.
//! * [`community`] — internal/external edge counts and densities of
//!   Def. 11 measured directly on a vertex subset.
//! * [`buggy`] — deliberately faulty counters for failure-injection tests
//!   and the validation example.

pub mod approx;
pub mod bipartite_cc;
pub mod buggy;
pub mod butterfly;
pub mod clustering;
pub mod community;
pub mod enumerate;
pub mod projection;
pub mod tip;
pub mod triangles;
pub mod wing;

pub use butterfly::{
    butterflies_global, butterflies_per_edge, butterflies_per_vertex,
    butterflies_per_vertex_parallel, EdgeButterflies,
};
pub use wing::wing_decomposition;
