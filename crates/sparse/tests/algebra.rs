//! Property tests for the Kronecker/Hadamard algebra identities the paper
//! relies on (Appendix A, Props. 1 and 2). Every ground-truth derivation in
//! the workspace rests on these, so they are tested against randomly
//! generated sparse matrices rather than hand-picked examples.

use bikron_sparse::semiring::Times;
use bikron_sparse::{
    apply, diag_matrix, diag_vector, ewise_add, ewise_mult, i64_plus_times, kron, reduce_scalar,
    spgemm, transpose, Coo, Csr,
};
use proptest::prelude::*;

/// Strategy: a random sparse i64 matrix of the given shape with small
/// values (so products of four matrices stay well inside i64).
fn sparse_matrix(nrows: usize, ncols: usize) -> impl Strategy<Value = Csr<i64>> {
    let max_nnz = (nrows * ncols).min(24);
    proptest::collection::vec((0..nrows, 0..ncols, -3i64..=3), 0..=max_nnz).prop_map(
        move |triplets| {
            let coo = Coo::from_triplets(nrows, ncols, triplets).unwrap();
            Csr::from_coo(coo, |a, b| a + b, |v| v == 0)
        },
    )
}

/// Dense equality modulo explicit zeros: compares materialised values, so
/// a stored zero equals an absent entry.
fn dense_eq(a: &Csr<i64>, b: &Csr<i64>) -> bool {
    a.nrows() == b.nrows() && a.ncols() == b.ncols() && a.to_dense() == b.to_dense()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Prop 1(a): (a1*a2)(A1 ⊗ A2) = (a1*A1) ⊗ (a2*A2)
    #[test]
    fn kron_scalar_multiplication(
        a in sparse_matrix(3, 4),
        b in sparse_matrix(2, 3),
        s1 in -3i64..=3,
        s2 in -3i64..=3,
    ) {
        let lhs = apply(&kron(&Times, &a, &b).unwrap(), |v| s1 * s2 * v, |&v| v == 0).unwrap();
        let sa = apply(&a, |v| s1 * v, |&v| v == 0).unwrap();
        let sb = apply(&b, |v| s2 * v, |&v| v == 0).unwrap();
        let rhs = kron(&Times, &sa, &sb).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 1(b): (A1 + A2) ⊗ A3 = (A1 ⊗ A3) + (A2 ⊗ A3)
    #[test]
    fn kron_left_distributivity(
        a1 in sparse_matrix(3, 3),
        a2 in sparse_matrix(3, 3),
        a3 in sparse_matrix(2, 4),
    ) {
        let sum = ewise_add(&a1, &a2, |x, y| x + y, |&v| v == 0).unwrap();
        let lhs = kron(&Times, &sum, &a3).unwrap();
        let k1 = kron(&Times, &a1, &a3).unwrap();
        let k2 = kron(&Times, &a2, &a3).unwrap();
        let rhs = ewise_add(&k1, &k2, |x, y| x + y, |&v| v == 0).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 1(b) second form: A1 ⊗ (A2 + A3)
    #[test]
    fn kron_right_distributivity(
        a1 in sparse_matrix(2, 3),
        a2 in sparse_matrix(3, 2),
        a3 in sparse_matrix(3, 2),
    ) {
        let sum = ewise_add(&a2, &a3, |x, y| x + y, |&v| v == 0).unwrap();
        let lhs = kron(&Times, &a1, &sum).unwrap();
        let k1 = kron(&Times, &a1, &a2).unwrap();
        let k2 = kron(&Times, &a1, &a3).unwrap();
        let rhs = ewise_add(&k1, &k2, |x, y| x + y, |&v| v == 0).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 1(c): (A1 ⊗ A2)ᵗ = A1ᵗ ⊗ A2ᵗ
    #[test]
    fn kron_transposition(a in sparse_matrix(3, 4), b in sparse_matrix(2, 5)) {
        let lhs = transpose(&kron(&Times, &a, &b).unwrap());
        let rhs = kron(&Times, &transpose(&a), &transpose(&b)).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 1(d): (A1 ⊗ A2)(A3 ⊗ A4) = (A1·A3) ⊗ (A2·A4)
    #[test]
    fn kron_mixed_product(
        a1 in sparse_matrix(2, 3),
        a2 in sparse_matrix(3, 2),
        a3 in sparse_matrix(3, 2),
        a4 in sparse_matrix(2, 3),
    ) {
        let s = i64_plus_times();
        let k12 = kron(&Times, &a1, &a2).unwrap();
        let k34 = kron(&Times, &a3, &a4).unwrap();
        let lhs = spgemm(&s, &k12, &k34).unwrap();
        let p13 = spgemm(&s, &a1, &a3).unwrap();
        let p24 = spgemm(&s, &a2, &a4).unwrap();
        let rhs = kron(&Times, &p13, &p24).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 2(a): A1 ∘ A2 = A2 ∘ A1
    #[test]
    fn hadamard_commutativity(a in sparse_matrix(4, 4), b in sparse_matrix(4, 4)) {
        let lhs = ewise_mult(&a, &b, |x, y| x * y, |&v| v == 0).unwrap();
        let rhs = ewise_mult(&b, &a, |x, y| x * y, |&v| v == 0).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 2(c): (A1 + A2) ∘ A3 = (A1 ∘ A3) + (A2 ∘ A3)
    #[test]
    fn hadamard_distributivity(
        a1 in sparse_matrix(3, 3),
        a2 in sparse_matrix(3, 3),
        a3 in sparse_matrix(3, 3),
    ) {
        let sum = ewise_add(&a1, &a2, |x, y| x + y, |&v| v == 0).unwrap();
        let lhs = ewise_mult(&sum, &a3, |x, y| x * y, |&v| v == 0).unwrap();
        let h1 = ewise_mult(&a1, &a3, |x, y| x * y, |&v| v == 0).unwrap();
        let h2 = ewise_mult(&a2, &a3, |x, y| x * y, |&v| v == 0).unwrap();
        let rhs = ewise_add(&h1, &h2, |x, y| x + y, |&v| v == 0).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 2(d): (A1 ∘ A2)ᵗ = A1ᵗ ∘ A2ᵗ
    #[test]
    fn hadamard_transposition(a in sparse_matrix(3, 5), b in sparse_matrix(3, 5)) {
        let lhs = transpose(&ewise_mult(&a, &b, |x, y| x * y, |&v| v == 0).unwrap());
        let rhs = ewise_mult(&transpose(&a), &transpose(&b), |x, y| x * y, |&v| v == 0).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 2(e): (A1 ⊗ A2) ∘ (A3 ⊗ A4) = (A1 ∘ A3) ⊗ (A2 ∘ A4)
    #[test]
    fn hadamard_kronecker_distributivity(
        a1 in sparse_matrix(2, 3),
        a3 in sparse_matrix(2, 3),
        a2 in sparse_matrix(3, 2),
        a4 in sparse_matrix(3, 2),
    ) {
        let k12 = kron(&Times, &a1, &a2).unwrap();
        let k34 = kron(&Times, &a3, &a4).unwrap();
        let lhs = ewise_mult(&k12, &k34, |x, y| x * y, |&v| v == 0).unwrap();
        let h13 = ewise_mult(&a1, &a3, |x, y| x * y, |&v| v == 0).unwrap();
        let h24 = ewise_mult(&a2, &a4, |x, y| x * y, |&v| v == 0).unwrap();
        let rhs = kron(&Times, &h13, &h24).unwrap();
        prop_assert!(dense_eq(&lhs, &rhs));
    }

    // Prop 2(f): diag(A1 ⊗ A2) = diag(A1) ⊗ diag(A2)
    #[test]
    fn diag_kronecker_distributivity(a in sparse_matrix(3, 3), b in sparse_matrix(4, 4)) {
        let k = kron(&Times, &a, &b).unwrap();
        let lhs = diag_vector(&k, 0).unwrap();
        let da = diag_vector(&a, 0).unwrap();
        let db = diag_vector(&b, 0).unwrap();
        let rhs: Vec<i64> = da
            .iter()
            .flat_map(|&x| db.iter().map(move |&y| x * y))
            .collect();
        prop_assert_eq!(lhs, rhs);
    }

    // Transpose is an involution and preserves total sum.
    #[test]
    fn transpose_involution(a in sparse_matrix(4, 6)) {
        prop_assert!(dense_eq(&transpose(&transpose(&a)), &a));
        prop_assert_eq!(
            reduce_scalar(&bikron_sparse::semiring::Plus, &a),
            reduce_scalar(&bikron_sparse::semiring::Plus, &transpose(&a))
        );
    }

    // SpGEMM associativity on small squares: (AB)C = A(BC).
    #[test]
    fn spgemm_associativity(
        a in sparse_matrix(3, 3),
        b in sparse_matrix(3, 3),
        c in sparse_matrix(3, 3),
    ) {
        let s = i64_plus_times();
        let ab_c = spgemm(&s, &spgemm(&s, &a, &b).unwrap(), &c).unwrap();
        let a_bc = spgemm(&s, &a, &spgemm(&s, &b, &c).unwrap()).unwrap();
        prop_assert!(dense_eq(&ab_c, &a_bc));
    }

    // diag_matrix ∘ diag_vector round trip.
    #[test]
    fn diag_round_trip(d in proptest::collection::vec(-5i64..=5, 0..12)) {
        let m = diag_matrix(&d, |&v| v == 0);
        prop_assert_eq!(diag_vector(&m, 0).unwrap(), d);
    }
}
