//! Coordinate-format (triplet) matrix builder.
//!
//! COO is the ingestion format: graph loaders and generators push `(row,
//! col, value)` triplets in arbitrary order, then convert to [`Csr`](crate::Csr) for
//! compute. Duplicate coordinates are combined with a caller-supplied
//! reducer at conversion time, matching the GraphBLAS "dup" semantics of
//! `GrB_Matrix_build`.

use crate::error::{SparseError, SparseResult};
use crate::semiring::SemiringValue;
use crate::Ix;

/// A matrix in coordinate (triplet) form.
#[derive(Clone, Debug)]
pub struct Coo<T> {
    nrows: Ix,
    ncols: Ix,
    rows: Vec<Ix>,
    cols: Vec<Ix>,
    vals: Vec<T>,
}

impl<T: SemiringValue> Coo<T> {
    /// Create an empty COO with the given shape.
    pub fn new(nrows: Ix, ncols: Ix) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Create an empty COO with capacity for `nnz` triplets.
    pub fn with_capacity(nrows: Ix, ncols: Ix, nnz: usize) -> Self {
        Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Number of stored triplets (before duplicate combination).
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Push one triplet, validating bounds.
    pub fn push(&mut self, row: Ix, col: Ix, val: T) -> SparseResult<()> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Push a triplet and its transpose — convenience for undirected graphs.
    pub fn push_symmetric(&mut self, row: Ix, col: Ix, val: T) -> SparseResult<()> {
        self.push(row, col, val)?;
        if row != col {
            self.push(col, row, val)?;
        }
        Ok(())
    }

    /// Build from parallel triplet slices.
    pub fn from_triplets(
        nrows: Ix,
        ncols: Ix,
        triplets: impl IntoIterator<Item = (Ix, Ix, T)>,
    ) -> SparseResult<Self> {
        let mut coo = Coo::new(nrows, ncols);
        for (r, c, v) in triplets {
            coo.push(r, c, v)?;
        }
        Ok(coo)
    }

    /// Iterate stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (Ix, Ix, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sort triplets by `(row, col)` and combine duplicates with `dup`.
    ///
    /// Returns the compacted, sorted triplet arrays; used by the CSR
    /// conversion and exposed for tests.
    pub fn compact(mut self, mut dup: impl FnMut(T, T) -> T) -> (Ix, Ix, Vec<(Ix, Ix, T)>) {
        let mut order: Vec<usize> = (0..self.vals.len()).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));
        let mut out: Vec<(Ix, Ix, T)> = Vec::with_capacity(order.len());
        for i in order {
            let key = (self.rows[i], self.cols[i]);
            // `vals` entries are Copy; take directly.
            let v = self.vals[i];
            match out.last_mut() {
                Some((r, c, acc)) if (*r, *c) == key => *acc = dup(*acc, v),
                _ => out.push((key.0, key.1, v)),
            }
        }
        self.rows.clear();
        self.cols.clear();
        self.vals.clear();
        (self.nrows, self.ncols, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_bounds() {
        let mut coo = Coo::<u64>::new(2, 3);
        coo.push(0, 0, 1).unwrap();
        coo.push(1, 2, 5).unwrap();
        assert_eq!(coo.nnz(), 2);
        assert!(matches!(
            coo.push(2, 0, 1),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            coo.push(0, 3, 1),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
    }

    #[test]
    fn symmetric_push_skips_diagonal_duplicate() {
        let mut coo = Coo::<u64>::new(3, 3);
        coo.push_symmetric(0, 1, 1).unwrap();
        coo.push_symmetric(2, 2, 7).unwrap();
        assert_eq!(coo.nnz(), 3); // (0,1), (1,0), (2,2)
    }

    #[test]
    fn compact_sorts_and_sums_duplicates() {
        let coo = Coo::from_triplets(
            2,
            2,
            vec![(1usize, 1usize, 4u64), (0, 0, 1), (1, 1, 6), (0, 1, 2)],
        )
        .unwrap();
        let (nr, nc, t) = coo.compact(|a, b| a + b);
        assert_eq!((nr, nc), (2, 2));
        assert_eq!(t, vec![(0, 0, 1), (0, 1, 2), (1, 1, 10)]);
    }

    #[test]
    fn compact_empty() {
        let coo = Coo::<u64>::new(4, 4);
        let (_, _, t) = coo.compact(|a, _| a);
        assert!(t.is_empty());
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut coo = Coo::<i64>::new(2, 2);
        coo.push(1, 0, -3).unwrap();
        coo.push(0, 1, 9).unwrap();
        let got: Vec<_> = coo.iter().collect();
        assert_eq!(got, vec![(1, 0, -3), (0, 1, 9)]);
    }
}
