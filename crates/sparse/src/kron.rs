//! The Kronecker product (paper Def. 4) for CSR matrices and dense vectors.
//!
//! For `A (m_A × n_A)` and `B (m_B × n_B)`, the product
//! `(A ⊗ B)_{γ(i,k), γ(j,l)} = A_{ij} · B_{kl}` has `nnz(A)·nnz(B)` entries.
//! The CSR layout of the product is produced directly (no COO detour):
//! product row `p = (i-1)·m_B + k` (zero-based: `i·m_B + k`) is the
//! concatenation over `A`'s row-`i` entries `j` of `B`'s row-`k` entries
//! shifted by `j·n_B`, which is already column-sorted because `A`'s row is
//! sorted. Rows are filled in parallel with rayon.

use rayon::prelude::*;

use crate::csr::Csr;
use crate::error::SparseResult;
use crate::semiring::{MulOp, SemiringValue};
use crate::Ix;

/// Minimum product-row count before parallel construction pays off.
const PARALLEL_ROW_THRESHOLD: usize = 1024;

/// Rows per fill block: the unit of work scheduling *and* of the
/// `kron.block_fill_ns` histogram — one timestamp pair per block, never
/// per row, so instrumentation stays off the per-entry path.
const FILL_BLOCK_ROWS: usize = 1024;

/// `C = A ⊗ B` with entry combiner `mul` (usually numeric multiplication).
///
/// ```
/// use bikron_sparse::semiring::Times;
/// use bikron_sparse::{kron, Coo, Csr};
///
/// // [1 2] ⊗ [0 1] — nnz multiplies: 2·1 = 2 entries.
/// let a = Csr::from_coo(
///     Coo::from_triplets(1, 2, vec![(0, 0, 1i64), (0, 1, 2)]).unwrap(),
///     |x, _| x, |v| v == 0);
/// let b = Csr::from_coo(
///     Coo::from_triplets(1, 2, vec![(0, 1, 3i64)]).unwrap(),
///     |x, _| x, |v| v == 0);
/// let c = kron(&Times, &a, &b).unwrap();
/// assert_eq!(c.to_dense(), vec![0, 3, 0, 6]);
/// ```
pub fn kron<T, M>(mul: &M, a: &Csr<T>, b: &Csr<T>) -> SparseResult<Csr<T>>
where
    T: SemiringValue,
    M: MulOp<T>,
{
    let (ma, _na) = (a.nrows(), a.ncols());
    let (mb, nb) = (b.nrows(), b.ncols());
    let nrows = ma * mb;
    let ncols = a.ncols() * nb;

    // Metrics are per kernel call only — product rows are tiny (a few
    // entries each), so even per-row atomics would be measurable here.
    let obs = bikron_obs::global();
    let _phase = obs.phase("sparse.kron");
    obs.counter("kron.invocations").inc();
    obs.counter("kron.rows_filled").add(nrows as u64);

    // Row pointer: product row (i,k) has nnz(A row i) * nnz(B row k).
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for i in 0..ma {
        let ai = a.row_nnz(i);
        for k in 0..mb {
            total += ai * b.row_nnz(k);
            row_ptr.push(total);
        }
    }

    let fill_row = |p: usize, cols: &mut [Ix], vals: &mut [T]| {
        let i = p / mb;
        let k = p % mb;
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(k);
        let mut w = 0usize;
        for (&j, &aval) in ac.iter().zip(av) {
            let base = j * nb;
            for (&l, &bval) in bc.iter().zip(bv) {
                cols[w] = base + l;
                vals[w] = mul.mul(aval, bval);
                w += 1;
            }
        }
        debug_assert_eq!(w, cols.len());
    };

    let zero_val = match (a.values().first(), b.values().first()) {
        (Some(&v), _) | (_, Some(&v)) => v,
        _ => {
            // No entries at all: empty product.
            return Csr::from_parts(nrows, ncols, row_ptr, Vec::new(), Vec::new());
        }
    };
    let mut col_idx = vec![0 as Ix; total];
    let mut vals = vec![zero_val; total];
    obs.counter("kron.output_nnz").add(total as u64);
    obs.counter("kron.csr_bytes").add(
        ((nrows + 1) * std::mem::size_of::<usize>()
            + total * (std::mem::size_of::<Ix>() + std::mem::size_of::<T>())) as u64,
    );

    // Fill proceeds in blocks of FILL_BLOCK_ROWS rows; each block's
    // wall-clock lands in the kron.block_fill_ns histogram, whose spread
    // (p50 vs p99) exposes fill-time skew across the product.
    let block_hist = obs.histogram("kron.block_fill_ns");
    let fill_block = |blk: usize, mut ctail: &mut [Ix], mut vtail: &mut [T]| {
        let started = std::time::Instant::now();
        let row_lo = blk * FILL_BLOCK_ROWS;
        let row_hi = (row_lo + FILL_BLOCK_ROWS).min(nrows);
        for p in row_lo..row_hi {
            let len = row_ptr[p + 1] - row_ptr[p];
            let (chead, crest) = ctail.split_at_mut(len);
            let (vhead, vrest) = vtail.split_at_mut(len);
            fill_row(p, chead, vhead);
            ctail = crest;
            vtail = vrest;
        }
        block_hist.record(started.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    };
    let nblocks = nrows.div_ceil(FILL_BLOCK_ROWS);

    if nrows >= PARALLEL_ROW_THRESHOLD {
        obs.gauge("kron.workers")
            .set(rayon::current_num_threads() as u64);
        // Split output buffers into per-block slices for safe parallel
        // fill (rows within a block are split sequentially inside it).
        let mut col_blocks: Vec<&mut [Ix]> = Vec::with_capacity(nblocks);
        let mut val_blocks: Vec<&mut [T]> = Vec::with_capacity(nblocks);
        let (mut ctail, mut vtail): (&mut [Ix], &mut [T]) = (&mut col_idx, &mut vals);
        for blk in 0..nblocks {
            let row_lo = blk * FILL_BLOCK_ROWS;
            let row_hi = (row_lo + FILL_BLOCK_ROWS).min(nrows);
            let len = row_ptr[row_hi] - row_ptr[row_lo];
            let (chead, crest) = ctail.split_at_mut(len);
            let (vhead, vrest) = vtail.split_at_mut(len);
            col_blocks.push(chead);
            val_blocks.push(vhead);
            ctail = crest;
            vtail = vrest;
        }
        col_blocks
            .par_iter_mut()
            .zip(val_blocks.par_iter_mut())
            .enumerate()
            .for_each(|(blk, (cols, vals))| {
                fill_block(blk, std::mem::take(cols), std::mem::take(vals))
            });
    } else {
        let (mut ctail, mut vtail): (&mut [Ix], &mut [T]) = (&mut col_idx, &mut vals);
        for blk in 0..nblocks {
            let row_lo = blk * FILL_BLOCK_ROWS;
            let row_hi = (row_lo + FILL_BLOCK_ROWS).min(nrows);
            let len = row_ptr[row_hi] - row_ptr[row_lo];
            let (chead, crest) = ctail.split_at_mut(len);
            let (vhead, vrest) = vtail.split_at_mut(len);
            fill_block(blk, chead, vhead);
            ctail = crest;
            vtail = vrest;
        }
    }

    Csr::from_parts(nrows, ncols, row_ptr, col_idx, vals)
}

/// Kronecker product of dense vectors: `(x ⊗ y)_{γ(i,k)} = x_i · y_k`.
pub fn kron_vec(x: &[i128], y: &[i128]) -> Vec<i128> {
    let mut out = Vec::with_capacity(x.len() * y.len());
    for &xi in x {
        for &yk in y {
            out.push(xi * yk);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::Times;

    fn m(nrows: usize, ncols: usize, t: Vec<(usize, usize, i64)>) -> Csr<i64> {
        Csr::from_coo(
            Coo::from_triplets(nrows, ncols, t).unwrap(),
            |a, b| a + b,
            |v| v == 0,
        )
    }

    #[test]
    fn kron_2x2_by_hand() {
        // A = [1 2; 0 3], B = [0 1; 1 0]
        let a = m(2, 2, vec![(0, 0, 1), (0, 1, 2), (1, 1, 3)]);
        let b = m(2, 2, vec![(0, 1, 1), (1, 0, 1)]);
        let c = kron(&Times, &a, &b).unwrap();
        c.validate().unwrap();
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.ncols(), 4);
        #[rustfmt::skip]
        let expect = vec![
            0, 1, 0, 2,
            1, 0, 2, 0,
            0, 0, 0, 3,
            0, 0, 3, 0,
        ];
        assert_eq!(c.to_dense(), expect);
    }

    #[test]
    fn kron_rectangular() {
        // (1x2) ⊗ (2x1) = 2x2
        let a = m(1, 2, vec![(0, 0, 2), (0, 1, 3)]);
        let b = m(2, 1, vec![(0, 0, 5), (1, 0, 7)]);
        let c = kron(&Times, &a, &b).unwrap();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.to_dense(), vec![10, 15, 14, 21]);
    }

    #[test]
    fn kron_nnz_is_product() {
        let a = m(3, 3, vec![(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 1, 1)]);
        let b = m(2, 2, vec![(0, 1, 1), (1, 0, 1)]);
        let c = kron(&Times, &a, &b).unwrap();
        assert_eq!(c.nnz(), a.nnz() * b.nnz());
    }

    #[test]
    fn kron_with_empty_factor_is_empty() {
        let a = m(2, 2, vec![]);
        let b = m(2, 2, vec![(0, 1, 1)]);
        let c = kron(&Times, &a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
        assert_eq!(c.nrows(), 4);
    }

    #[test]
    fn kron_identity_left() {
        let i2 = Csr::<i64>::diagonal(2, 1);
        let b = m(2, 2, vec![(0, 0, 4), (1, 0, 5)]);
        let c = kron(&Times, &i2, &b).unwrap();
        // I ⊗ B = blockdiag(B, B)
        assert_eq!(c.get(0, 0), Some(4));
        assert_eq!(c.get(1, 0), Some(5));
        assert_eq!(c.get(2, 2), Some(4));
        assert_eq!(c.get(3, 2), Some(5));
        assert_eq!(c.nnz(), 4);
    }

    #[test]
    fn kron_vec_matches_matrix_kron_on_diagonals() {
        let x = vec![1i128, 2, 3];
        let y = vec![10i128, 20];
        let v = kron_vec(&x, &y);
        assert_eq!(v, vec![10, 20, 20, 40, 30, 60]);
    }

    #[test]
    fn kron_parallel_path_crosses_threshold() {
        // 64-cycle ⊗ 64-cycle: 4096 rows > threshold; spot-check entries.
        let n = 64;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1i64).unwrap();
            coo.push((i + 1) % n, i, 1i64).unwrap();
        }
        let a = Csr::from_coo(coo, |x, y| x + y, |v| v == 0);
        let c = kron(&Times, &a, &a).unwrap();
        c.validate().unwrap();
        assert_eq!(c.nnz(), a.nnz() * a.nnz());
        // Entry ((i,k),(j,l)) = A_ij * A_kl: check (0*64+0, 1*64+1).
        assert_eq!(c.get(0, 65), Some(1));
        assert_eq!(c.get(0, 64), None); // A_01=1 but A_00=0
    }
}
