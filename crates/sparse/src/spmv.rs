//! Semiring sparse matrix–dense vector products.

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};
use crate::semiring::{AddMonoid, MulOp, Semiring, SemiringValue};

/// `y = A ⊕.⊗ x` over the given semiring (row-major CSR traversal).
///
/// This is the kernel behind the paper's walk-count vectors: with
/// plus-times over integers, `spmv(A, 1)` is the degree vector `d_A` and
/// `spmv(A, spmv(A, 1))` is `w_A^{(2)} = A²·1`.
pub fn spmv<T, A, M>(semiring: &Semiring<T, A, M>, mat: &Csr<T>, x: &[T]) -> SparseResult<Vec<T>>
where
    T: SemiringValue,
    A: AddMonoid<T>,
    M: MulOp<T>,
{
    if mat.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv",
            lhs: (mat.nrows(), mat.ncols()),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![semiring.zero(); mat.nrows()];
    for (r, out) in y.iter_mut().enumerate() {
        let (cols, vals) = mat.row(r);
        let mut acc = semiring.zero();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = semiring.plus(acc, semiring.times(v, x[c]));
        }
        *out = acc;
    }
    Ok(y)
}

/// `y = Aᵗ ⊕.⊗ x` without materialising the transpose (scatter traversal).
pub fn spmv_transpose<T, A, M>(
    semiring: &Semiring<T, A, M>,
    mat: &Csr<T>,
    x: &[T],
) -> SparseResult<Vec<T>>
where
    T: SemiringValue,
    A: AddMonoid<T>,
    M: MulOp<T>,
{
    if mat.nrows() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv_transpose",
            lhs: (mat.ncols(), mat.nrows()),
            rhs: (x.len(), 1),
        });
    }
    let mut y = vec![semiring.zero(); mat.ncols()];
    for (r, &xv) in x.iter().enumerate() {
        let (cols, vals) = mat.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            y[c] = semiring.plus(y[c], semiring.times(v, xv));
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::{bool_or_and, u64_min_plus, u64_plus_times};

    fn matrix() -> Csr<u64> {
        // [1 2]
        // [0 3]
        let coo =
            Coo::from_triplets(2, 2, vec![(0usize, 0usize, 1u64), (0, 1, 2), (1, 1, 3)]).unwrap();
        Csr::from_coo(coo, |a, b| a + b, |v| v == 0)
    }

    #[test]
    fn plus_times_spmv() {
        let s = u64_plus_times();
        let y = spmv(&s, &matrix(), &[10, 100]).unwrap();
        assert_eq!(y, vec![210, 300]);
    }

    #[test]
    fn transpose_spmv_matches_explicit() {
        let s = u64_plus_times();
        let y = spmv_transpose(&s, &matrix(), &[10, 100]).unwrap();
        // Aᵗ = [1 0; 2 3] → [10, 320]
        assert_eq!(y, vec![10, 320]);
    }

    #[test]
    fn dimension_checked() {
        let s = u64_plus_times();
        assert!(spmv(&s, &matrix(), &[1]).is_err());
        assert!(spmv_transpose(&s, &matrix(), &[1, 2, 3]).is_err());
    }

    #[test]
    fn boolean_reachability_step() {
        // Path 0 - 1 - 2: one step from {0} reaches {1}.
        let coo = Coo::from_triplets(
            3,
            3,
            vec![
                (0usize, 1usize, true),
                (1, 0, true),
                (1, 2, true),
                (2, 1, true),
            ],
        )
        .unwrap();
        let a = Csr::from_coo(coo, |x, _| x, |v| !v);
        let s = bool_or_and();
        let frontier = vec![true, false, false];
        let next = spmv(&s, &a, &frontier).unwrap();
        assert_eq!(next, vec![false, true, false]);
    }

    #[test]
    fn min_plus_one_hop() {
        // weighted edge 0->1 cost 4.
        let coo = Coo::from_triplets(2, 2, vec![(0usize, 1usize, 4u64)]).unwrap();
        let a = Csr::from_coo(coo, |x, _| x, |_| false);
        let s = u64_min_plus();
        let dist = vec![u64::MAX, 0];
        let relaxed = spmv(&s, &a, &dist).unwrap();
        assert_eq!(relaxed, vec![4, u64::MAX]);
    }
}
