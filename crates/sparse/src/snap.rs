//! Byte-level codec primitives for the `bikron-snap/1` snapshot format.
//!
//! The serve layer persists factor CSRs (and their derived statistics)
//! across restarts. This module owns the *primitive* encoding — fixed-width
//! little-endian integers, length-prefixed byte strings, and CSR matrices —
//! plus the FNV-1a checksum used to seal each snapshot section. Everything
//! here is std-only and allocation-honest: encoding appends to a caller
//! `Vec<u8>`, decoding walks a borrowed [`ByteReader`] cursor and never
//! panics on hostile input.
//!
//! Decoded CSRs are re-validated through [`Csr::from_parts`], so a snapshot
//! that survives the section checksum but carries an inconsistent matrix
//! (out-of-order `row_ptr`, column index past `ncols`, …) is still rejected
//! with a named error rather than poisoning downstream kernels.

use crate::csr::Csr;
use std::fmt;

/// FNV-1a 64-bit offset basis (same constant the serve cache seeds with).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a 64-bit hash of `bytes` — the per-section snapshot checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Decoding failure for snapshot byte streams.
///
/// Every variant names what went wrong; none of the decode paths panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The stream ended before `what` could be read in full.
    Truncated {
        /// Name of the field or structure being read when bytes ran out.
        what: &'static str,
    },
    /// The bytes were present but semantically invalid.
    Malformed(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { what } => {
                write!(f, "truncated input while reading {what}")
            }
            SnapError::Malformed(msg) => write!(f, "malformed input: {msg}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Append a `u64` as 8 little-endian bytes.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append an `i128` as 16 little-endian bytes.
pub fn put_i128(buf: &mut Vec<u8>, v: i128) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed byte string (`u64` length, then the bytes).
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

/// Append a length-prefixed `usize` slice, widening each element to `u64`.
pub fn put_usize_slice(buf: &mut Vec<u8>, vs: &[usize]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_u64(buf, v as u64);
    }
}

/// Append a length-prefixed `i128` slice.
pub fn put_i128_slice(buf: &mut Vec<u8>, vs: &[i128]) {
    put_u64(buf, vs.len() as u64);
    for &v in vs {
        put_i128(buf, v);
    }
}

/// Bounds-checked forward cursor over a borrowed byte slice.
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start a cursor at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole slice.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take `n` raw bytes, or report what we were reading on truncation.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self, what: &'static str) -> Result<u64, SnapError> {
        let raw = self.take(8, what)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(u64::from_le_bytes(b))
    }

    /// Read a little-endian `u64` and narrow it to `usize`.
    pub fn len(&mut self, what: &'static str) -> Result<usize, SnapError> {
        let v = self.u64(what)?;
        usize::try_from(v)
            .map_err(|_| SnapError::Malformed(format!("{what}: length {v} exceeds usize")))
    }

    /// Read a little-endian `i128`.
    pub fn i128(&mut self, what: &'static str) -> Result<i128, SnapError> {
        let raw = self.take(16, what)?;
        let mut b = [0u8; 16];
        b.copy_from_slice(raw);
        Ok(i128::from_le_bytes(b))
    }

    /// Read a length-prefixed byte string.
    ///
    /// The declared length is sanity-checked against the remaining input
    /// *before* allocating, so a corrupted huge length cannot OOM.
    pub fn bytes(&mut self, what: &'static str) -> Result<&'a [u8], SnapError> {
        let n = self.len(what)?;
        if n > self.remaining() {
            return Err(SnapError::Truncated { what });
        }
        self.take(n, what)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str_(&mut self, what: &'static str) -> Result<String, SnapError> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| SnapError::Malformed(format!("{what}: invalid UTF-8")))
    }

    /// Read a length-prefixed `usize` slice (stored as `u64` elements).
    pub fn usize_slice(&mut self, what: &'static str) -> Result<Vec<usize>, SnapError> {
        let n = self.len(what)?;
        // Each element needs 8 bytes; reject a length the input cannot hold.
        if n > self.remaining() / 8 {
            return Err(SnapError::Truncated { what });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let v = self.u64(what)?;
            out.push(
                usize::try_from(v).map_err(|_| {
                    SnapError::Malformed(format!("{what}: element {v} exceeds usize"))
                })?,
            );
        }
        Ok(out)
    }

    /// Read a length-prefixed `i128` slice.
    pub fn i128_slice(&mut self, what: &'static str) -> Result<Vec<i128>, SnapError> {
        let n = self.len(what)?;
        if n > self.remaining() / 16 {
            return Err(SnapError::Truncated { what });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.i128(what)?);
        }
        Ok(out)
    }
}

/// Append a `Csr<u64>`: `nrows`, `ncols`, `row_ptr`, `col_idx`, `vals`.
pub fn put_csr_u64(buf: &mut Vec<u8>, m: &Csr<u64>) {
    put_u64(buf, m.nrows() as u64);
    put_u64(buf, m.ncols() as u64);
    put_usize_slice(buf, m.row_ptr());
    put_usize_slice(buf, m.col_idx());
    let vals = m.values();
    put_u64(buf, vals.len() as u64);
    for &v in vals {
        put_u64(buf, v);
    }
}

/// Decode a `Csr<u64>`, re-validating the structural invariants.
pub fn read_csr_u64(r: &mut ByteReader<'_>, what: &'static str) -> Result<Csr<u64>, SnapError> {
    let nrows = r.len(what)?;
    let ncols = r.len(what)?;
    let row_ptr = r.usize_slice(what)?;
    let col_idx = r.usize_slice(what)?;
    let n = r.len(what)?;
    if n > r.remaining() / 8 {
        return Err(SnapError::Truncated { what });
    }
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(r.u64(what)?);
    }
    Csr::from_parts(nrows, ncols, row_ptr, col_idx, vals)
        .map_err(|e| SnapError::Malformed(format!("{what}: invalid CSR: {e}")))
}

/// Append a `Csr<i128>` with the same layout as [`put_csr_u64`].
pub fn put_csr_i128(buf: &mut Vec<u8>, m: &Csr<i128>) {
    put_u64(buf, m.nrows() as u64);
    put_u64(buf, m.ncols() as u64);
    put_usize_slice(buf, m.row_ptr());
    put_usize_slice(buf, m.col_idx());
    put_i128_slice(buf, m.values());
}

/// Decode a `Csr<i128>`, re-validating the structural invariants.
pub fn read_csr_i128(r: &mut ByteReader<'_>, what: &'static str) -> Result<Csr<i128>, SnapError> {
    let nrows = r.len(what)?;
    let ncols = r.len(what)?;
    let row_ptr = r.usize_slice(what)?;
    let col_idx = r.usize_slice(what)?;
    let vals = r.i128_slice(what)?;
    Csr::from_parts(nrows, ncols, row_ptr, col_idx, vals)
        .map_err(|e| SnapError::Malformed(format!("{what}: invalid CSR: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample_u64() -> Csr<u64> {
        let mut coo = Coo::new(3, 4);
        coo.push(0, 1, 2u64).unwrap();
        coo.push(1, 3, 5).unwrap();
        coo.push(2, 0, 7).unwrap();
        Csr::from_coo(coo, |a, b| a + b, |v| v == 0)
    }

    #[test]
    fn fnv_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn u64_csr_round_trips() {
        let m = sample_u64();
        let mut buf = Vec::new();
        put_csr_u64(&mut buf, &m);
        let mut r = ByteReader::new(&buf);
        let back = read_csr_u64(&mut r, "m").unwrap();
        assert_eq!(m, back);
        assert!(r.is_empty());
    }

    #[test]
    fn i128_csr_round_trips() {
        let m = sample_u64().map(|v| -(v as i128));
        let mut buf = Vec::new();
        put_csr_i128(&mut buf, &m);
        let mut r = ByteReader::new(&buf);
        let back = read_csr_i128(&mut r, "m").unwrap();
        assert_eq!(m, back);
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_named_never_panicking() {
        let m = sample_u64();
        let mut buf = Vec::new();
        put_csr_u64(&mut buf, &m);
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let err = read_csr_u64(&mut r, "m").unwrap_err();
            match err {
                SnapError::Truncated { .. } | SnapError::Malformed(_) => {}
            }
        }
    }

    #[test]
    fn huge_declared_length_is_rejected_without_alloc() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 3); // nrows
        put_u64(&mut buf, 3); // ncols
        put_u64(&mut buf, u64::MAX); // row_ptr length: absurd
        let mut r = ByteReader::new(&buf);
        assert!(read_csr_u64(&mut r, "m").is_err());
    }

    #[test]
    fn invalid_csr_structure_is_rejected() {
        // Valid framing, but row_ptr is not monotone.
        let mut buf = Vec::new();
        put_u64(&mut buf, 2); // nrows
        put_u64(&mut buf, 2); // ncols
        put_usize_slice(&mut buf, &[0, 2, 1]); // decreasing
        put_usize_slice(&mut buf, &[0, 1]);
        put_u64(&mut buf, 2);
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 1);
        let mut r = ByteReader::new(&buf);
        let err = read_csr_u64(&mut r, "m").unwrap_err();
        assert!(matches!(err, SnapError::Malformed(_)));
    }

    #[test]
    fn strings_round_trip_and_reject_bad_utf8() {
        let mut buf = Vec::new();
        put_str(&mut buf, "A⊗B");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.str_("expr").unwrap(), "A⊗B");

        let mut bad = Vec::new();
        put_bytes(&mut bad, &[0xff, 0xfe]);
        let mut r = ByteReader::new(&bad);
        assert!(matches!(r.str_("expr"), Err(SnapError::Malformed(_))));
    }
}
