//! Element-wise (Hadamard) operations on CSR matrices.
//!
//! `ewise_mult` is the Hadamard product of Def. 5 (set intersection of
//! patterns); `ewise_add` is the GraphBLAS eWiseAdd (set union). Both walk
//! the two sorted rows with a merge, so cost is linear in the row sizes.

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};
use crate::semiring::SemiringValue;
use crate::Ix;

fn check_same_shape<T: SemiringValue, U: SemiringValue>(
    op: &'static str,
    a: &Csr<T>,
    b: &Csr<U>,
) -> SparseResult<()> {
    if a.nrows() != b.nrows() || a.ncols() != b.ncols() {
        return Err(SparseError::DimensionMismatch {
            op,
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    Ok(())
}

/// Hadamard product `A ∘ B` with combiner `f` — pattern is the
/// intersection of the operand patterns; zero results are dropped.
pub fn ewise_mult<T, U, V>(
    a: &Csr<T>,
    b: &Csr<U>,
    mut f: impl FnMut(T, U) -> V,
    mut is_zero: impl FnMut(&V) -> bool,
) -> SparseResult<Csr<V>>
where
    T: SemiringValue,
    U: SemiringValue,
    V: SemiringValue,
{
    check_same_shape("ewise_mult", a, b)?;
    let nrows = a.nrows();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<Ix> = Vec::new();
    let mut vals: Vec<V> = Vec::new();
    for r in 0..nrows {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() && j < bc.len() {
            match ac[i].cmp(&bc[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let v = f(av[i], bv[j]);
                    if !is_zero(&v) {
                        col_idx.push(ac[i]);
                        vals.push(v);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts(nrows, a.ncols(), row_ptr, col_idx, vals)
}

/// Element-wise add `A ⊕ B` — pattern is the union of the operand
/// patterns; positions present in only one operand keep that value.
pub fn ewise_add<T>(
    a: &Csr<T>,
    b: &Csr<T>,
    mut f: impl FnMut(T, T) -> T,
    mut is_zero: impl FnMut(&T) -> bool,
) -> SparseResult<Csr<T>>
where
    T: SemiringValue,
{
    check_same_shape("ewise_add", a, b)?;
    let nrows = a.nrows();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut col_idx: Vec<Ix> = Vec::new();
    let mut vals: Vec<T> = Vec::new();
    for r in 0..nrows {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        loop {
            let take = match (ac.get(i), bc.get(j)) {
                (None, None) => break,
                (Some(&c), None) => {
                    i += 1;
                    (c, av[i - 1])
                }
                (None, Some(&c)) => {
                    j += 1;
                    (c, bv[j - 1])
                }
                (Some(&ca), Some(&cb)) => match ca.cmp(&cb) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        (ca, av[i - 1])
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        (cb, bv[j - 1])
                    }
                    std::cmp::Ordering::Equal => {
                        let v = f(av[i], bv[j]);
                        i += 1;
                        j += 1;
                        (ca, v)
                    }
                },
            };
            if !is_zero(&take.1) {
                col_idx.push(take.0);
                vals.push(take.1);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts(nrows, a.ncols(), row_ptr, col_idx, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn m(nrows: usize, ncols: usize, t: Vec<(usize, usize, i64)>) -> Csr<i64> {
        Csr::from_coo(
            Coo::from_triplets(nrows, ncols, t).unwrap(),
            |a, b| a + b,
            |v| v == 0,
        )
    }

    #[test]
    fn mult_intersects_patterns() {
        let a = m(2, 2, vec![(0, 0, 2), (0, 1, 3), (1, 1, 4)]);
        let b = m(2, 2, vec![(0, 1, 5), (1, 0, 7), (1, 1, 1)]);
        let c = ewise_mult(&a, &b, |x, y| x * y, |&v| v == 0).unwrap();
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 1), Some(15));
        assert_eq!(c.get(1, 1), Some(4));
        assert_eq!(c.get(0, 0), None);
    }

    #[test]
    fn add_unions_patterns() {
        let a = m(2, 2, vec![(0, 0, 2), (1, 1, 4)]);
        let b = m(2, 2, vec![(0, 1, 5), (1, 1, -4)]);
        let c = ewise_add(&a, &b, |x, y| x + y, |&v| v == 0).unwrap();
        // (1,1) cancels to zero and is dropped.
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 0), Some(2));
        assert_eq!(c.get(0, 1), Some(5));
        assert_eq!(c.get(1, 1), None);
    }

    #[test]
    fn hadamard_commutes() {
        let a = m(3, 3, vec![(0, 0, 2), (1, 2, 3), (2, 2, -1)]);
        let b = m(3, 3, vec![(0, 0, 4), (1, 2, 5), (2, 0, 6)]);
        let ab = ewise_mult(&a, &b, |x, y| x * y, |&v| v == 0).unwrap();
        let ba = ewise_mult(&b, &a, |x, y| x * y, |&v| v == 0).unwrap();
        assert_eq!(ab, ba);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = m(2, 2, vec![(0, 0, 1)]);
        let b = m(2, 3, vec![(0, 0, 1)]);
        assert!(ewise_mult(&a, &b, |x, y| x * y, |&v| v == 0).is_err());
        assert!(ewise_add(&a, &b, |x, y| x + y, |&v| v == 0).is_err());
    }

    #[test]
    fn mixed_value_types() {
        let a = m(1, 2, vec![(0, 0, 7), (0, 1, 9)]);
        let flags = a.map(|_| true);
        let c = ewise_mult(&a, &flags, |x, keep| if keep { x } else { 0 }, |&v| v == 0).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn add_with_disjoint_patterns_is_concatenation() {
        let a = m(1, 4, vec![(0, 0, 1), (0, 2, 3)]);
        let b = m(1, 4, vec![(0, 1, 2), (0, 3, 4)]);
        let c = ewise_add(&a, &b, |x, y| x + y, |&v| v == 0).unwrap();
        assert_eq!(c.to_dense(), vec![1, 2, 3, 4]);
    }
}
