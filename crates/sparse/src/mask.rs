//! Vector masks and masked matrix–vector kernels.
//!
//! GraphBLAS masks let a traversal write only where the mask permits —
//! the idiom behind frontier-based BFS (`q' = A·q  masked by ¬visited`)
//! and behind sampling ground truth at a *subset* of vertices without
//! touching the rest. Masks here are dense boolean vectors with an
//! optional complement flag, matching `GrB_DESC_C` semantics.

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};
use crate::semiring::{AddMonoid, MulOp, Semiring, SemiringValue};

/// A dense boolean vector mask, optionally complemented.
#[derive(Clone, Debug)]
pub struct VecMask {
    bits: Vec<bool>,
    complement: bool,
}

impl VecMask {
    /// Mask permitting exactly the `true` positions of `bits`.
    pub fn new(bits: Vec<bool>) -> Self {
        VecMask {
            bits,
            complement: false,
        }
    }

    /// Mask from the set of permitted indices.
    pub fn from_indices(len: usize, idx: &[usize]) -> Self {
        let mut bits = vec![false; len];
        for &i in idx {
            bits[i] = true;
        }
        Self::new(bits)
    }

    /// Flip the mask (`¬mask` semantics).
    pub fn complement(mut self) -> Self {
        self.complement = !self.complement;
        self
    }

    /// Length.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when no position is permitted... i.e. empty *underlying*
    /// vector (mask semantics still apply to zero-length operands).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether writing at `i` is permitted.
    #[inline]
    pub fn permits(&self, i: usize) -> bool {
        self.bits[i] ^ self.complement
    }
}

/// Masked SpMV: `y[i] = (A ⊕.⊗ x)[i]` where the mask permits, `zero`
/// elsewhere. Rows the mask blocks are skipped entirely (the GraphBLAS
/// performance contract).
pub fn spmv_masked<T, A, M>(
    semiring: &Semiring<T, A, M>,
    mat: &Csr<T>,
    x: &[T],
    mask: &VecMask,
) -> SparseResult<Vec<T>>
where
    T: SemiringValue,
    A: AddMonoid<T>,
    M: MulOp<T>,
{
    if mat.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv_masked",
            lhs: (mat.nrows(), mat.ncols()),
            rhs: (x.len(), 1),
        });
    }
    if mask.len() != mat.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv_masked(mask)",
            lhs: (mat.nrows(), 1),
            rhs: (mask.len(), 1),
        });
    }
    let mut y = vec![semiring.zero(); mat.nrows()];
    for (r, out) in y.iter_mut().enumerate() {
        if !mask.permits(r) {
            continue;
        }
        let (cols, vals) = mat.row(r);
        let mut acc = semiring.zero();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = semiring.plus(acc, semiring.times(v, x[c]));
        }
        *out = acc;
    }
    Ok(y)
}

/// One masked BFS expansion step over the boolean semiring:
/// `next = (A ∨.∧ frontier) ∧ ¬visited`, returning the next frontier and
/// updating `visited`. Returns the number of newly visited vertices.
pub fn bfs_step(a: &Csr<u64>, frontier: &[bool], visited: &mut [bool]) -> SparseResult<Vec<bool>> {
    if a.ncols() != frontier.len() || a.nrows() != visited.len() {
        return Err(SparseError::DimensionMismatch {
            op: "bfs_step",
            lhs: (a.nrows(), a.ncols()),
            rhs: (frontier.len(), visited.len()),
        });
    }
    let mut next = vec![false; a.nrows()];
    for r in 0..a.nrows() {
        if visited[r] {
            continue;
        }
        let (cols, _) = a.row(r);
        if cols.iter().any(|&c| frontier[c]) {
            next[r] = true;
        }
    }
    for (v, &n) in visited.iter_mut().zip(&next) {
        *v |= n;
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::u64_plus_times;

    fn path3() -> Csr<u64> {
        let coo = Coo::from_triplets(
            3,
            3,
            vec![(0usize, 1usize, 1u64), (1, 0, 1), (1, 2, 1), (2, 1, 1)],
        )
        .unwrap();
        Csr::from_coo(coo, |a, b| a + b, |v| v == 0)
    }

    #[test]
    fn mask_permits_and_complements() {
        let m = VecMask::from_indices(4, &[1, 3]);
        assert!(m.permits(1) && m.permits(3));
        assert!(!m.permits(0) && !m.permits(2));
        let c = m.complement();
        assert!(c.permits(0) && !c.permits(1));
    }

    #[test]
    fn masked_spmv_blocks_rows() {
        let a = path3();
        let s = u64_plus_times();
        let x = vec![1u64, 1, 1];
        let mask = VecMask::from_indices(3, &[1]);
        let y = spmv_masked(&s, &a, &x, &mask).unwrap();
        assert_eq!(y, vec![0, 2, 0]);
    }

    #[test]
    fn masked_spmv_dimension_checks() {
        let a = path3();
        let s = u64_plus_times();
        assert!(spmv_masked(&s, &a, &[1, 1], &VecMask::new(vec![true; 3])).is_err());
        assert!(spmv_masked(&s, &a, &[1, 1, 1], &VecMask::new(vec![true; 2])).is_err());
    }

    #[test]
    fn bfs_steps_cover_path() {
        let a = path3();
        let mut visited = vec![true, false, false];
        let f1 = bfs_step(&a, &[true, false, false], &mut visited).unwrap();
        assert_eq!(f1, vec![false, true, false]);
        let f2 = bfs_step(&a, &f1, &mut visited).unwrap();
        assert_eq!(f2, vec![false, false, true]);
        assert_eq!(visited, vec![true, true, true]);
        let f3 = bfs_step(&a, &f2, &mut visited).unwrap();
        assert!(f3.iter().all(|&b| !b));
    }
}
