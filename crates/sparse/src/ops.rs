//! Structural transforms: transpose, apply, select.

use crate::csr::Csr;
use crate::error::SparseResult;
use crate::semiring::SemiringValue;
use crate::Ix;

/// Transpose a CSR matrix (counting sort over columns; O(nnz + n)).
pub fn transpose<T: SemiringValue>(a: &Csr<T>) -> Csr<T> {
    let nrows = a.nrows();
    let ncols = a.ncols();
    let nnz = a.nnz();
    let mut counts = vec![0usize; ncols + 1];
    for &c in a.col_idx() {
        counts[c + 1] += 1;
    }
    for i in 0..ncols {
        counts[i + 1] += counts[i];
    }
    let mut row_ptr = counts.clone();
    let mut col_idx = vec![0 as Ix; nnz];
    let mut vals: Vec<T> = Vec::with_capacity(nnz);
    // SAFETY-free approach: initialise with any value then overwrite.
    if let Some(&first) = a.values().first() {
        vals.resize(nnz, first);
        let mut cursor = counts;
        for r in 0..nrows {
            let (cols, rv) = a.row(r);
            for (&c, &v) in cols.iter().zip(rv) {
                let dst = cursor[c];
                col_idx[dst] = r;
                vals[dst] = v;
                cursor[c] += 1;
            }
        }
    }
    row_ptr.truncate(ncols + 1);
    Csr::from_parts(ncols, nrows, row_ptr, col_idx, vals)
        .expect("transpose preserves CSR invariants")
}

/// Apply a unary function to every stored value, dropping results for
/// which `is_zero` holds (GraphBLAS `apply` + implicit prune).
pub fn apply<T, U>(
    a: &Csr<T>,
    mut f: impl FnMut(T) -> U,
    mut is_zero: impl FnMut(&U) -> bool,
) -> SparseResult<Csr<U>>
where
    T: SemiringValue,
    U: SemiringValue,
{
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for r in 0..a.nrows() {
        let (cols, rv) = a.row(r);
        for (&c, &v) in cols.iter().zip(rv) {
            let u = f(v);
            if !is_zero(&u) {
                col_idx.push(c);
                vals.push(u);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts(a.nrows(), a.ncols(), row_ptr, col_idx, vals)
}

/// Structural selectors for [`select`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Select {
    /// Keep only diagonal entries (`I ∘ A`, Def. 6).
    Diagonal,
    /// Keep only off-diagonal entries (`A − I ∘ A`).
    OffDiagonal,
    /// Keep the strictly lower triangle (`r > c`).
    StrictLower,
    /// Keep the strictly upper triangle (`r < c`).
    StrictUpper,
}

/// Keep entries whose position satisfies the selector.
pub fn select<T: SemiringValue>(a: &Csr<T>, which: Select) -> Csr<T> {
    let keep = |r: Ix, c: Ix| match which {
        Select::Diagonal => r == c,
        Select::OffDiagonal => r != c,
        Select::StrictLower => r > c,
        Select::StrictUpper => r < c,
    };
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for r in 0..a.nrows() {
        let (cols, rv) = a.row(r);
        for (&c, &v) in cols.iter().zip(rv) {
            if keep(r, c) {
                col_idx.push(c);
                vals.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts(a.nrows(), a.ncols(), row_ptr, col_idx, vals)
        .expect("select preserves CSR invariants")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn m(nrows: usize, ncols: usize, t: Vec<(usize, usize, i64)>) -> Csr<i64> {
        Csr::from_coo(
            Coo::from_triplets(nrows, ncols, t).unwrap(),
            |a, b| a + b,
            |v| v == 0,
        )
    }

    #[test]
    fn transpose_round_trip() {
        let a = m(2, 3, vec![(0, 0, 1), (0, 2, 2), (1, 1, 3)]);
        let t = transpose(&a);
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.get(2, 0), Some(2));
        assert_eq!(transpose(&t), a);
    }

    #[test]
    fn transpose_empty() {
        let a = m(3, 2, vec![]);
        let t = transpose(&a);
        assert_eq!(t.nnz(), 0);
        assert_eq!((t.nrows(), t.ncols()), (2, 3));
    }

    #[test]
    fn apply_prunes_zeros() {
        let a = m(2, 2, vec![(0, 0, 1), (0, 1, 2), (1, 0, 3)]);
        let b = apply(&a, |v| v - 2, |&v| v == 0).unwrap();
        assert_eq!(b.nnz(), 2);
        assert_eq!(b.get(0, 0), Some(-1));
        assert_eq!(b.get(0, 1), None);
        assert_eq!(b.get(1, 0), Some(1));
    }

    #[test]
    fn select_diagonal_vs_offdiagonal_partition() {
        let a = m(3, 3, vec![(0, 0, 1), (0, 1, 2), (1, 1, 3), (2, 0, 4)]);
        let d = select(&a, Select::Diagonal);
        let o = select(&a, Select::OffDiagonal);
        assert_eq!(d.nnz() + o.nnz(), a.nnz());
        assert_eq!(d.get(0, 0), Some(1));
        assert_eq!(d.get(0, 1), None);
        assert_eq!(o.get(2, 0), Some(4));
    }

    #[test]
    fn select_triangles() {
        let a = m(3, 3, vec![(0, 1, 1), (1, 0, 1), (2, 2, 5), (0, 2, 7)]);
        let lo = select(&a, Select::StrictLower);
        let up = select(&a, Select::StrictUpper);
        assert_eq!(lo.nnz(), 1);
        assert_eq!(lo.get(1, 0), Some(1));
        assert_eq!(up.nnz(), 2);
        assert_eq!(up.get(0, 2), Some(7));
    }

    #[test]
    fn transpose_symmetric_is_identity() {
        let a = m(3, 3, vec![(0, 1, 1), (1, 0, 1), (1, 2, 2), (2, 1, 2)]);
        assert_eq!(transpose(&a), a);
    }
}
