use std::fmt;

/// Errors produced by sparse kernels.
///
/// Dimension mismatches are programming errors in most numerical libraries,
/// but the bikron workspace builds matrices from user-supplied graph files,
/// so shape problems are reported as values rather than panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// Two operands had incompatible dimensions for the requested operation.
    DimensionMismatch {
        /// Operation name, e.g. `"spgemm"`.
        op: &'static str,
        /// Dimensions of the left operand.
        lhs: (usize, usize),
        /// Dimensions of the right operand.
        rhs: (usize, usize),
    },
    /// A triplet referenced a row or column outside the declared shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Declared row count.
        nrows: usize,
        /// Declared column count.
        ncols: usize,
    },
    /// An arithmetic result did not fit in the value type.
    Overflow {
        /// Operation name where the overflow was detected.
        op: &'static str,
    },
    /// CSR invariants were violated (unsorted row pointers, etc.).
    Malformed(String),
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "{op}: dimension mismatch {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SparseError::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "index ({row},{col}) out of bounds for {nrows}x{ncols} matrix"
            ),
            SparseError::Overflow { op } => write!(f, "{op}: arithmetic overflow"),
            SparseError::Malformed(msg) => write!(f, "malformed matrix: {msg}"),
        }
    }
}

impl std::error::Error for SparseError {}

/// Convenience alias used across the crate.
pub type SparseResult<T> = Result<T, SparseError>;
