//! Reductions and diagonal plumbing (paper Def. 6).

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};
use crate::semiring::{AddMonoid, SemiringValue};

/// Row-wise reduction: `out[r] = ⊕_{c} A_{rc}` (GraphBLAS `reduce` to vector).
///
/// With plus over integers this is `A·1`, i.e. the degree vector of an
/// adjacency matrix.
pub fn reduce_rows<T, A>(monoid: &A, a: &Csr<T>) -> Vec<T>
where
    T: SemiringValue,
    A: AddMonoid<T>,
{
    (0..a.nrows())
        .map(|r| {
            let (_, vals) = a.row(r);
            vals.iter()
                .fold(monoid.identity(), |acc, &v| monoid.combine(acc, v))
        })
        .collect()
}

/// Full reduction to a scalar: `⊕_{r,c} A_{rc}`.
pub fn reduce_scalar<T, A>(monoid: &A, a: &Csr<T>) -> T
where
    T: SemiringValue,
    A: AddMonoid<T>,
{
    a.values()
        .iter()
        .fold(monoid.identity(), |acc, &v| monoid.combine(acc, v))
}

/// Extract the diagonal as a dense vector: `diag(A) = (I ∘ A)·1` (Def. 6).
/// Missing diagonal entries yield `zero`.
pub fn diag_vector<T: SemiringValue>(a: &Csr<T>, zero: T) -> SparseResult<Vec<T>> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "diag_vector",
            lhs: (a.nrows(), a.ncols()),
            rhs: (a.ncols(), a.nrows()),
        });
    }
    Ok((0..a.nrows())
        .map(|i| a.get(i, i).unwrap_or(zero))
        .collect())
}

/// Build a diagonal matrix from a dense vector, skipping entries for which
/// `is_zero` holds.
pub fn diag_matrix<T: SemiringValue>(d: &[T], mut is_zero: impl FnMut(&T) -> bool) -> Csr<T> {
    let n = d.len();
    let mut row_ptr = Vec::with_capacity(n + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for (i, &v) in d.iter().enumerate() {
        if !is_zero(&v) {
            col_idx.push(i);
            vals.push(v);
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts(n, n, row_ptr, col_idx, vals).expect("diag_matrix builds valid CSR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::Plus;

    fn m(n: usize, t: Vec<(usize, usize, u64)>) -> Csr<u64> {
        Csr::from_coo(
            Coo::from_triplets(n, n, t).unwrap(),
            |a, b| a + b,
            |v| v == 0,
        )
    }

    #[test]
    fn reduce_rows_is_degree_for_binary_adjacency() {
        // Path 0-1-2 as binary adjacency.
        let a = m(3, vec![(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 1, 1)]);
        assert_eq!(reduce_rows(&Plus, &a), vec![1, 2, 1]);
    }

    #[test]
    fn reduce_scalar_totals() {
        let a = m(2, vec![(0, 0, 3), (1, 0, 4)]);
        assert_eq!(reduce_scalar(&Plus, &a), 7);
    }

    #[test]
    fn diag_vector_defaults_missing() {
        let a = m(3, vec![(0, 0, 9), (1, 2, 4)]);
        assert_eq!(diag_vector(&a, 0).unwrap(), vec![9, 0, 0]);
    }

    #[test]
    fn diag_vector_requires_square() {
        let coo = Coo::from_triplets(2, 3, vec![(0usize, 0usize, 1u64)]).unwrap();
        let a = Csr::from_coo(coo, |x, _| x, |v| v == 0);
        assert!(diag_vector(&a, 0).is_err());
    }

    #[test]
    fn diag_matrix_round_trip() {
        let d = vec![1u64, 0, 5];
        let m = diag_matrix(&d, |&v| v == 0);
        assert_eq!(m.nnz(), 2);
        assert_eq!(diag_vector(&m, 0).unwrap(), d);
    }

    #[test]
    fn empty_matrix_reductions() {
        let a = Csr::<u64>::zero(3, 3);
        assert_eq!(reduce_rows(&Plus, &a), vec![0, 0, 0]);
        assert_eq!(reduce_scalar(&Plus, &a), 0);
        assert_eq!(diag_vector(&a, 0).unwrap(), vec![0, 0, 0]);
    }
}
