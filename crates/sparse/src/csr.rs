//! Compressed sparse row storage — the workhorse format of the workspace.
//!
//! Invariants (checked by [`Csr::validate`], relied on everywhere):
//! * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, monotone non-decreasing;
//! * within each row, column indices are strictly increasing (no duplicates);
//! * `col_idx.len() == vals.len() == row_ptr[nrows]`.
//!
//! Values are stored explicitly; kernels treat semiring-zero values as
//! absent where masking semantics require it, but construction drops them
//! eagerly whenever the caller provides an `is_zero` predicate.

use crate::coo::Coo;
use crate::error::{SparseError, SparseResult};
use crate::semiring::SemiringValue;
use crate::Ix;

/// A sparse matrix in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr<T> {
    nrows: Ix,
    ncols: Ix,
    row_ptr: Vec<usize>,
    col_idx: Vec<Ix>,
    vals: Vec<T>,
}

impl<T: SemiringValue> Csr<T> {
    /// An empty (all-zero) matrix of the given shape.
    pub fn zero(nrows: Ix, ncols: Ix) -> Self {
        Csr {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Identity-like diagonal matrix with `value` at each diagonal entry.
    pub fn diagonal(n: Ix, value: T) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            vals: vec![value; n],
        }
    }

    /// Build from raw parts, validating all invariants.
    pub fn from_parts(
        nrows: Ix,
        ncols: Ix,
        row_ptr: Vec<usize>,
        col_idx: Vec<Ix>,
        vals: Vec<T>,
    ) -> SparseResult<Self> {
        let m = Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        };
        m.validate()?;
        Ok(m)
    }

    /// Build from a COO, combining duplicates with `dup` and dropping
    /// entries for which `is_zero` returns true.
    pub fn from_coo(
        coo: Coo<T>,
        mut dup: impl FnMut(T, T) -> T,
        mut is_zero: impl FnMut(T) -> bool,
    ) -> Self {
        let (nrows, ncols, triplets) = coo.compact(&mut dup);
        let mut row_ptr = vec![0usize; nrows + 1];
        let kept: Vec<&(Ix, Ix, T)> = triplets.iter().filter(|(_, _, v)| !is_zero(*v)).collect();
        for (r, _, _) in kept.iter() {
            row_ptr[r + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = Vec::with_capacity(kept.len());
        let mut vals = Vec::with_capacity(kept.len());
        for &&(_, c, v) in kept.iter() {
            col_idx.push(c);
            vals.push(v);
        }
        Csr {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Check the structural invariants.
    pub fn validate(&self) -> SparseResult<()> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(SparseError::Malformed(format!(
                "row_ptr length {} != nrows+1 {}",
                self.row_ptr.len(),
                self.nrows + 1
            )));
        }
        if self.row_ptr[0] != 0 {
            return Err(SparseError::Malformed("row_ptr[0] != 0".into()));
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len()
            || self.col_idx.len() != self.vals.len()
        {
            return Err(SparseError::Malformed(
                "row_ptr end / col_idx / vals length mismatch".into(),
            ));
        }
        for r in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if lo > hi {
                return Err(SparseError::Malformed(format!(
                    "row_ptr decreases at row {r}"
                )));
            }
            let row = &self.col_idx[lo..hi];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(SparseError::Malformed(format!(
                        "row {r} columns not strictly increasing"
                    )));
                }
            }
            if let Some(&last) = row.last() {
                if last >= self.ncols {
                    return Err(SparseError::Malformed(format!(
                        "row {r} column {last} >= ncols {}",
                        self.ncols
                    )));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> Ix {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> Ix {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Row pointer array.
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[inline]
    pub fn col_idx(&self) -> &[Ix] {
        &self.col_idx
    }

    /// Value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Mutable value array (structure is immutable; values may be edited).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [T] {
        &mut self.vals
    }

    /// The `(columns, values)` slices of row `r`.
    #[inline]
    pub fn row(&self, r: Ix) -> (&[Ix], &[T]) {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[lo..hi], &self.vals[lo..hi])
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: Ix) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Look up entry `(r, c)` by binary search within the row.
    pub fn get(&self, r: Ix, c: Ix) -> Option<T> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|k| vals[k])
    }

    /// Iterate all stored entries as `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Ix, Ix, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Map values (structure preserved). The mapper must not introduce
    /// semiring zeros if downstream masking relies on structural sparsity;
    /// use [`crate::ops::apply`] with a zero predicate for that.
    pub fn map<U: SemiringValue>(&self, mut f: impl FnMut(T) -> U) -> Csr<U> {
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.clone(),
            col_idx: self.col_idx.clone(),
            vals: self.vals.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Structure-only comparison (same pattern, values ignored).
    pub fn same_pattern<U: SemiringValue>(&self, other: &Csr<U>) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// Whether the sparsity pattern is symmetric (requires square shape).
    pub fn is_pattern_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        self.iter().all(|(r, c, _)| self.get(c, r).is_some())
    }

    /// True if no diagonal entry is stored.
    pub fn has_no_diagonal(&self) -> bool {
        (0..self.nrows.min(self.ncols)).all(|i| self.get(i, i).is_none())
    }

    /// True if every diagonal entry is stored ("full self loops", Def. 6).
    pub fn has_full_diagonal(&self) -> bool {
        (0..self.nrows.min(self.ncols)).all(|i| self.get(i, i).is_some())
    }
}

impl<T: SemiringValue + Default> Csr<T> {
    /// Convert to a dense row-major buffer (small matrices / tests only).
    pub fn to_dense(&self) -> Vec<T> {
        let mut out = vec![T::default(); self.nrows * self.ncols];
        for (r, c, v) in self.iter() {
            out[r * self.ncols + c] = v;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr<u64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let coo = Coo::from_triplets(
            3,
            3,
            vec![(0usize, 0usize, 1u64), (0, 2, 2), (2, 0, 3), (2, 1, 4)],
        )
        .unwrap();
        Csr::from_coo(coo, |a, b| a + b, |v| v == 0)
    }

    #[test]
    fn from_coo_layout() {
        let m = small();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.col_idx(), &[0, 2, 0, 1]);
        assert_eq!(m.values(), &[1, 2, 3, 4]);
        m.validate().unwrap();
    }

    #[test]
    fn zero_dropping() {
        let coo =
            Coo::from_triplets(2, 2, vec![(0usize, 0usize, 5u64), (0, 1, 0), (1, 1, 0)]).unwrap();
        let m = Csr::from_coo(coo, |a, b| a + b, |v| v == 0);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), Some(5));
        assert_eq!(m.get(0, 1), None);
    }

    #[test]
    fn duplicate_summing_can_cancel() {
        let coo = Coo::from_triplets(1, 1, vec![(0usize, 0usize, 3i64), (0, 0, -3)]).unwrap();
        let m = Csr::from_coo(coo, |a, b| a + b, |v| v == 0);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn get_and_row() {
        let m = small();
        assert_eq!(m.get(2, 1), Some(4));
        assert_eq!(m.get(1, 1), None);
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[3, 4]);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn diagonal_and_predicates() {
        let i = Csr::<u64>::diagonal(3, 1);
        assert!(i.has_full_diagonal());
        assert!(i.is_pattern_symmetric());
        let m = small();
        assert!(!m.has_no_diagonal()); // (0,0) stored
        assert!(!m.is_pattern_symmetric()); // (0,2) stored, (2,0) stored, but (2,1) vs (1,2)
    }

    #[test]
    fn to_dense_round_trip() {
        let m = small();
        let d = m.to_dense();
        assert_eq!(d, vec![1, 0, 2, 0, 0, 0, 3, 4, 0]);
    }

    #[test]
    fn validate_rejects_bad_row_ptr() {
        let bad = Csr::<u64>::from_parts(2, 2, vec![0, 2, 1], vec![0, 1], vec![1, 1]);
        assert!(bad.is_err());
    }

    #[test]
    fn validate_rejects_unsorted_columns() {
        let bad = Csr::<u64>::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1, 1]);
        assert!(bad.is_err());
    }

    #[test]
    fn validate_rejects_column_overflow() {
        let bad = Csr::<u64>::from_parts(1, 2, vec![0, 1], vec![5], vec![1]);
        assert!(bad.is_err());
    }

    #[test]
    fn iter_row_major() {
        let m = small();
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 0, 1), (0, 2, 2), (2, 0, 3), (2, 1, 4)]);
    }

    #[test]
    fn map_preserves_structure() {
        let m = small();
        let f = m.map(|v| v as f64 * 0.5);
        assert!(m.same_pattern(&f));
        assert_eq!(f.get(2, 1), Some(2.0));
    }
}
