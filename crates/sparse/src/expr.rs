//! Deferred (non-blocking) expression evaluation — the GraphBLAS
//! execution model the paper's §I points at: *"a non-blocking execution
//! policy would allow an implementation … deferred/lazy evaluation,
//! elimination of temporaries, and fusion of operations. With these
//! optimizations, a relatively simple GraphBLAS code could be used to
//! sample 4-cycle counts at edges and vertices without materializing the
//! full Kronecker products."*
//!
//! [`MatExpr`] is an expression DAG over `i128` CSR leaves with the
//! operators the ground-truth formulas use: Kronecker product, matrix
//! multiply, Hadamard product, element-wise add, scalar scale, and
//! identity-plus. Three evaluation strategies are provided:
//!
//! * [`MatExpr::eval`] — materialise the whole expression (blocking mode,
//!   for validation);
//! * [`MatExpr::row`] — produce one row as a sparse vector *without
//!   materialising anything*: a `Kron` node combines factor rows, a
//!   `MatMul` node recursively accumulates child rows, etc. Sampling an
//!   entry of `C³ ∘ C` for `C = A ⊗ B` therefore touches only
//!   factor-sized data;
//! * [`MatExpr::diag`] — the fused diagonal: `diag(X ⊗ Y) =
//!   diag(X) ⊗ diag(Y)` (Prop. 2(f)) and `diag(X·Y) = Σ_j X_ij·Y_ji`
//!   evaluated row-by-row, never forming the product matrix.

use std::rc::Rc;

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};
use crate::Ix;

/// A deferred matrix expression over `i128` values.
#[derive(Clone, Debug)]
pub enum MatExpr {
    /// A concrete CSR matrix.
    Leaf(Rc<Csr<i128>>),
    /// Kronecker product of two subexpressions.
    Kron(Rc<MatExpr>, Rc<MatExpr>),
    /// Matrix–matrix product.
    MatMul(Rc<MatExpr>, Rc<MatExpr>),
    /// Hadamard (element-wise) product.
    Hadamard(Rc<MatExpr>, Rc<MatExpr>),
    /// Element-wise sum.
    Add(Rc<MatExpr>, Rc<MatExpr>),
    /// Scalar multiple.
    Scale(i128, Rc<MatExpr>),
    /// `X + I` — the paper's self-loop construction, kept symbolic so
    /// `(A + I) ⊗ B` never materialises `A + I`.
    PlusIdentity(Rc<MatExpr>),
}

/// A sparse row: strictly increasing columns with values.
pub type SparseRow = Vec<(Ix, i128)>;

fn merge_rows(a: &SparseRow, b: &SparseRow, f: impl Fn(i128, i128) -> i128) -> SparseRow {
    // Union merge with `f(a, 0)` / `f(0, b)` semantics.
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let v = match (a.get(i), b.get(j)) {
            (Some(&(ca, va)), Some(&(cb, vb))) => match ca.cmp(&cb) {
                std::cmp::Ordering::Less => {
                    i += 1;
                    (ca, f(va, 0))
                }
                std::cmp::Ordering::Greater => {
                    j += 1;
                    (cb, f(0, vb))
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                    (ca, f(va, vb))
                }
            },
            (Some(&(ca, va)), None) => {
                i += 1;
                (ca, f(va, 0))
            }
            (None, Some(&(cb, vb))) => {
                j += 1;
                (cb, f(0, vb))
            }
            (None, None) => unreachable!(),
        };
        if v.1 != 0 {
            out.push(v);
        }
    }
    out
}

impl MatExpr {
    /// Wrap a concrete matrix.
    pub fn leaf(m: Csr<i128>) -> Self {
        MatExpr::Leaf(Rc::new(m))
    }

    /// `self ⊗ rhs`.
    pub fn kron(self, rhs: MatExpr) -> Self {
        MatExpr::Kron(Rc::new(self), Rc::new(rhs))
    }

    /// `self · rhs`.
    pub fn matmul(self, rhs: MatExpr) -> Self {
        MatExpr::MatMul(Rc::new(self), Rc::new(rhs))
    }

    /// `self ∘ rhs`.
    pub fn hadamard(self, rhs: MatExpr) -> Self {
        MatExpr::Hadamard(Rc::new(self), Rc::new(rhs))
    }

    /// `c · self`.
    pub fn scale(self, c: i128) -> Self {
        MatExpr::Scale(c, Rc::new(self))
    }

    /// `self + I`.
    pub fn plus_identity(self) -> Self {
        MatExpr::PlusIdentity(Rc::new(self))
    }

    /// `(rows, cols)` of the expression.
    pub fn shape(&self) -> (Ix, Ix) {
        match self {
            MatExpr::Leaf(m) => (m.nrows(), m.ncols()),
            MatExpr::Kron(a, b) => {
                let (ra, ca) = a.shape();
                let (rb, cb) = b.shape();
                (ra * rb, ca * cb)
            }
            MatExpr::MatMul(a, b) => (a.shape().0, b.shape().1),
            MatExpr::Hadamard(a, _) | MatExpr::Add(a, _) => a.shape(),
            MatExpr::Scale(_, a) => a.shape(),
            MatExpr::PlusIdentity(a) => a.shape(),
        }
    }

    /// Validate shapes throughout the DAG.
    pub fn check(&self) -> SparseResult<()> {
        match self {
            MatExpr::Leaf(_) => Ok(()),
            MatExpr::Kron(a, b) => {
                a.check()?;
                b.check()
            }
            MatExpr::MatMul(a, b) => {
                a.check()?;
                b.check()?;
                if a.shape().1 != b.shape().0 {
                    return Err(SparseError::DimensionMismatch {
                        op: "expr matmul",
                        lhs: a.shape(),
                        rhs: b.shape(),
                    });
                }
                Ok(())
            }
            MatExpr::Hadamard(a, b) | MatExpr::Add(a, b) => {
                a.check()?;
                b.check()?;
                if a.shape() != b.shape() {
                    return Err(SparseError::DimensionMismatch {
                        op: "expr elementwise",
                        lhs: a.shape(),
                        rhs: b.shape(),
                    });
                }
                Ok(())
            }
            MatExpr::Scale(_, a) => a.check(),
            MatExpr::PlusIdentity(a) => {
                a.check()?;
                let (r, c) = a.shape();
                if r != c {
                    return Err(SparseError::DimensionMismatch {
                        op: "expr plus_identity",
                        lhs: (r, c),
                        rhs: (c, r),
                    });
                }
                Ok(())
            }
        }
    }

    /// Row `r` as a sparse vector — **no materialisation** of any
    /// intermediate matrix. This is the paper's sampling path: for
    /// `C = A ⊗ B`, `C³∘C` entries are reachable through factor rows only.
    pub fn row(&self, r: Ix) -> SparseRow {
        match self {
            MatExpr::Leaf(m) => {
                let (cols, vals) = m.row(r);
                cols.iter().copied().zip(vals.iter().copied()).collect()
            }
            MatExpr::Kron(a, b) => {
                let (_, cb) = b.shape();
                let (rb, _) = b.shape();
                let (i, k) = (r / rb, r % rb);
                let ra_row = a.row(i);
                let rb_row = b.row(k);
                let mut out = Vec::with_capacity(ra_row.len() * rb_row.len());
                for &(j, va) in &ra_row {
                    for &(l, vb) in &rb_row {
                        out.push((j * cb, l, va * vb));
                    }
                }
                out.into_iter().map(|(base, l, v)| (base + l, v)).collect()
            }
            MatExpr::MatMul(a, b) => {
                let mut acc: SparseRow = Vec::new();
                for &(c, v) in &a.row(r) {
                    let scaled: SparseRow =
                        b.row(c).into_iter().map(|(cc, vv)| (cc, v * vv)).collect();
                    acc = merge_rows(&acc, &scaled, |x, y| x + y);
                }
                acc
            }
            MatExpr::Hadamard(a, b) => merge_rows(&a.row(r), &b.row(r), |x, y| x * y),
            MatExpr::Add(a, b) => merge_rows(&a.row(r), &b.row(r), |x, y| x + y),
            MatExpr::Scale(c, a) => a
                .row(r)
                .into_iter()
                .map(|(col, v)| (col, c * v))
                .filter(|&(_, v)| v != 0)
                .collect(),
            MatExpr::PlusIdentity(a) => {
                let eye: SparseRow = vec![(r, 1)];
                merge_rows(&a.row(r), &eye, |x, y| x + y)
            }
        }
    }

    /// Single-entry sample: `self[r, c]`.
    pub fn entry(&self, r: Ix, c: Ix) -> i128 {
        self.row(r)
            .into_iter()
            .find(|&(col, _)| col == c)
            .map_or(0, |(_, v)| v)
    }

    /// Fused diagonal extraction. `Kron` nodes recurse into
    /// `diag(X) ⊗ diag(Y)` (Prop. 2(f)) without touching rows at all;
    /// other nodes fall back to per-row evaluation.
    pub fn diag(&self) -> Vec<i128> {
        match self {
            MatExpr::Kron(a, b) => {
                let da = a.diag();
                let db = b.diag();
                crate::kron::kron_vec(&da, &db)
            }
            MatExpr::Add(a, b) => a
                .diag()
                .into_iter()
                .zip(b.diag())
                .map(|(x, y)| x + y)
                .collect(),
            MatExpr::Hadamard(a, b) => a
                .diag()
                .into_iter()
                .zip(b.diag())
                .map(|(x, y)| x * y)
                .collect(),
            MatExpr::Scale(c, a) => a.diag().into_iter().map(|x| c * x).collect(),
            MatExpr::PlusIdentity(a) => a.diag().into_iter().map(|x| x + 1).collect(),
            _ => {
                let (n, _) = self.shape();
                (0..n).map(|r| self.entry(r, r)).collect()
            }
        }
    }

    /// Materialise the expression (blocking evaluation) — used to verify
    /// the deferred paths.
    pub fn eval(&self) -> SparseResult<Csr<i128>> {
        self.check()?;
        let (nrows, ncols) = self.shape();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut vals = Vec::new();
        for r in 0..nrows {
            for (c, v) in self.row(r) {
                col_idx.push(c);
                vals.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Csr::from_parts(nrows, ncols, row_ptr, col_idx, vals)
    }
}

impl std::ops::Add for MatExpr {
    type Output = MatExpr;

    /// `self + rhs` (element-wise).
    fn add(self, rhs: MatExpr) -> MatExpr {
        MatExpr::Add(Rc::new(self), Rc::new(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::ewise::ewise_mult;
    use crate::kron::kron;
    use crate::semiring::{i128_plus_times, Times};
    use crate::spgemm::spgemm;

    fn m(n: usize, t: Vec<(usize, usize, i128)>) -> Csr<i128> {
        Csr::from_coo(
            Coo::from_triplets(n, n, t).unwrap(),
            |a, b| a + b,
            |v| v == 0,
        )
    }

    fn c4() -> Csr<i128> {
        m(
            4,
            vec![
                (0, 1, 1),
                (1, 0, 1),
                (1, 2, 1),
                (2, 1, 1),
                (2, 3, 1),
                (3, 2, 1),
                (3, 0, 1),
                (0, 3, 1),
            ],
        )
    }

    fn k3() -> Csr<i128> {
        m(
            3,
            vec![
                (0, 1, 1),
                (1, 0, 1),
                (1, 2, 1),
                (2, 1, 1),
                (0, 2, 1),
                (2, 0, 1),
            ],
        )
    }

    #[test]
    fn eval_matches_eager_kernels() {
        let a = k3();
        let b = c4();
        let s = i128_plus_times();
        // (A ⊗ B)·(A ⊗ B) ∘ (A ⊗ B)
        let expr = MatExpr::leaf(a.clone())
            .kron(MatExpr::leaf(b.clone()))
            .matmul(MatExpr::leaf(a.clone()).kron(MatExpr::leaf(b.clone())))
            .hadamard(MatExpr::leaf(a.clone()).kron(MatExpr::leaf(b.clone())));
        let lazy = expr.eval().unwrap();
        let c = kron(&Times, &a, &b).unwrap();
        let c2 = spgemm(&s, &c, &c).unwrap();
        let eager = ewise_mult(&c2, &c, |x, y| x * y, |&v| v == 0).unwrap();
        assert_eq!(lazy.to_dense(), eager.to_dense());
    }

    #[test]
    fn entry_sampling_without_materialisation() {
        // C³ entries for C = A ⊗ B, sampled pointwise.
        let a = k3();
        let b = c4();
        let c_expr = MatExpr::leaf(a.clone()).kron(MatExpr::leaf(b.clone()));
        let c3_expr = c_expr.clone().matmul(c_expr.clone()).matmul(c_expr.clone());
        let s = i128_plus_times();
        let c = kron(&Times, &a, &b).unwrap();
        let c3 = spgemm(&s, &spgemm(&s, &c, &c).unwrap(), &c).unwrap();
        for (r, col) in [(0, 1), (3, 7), (11, 2), (5, 5)] {
            assert_eq!(
                c3_expr.entry(r, col),
                c3.get(r, col).unwrap_or(0),
                "entry ({r},{col})"
            );
        }
    }

    #[test]
    fn plus_identity_is_symbolic() {
        // ((A + I) ⊗ B) matches the eager construction.
        let a = c4();
        let b = k3();
        let expr = MatExpr::leaf(a.clone())
            .plus_identity()
            .kron(MatExpr::leaf(b.clone()));
        let eye = Csr::<i128>::diagonal(4, 1);
        let apl = crate::ewise::ewise_add(&a, &eye, |x, y| x + y, |&v| v == 0).unwrap();
        let eager = kron(&Times, &apl, &b).unwrap();
        assert_eq!(expr.eval().unwrap().to_dense(), eager.to_dense());
    }

    #[test]
    fn fused_diag_of_kron_power() {
        // diag((A ⊗ B)⁴) via the fused path equals the materialised one.
        let a = k3();
        let b = c4();
        let c_expr = MatExpr::leaf(a).kron(MatExpr::leaf(b));
        let c4_expr = c_expr
            .clone()
            .matmul(c_expr.clone())
            .matmul(c_expr.clone())
            .matmul(c_expr.clone());
        let diag_fused = c4_expr.diag();
        let mat = c4_expr.eval().unwrap();
        let diag_direct = crate::reduce::diag_vector(&mat, 0).unwrap();
        assert_eq!(diag_fused, diag_direct);
    }

    #[test]
    fn kron_fusion_equals_mixed_product_form() {
        // diag((A⁴) ⊗ (B⁴)) (pure Kron fusion, no row evaluation) equals
        // diag((A ⊗ B)⁴) — the mixed-product property end to end.
        let a = k3();
        let b = c4();
        let pow4 = |m: &Csr<i128>| {
            let e = MatExpr::leaf(m.clone());
            e.clone().matmul(e.clone()).matmul(e.clone()).matmul(e)
        };
        let fused = pow4(&a).kron(pow4(&b)).diag();
        let c_expr = MatExpr::leaf(a).kron(MatExpr::leaf(b));
        let direct = c_expr
            .clone()
            .matmul(c_expr.clone())
            .matmul(c_expr.clone())
            .matmul(c_expr)
            .diag();
        assert_eq!(fused, direct);
    }

    #[test]
    fn scale_and_add() {
        let a = k3();
        let expr = MatExpr::leaf(a.clone()).scale(3) + MatExpr::leaf(a.clone()).scale(-3);
        let out = expr.eval().unwrap();
        assert_eq!(out.nnz(), 0); // exact cancellation drops entries
    }

    #[test]
    fn shape_checking() {
        let a = k3();
        let b = c4();
        let bad = MatExpr::leaf(a.clone()).matmul(MatExpr::leaf(b.clone()));
        assert!(bad.check().is_err());
        let bad2 = MatExpr::leaf(a.clone()).hadamard(MatExpr::leaf(b));
        assert!(bad2.check().is_err());
        let ok = MatExpr::leaf(a.clone()).kron(MatExpr::leaf(a));
        ok.check().unwrap();
        assert_eq!(ok.shape(), (9, 9));
    }

    #[test]
    fn row_cost_touches_factors_only() {
        // Structural check: a single row of (A ⊗ B)³ on moderately sized
        // factors evaluates quickly even though the cube would have ~n⁶
        // work if materialised. We settle for correctness plus a sanity
        // bound on the returned row length.
        let n = 20;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1i128).unwrap();
            coo.push((i + 1) % n, i, 1i128).unwrap();
        }
        let ring = Csr::from_coo(coo, |a, b| a + b, |v| v == 0);
        let c = MatExpr::leaf(ring.clone()).kron(MatExpr::leaf(ring));
        let c3 = c.clone().matmul(c.clone()).matmul(c);
        let row = c3.row(123);
        assert!(!row.is_empty());
        assert!(row.len() <= 36); // ≤ (2·3)² reachable columns in a torus
        for w in row.windows(2) {
            assert!(w[0].0 < w[1].0, "row columns must be sorted");
        }
    }
}
