//! Submatrix extraction (`GrB_extract`) — pulling the adjacency of a
//! vertex subset out of a larger matrix, used by the community analytics
//! to work on induced subgraphs.

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};
use crate::semiring::SemiringValue;
use crate::Ix;

/// Extract the submatrix `A[rows, cols]`, relabelling indices to
/// `0..rows.len()` × `0..cols.len()`. Index lists must be strictly
/// increasing (checked).
pub fn extract<T: SemiringValue>(a: &Csr<T>, rows: &[Ix], cols: &[Ix]) -> SparseResult<Csr<T>> {
    for w in rows.windows(2) {
        if w[0] >= w[1] {
            return Err(SparseError::Malformed(
                "extract: row list must be strictly increasing".into(),
            ));
        }
    }
    for w in cols.windows(2) {
        if w[0] >= w[1] {
            return Err(SparseError::Malformed(
                "extract: col list must be strictly increasing".into(),
            ));
        }
    }
    if let Some(&r) = rows.last() {
        if r >= a.nrows() {
            return Err(SparseError::IndexOutOfBounds {
                row: r,
                col: 0,
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
    }
    if let Some(&c) = cols.last() {
        if c >= a.ncols() {
            return Err(SparseError::IndexOutOfBounds {
                row: 0,
                col: c,
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
    }
    // Column old→new map.
    let mut col_map = vec![usize::MAX; a.ncols()];
    for (new, &old) in cols.iter().enumerate() {
        col_map[old] = new;
    }
    let mut row_ptr = Vec::with_capacity(rows.len() + 1);
    row_ptr.push(0usize);
    let mut col_idx = Vec::new();
    let mut vals = Vec::new();
    for &r in rows {
        let (rc, rv) = a.row(r);
        for (&c, &v) in rc.iter().zip(rv) {
            let nc = col_map[c];
            if nc != usize::MAX {
                col_idx.push(nc);
                vals.push(v);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Csr::from_parts(rows.len(), cols.len(), row_ptr, col_idx, vals)
}

/// Extract the principal (symmetric) submatrix `A[s, s]`.
pub fn extract_principal<T: SemiringValue>(a: &Csr<T>, s: &[Ix]) -> SparseResult<Csr<T>> {
    extract(a, s, s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn m(n: usize, t: Vec<(usize, usize, i64)>) -> Csr<i64> {
        Csr::from_coo(
            Coo::from_triplets(n, n, t).unwrap(),
            |a, b| a + b,
            |v| v == 0,
        )
    }

    #[test]
    fn extract_rectangle() {
        let a = m(4, vec![(0, 0, 1), (0, 3, 2), (2, 1, 3), (3, 3, 4)]);
        let s = extract(&a, &[0, 2], &[1, 3]).unwrap();
        assert_eq!(s.nrows(), 2);
        assert_eq!(s.ncols(), 2);
        assert_eq!(s.get(0, 1), Some(2)); // old (0,3)
        assert_eq!(s.get(1, 0), Some(3)); // old (2,1)
        assert_eq!(s.nnz(), 2);
    }

    #[test]
    fn principal_submatrix_keeps_symmetry() {
        let a = m(
            4,
            vec![(0, 1, 1), (1, 0, 1), (1, 3, 2), (3, 1, 2), (2, 2, 9)],
        );
        let s = extract_principal(&a, &[0, 1, 3]).unwrap();
        assert!(s.is_pattern_symmetric());
        assert_eq!(s.get(1, 2), Some(2)); // old (1,3)
        assert_eq!(s.get(2, 1), Some(2));
    }

    #[test]
    fn unsorted_or_out_of_range_rejected() {
        let a = m(3, vec![(0, 0, 1)]);
        assert!(extract(&a, &[1, 0], &[0]).is_err());
        assert!(extract(&a, &[0, 0], &[0]).is_err());
        assert!(extract(&a, &[0, 5], &[0]).is_err());
        assert!(extract(&a, &[0], &[7]).is_err());
    }

    #[test]
    fn empty_selection() {
        let a = m(3, vec![(0, 0, 1)]);
        let s = extract(&a, &[], &[]).unwrap();
        assert_eq!((s.nrows(), s.ncols(), s.nnz()), (0, 0, 0));
    }
}
