//! Semiring abstractions in the GraphBLAS style.
//!
//! A [`Semiring`] couples a commutative [`AddMonoid`] (the "reduce" of a dot
//! product) with a [`MulOp`] (the "combine"). All sparse kernels in this
//! crate are generic over a semiring, so a single SpGEMM implementation
//! serves walk counting (`plus_times` over integers), boolean reachability
//! (`or_and`), shortest hops (`min_plus`) and wedge counting (`plus_pair`).

use std::fmt::Debug;

/// Values storable in sparse containers.
///
/// `Copy + Send + Sync` keeps kernels allocation-free and rayon-friendly;
/// every value type the workspace uses (machine integers, floats, bool) is
/// trivially copyable.
pub trait SemiringValue: Copy + Clone + Debug + PartialEq + Send + Sync + 'static {}
impl<T: Copy + Clone + Debug + PartialEq + Send + Sync + 'static> SemiringValue for T {}

/// A commutative monoid used as the additive component of a semiring.
pub trait AddMonoid<T: SemiringValue>: Copy + Send + Sync {
    /// The monoid identity (GraphBLAS "zero").
    fn identity(&self) -> T;
    /// The associative, commutative combination.
    fn combine(&self, a: T, b: T) -> T;
}

/// A binary multiplicative operator feeding an [`AddMonoid`].
pub trait MulOp<T: SemiringValue>: Copy + Send + Sync {
    /// Combine one left-hand and one right-hand entry.
    fn mul(&self, a: T, b: T) -> T;
}

/// A GraphBLAS-style semiring: `(add, mul, zero)`.
///
/// The `is_zero` predicate lets kernels drop explicit zeros so structural
/// sparsity is preserved through arithmetic (GraphBLAS implementations are
/// permitted, but not required, to do this; bikron relies on it so that
/// `A³ ∘ A` masks behave set-theoretically).
#[derive(Copy, Clone, Debug)]
pub struct Semiring<T: SemiringValue, A: AddMonoid<T>, M: MulOp<T>> {
    /// Additive monoid.
    pub add: A,
    /// Multiplicative operator.
    pub mul: M,
    _marker: std::marker::PhantomData<T>,
}

impl<T: SemiringValue, A: AddMonoid<T>, M: MulOp<T>> Semiring<T, A, M> {
    /// Build a semiring from its two components.
    pub fn new(add: A, mul: M) -> Self {
        Semiring {
            add,
            mul,
            _marker: std::marker::PhantomData,
        }
    }

    /// The additive identity.
    #[inline]
    pub fn zero(&self) -> T {
        self.add.identity()
    }

    /// `a ⊕ b`.
    #[inline]
    pub fn plus(&self, a: T, b: T) -> T {
        self.add.combine(a, b)
    }

    /// `a ⊗ b`.
    #[inline]
    pub fn times(&self, a: T, b: T) -> T {
        self.mul.mul(a, b)
    }

    /// Whether a value equals the additive identity (used to drop zeros).
    #[inline]
    pub fn is_zero(&self, a: T) -> bool {
        a == self.add.identity()
    }
}

// ---------------------------------------------------------------------------
// Concrete monoids / operators.
// ---------------------------------------------------------------------------

/// Numeric addition with identity 0.
#[derive(Copy, Clone, Debug, Default)]
pub struct Plus;

/// Numeric multiplication.
#[derive(Copy, Clone, Debug, Default)]
pub struct Times;

/// Constant-one multiplication (`pair` in GraphBLAS): used for wedge and
/// path *existence* counting where the product of two present entries is 1.
#[derive(Copy, Clone, Debug, Default)]
pub struct Pair;

/// Minimum with identity `MAX`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Min;

/// Boolean OR with identity `false`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Or;

/// Boolean AND.
#[derive(Copy, Clone, Debug, Default)]
pub struct And;

macro_rules! impl_plus_times {
    ($($t:ty),*) => {$(
        impl AddMonoid<$t> for Plus {
            #[inline]
            fn identity(&self) -> $t { 0 as $t }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { a.wrapping_add(b) }
        }
        impl MulOp<$t> for Times {
            #[inline]
            fn mul(&self, a: $t, b: $t) -> $t { a.wrapping_mul(b) }
        }
        impl MulOp<$t> for Pair {
            #[inline]
            fn mul(&self, _a: $t, _b: $t) -> $t { 1 as $t }
        }
    )*};
}
impl_plus_times!(u32, u64, u128, i32, i64, i128, usize);

impl AddMonoid<f64> for Plus {
    #[inline]
    fn identity(&self) -> f64 {
        0.0
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}
impl MulOp<f64> for Times {
    #[inline]
    fn mul(&self, a: f64, b: f64) -> f64 {
        a * b
    }
}
impl MulOp<f64> for Pair {
    #[inline]
    fn mul(&self, _a: f64, _b: f64) -> f64 {
        1.0
    }
}

impl AddMonoid<u64> for Min {
    #[inline]
    fn identity(&self) -> u64 {
        u64::MAX
    }
    #[inline]
    fn combine(&self, a: u64, b: u64) -> u64 {
        a.min(b)
    }
}

/// Saturating addition used as the multiplicative op of min-plus so that
/// `MAX + w` does not wrap.
#[derive(Copy, Clone, Debug, Default)]
pub struct SaturatingPlus;

impl MulOp<u64> for SaturatingPlus {
    #[inline]
    fn mul(&self, a: u64, b: u64) -> u64 {
        a.saturating_add(b)
    }
}

impl AddMonoid<bool> for Or {
    #[inline]
    fn identity(&self) -> bool {
        false
    }
    #[inline]
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}
impl MulOp<bool> for And {
    #[inline]
    fn mul(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

// ---------------------------------------------------------------------------
// Canonical semiring constructors.
// ---------------------------------------------------------------------------

/// `(+, ×, 0)` over `u64` — walk counting.
pub fn u64_plus_times() -> Semiring<u64, Plus, Times> {
    Semiring::new(Plus, Times)
}

/// `(+, ×, 0)` over `i64`.
pub fn i64_plus_times() -> Semiring<i64, Plus, Times> {
    Semiring::new(Plus, Times)
}

/// `(+, ×, 0)` over `i128` — formula internals with large intermediates.
pub fn i128_plus_times() -> Semiring<i128, Plus, Times> {
    Semiring::new(Plus, Times)
}

/// `(+, ×, 0)` over `f64`.
pub fn f64_plus_times() -> Semiring<f64, Plus, Times> {
    Semiring::new(Plus, Times)
}

/// `(+, pair, 0)` over `u64` — counts *pairs* of incident entries (wedges).
pub fn u64_plus_pair() -> Semiring<u64, Plus, Pair> {
    Semiring::new(Plus, Pair)
}

/// `(min, +, ∞)` over `u64` — hop distances.
pub fn u64_min_plus() -> Semiring<u64, Min, SaturatingPlus> {
    Semiring::new(Min, SaturatingPlus)
}

/// `(∨, ∧, false)` over `bool` — reachability.
pub fn bool_or_and() -> Semiring<bool, Or, And> {
    Semiring::new(Or, And)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_times_u64_basics() {
        let s = u64_plus_times();
        assert_eq!(s.zero(), 0);
        assert_eq!(s.plus(2, 3), 5);
        assert_eq!(s.times(2, 3), 6);
        assert!(s.is_zero(0));
        assert!(!s.is_zero(1));
    }

    #[test]
    fn plus_pair_counts_presence() {
        let s = u64_plus_pair();
        assert_eq!(s.times(17, 23), 1);
        assert_eq!(s.plus(1, 1), 2);
    }

    #[test]
    fn min_plus_identity_absorbs() {
        let s = u64_min_plus();
        assert_eq!(s.zero(), u64::MAX);
        // MAX saturates rather than wrapping.
        assert_eq!(s.times(u64::MAX, 1), u64::MAX);
        assert_eq!(s.plus(u64::MAX, 4), 4);
        assert_eq!(s.times(3, 4), 7);
    }

    #[test]
    fn bool_or_and() {
        let s = super::bool_or_and();
        assert!(!s.zero());
        assert!(s.plus(false, true));
        assert!(s.times(true, true));
        assert!(!s.times(true, false));
    }

    #[test]
    fn i128_handles_large_intermediates() {
        let s = i128_plus_times();
        let big = 1i128 << 100;
        assert_eq!(s.times(big, 2), 1i128 << 101);
    }

    #[test]
    fn monoid_commutes_and_associates_spot() {
        let s = u64_plus_times();
        for a in 0..5u64 {
            for b in 0..5u64 {
                assert_eq!(s.plus(a, b), s.plus(b, a));
                for c in 0..5u64 {
                    assert_eq!(s.plus(s.plus(a, b), c), s.plus(a, s.plus(b, c)));
                }
            }
        }
    }
}
