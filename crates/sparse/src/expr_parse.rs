//! Parser for Kronecker **expression programs** — the `--expr` surface of
//! `bikron serve`.
//!
//! [`MatExpr`](crate::MatExpr) models general matrix expressions but is a
//! programmatic API: nothing in the workspace could *parse* one, and its
//! errors ([`SparseError`](crate::SparseError)) carry no source position.
//! This module closes that gap for the subset the serving layer can answer
//! with closed-form ground truth: **pure Kronecker chains** of named
//! factors, each optionally lifted by the identity (`A + I`, the paper's
//! §IV self-loop construction).
//!
//! # Grammar
//!
//! ```text
//! expr   := term (("⊗" | "kron") term)*
//! term   := atom power?
//! power  := "^" ("{" "⊗"? INT "}" | "⊗"? INT)
//! atom   := NAME | "(" expr ")" | "(" NAME "+" "I" ")"
//! NAME   := [A-Za-z_][A-Za-z0-9_]*   (except the keywords "kron" and "I")
//! ```
//!
//! `⊗` and `kron` are interchangeable spellings of the Kronecker product;
//! `A^{⊗3}`, `A^⊗3` and `A^3` all denote the 3-fold power tower
//! `A⊗A⊗A` (powers distribute over parenthesised sub-chains, so
//! `(A⊗B)^2` is `A⊗B⊗A⊗B`). `+ I` binds to a single named factor only —
//! `(A⊗B + I)` is rejected because the sum of a chain and the identity is
//! no longer a Kronecker chain and has no compositional ground truth.
//!
//! Parsing **flattens** the expression to an ordered list of
//! [`ChainLevel`]s; semantic validation (name binding, loop-freeness,
//! product size) belongs to the consumer that owns the factor graphs.
//!
//! # Errors
//!
//! Every error is an [`ExprParseError`] carrying a 1-based **character
//! column** (so the multi-byte `⊗` still counts as one column), the
//! offending token, and a message. The CLI points at the failing column
//! verbatim.

use std::fmt;

/// One level of a flattened Kronecker chain: a named factor, optionally
/// lifted by the identity (`(NAME + I)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainLevel {
    /// The factor name as written (binding to a graph happens later).
    pub name: String,
    /// Whether this level is `NAME + I` rather than bare `NAME`.
    pub plus_identity: bool,
}

/// A parsed, flattened Kronecker expression: `levels[0] ⊗ levels[1] ⊗ …`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprChain {
    /// The factor chain, outermost (most significant index digit) first.
    pub levels: Vec<ChainLevel>,
}

impl ExprChain {
    /// The canonicalised spelling: power towers expanded, one `⊗` between
    /// levels, identity lifts written `(NAME+I)`. Two expressions denote
    /// the same program iff their canonical strings are equal, which is
    /// why cache keys and `/v1/stats` report this form.
    pub fn canonical(&self) -> String {
        let parts: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                if l.plus_identity {
                    format!("({}+I)", l.name)
                } else {
                    l.name.clone()
                }
            })
            .collect();
        parts.join("⊗")
    }
}

/// Hard cap on the number of flattened levels. Power towers expand at
/// parse time, so this bounds the expansion before any graph is loaded;
/// real products overflow `usize` long before 64 non-trivial factors.
pub const MAX_CHAIN_LEVELS: usize = 64;

/// A positioned parse error: 1-based character column, the offending
/// token (`"end of input"` when the expression ended too early), and what
/// the parser expected instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprParseError {
    /// 1-based column of the offending token, counted in characters.
    pub column: usize,
    /// The offending lexeme, or `"end of input"`.
    pub token: String,
    /// What went wrong / what was expected.
    pub message: String,
}

impl fmt::Display for ExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "column {}: {} (found {})",
            self.column, self.message, self.token
        )
    }
}

impl std::error::Error for ExprParseError {}

/// Parse an expression program into its flattened chain.
///
/// ```
/// use bikron_sparse::parse_expr;
/// let chain = parse_expr("(A+I) ⊗ B kron C").unwrap();
/// assert_eq!(chain.canonical(), "(A+I)⊗B⊗C");
/// let tower = parse_expr("A^{⊗3}").unwrap();
/// assert_eq!(tower.canonical(), "A⊗A⊗A");
/// let err = parse_expr("A ⊗ ⊗ B").unwrap_err();
/// assert_eq!(err.column, 5);
/// ```
pub fn parse_expr(input: &str) -> Result<ExprChain, ExprParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let levels = p.expr()?;
    let tok = p.peek();
    if !matches!(tok.kind, TokKind::Eof) {
        return Err(err_at(
            tok,
            if matches!(tok.kind, TokKind::Plus) {
                "'+' is only valid inside '(NAME + I)'"
            } else {
                "expected '⊗', 'kron' or end of expression"
            },
        ));
    }
    if levels.len() > MAX_CHAIN_LEVELS {
        return Err(ExprParseError {
            column: 1,
            token: input.chars().take(16).collect(),
            message: format!(
                "expression expands to {} levels; the maximum is {MAX_CHAIN_LEVELS}",
                levels.len()
            ),
        });
    }
    Ok(ExprChain { levels })
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokKind {
    Name(String),
    Int(u64),
    Kron,   // `⊗` or the keyword `kron`
    Plus,   // `+`
    Ident,  // the keyword `I`
    Caret,  // `^`
    LParen, // `(`
    RParen, // `)`
    LBrace, // `{`
    RBrace, // `}`
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    kind: TokKind,
    column: usize,
    text: String,
}

fn err_at(tok: &Token, message: impl Into<String>) -> ExprParseError {
    ExprParseError {
        column: tok.column,
        token: if matches!(tok.kind, TokKind::Eof) {
            "end of input".to_string()
        } else {
            format!("'{}'", tok.text)
        },
        message: message.into(),
    }
}

fn tokenize(input: &str) -> Result<Vec<Token>, ExprParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let column = i + 1;
        let simple = |kind: TokKind| Token {
            kind,
            column,
            text: c.to_string(),
        };
        match c {
            ' ' | '\t' => {
                i += 1;
                continue;
            }
            '⊗' | '*' => tokens.push(simple(TokKind::Kron)),
            '+' => tokens.push(simple(TokKind::Plus)),
            '^' => tokens.push(simple(TokKind::Caret)),
            '(' => tokens.push(simple(TokKind::LParen)),
            ')' => tokens.push(simple(TokKind::RParen)),
            '{' => tokens.push(simple(TokKind::LBrace)),
            '}' => tokens.push(simple(TokKind::RBrace)),
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let value = text.parse::<u64>().map_err(|_| ExprParseError {
                    column,
                    token: format!("'{text}'"),
                    message: "integer is too large".to_string(),
                })?;
                tokens.push(Token {
                    kind: TokKind::Int(value),
                    column,
                    text,
                });
                continue;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let kind = match text.as_str() {
                    "kron" => TokKind::Kron,
                    "I" => TokKind::Ident,
                    _ => TokKind::Name(text.clone()),
                };
                tokens.push(Token { kind, column, text });
                continue;
            }
            other => {
                return Err(ExprParseError {
                    column,
                    token: format!("'{other}'"),
                    message: "unexpected character".to_string(),
                });
            }
        }
        i += 1;
    }
    tokens.push(Token {
        kind: TokKind::Eof,
        column: chars.len() + 1,
        text: String::new(),
    });
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        tok
    }

    /// `expr := term (("⊗" | "kron") term)*`
    fn expr(&mut self) -> Result<Vec<ChainLevel>, ExprParseError> {
        let mut levels = self.term()?;
        while matches!(self.peek().kind, TokKind::Kron) {
            self.bump();
            levels.extend(self.term()?);
        }
        Ok(levels)
    }

    /// `term := atom power?`
    fn term(&mut self) -> Result<Vec<ChainLevel>, ExprParseError> {
        let base = self.atom()?;
        if matches!(self.peek().kind, TokKind::Caret) {
            self.bump();
            let k = self.power_exponent()?;
            let mut levels = Vec::with_capacity(base.len() * k as usize);
            for _ in 0..k {
                levels.extend(base.iter().cloned());
                if levels.len() > MAX_CHAIN_LEVELS {
                    break; // parse_expr reports the overflow with the count
                }
            }
            Ok(levels)
        } else {
            Ok(base)
        }
    }

    /// `power := "^" ("{" "⊗"? INT "}" | "⊗"? INT)` — the `^` is already
    /// consumed; accepts `^{⊗3}`, `^⊗3`, `^{3}` and `^3`.
    fn power_exponent(&mut self) -> Result<u64, ExprParseError> {
        let braced = matches!(self.peek().kind, TokKind::LBrace);
        if braced {
            self.bump();
        }
        if matches!(self.peek().kind, TokKind::Kron) {
            self.bump();
        }
        let tok = self.bump();
        let k = match tok.kind {
            TokKind::Int(k) => k,
            _ => return Err(err_at(&tok, "expected an integer exponent after '^'")),
        };
        if k == 0 {
            return Err(ExprParseError {
                column: tok.column,
                token: format!("'{}'", tok.text),
                message: "power must be at least 1".to_string(),
            });
        }
        if braced {
            let close = self.bump();
            if !matches!(close.kind, TokKind::RBrace) {
                return Err(err_at(&close, "expected '}' to close the exponent"));
            }
        }
        Ok(k)
    }

    /// `atom := NAME | "(" expr ")" | "(" NAME "+" "I" ")"`
    fn atom(&mut self) -> Result<Vec<ChainLevel>, ExprParseError> {
        let tok = self.bump();
        match tok.kind {
            TokKind::Name(name) => Ok(vec![ChainLevel {
                name,
                plus_identity: false,
            }]),
            TokKind::LParen => {
                let open_column = tok.column;
                let inner = self.expr()?;
                let next = self.bump();
                match next.kind {
                    TokKind::RParen => Ok(inner),
                    TokKind::Plus => {
                        if inner.len() != 1 || inner[0].plus_identity {
                            return Err(ExprParseError {
                                column: next.column,
                                token: "'+'".to_string(),
                                message: "'+ I' applies to a single factor name, not a chain"
                                    .to_string(),
                            });
                        }
                        let ident = self.bump();
                        if !matches!(ident.kind, TokKind::Ident) {
                            return Err(err_at(&ident, "expected 'I' after '+'"));
                        }
                        let close = self.bump();
                        if !matches!(close.kind, TokKind::RParen) {
                            return Err(err_at(&close, "expected ')' after '+ I'"));
                        }
                        Ok(vec![ChainLevel {
                            name: inner[0].name.clone(),
                            plus_identity: true,
                        }])
                    }
                    TokKind::Eof => Err(ExprParseError {
                        column: next.column,
                        token: "end of input".to_string(),
                        message: format!("unclosed '(' opened at column {open_column}"),
                    }),
                    _ => Err(err_at(&next, "expected ')'")),
                }
            }
            TokKind::Ident => Err(err_at(
                &tok,
                "'I' is reserved for '(NAME + I)' and cannot stand alone",
            )),
            _ => Err(err_at(&tok, "expected a factor name or '('")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn canon(s: &str) -> String {
        parse_expr(s).unwrap().canonical()
    }

    fn fail(s: &str) -> ExprParseError {
        parse_expr(s).unwrap_err()
    }

    #[test]
    fn chains_and_spellings() {
        assert_eq!(canon("A⊗B"), "A⊗B");
        assert_eq!(canon("A kron B kron C"), "A⊗B⊗C");
        assert_eq!(canon("(A+I)⊗B⊗C"), "(A+I)⊗B⊗C");
        assert_eq!(canon("( A + I ) kron B"), "(A+I)⊗B");
        assert_eq!(canon("A*B"), "A⊗B");
        assert_eq!(canon("((A))"), "A");
        assert_eq!(canon("(A⊗B)⊗C"), "A⊗B⊗C");
    }

    #[test]
    fn power_towers_expand() {
        assert_eq!(canon("A^{⊗3}"), "A⊗A⊗A");
        assert_eq!(canon("A^⊗3"), "A⊗A⊗A");
        assert_eq!(canon("A^3"), "A⊗A⊗A");
        assert_eq!(canon("A^{2}"), "A⊗A");
        assert_eq!(canon("(A+I)^2⊗B"), "(A+I)⊗(A+I)⊗B");
        assert_eq!(canon("(A⊗B)^2"), "A⊗B⊗A⊗B");
    }

    /// The error matrix: each row is (input, expected column, message
    /// fragment). Columns are 1-based and counted in characters, so the
    /// multi-byte `⊗` advances them by one.
    #[test]
    fn error_matrix_reports_column_and_token() {
        let cases: &[(&str, usize, &str)] = &[
            ("", 1, "expected a factor name"),
            ("⊗A", 1, "expected a factor name"),
            ("A⊗", 3, "expected a factor name"),
            ("A ⊗ ⊗ B", 5, "expected a factor name"),
            ("A B", 3, "expected '⊗'"),
            ("A + I", 3, "'+' is only valid inside"),
            ("(A+B)", 4, "expected 'I' after '+'"),
            ("(A⊗B+I)", 5, "'+ I' applies to a single factor"),
            ("(A", 3, "unclosed '(' opened at column 1"),
            ("A)", 2, "expected '⊗'"),
            ("A^0", 3, "power must be at least 1"),
            ("A^x", 3, "expected an integer exponent"),
            ("A^{3", 5, "expected '}'"),
            ("A^{}", 4, "expected an integer exponent"),
            ("I", 1, "'I' is reserved"),
            ("A $ B", 3, "unexpected character"),
            ("A^99999999999999999999", 3, "integer is too large"),
        ];
        for (input, column, fragment) in cases {
            let err = fail(input);
            assert_eq!(err.column, *column, "column for {input:?}: {err}");
            assert!(
                err.message.contains(fragment),
                "message for {input:?}: {err}"
            );
        }
    }

    #[test]
    fn eof_errors_name_the_missing_piece() {
        let err = fail("A⊗");
        assert_eq!(err.token, "end of input");
        let err = fail("A $");
        assert_eq!(err.token, "'$'");
    }

    #[test]
    fn level_cap_is_enforced() {
        let err = fail("A^{⊗65}");
        assert!(err.message.contains("65 levels"), "{err}");
        assert!(parse_expr("A^{⊗64}").is_ok());
        // Nested powers multiply: (A^8)^8 = 64 levels, ^9 would blow past.
        assert!(parse_expr("(A^8)^8").is_ok());
        assert!(parse_expr("(A^8)^9").is_err());
    }

    #[test]
    fn display_is_single_line() {
        let err = fail("A⊗");
        assert_eq!(
            err.to_string(),
            "column 3: expected a factor name or '(' (found end of input)"
        );
    }
}
