//! Row-parallel Gustavson SpGEMM over an arbitrary semiring.
//!
//! The ground-truth formulas need small powers of factor adjacency matrices
//! (`A²`, `A³`, `A⁴` appear in Defs. 8–9 and Thms. 3–5). Factors are small
//! by design — that is the entire point of the nonstochastic Kronecker
//! method — but `unicode`-scale factors (10³ vertices) still profit from
//! parallelism, and the benches also exercise SpGEMM on product-sized
//! matrices as a baseline.
//!
//! Each output row is computed independently with a dense accumulator
//! ("sparse accumulator" / SPA variant), then compacted. Rows are processed
//! by rayon; results are deterministic because each row is owned by one
//! task and column output is emitted in sorted order.

use rayon::prelude::*;

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};
use crate::semiring::{AddMonoid, MulOp, Semiring, SemiringValue};
use crate::Ix;

/// Threshold below which rows are processed sequentially; tiny matrices
/// are common (factor graphs), and rayon dispatch costs more than the work.
const PARALLEL_ROW_THRESHOLD: usize = 256;

/// `C = A ⊕.⊗ B` over the given semiring.
pub fn spgemm<T, A, M>(semiring: &Semiring<T, A, M>, a: &Csr<T>, b: &Csr<T>) -> SparseResult<Csr<T>>
where
    T: SemiringValue,
    A: AddMonoid<T>,
    M: MulOp<T>,
{
    spgemm_inner(semiring, a, b, None)
}

/// `C = (A ⊕.⊗ B) ∘ mask` — only positions present in `mask` are kept.
///
/// This mirrors the GraphBLAS structural mask and is the natural way to
/// compute `A³ ∘ A` (Def. 9) without materialising the dense-ish `A³`.
pub fn spgemm_masked<T, U, A, M>(
    semiring: &Semiring<T, A, M>,
    a: &Csr<T>,
    b: &Csr<T>,
    mask: &Csr<U>,
) -> SparseResult<Csr<T>>
where
    T: SemiringValue,
    U: SemiringValue,
    A: AddMonoid<T>,
    M: MulOp<T>,
{
    if mask.nrows() != a.nrows() || mask.ncols() != b.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "spgemm_masked",
            lhs: (a.nrows(), b.ncols()),
            rhs: (mask.nrows(), mask.ncols()),
        });
    }
    let pattern = mask.map(|_| ());
    spgemm_inner(semiring, a, b, Some(&pattern))
}

fn spgemm_inner<T, A, M>(
    semiring: &Semiring<T, A, M>,
    a: &Csr<T>,
    b: &Csr<T>,
    mask: Option<&Csr<()>>,
) -> SparseResult<Csr<T>>
where
    T: SemiringValue,
    A: AddMonoid<T>,
    M: MulOp<T>,
{
    if a.ncols() != b.nrows() {
        return Err(SparseError::DimensionMismatch {
            op: "spgemm",
            lhs: (a.nrows(), a.ncols()),
            rhs: (b.nrows(), b.ncols()),
        });
    }
    let nrows = a.nrows();
    let ncols = b.ncols();

    // Metrics: one registry lookup per kernel call, lock-free handles in
    // the loops; the worker gauge is probed once per *row*, amortised over
    // that row's full dot-product work.
    let obs = bikron_obs::global();
    let _phase = obs.phase("sparse.spgemm");
    obs.counter("spgemm.invocations").inc();
    obs.counter("spgemm.rows_multiplied").add(nrows as u64);
    let workers = obs.gauge("spgemm.workers");
    // Output-size distribution: one lock-free record per row, amortised
    // over that row's full dot-product work. The p99/max of this
    // histogram is what a "balanced" row partition has to answer to.
    let row_nnz_hist = obs.histogram("spgemm.row_nnz");

    let compute_row = |r: usize| -> (Vec<Ix>, Vec<T>) {
        // SPA: dense value buffer + touched-column list per row. The
        // explicit `seen` bitmap (rather than testing `dense[c]` against
        // zero) matters for non-idempotent semirings: a partial sum can
        // *cancel back to zero* mid-row, and a zero test would then
        // re-push the column, corrupting the output order.
        let mut dense = vec![semiring.zero(); ncols];
        let mut seen = vec![false; ncols];
        let mut touched: Vec<Ix> = Vec::new();
        let (a_cols, a_vals) = a.row(r);
        for (&k, &av) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k);
            for (&c, &bv) in b_cols.iter().zip(b_vals) {
                if !seen[c] {
                    seen[c] = true;
                    touched.push(c);
                }
                dense[c] = semiring.plus(dense[c], semiring.times(av, bv));
            }
        }
        touched.sort_unstable();
        let mut cols = Vec::with_capacity(touched.len());
        let mut vals = Vec::with_capacity(touched.len());
        match mask {
            None => {
                for &c in &touched {
                    if !semiring.is_zero(dense[c]) {
                        cols.push(c);
                        vals.push(dense[c]);
                    }
                }
            }
            Some(m) => {
                let (m_cols, _) = m.row(r);
                for &c in m_cols {
                    if !semiring.is_zero(dense[c]) {
                        cols.push(c);
                        vals.push(dense[c]);
                    }
                }
            }
        }
        row_nnz_hist.record(cols.len() as u64);
        (cols, vals)
    };

    let rows: Vec<(Vec<Ix>, Vec<T>)> = if nrows >= PARALLEL_ROW_THRESHOLD {
        (0..nrows)
            .into_par_iter()
            .map(|r| {
                let _live = workers.enter();
                compute_row(r)
            })
            .collect()
    } else {
        (0..nrows).map(compute_row).collect()
    };

    let mut row_ptr = Vec::with_capacity(nrows + 1);
    row_ptr.push(0usize);
    let mut total = 0usize;
    for (cols, _) in &rows {
        total += cols.len();
        row_ptr.push(total);
    }
    let mut col_idx = Vec::with_capacity(total);
    let mut vals = Vec::with_capacity(total);
    for (cols, v) in rows {
        col_idx.extend(cols);
        vals.extend(v);
    }
    obs.counter("spgemm.output_nnz").add(total as u64);
    obs.counter("spgemm.csr_bytes").add(
        ((nrows + 1) * std::mem::size_of::<usize>()
            + total * (std::mem::size_of::<Ix>() + std::mem::size_of::<T>())) as u64,
    );
    Csr::from_parts(nrows, ncols, row_ptr, col_idx, vals)
}

/// Repeated squaring is wrong for semirings in general, so matrix powers
/// are computed by iterated multiplication: `A^h` for small `h`.
pub fn matrix_power<T, A, M>(
    semiring: &Semiring<T, A, M>,
    a: &Csr<T>,
    h: u32,
) -> SparseResult<Csr<T>>
where
    T: SemiringValue,
    A: AddMonoid<T>,
    M: MulOp<T>,
{
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "matrix_power",
            lhs: (a.nrows(), a.ncols()),
            rhs: (a.nrows(), a.ncols()),
        });
    }
    if h == 0 {
        // Identity requires a multiplicative one, which a general semiring
        // does not expose; powers start at 1 in this workspace.
        return Err(SparseError::Malformed(
            "matrix_power: h must be >= 1".into(),
        ));
    }
    let mut acc = a.clone();
    for _ in 1..h {
        acc = spgemm(semiring, &acc, a)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::u64_plus_times;

    fn from_dense(nrows: usize, ncols: usize, d: &[u64]) -> Csr<u64> {
        let mut coo = Coo::new(nrows, ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                let v = d[r * ncols + c];
                if v != 0 {
                    coo.push(r, c, v).unwrap();
                }
            }
        }
        Csr::from_coo(coo, |a, b| a + b, |v| v == 0)
    }

    fn dense_mul(n: usize, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut c = vec![0u64; n * n];
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    c[i * n + j] += a[i * n + k] * b[k * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn matches_dense_reference() {
        let a = [1, 2, 0, 0, 3, 4, 5, 0, 6];
        let b = [0, 1, 0, 2, 0, 3, 0, 4, 0];
        let ca = from_dense(3, 3, &a);
        let cb = from_dense(3, 3, &b);
        let s = u64_plus_times();
        let c = spgemm(&s, &ca, &cb).unwrap();
        assert_eq!(c.to_dense(), dense_mul(3, &a, &b));
        c.validate().unwrap();
    }

    #[test]
    fn rectangular_shapes() {
        // (2x3) * (3x2)
        let a = from_dense(2, 3, &[1, 0, 2, 0, 3, 0]);
        let b = from_dense(3, 2, &[1, 1, 0, 2, 3, 0]);
        let s = u64_plus_times();
        let c = spgemm(&s, &a, &b).unwrap();
        assert_eq!(c.to_dense(), vec![7, 1, 0, 6]);
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = from_dense(2, 3, &[1, 0, 2, 0, 3, 0]);
        let s = u64_plus_times();
        assert!(spgemm(&s, &a, &a).is_err());
    }

    #[test]
    fn mask_restricts_output_pattern() {
        // A² of the path 0-1-2 has (0,2) entry; masking by A removes it.
        let a = from_dense(3, 3, &[0, 1, 0, 1, 0, 1, 0, 1, 0]);
        let s = u64_plus_times();
        let a2 = spgemm(&s, &a, &a).unwrap();
        assert_eq!(a2.get(0, 2), Some(1));
        let masked = spgemm_masked(&s, &a, &a, &a).unwrap();
        assert_eq!(masked.nnz(), 0); // path: A² lives entirely off A's pattern
    }

    #[test]
    fn masked_matches_post_hadamard() {
        // Random-ish small check: mask(A*B, M) == (A*B) ∘ pattern(M).
        let a = from_dense(3, 3, &[1, 2, 0, 0, 1, 1, 1, 0, 1]);
        let b = from_dense(3, 3, &[0, 1, 1, 1, 0, 0, 0, 1, 1]);
        let m = from_dense(3, 3, &[1, 0, 1, 0, 1, 0, 1, 1, 0]);
        let s = u64_plus_times();
        let full = spgemm(&s, &a, &b).unwrap();
        let masked = spgemm_masked(&s, &a, &b, &m).unwrap();
        for (r, c, v) in masked.iter() {
            assert_eq!(full.get(r, c), Some(v));
            assert!(m.get(r, c).is_some());
        }
        for (r, c, v) in full.iter() {
            if m.get(r, c).is_some() && v != 0 {
                assert_eq!(masked.get(r, c), Some(v));
            }
        }
    }

    #[test]
    fn matrix_power_path_graph() {
        // Path P3: A² diag = degrees [1, 2, 1].
        let a = from_dense(3, 3, &[0, 1, 0, 1, 0, 1, 0, 1, 0]);
        let s = u64_plus_times();
        let a2 = matrix_power(&s, &a, 2).unwrap();
        assert_eq!(a2.get(0, 0), Some(1));
        assert_eq!(a2.get(1, 1), Some(2));
        let a4 = matrix_power(&s, &a, 4).unwrap();
        let a2sq = spgemm(&s, &a2, &a2).unwrap();
        assert_eq!(a4, a2sq);
    }

    #[test]
    fn matrix_power_rejects_zero() {
        let a = from_dense(2, 2, &[0, 1, 1, 0]);
        let s = u64_plus_times();
        assert!(matrix_power(&s, &a, 0).is_err());
    }

    #[test]
    fn cancellation_mid_row_does_not_duplicate_columns() {
        // Regression: with signed values, a partial dot product can hit
        // zero and then become nonzero again; the touched-column tracking
        // must not re-register the column. Here row 0 of A·B accumulates
        // +1 then −1 (back to zero) then +1 at column 0.
        use crate::coo::Coo;
        use crate::semiring::i64_plus_times;
        let a = Csr::from_coo(
            Coo::from_triplets(1, 3, vec![(0usize, 0usize, 1i64), (0, 1, 1), (0, 2, 1)]).unwrap(),
            |x, y| x + y,
            |v| v == 0,
        );
        let b = Csr::from_coo(
            Coo::from_triplets(3, 1, vec![(0usize, 0usize, 1i64), (1, 0, -1), (2, 0, 1)]).unwrap(),
            |x, y| x + y,
            |v| v == 0,
        );
        let s = i64_plus_times();
        let c = spgemm(&s, &a, &b).unwrap();
        c.validate().unwrap();
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(1));
    }

    #[test]
    fn full_cancellation_drops_entry() {
        use crate::coo::Coo;
        use crate::semiring::i64_plus_times;
        let a = Csr::from_coo(
            Coo::from_triplets(1, 2, vec![(0usize, 0usize, 1i64), (0, 1, 1)]).unwrap(),
            |x, y| x + y,
            |v| v == 0,
        );
        let b = Csr::from_coo(
            Coo::from_triplets(2, 1, vec![(0usize, 0usize, 5i64), (1, 0, -5)]).unwrap(),
            |x, y| x + y,
            |v| v == 0,
        );
        let s = i64_plus_times();
        let c = spgemm(&s, &a, &b).unwrap();
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn parallel_path_same_as_sequential() {
        // Big enough to cross PARALLEL_ROW_THRESHOLD: ring of 600 vertices.
        let n = 600;
        let mut coo = Coo::new(n, n);
        for i in 0..n {
            coo.push(i, (i + 1) % n, 1u64).unwrap();
            coo.push((i + 1) % n, i, 1u64).unwrap();
        }
        let a = Csr::from_coo(coo, |x, y| x + y, |v| v == 0);
        let s = u64_plus_times();
        let a2 = spgemm(&s, &a, &a).unwrap();
        // Ring: A² has 2 on the diagonal and 1 at distance-2 neighbours.
        assert_eq!(a2.get(0, 0), Some(2));
        assert_eq!(a2.get(0, 2), Some(1));
        assert_eq!(a2.get(5, 3), Some(1));
        assert_eq!(a2.nnz(), 3 * n);
    }
}
