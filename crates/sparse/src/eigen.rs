//! Dense symmetric eigensolver (cyclic Jacobi) for factor-sized matrices.
//!
//! Kronecker products have fully compositional spectra —
//! `λ(A ⊗ B) = {λ_i(A)·λ_j(B)}` — so exact product eigenvalues only ever
//! require diagonalising the *factors*. Factors in this workspace are
//! small by design (10²–10³), where cyclic Jacobi is simple, robust and
//! accurate; this module provides it without any external linear-algebra
//! dependency.

use crate::csr::Csr;
use crate::error::{SparseError, SparseResult};

/// Eigenvalues of a symmetric matrix given as CSR (values converted to
/// `f64`), sorted ascending. `tol` is the off-diagonal Frobenius-norm
/// stopping threshold relative to the matrix norm.
pub fn symmetric_eigenvalues(a: &Csr<u64>, tol: f64) -> SparseResult<Vec<f64>> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::DimensionMismatch {
            op: "symmetric_eigenvalues",
            lhs: (a.nrows(), a.ncols()),
            rhs: (a.ncols(), a.nrows()),
        });
    }
    if !a.is_pattern_symmetric() {
        return Err(SparseError::Malformed(
            "symmetric_eigenvalues requires a symmetric matrix".into(),
        ));
    }
    let n = a.nrows();
    let mut m = vec![0f64; n * n];
    for (r, c, v) in a.iter() {
        m[r * n + c] = v as f64;
    }
    jacobi_eigenvalues(&mut m, n, tol)
}

/// In-place cyclic Jacobi on a dense row-major symmetric matrix.
pub fn jacobi_eigenvalues(m: &mut [f64], n: usize, tol: f64) -> SparseResult<Vec<f64>> {
    assert_eq!(m.len(), n * n);
    if n == 0 {
        return Ok(Vec::new());
    }
    let norm: f64 = m.iter().map(|x| x * x).sum::<f64>().sqrt();
    let threshold = (tol * norm).max(f64::EPSILON);
    let off = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for r in 0..n {
            for c in 0..n {
                if r != c {
                    s += m[r * n + c] * m[r * n + c];
                }
            }
        }
        s.sqrt()
    };
    let max_sweeps = 64;
    for _ in 0..max_sweeps {
        if off(m) <= threshold {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() <= threshold / (n as f64) {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation J(p, q, θ) on both sides.
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = c * akp - s * akq;
                    m[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = c * apk - s * aqk;
                    m[q * n + k] = s * apk + c * aqk;
                }
            }
        }
    }
    let mut eigs: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    eigs.sort_by(|a, b| a.partial_cmp(b).expect("eigenvalues are finite"));
    Ok(eigs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn adjacency(n: usize, edges: &[(usize, usize)]) -> Csr<u64> {
        let mut coo = Coo::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1).unwrap();
            coo.push(v, u, 1).unwrap();
        }
        Csr::from_coo(coo, |a, _| a, |v| v == 0)
    }

    fn assert_close(got: &[f64], want: &[f64]) {
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-8, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn path_p2_spectrum() {
        // K2 adjacency: eigenvalues ±1.
        let a = adjacency(2, &[(0, 1)]);
        let e = symmetric_eigenvalues(&a, 1e-12).unwrap();
        assert_close(&e, &[-1.0, 1.0]);
    }

    #[test]
    fn cycle_c4_spectrum() {
        // C4: {−2, 0, 0, 2}.
        let a = adjacency(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let e = symmetric_eigenvalues(&a, 1e-12).unwrap();
        assert_close(&e, &[-2.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn complete_k4_spectrum() {
        // K4: {−1, −1, −1, 3}.
        let a = adjacency(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let e = symmetric_eigenvalues(&a, 1e-12).unwrap();
        assert_close(&e, &[-1.0, -1.0, -1.0, 3.0]);
    }

    #[test]
    fn star_spectrum() {
        // Star with 3 leaves: {−√3, 0, 0, √3}.
        let a = adjacency(4, &[(0, 1), (0, 2), (0, 3)]);
        let e = symmetric_eigenvalues(&a, 1e-12).unwrap();
        let r3 = 3f64.sqrt();
        assert_close(&e, &[-r3, 0.0, 0.0, r3]);
    }

    #[test]
    fn trace_preserved() {
        // Trace of the adjacency (0 without loops) equals the eigensum.
        let a = adjacency(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let e = symmetric_eigenvalues(&a, 1e-12).unwrap();
        let sum: f64 = e.iter().sum();
        assert!(sum.abs() < 1e-8);
        // Σλ² = 2|E|.
        let sq: f64 = e.iter().map(|x| x * x).sum();
        assert!((sq - 12.0).abs() < 1e-7);
    }

    #[test]
    fn rejects_nonsymmetric_or_rectangular() {
        let mut coo = Coo::new(2, 2);
        coo.push(0, 1, 1u64).unwrap();
        let m = Csr::from_coo(coo, |a, _| a, |v| v == 0);
        assert!(symmetric_eigenvalues(&m, 1e-10).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = Csr::<u64>::zero(0, 0);
        assert!(symmetric_eigenvalues(&a, 1e-10).unwrap().is_empty());
    }
}
