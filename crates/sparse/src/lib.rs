#![warn(missing_docs)]

//! # bikron-sparse
//!
//! A GraphBLAS-style sparse linear-algebra substrate purpose-built for the
//! bikron workspace. It implements the subset of the GraphBLAS operation set
//! that the paper's ground-truth derivations are written in:
//!
//! * sparse matrix storage ([`Coo`] triplets, [`Csr`] compressed rows),
//! * semiring-generic SpMV ([`spmv()`]) and SpGEMM ([`spgemm()`]),
//! * the Kronecker product ([`kron()`], [`kron_vec`]) of Def. 4,
//! * the Hadamard (element-wise multiply, Def. 5) and element-wise add
//!   operations ([`ewise_mult`], [`ewise_add`]),
//! * diagonal extraction/injection (Def. 6) and reductions in [`reduce`],
//! * structural transforms (transpose, apply, select) in [`ops`].
//!
//! All value-generic kernels take a [`Semiring`] so combinatorial counting
//! (plus-times over `u64`/`i128`), reachability (or-and over `bool`) and
//! distance (min-plus) reuse one implementation, exactly as GraphBLAS
//! intends. Row-parallel kernels use rayon and are deterministic: parallel
//! results are bit-identical to sequential ones because each output row is
//! owned by a single task.
//!
//! The algebra identities from the paper's Appendix A are covered by
//! property tests in this crate.

pub mod coo;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod ewise;
pub mod expr;
pub mod expr_parse;
pub mod extract;
pub mod kron;
pub mod mask;
pub mod ops;
pub mod reduce;
pub mod semiring;
pub mod snap;
pub mod spgemm;
pub mod spmv;

mod error;

pub use coo::Coo;
pub use csr::Csr;
pub use error::{SparseError, SparseResult};
pub use ewise::{ewise_add, ewise_mult};
pub use expr::MatExpr;
pub use expr_parse::{parse_expr, ChainLevel, ExprChain, ExprParseError, MAX_CHAIN_LEVELS};
pub use extract::{extract, extract_principal};
pub use kron::{kron, kron_vec};
pub use mask::{spmv_masked, VecMask};
pub use ops::{apply, select, transpose, Select};
pub use reduce::{diag_matrix, diag_vector, reduce_rows, reduce_scalar};
pub use semiring::{
    bool_or_and, f64_plus_times, i128_plus_times, i64_plus_times, u64_min_plus, u64_plus_pair,
    u64_plus_times, AddMonoid, MulOp, Semiring, SemiringValue,
};
pub use spgemm::{spgemm, spgemm_masked};
pub use spmv::{spmv, spmv_transpose};

/// Index type used across the workspace. Graph orders in this project stay
/// well under `u32::MAX` per factor, but Kronecker products multiply factor
/// orders, so indices are machine-word sized end-to-end.
pub type Ix = usize;
