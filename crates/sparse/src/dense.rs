//! Dense vector helpers used by the ground-truth formulas.
//!
//! The paper's vertex-level formulas are algebra over dense vectors
//! (`d_A`, `w_A^{(2)}`, `s_A`, …) combined with vector Kronecker products.
//! These helpers keep that code close to the mathematical notation.

use crate::error::{SparseError, SparseResult};

/// Element-wise (Hadamard) product of two equal-length vectors.
pub fn hadamard_vec(a: &[i128], b: &[i128]) -> SparseResult<Vec<i128>> {
    if a.len() != b.len() {
        return Err(SparseError::DimensionMismatch {
            op: "hadamard_vec",
            lhs: (a.len(), 1),
            rhs: (b.len(), 1),
        });
    }
    Ok(a.iter().zip(b).map(|(&x, &y)| x * y).collect())
}

/// `alpha * x + y` element-wise.
pub fn axpy(alpha: i128, x: &[i128], y: &[i128]) -> SparseResult<Vec<i128>> {
    if x.len() != y.len() {
        return Err(SparseError::DimensionMismatch {
            op: "axpy",
            lhs: (x.len(), 1),
            rhs: (y.len(), 1),
        });
    }
    Ok(x.iter().zip(y).map(|(&a, &b)| alpha * a + b).collect())
}

/// Element-wise sum of any number of vectors with coefficients:
/// `sum_k coeffs[k] * vecs[k]`.
pub fn linear_combination(terms: &[(i128, &[i128])]) -> SparseResult<Vec<i128>> {
    let n = terms.first().map_or(0, |(_, v)| v.len());
    for (_, v) in terms {
        if v.len() != n {
            return Err(SparseError::DimensionMismatch {
                op: "linear_combination",
                lhs: (n, 1),
                rhs: (v.len(), 1),
            });
        }
    }
    let mut out = vec![0i128; n];
    for &(c, v) in terms {
        for (o, &x) in out.iter_mut().zip(v) {
            *o += c * x;
        }
    }
    Ok(out)
}

/// Sum of all entries.
pub fn vec_sum(a: &[i128]) -> i128 {
    a.iter().sum()
}

/// Constant vector of ones.
pub fn ones(n: usize) -> Vec<i128> {
    vec![1; n]
}

/// Halve every entry, erroring if any entry is odd (the paper's `1/2`
/// prefactors must divide exactly — an odd value indicates a formula bug).
pub fn halve_exact(a: &[i128], op: &'static str) -> SparseResult<Vec<i128>> {
    let mut out = Vec::with_capacity(a.len());
    for &x in a {
        if x % 2 != 0 {
            return Err(SparseError::Malformed(format!(
                "{op}: entry {x} is not even; formula invariant violated"
            )));
        }
        out.push(x / 2);
    }
    Ok(out)
}

/// Convert an `i128` formula result into `u64` counts, verifying
/// non-negativity and range.
pub fn to_u64_counts(a: &[i128], op: &'static str) -> SparseResult<Vec<u64>> {
    let mut out = Vec::with_capacity(a.len());
    for &x in a {
        if x < 0 {
            return Err(SparseError::Malformed(format!(
                "{op}: negative count {x}; formula invariant violated"
            )));
        }
        out.push(u64::try_from(x).map_err(|_| SparseError::Overflow { op })?);
    }
    Ok(out)
}

/// Widening conversion from `u64` data to the `i128` formula domain.
pub fn widen(a: &[u64]) -> Vec<i128> {
    a.iter().map(|&x| x as i128).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hadamard_and_axpy() {
        let a = vec![1i128, 2, 3];
        let b = vec![4i128, 5, 6];
        assert_eq!(hadamard_vec(&a, &b).unwrap(), vec![4, 10, 18]);
        assert_eq!(axpy(2, &a, &b).unwrap(), vec![6, 9, 12]);
        assert!(hadamard_vec(&a, &[1]).is_err());
    }

    #[test]
    fn linear_combination_three_terms() {
        let a = vec![1i128, 0];
        let b = vec![0i128, 1];
        let c = vec![1i128, 1];
        let out = linear_combination(&[(2, &a), (3, &b), (-1, &c)]).unwrap();
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn linear_combination_empty_is_empty() {
        assert_eq!(linear_combination(&[]).unwrap(), Vec::<i128>::new());
    }

    #[test]
    fn halve_exact_detects_odd() {
        assert_eq!(halve_exact(&[4, 6], "t").unwrap(), vec![2, 3]);
        assert!(halve_exact(&[3], "t").is_err());
    }

    #[test]
    fn to_u64_counts_rejects_negative() {
        assert_eq!(to_u64_counts(&[0, 5], "t").unwrap(), vec![0, 5]);
        assert!(to_u64_counts(&[-1], "t").is_err());
        assert!(to_u64_counts(&[1i128 << 70], "t").is_err());
    }

    #[test]
    fn widen_round_trips() {
        let w = widen(&[u64::MAX, 0]);
        assert_eq!(w, vec![u64::MAX as i128, 0]);
    }
}
