//! Corruption and version-skew matrix for `bikron-snap/1` decoding.
//!
//! The snapshot reader's contract (DESIGN.md §14, versioning per §9.1)
//! is that *no* input byte stream may panic it, and every rejection is a
//! named [`SnapshotError`] — a corrupt snapshot must fail loudly at boot,
//! never produce a silently-wrong warm server. The matrix:
//!
//! - truncation at **every** prefix length,
//! - a flipped byte at **every** offset (each lands in the magic, the
//!   version, a tag, a length, a payload, or a checksum — all sealed),
//! - wrong magic, future schema version,
//! - oversized declared lengths (no pre-allocation from attacker bytes),
//! - expression / factor mismatch against a differently-specced server.
//!
//! Mirrors the exhaustive-hostility style of `parser_fuzz.rs`: the
//! assertions are about *totality* (always an `Err`, never a panic),
//! with spot checks that specific corruptions map to the right variant.

use bikron_core::SelfLoopMode;
use bikron_graph::Graph;
use bikron_serve::snapshot::{Snapshot, MAGIC, VERSION};
use bikron_serve::{ServeOptions, ServeState, SnapshotError};

fn cycle(n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Graph::from_edges(n, &edges).unwrap()
}

fn kmn(m: usize, n: usize) -> Graph {
    let edges: Vec<(usize, usize)> = (0..m)
        .flat_map(|i| (0..n).map(move |j| (i, m + j)))
        .collect();
    Graph::from_edges(m + n, &edges).unwrap()
}

/// A realistic snapshot to corrupt: pair backend, warm cache entries.
fn pair_bytes() -> Vec<u8> {
    let state = ServeState::build_with(
        cycle(5),
        kmn(2, 3),
        SelfLoopMode::FactorA,
        ServeOptions::default(),
    )
    .unwrap();
    // Populate the cache so the CACHE section is non-trivial.
    for p in 0..5 {
        let raw = format!("GET /v1/vertex/{p} HTTP/1.1\r\n\r\n");
        let req = bikron_serve::http::parse_request(&mut std::io::BufReader::new(raw.as_bytes()))
            .unwrap();
        state.handle(&req);
    }
    state.to_snapshot(16).encode()
}

#[test]
fn truncation_at_every_offset_is_a_named_error() {
    let bytes = pair_bytes();
    for cut in 0..bytes.len() {
        match Snapshot::decode(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => panic!(
                "decode accepted a {cut}-byte prefix of a {}-byte file",
                bytes.len()
            ),
        }
    }
    // And appending trailing garbage is equally fatal.
    let mut extended = bytes.clone();
    extended.extend_from_slice(b"junk");
    assert!(matches!(
        Snapshot::decode(&extended),
        Err(SnapshotError::Corrupt(_))
    ));
}

#[test]
fn flipping_any_single_byte_is_rejected() {
    let bytes = pair_bytes();
    for at in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[at] ^= 0x40;
        assert!(
            Snapshot::decode(&mutated).is_err(),
            "decode accepted a snapshot with byte {at} flipped"
        );
    }
}

#[test]
fn wrong_magic_and_version_are_named() {
    let bytes = pair_bytes();

    let mut not_ours = bytes.clone();
    not_ours[..8].copy_from_slice(b"GIFDATA!");
    assert_eq!(
        Snapshot::decode(&not_ours).err_only(),
        err_kind(SnapshotError::WrongMagic)
    );

    // A future schema version is refused without guessing.
    let mut future = bytes.clone();
    future[8..16].copy_from_slice(&(VERSION + 1).to_le_bytes());
    assert_eq!(
        Snapshot::decode(&future).err_only(),
        err_kind(SnapshotError::UnsupportedVersion(VERSION + 1))
    );

    // Sanity: the file really starts with the documented magic.
    assert_eq!(&bytes[..8], MAGIC);
    assert!(Snapshot::decode(&bytes).is_ok());
}

/// `Snapshot` has no `PartialEq` (it holds graphs and stats); compare
/// decode results by error value only.
fn err_kind(e: SnapshotError) -> Result<(), SnapshotError> {
    Err(e)
}

trait DecodeErr {
    fn err_only(self) -> Result<(), SnapshotError>;
}

impl DecodeErr for Result<Snapshot, SnapshotError> {
    fn err_only(self) -> Result<(), SnapshotError> {
        self.map(|_| ())
    }
}

#[test]
fn checksum_seals_every_section() {
    // Flip one byte inside each section's payload; the per-section
    // checksum must name that section. Section order after the 16-byte
    // header is META, FACTORS, STATS_JSON, CACHE — locate each payload
    // via its framing instead of hard-coding offsets.
    let bytes = pair_bytes();
    let mut pos = 16; // magic + version
    for expected in ["META", "FACTORS", "STATS_JSON", "CACHE"] {
        let len = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap()) as usize;
        let payload_at = pos + 16;
        let mut mutated = bytes.clone();
        mutated[payload_at] ^= 0xFF;
        match Snapshot::decode(&mutated) {
            Err(SnapshotError::ChecksumMismatch(section)) => {
                assert_eq!(section, expected, "wrong section named");
            }
            other => panic!(
                "flip in {expected} payload: expected ChecksumMismatch, got {:?}",
                other.err_only()
            ),
        }
        pos = payload_at + len + 8; // payload + trailing checksum
    }
    assert_eq!(pos, bytes.len(), "framing walk covered the whole file");
}

#[test]
fn huge_declared_lengths_do_not_preallocate() {
    // A section that declares a multi-exabyte length must be rejected as
    // truncated (len > remaining), not trusted into `Vec::with_capacity`.
    let mut bytes = pair_bytes();
    bytes[24..32].copy_from_slice(&u64::MAX.to_le_bytes()); // META len field
    assert_eq!(
        Snapshot::decode(&bytes).err_only(),
        err_kind(SnapshotError::Truncated("META"))
    );
}

#[test]
fn mismatched_spec_is_refused_with_the_right_variant() {
    let snap = Snapshot::decode(&pair_bytes()).unwrap();
    assert_eq!(snap.expr, "(A+I)⊗B");

    // Same factors, different mode: the implied expression differs.
    match snap.validate_pair(&cycle(5), &kmn(2, 3), SelfLoopMode::None) {
        Err(SnapshotError::ExpressionMismatch {
            snapshot,
            requested,
        }) => {
            assert_eq!(snapshot, "(A+I)⊗B");
            assert_eq!(requested, "A⊗B");
        }
        other => panic!("expected ExpressionMismatch, got {other:?}"),
    }

    // Same expression, different factor A edges.
    match snap.validate_pair(&cycle(6), &kmn(2, 3), SelfLoopMode::FactorA) {
        Err(SnapshotError::FactorMismatch(msg)) => {
            assert!(msg.contains("factor A"), "{msg}");
        }
        other => panic!("expected FactorMismatch, got {other:?}"),
    }

    // A pair snapshot offered to an expression server is refused.
    let bindings = vec![("A".to_string(), cycle(5))];
    assert!(matches!(
        snap.validate_expr("(A+I)⊗B", &bindings),
        Err(SnapshotError::Corrupt(_))
    ));

    // The happy path still validates.
    assert!(snap
        .validate_pair(&cycle(5), &kmn(2, 3), SelfLoopMode::FactorA)
        .is_ok());
}

#[test]
fn chain_snapshot_cross_validation() {
    let bindings = vec![("A".to_string(), cycle(4)), ("B".to_string(), kmn(1, 2))];
    let levels = vec![("A".to_string(), false), ("B".to_string(), false)];
    let state = ServeState::build_expr(bindings.clone(), &levels, ServeOptions::default()).unwrap();
    let snap = Snapshot::decode(&state.to_snapshot(0).encode()).unwrap();

    // A snapshot for A⊗B must refuse to boot A⊗B⊗C.
    match snap.validate_expr("A⊗B⊗C", &bindings) {
        Err(SnapshotError::ExpressionMismatch { requested, .. }) => {
            assert_eq!(requested, "A⊗B⊗C");
        }
        other => panic!("expected ExpressionMismatch, got {other:?}"),
    }

    // Same expression, different graph bound to B.
    let rebound = vec![("A".to_string(), cycle(4)), ("B".to_string(), kmn(2, 2))];
    match snap.validate_expr(&snap.expr.clone(), &rebound) {
        Err(SnapshotError::FactorMismatch(msg)) => assert!(msg.contains('B'), "{msg}"),
        other => panic!("expected FactorMismatch, got {other:?}"),
    }

    // A name present in the snapshot but absent from the spec.
    let unbound = vec![("A".to_string(), cycle(4))];
    match snap.validate_expr(&snap.expr.clone(), &unbound) {
        Err(SnapshotError::FactorMismatch(msg)) => assert!(msg.contains("not bound"), "{msg}"),
        other => panic!("expected FactorMismatch, got {other:?}"),
    }

    assert!(snap.validate_expr(&snap.expr.clone(), &bindings).is_ok());
}

#[test]
fn hostile_random_bytes_never_panic() {
    // Deterministic xorshift fuzz: none of these are valid snapshots,
    // and none may panic the decoder.
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    for len in [0usize, 1, 7, 8, 15, 16, 40, 200, 4096] {
        for _ in 0..8 {
            let mut buf: Vec<u8> = (0..len).map(|_| next() as u8).collect();
            assert!(Snapshot::decode(&buf).is_err());
            // Same bytes behind a valid header: the section framing must
            // still reject them without panicking.
            let mut framed = MAGIC.to_vec();
            framed.extend_from_slice(&VERSION.to_le_bytes());
            framed.append(&mut buf);
            assert!(Snapshot::decode(&framed).is_err());
        }
    }
}
