//! Round-trip property tests for the `bikron-snap/1` snapshot format.
//!
//! Two claims carry the warm-start design:
//!
//! 1. **Codec fidelity** — `decode(encode(s))` reproduces every field of
//!    the snapshot exactly (graphs, stats, stats body, cache entries),
//!    and re-encoding the decoded value is byte-identical. Nothing in
//!    the pipeline may be lossy, or a warm boot would serve different
//!    answers than the process that wrote the file.
//! 2. **Warm ≡ cold** — a server rebuilt from a snapshot answers every
//!    `/v1/*` endpoint with bodies byte-identical to a cold boot of the
//!    same spec. The *only* sanctioned difference is the `"snapshot"`
//!    provenance field in `/v1/stats` (`warm` vs `cold`), injected at a
//!    single point at boot.
//!
//! Both are checked over random factor graphs (proptest) for the pair
//! backend, and over a fixed-but-nontrivial program for the expression
//! backend.

use std::sync::Arc;

use bikron_core::SelfLoopMode;
use bikron_graph::Graph;
use bikron_serve::snapshot::Snapshot;
use bikron_serve::{CacheKey, ServeOptions, ServeState, SnapshotBackend};
use proptest::prelude::*;

/// Parse one GET into the router's request type.
fn get(path: &str) -> bikron_serve::http::Request {
    let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
    bikron_serve::http::parse_request(&mut std::io::BufReader::new(raw.as_bytes())).unwrap()
}

/// A random simple graph: `n` vertices, ≥ 1 edge, no self-loops.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..7).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..14).prop_map(move |pairs| {
            let mut edges: Vec<(usize, usize)> =
                pairs.into_iter().filter(|(u, v)| u != v).collect();
            if edges.is_empty() {
                edges.push((0, 1));
            }
            Graph::from_edges(n, &edges).expect("edges are in range")
        })
    })
}

fn arb_mode() -> impl Strategy<Value = SelfLoopMode> {
    prop_oneof![Just(SelfLoopMode::None), Just(SelfLoopMode::FactorA)]
}

/// The endpoint sweep both servers answer; covers every read route.
fn probe_paths(n: usize) -> Vec<String> {
    let mut paths = vec![
        "/v1/stats".to_string(),
        "/v1/scatter/degree-squares?limit=16".to_string(),
        "/v1/edges/0/1?limit=32".to_string(),
        "/v1/community?a=0,1&b=0".to_string(),
        format!("/v1/vertex/{n}"), // out of range: 404 bodies must match too
    ];
    for p in 0..n.min(8) {
        paths.push(format!("/v1/vertex/{p}"));
        paths.push(format!("/v1/neighbors/{p}?limit=8"));
        paths.push(format!("/v1/edge/{p}/{}", (p + 1) % n));
        paths.push(format!("/v1/clustering/{p}/{}", (p + 1) % n));
    }
    paths
}

/// Warm `/v1/stats` bodies differ from cold ones in exactly the
/// provenance field; normalise it away before comparing.
fn normalize(body: &str) -> String {
    body.replace("\"snapshot\": \"warm\"", "\"snapshot\": \"cold\"")
}

/// Drive the full probe sweep against a state, returning `(path, status,
/// body)` rows.
fn sweep(state: &ServeState) -> Vec<(String, u16, String)> {
    probe_paths(state.num_vertices())
        .into_iter()
        .map(|p| {
            let resp = state.handle(&get(&p));
            (p, resp.status, resp.body)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Codec fidelity over random pair servers: every field survives
    /// encode→decode, and the decoded value re-encodes byte-identically.
    #[test]
    fn pair_snapshot_round_trips_exactly(
        a in arb_graph(),
        b in arb_graph(),
        mode in arb_mode(),
    ) {
        let state = ServeState::build_with(
            a.clone(), b.clone(), mode, ServeOptions::default(),
        ).expect("cold build");
        // Touch a spread of endpoints so the cache holds real entries.
        for row in sweep(&state) {
            let _ = row;
        }
        let snap = state.to_snapshot(64);
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("decode own encoding");

        prop_assert_eq!(&decoded.expr, &snap.expr);
        prop_assert_eq!(decoded.shard, snap.shard);
        prop_assert_eq!(&decoded.stats_json, &snap.stats_json);
        prop_assert_eq!(decoded.cache.len(), snap.cache.len());
        for ((k1, b1), (k2, b2)) in decoded.cache.iter().zip(snap.cache.iter()) {
            prop_assert_eq!(k1, k2);
            prop_assert_eq!(b1.as_str(), b2.as_str());
        }
        match (&decoded.backend, &snap.backend) {
            (
                SnapshotBackend::Pair { a: da, b: db, mode: dm, stats_a: dsa, stats_b: dsb },
                SnapshotBackend::Pair { a: sa, b: sb, mode: sm, stats_a: ssa, stats_b: ssb },
            ) => {
                prop_assert_eq!(da, sa);
                prop_assert_eq!(db, sb);
                prop_assert_eq!(dm, sm);
                prop_assert_eq!(dsa, ssa);
                prop_assert_eq!(dsb, ssb);
            }
            _ => prop_assert!(false, "backend kind changed in round-trip"),
        }
        // Byte-identity: the decoded snapshot re-encodes to the same file.
        prop_assert_eq!(decoded.encode(), bytes);
        // And the snapshot passes validation against its own spec.
        prop_assert!(decoded.validate_pair(&a, &b, mode).is_ok());
    }

    /// Warm ≡ cold over random pair servers: byte-identical bodies on
    /// every endpoint, modulo only the `/v1/stats` provenance field.
    #[test]
    fn warm_boot_serves_byte_identical_bodies(
        a in arb_graph(),
        b in arb_graph(),
        mode in arb_mode(),
    ) {
        let cold = ServeState::build_with(
            a, b, mode, ServeOptions::default(),
        ).expect("cold build");
        let cold_rows = sweep(&cold);

        let bytes = cold.to_snapshot(64).encode();
        let snap = Snapshot::decode(&bytes).expect("decode");
        let (warm, info) = ServeState::build_from_snapshot(snap, ServeOptions::default())
            .expect("warm build");
        prop_assert!(info.load_ns > 0);

        // The cold sweep populated the cache; the warm boot restored it.
        let restored = warm.cache().map_or(0, |c| c.len());
        prop_assert_eq!(restored, info.cache_entries_restored);
        prop_assert!(restored > 0, "warm server restored no cache entries");

        let warm_rows = sweep(&warm);
        prop_assert_eq!(cold_rows.len(), warm_rows.len());
        for ((path, cs, cb), (_, ws, wb)) in cold_rows.iter().zip(warm_rows.iter()) {
            prop_assert_eq!(cs, ws, "status diverged on {}", path);
            prop_assert_eq!(
                normalize(cb), normalize(wb),
                "body diverged on {}", path
            );
        }
        // The provenance fields themselves read as designed.
        let cold_stats = cold.handle(&get("/v1/stats")).body;
        let warm_stats = warm.handle(&get("/v1/stats")).body;
        prop_assert!(cold_stats.contains("\"snapshot\": \"cold\""));
        prop_assert!(warm_stats.contains("\"snapshot\": \"warm\""));
    }
}

/// A representative expression server for the chain-backend round trip:
/// three levels, a repeated atom, and a `+ I` lift.
fn chain_state() -> ServeState {
    let bindings = vec![
        (
            "A".to_string(),
            Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap(),
        ),
        (
            "B".to_string(),
            Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap(),
        ),
    ];
    let levels = vec![
        ("A".to_string(), true),
        ("B".to_string(), false),
        ("A".to_string(), false),
    ];
    ServeState::build_expr(bindings, &levels, ServeOptions::default()).expect("chain build")
}

#[test]
fn chain_snapshot_round_trips_and_boots_identically() {
    let cold = chain_state();
    let cold_rows = sweep(&cold);

    let snap = cold.to_snapshot(64);
    let bytes = snap.encode();
    let decoded = Snapshot::decode(&bytes).expect("decode");
    assert_eq!(decoded.expr, snap.expr);
    match (&decoded.backend, &snap.backend) {
        (
            SnapshotBackend::Chain {
                bindings: db,
                levels: dl,
            },
            SnapshotBackend::Chain {
                bindings: sb,
                levels: sl,
            },
        ) => {
            assert_eq!(dl, sl);
            assert_eq!(db.len(), sb.len());
            for ((n1, g1, s1), (n2, g2, s2)) in db.iter().zip(sb.iter()) {
                assert_eq!(n1, n2);
                assert_eq!(g1, g2);
                assert_eq!(s1, s2);
            }
        }
        _ => panic!("backend kind changed in round-trip"),
    }
    assert_eq!(decoded.encode(), bytes);

    let (warm, info) =
        ServeState::build_from_snapshot(decoded, ServeOptions::default()).expect("warm build");
    assert!(info.load_ns > 0);
    let warm_rows = sweep(&warm);
    for ((path, cs, cb), (_, ws, wb)) in cold_rows.iter().zip(warm_rows.iter()) {
        assert_eq!(cs, ws, "status diverged on {path}");
        assert_eq!(normalize(cb), normalize(wb), "body diverged on {path}");
    }
}

/// Sharded restore keeps only entries the shard can answer again:
/// vertex-keyed entries owned elsewhere are dropped, scatter pages kept.
#[test]
fn shard_restore_filters_foreign_entries() {
    let a = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
    let b = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    let full = ServeState::build_with(
        a.clone(),
        b.clone(),
        SelfLoopMode::None,
        ServeOptions::default(),
    )
    .unwrap();
    let n = full.num_vertices();
    let mut snap = full.to_snapshot(0);
    // Hand-build a working set covering every vertex plus a scatter page.
    snap.cache = (0..n)
        .map(|p| (CacheKey::Vertex(p), Arc::new(format!("body{p}"))))
        .chain([(CacheKey::Scatter(0, 8), Arc::new("scatter".to_string()))])
        .collect();
    snap.shard = Some((0, 2));

    let (warm, info) = ServeState::build_from_snapshot(
        snap,
        ServeOptions {
            shard: Some((0, 2)),
            ..ServeOptions::default()
        },
    )
    .expect("warm shard build");
    let cache = warm.cache().expect("cache enabled");
    // Shard 0 of 2 owns the first ⌈n/2⌉ vertices; plus the scatter page.
    let owned = (0..n)
        .filter(|&p| bikron_core::partition::owner_of(n, 2, p) == 0)
        .count();
    assert_eq!(info.cache_entries_restored, owned + 1);
    assert_eq!(cache.len(), owned + 1);
    for p in 0..n {
        let hit = cache.get(&CacheKey::Vertex(p)).is_some();
        assert_eq!(
            hit,
            bikron_core::partition::owner_of(n, 2, p) == 0,
            "vertex {p}"
        );
    }
    assert!(cache.get(&CacheKey::Scatter(0, 8)).is_some());
}

/// `write_to` / `read_from` survive the filesystem, and the temp file
/// used for atomic replacement is cleaned up.
#[test]
fn snapshot_file_round_trip() {
    let state = chain_state();
    let snap = state.to_snapshot(16);
    let dir = std::env::temp_dir().join(format!("bikron-snap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.snap");
    let path_str = path.to_str().unwrap();

    snap.write_to(path_str).expect("write");
    assert!(!std::path::Path::new(&format!("{path_str}.tmp")).exists());
    let loaded = Snapshot::read_from(path_str).expect("read");
    assert_eq!(loaded.encode(), snap.encode());

    std::fs::remove_dir_all(&dir).unwrap();
}
