//! End-to-end tests over real TCP: concurrent keep-alive clients checked
//! byte-exact against the closed-form truth, and load shedding under a
//! saturated bounded queue.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bikron_core::truth::squares_edge::edge_squares_at;
use bikron_core::truth::squares_vertex::vertex_squares_at;
use bikron_core::truth::FactorStats;
use bikron_core::{KroneckerProduct, SelfLoopMode};
use bikron_generators::{complete_bipartite, cycle};
use bikron_serve::{ServeOptions, ServeState, Server, ServerConfig};

/// Minimal keep-alive HTTP client for the tests.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let writer = stream.try_clone().unwrap();
        Client {
            reader: BufReader::new(stream),
            writer,
        }
    }

    fn get(&mut self, path: &str) -> (u16, String) {
        write!(self.writer, "GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").expect("write request");
        self.read_response()
    }

    fn read_response(&mut self) -> (u16, String) {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            self.reader.read_line(&mut h).expect("header line");
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("content-length value");
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, String::from_utf8(body).expect("utf-8 body"))
    }
}

/// Start a server on port 0 and return (address, state handle).
fn start(config: ServerConfig) -> (std::net::SocketAddr, Arc<ServeState>) {
    start_with(
        config,
        ServeOptions {
            admin_token: Some("tok".to_string()),
            ..ServeOptions::default()
        },
    )
}

/// Start a server with explicit [`ServeOptions`] (SLO thresholds, access
/// log, …) on port 0.
fn start_with(
    config: ServerConfig,
    options: ServeOptions,
) -> (std::net::SocketAddr, Arc<ServeState>) {
    let state = Arc::new(
        ServeState::build_with(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::FactorA,
            options,
        )
        .expect("build state"),
    );
    let server = Server::bind(config, Arc::clone(&state)).expect("bind");
    let addr = server.local_addr().expect("local addr");
    std::thread::spawn(move || server.run().expect("server run"));
    (addr, state)
}

#[test]
fn concurrent_clients_get_byte_exact_truth() {
    let (addr, state) = start(ServerConfig {
        threads: 4,
        ..ServerConfig::default()
    });

    // Expected bodies computed directly from the closed forms.
    let a = cycle(5);
    let b = complete_bipartite(2, 3);
    let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
    let sa = FactorStats::compute(&a).unwrap();
    let sb = FactorStats::compute(&b).unwrap();
    let n = prod.num_vertices();
    let expected: Vec<String> = (0..n)
        .map(|p| {
            let (i, k) = prod.indexer().split(p);
            format!(
                "{{\n  \"vertex\": {p},\n  \"alpha\": {i},\n  \"beta\": {k},\n  \
                 \"degree\": {},\n  \"squares\": {}\n}}\n",
                prod.degree(p),
                vertex_squares_at(&prod, &sa, &sb, p),
            )
        })
        .collect();
    let edges: Vec<(usize, usize, u64)> = (0..n)
        .flat_map(|p| (0..n).map(move |q| (p, q)))
        .filter_map(|(p, q)| edge_squares_at(&prod, &sa, &sb, p, q).map(|s| (p, q, s)))
        .collect();
    let expected = Arc::new(expected);
    let edges = Arc::new(edges);

    let handles: Vec<_> = (0..8)
        .map(|t| {
            let expected = Arc::clone(&expected);
            let edges = Arc::clone(&edges);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                // Every vertex, on one keep-alive connection.
                for p in 0..expected.len() {
                    let (status, body) = client.get(&format!("/v1/vertex/{p}"));
                    assert_eq!(status, 200, "thread {t} vertex {p}");
                    assert_eq!(body, expected[p], "thread {t} vertex {p}");
                }
                // A slice of the edge set, offset by thread id.
                for (p, q, s) in edges.iter().skip(t).step_by(8) {
                    let (status, body) = client.get(&format!("/v1/edge/{p}/{q}"));
                    assert_eq!(status, 200);
                    assert!(body.contains("\"edge\": true"), "({p},{q}): {body}");
                    assert!(
                        body.contains(&format!("\"squares\": {s}")),
                        "({p},{q}): {body}"
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    // Stats endpoint agrees with the product-level truth.
    let mut client = Client::connect(addr);
    let (status, body) = client.get("/v1/stats");
    assert_eq!(status, 200);
    assert!(body.contains(&format!("\"vertices\": {n}")));
    assert!(body.contains(&format!("\"edges\": {}", prod.num_edges())));
    assert!(body.contains("\"mode\": \"loops-a\""));

    // Metrics saw the traffic.
    let (status, body) = client.get("/metrics");
    assert_eq!(status, 200);
    let report = bikron_obs::Report::from_json(&body).expect("metrics parse");
    assert!(report.counter("serve.requests").unwrap_or(0) >= (8 * n) as u64);

    state.request_shutdown();
}

#[test]
fn health_flips_to_degraded_under_injected_stall() {
    let (addr, state) = start_with(
        ServerConfig::default(),
        ServeOptions {
            admin_token: Some("tok".to_string()),
            slo_p99_ms: 50,
            ..ServeOptions::default()
        },
    );
    let mut client = Client::connect(addr);

    // Fast traffic first: health is ok.
    for p in 0..5 {
        let (status, _) = client.get(&format!("/v1/vertex/{p}"));
        assert_eq!(status, 200);
    }
    let (status, body) = client.get("/v1/health");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"ok\""), "{body}");

    // Inject a 200ms stall — far past the 50ms SLO. Its latency is
    // recorded like any other request's, so windowed p99 spikes.
    let (status, body) = client.get("/v1/admin/stall?ms=200&token=tok");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"stalled_ms\": 200"));

    let (status, body) = client.get("/v1/health");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\": \"degraded\""), "{body}");
    assert!(body.contains("\"ok\": false"), "{body}");

    state.request_shutdown();
}

#[test]
fn prometheus_scrape_is_valid_exposition() {
    let (addr, state) = start(ServerConfig::default());
    let mut client = Client::connect(addr);
    for p in 0..3 {
        client.get(&format!("/v1/vertex/{p}"));
    }
    let (status, body) = client.get("/metrics?format=prometheus");
    assert_eq!(status, 200);
    bikron_obs::prom::check_exposition(&body).expect("exposition validates");
    assert!(
        body.contains("# TYPE bikron_serve_requests counter"),
        "{body}"
    );
    assert!(body.contains("bikron_serve_request_ns_bucket"), "{body}");
    // Live gauge and high-water mark are distinct series.
    assert!(body.contains("\nbikron_serve_inflight "), "{body}");
    assert!(body.contains("\nbikron_serve_inflight_peak "), "{body}");
    // Windowed series carry the window label.
    assert!(body.contains("window=\"1m\""), "{body}");
    state.request_shutdown();
}

#[test]
fn access_log_captures_requests_with_cache_outcomes() {
    let log_path = std::env::temp_dir().join(format!(
        "bikron-server-test-access-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&log_path);
    let (addr, state) = start_with(
        ServerConfig::default(),
        ServeOptions {
            admin_token: Some("tok".to_string()),
            access_log: Some(log_path.display().to_string()),
            ..ServeOptions::default()
        },
    );
    let mut client = Client::connect(addr);
    // Same vertex twice: first populates the cache (miss), second hits.
    client.get("/v1/vertex/4");
    client.get("/v1/vertex/4");
    client.get("/nope/404");
    state.flush_logs();

    let text = std::fs::read_to_string(&log_path).expect("access log exists");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "{text}");
    assert!(lines[0].contains("\"path\": \"/v1/vertex/{n}\""), "{text}");
    assert!(lines[0].contains("\"cache\": \"miss\""), "{text}");
    assert!(lines[1].contains("\"cache\": \"hit\""), "{text}");
    assert!(lines[2].contains("\"status\": 404"), "{text}");
    assert!(lines.iter().all(|l| l.contains("\"latency_ns\": ")));

    state.request_shutdown();
    let _ = std::fs::remove_file(&log_path);
}

#[test]
fn graceful_shutdown_via_admin_token() {
    let (addr, state) = start(ServerConfig::default());
    let mut client = Client::connect(addr);
    let (status, _) = client.get("/v1/shutdown");
    assert_eq!(status, 403);
    assert!(!state.shutdown_requested());
    let (status, body) = client.get("/v1/shutdown?token=tok");
    assert_eq!(status, 200);
    assert!(body.contains("\"shutting_down\": true"));
    assert!(state.shutdown_requested());
}

#[test]
fn saturated_queue_sheds_with_503() {
    let (addr, state) = start(ServerConfig {
        threads: 1,
        queue_capacity: 1,
        read_timeout: Duration::from_secs(3),
        ..ServerConfig::default()
    });

    // Occupy the single worker: a connection with a half-sent request
    // pins it in `parse_request` until we finish or the timeout fires.
    let mut slow = TcpStream::connect(addr).expect("slow connect");
    slow.write_all(b"GET /v1/stats HTTP/1.1\r\n").unwrap();
    slow.flush().unwrap();
    std::thread::sleep(Duration::from_millis(300));

    // Fill the one queue slot.
    let _queued = TcpStream::connect(addr).expect("queued connect");
    std::thread::sleep(Duration::from_millis(300));

    // Every further connection must be shed with an immediate 503.
    let mut shed_seen = 0;
    for _ in 0..3 {
        let mut c = Client::connect(addr);
        let (status, body) = c.read_response();
        assert_eq!(status, 503, "expected load shed, body: {body}");
        assert!(body.contains("queue is full"), "{body}");
        shed_seen += 1;
    }
    assert_eq!(shed_seen, 3);

    // The pinned client can still finish its request afterwards — the
    // shed path never touches established sessions.
    slow.write_all(b"\r\n").unwrap();
    slow.flush().unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut first = [0u8; 15];
    let mut reader = BufReader::new(slow);
    reader.read_exact(&mut first).expect("slow response");
    assert_eq!(&first, b"HTTP/1.1 200 OK");

    state.request_shutdown();
}
