//! Robustness matrix for the hand-rolled HTTP layer: seeded
//! pseudo-random byte streams must never panic the parser, and every
//! rejection must land in the documented status set {400, 405, 413, 431}
//! (with `Closed`/`Io` reported as 400 formality by `HttpError::status`).
//!
//! Three generations of hostility, all deterministic per seed:
//! pure random bytes, random bytes with HTTP-ish framing sprinkled in,
//! and mutated copies of a valid request. A fourth matrix drives random
//! bodies through `POST /v1/batch` end-to-end: the answer is always 200
//! or a structured 400 whose body names the offending line.

use std::io::BufReader;

use bikron_core::SelfLoopMode;
use bikron_generators::{complete_bipartite, cycle};
use bikron_serve::http::parse_request;
use bikron_serve::{ServeOptions, ServeState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Feed one byte stream to the parser; panics bubble up and fail the
/// test, error statuses outside the documented set are asserted against.
fn assert_parse_is_total(stream: &[u8]) {
    let mut reader = BufReader::new(stream);
    // Keep pulling requests until the stream errors or drains, as the
    // keep-alive connection loop would.
    for _ in 0..8 {
        match parse_request(&mut reader) {
            Ok(req) => {
                assert!(
                    req.method == "GET" || req.method == "POST",
                    "parser let through method {:?}",
                    req.method
                );
            }
            Err(e) => {
                assert!(
                    matches!(e.status(), 400 | 405 | 413 | 431),
                    "undocumented status {} for {:?}",
                    e.status(),
                    e.detail()
                );
                break;
            }
        }
    }
}

#[test]
fn random_bytes_never_panic_and_map_to_documented_statuses() {
    let mut rng = StdRng::seed_from_u64(0xF_00D);
    for _ in 0..400 {
        let len = rng.gen_range(0usize..600);
        let stream: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        assert_parse_is_total(&stream);
    }
}

#[test]
fn http_shaped_garbage_never_panics() {
    const FRAGMENTS: &[&str] = &[
        "GET ",
        "POST ",
        "HTTP/1.1",
        "HTTP/9.9",
        "\r\n",
        "\n",
        " ",
        "/v1/vertex/",
        "/v1/batch",
        "%",
        "%zz",
        "%2f",
        "?offset=",
        "&limit=",
        "Content-Length:",
        "Content-Length: 99999999",
        "Host: x",
        ":",
        "\0",
        "vertex 1\n",
    ];
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..400 {
        let mut stream = Vec::new();
        for _ in 0..rng.gen_range(1usize..12) {
            if rng.gen_bool(0.8) {
                stream.extend_from_slice(FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())].as_bytes());
            } else {
                stream.push(rng.gen_range(0u32..256) as u8);
            }
        }
        assert_parse_is_total(&stream);
    }
}

#[test]
fn mutated_valid_requests_never_panic() {
    let valid = b"POST /v1/batch HTTP/1.1\r\nHost: f\r\nContent-Length: 9\r\n\r\nvertex 1\n";
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..600 {
        let mut stream = valid.to_vec();
        for _ in 0..rng.gen_range(1usize..6) {
            match rng.gen_range(0u32..3) {
                0 => {
                    let i = rng.gen_range(0..stream.len());
                    stream[i] = rng.gen_range(0u32..256) as u8;
                }
                1 => {
                    let i = rng.gen_range(0..stream.len());
                    stream.truncate(i);
                }
                _ => {
                    let i = rng.gen_range(0..=stream.len());
                    stream.insert(i, rng.gen_range(0u32..256) as u8);
                }
            }
            if stream.is_empty() {
                break;
            }
        }
        assert_parse_is_total(&stream);
    }
}

#[test]
fn random_batch_bodies_get_200_or_a_line_indexed_400() {
    let state = ServeState::build_with(
        cycle(5),
        complete_bipartite(2, 3),
        SelfLoopMode::None,
        ServeOptions::default(),
    )
    .unwrap();
    const TOKENS: &[&str] = &[
        "vertex",
        "edge",
        "neighbors",
        "vertexx",
        "",
        "0",
        "1",
        "29",
        "30",
        "9999999",
        "18446744073709551616",
        "-1",
        "1.5",
        " ",
        "\t",
        "🦀",
    ];
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for _ in 0..500 {
        let mut body = String::new();
        for _ in 0..rng.gen_range(0usize..8) {
            let words = rng.gen_range(0usize..5);
            let line: Vec<&str> = (0..words)
                .map(|_| TOKENS[rng.gen_range(0..TOKENS.len())])
                .collect();
            body.push_str(&line.join(" "));
            body.push('\n');
        }
        let raw = format!(
            "POST /v1/batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let req = parse_request(&mut BufReader::new(raw.as_bytes())).unwrap();
        let resp = state.handle(&req);
        match resp.status {
            200 => {}
            400 => assert!(
                resp.body.contains("\"line\": "),
                "400 without offending line index: {}",
                resp.body
            ),
            other => panic!("batch answered {other} for body {body:?}: {}", resp.body),
        }
    }
}
