//! Property tests for the sharded LRU result cache.
//!
//! Two invariants carry the whole caching design:
//!
//! 1. **Capacity bound** — `len() ≤ capacity()` after *every* operation,
//!    whatever the insert pattern; the cache can never grow past its
//!    sized arena.
//! 2. **Get-after-put coherence** — in this service a key has exactly one
//!    possible value (answers are pure functions of immutable factors),
//!    so any hit must return byte-for-byte the canonical body for its
//!    key. A stale or cross-wired entry would be a wrong ground-truth
//!    answer, which is the one failure the service exists to rule out.
//!
//! Both are checked over random op sequences (proptest) and under real
//! thread interleavings (`std::thread::scope` hammering one cache).

use std::sync::Arc;

use bikron_serve::{CacheKey, ShardedCache};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The unique body for a key — stands in for the immutable closed-form
/// answer the real service computes.
fn canonical_body(key: &CacheKey) -> String {
    format!("{key:?}#body")
}

/// Compact op encoding for proptest: key pick + insert-vs-get.
#[derive(Debug, Clone)]
struct Op {
    key: CacheKey,
    insert: bool,
}

fn arb_key() -> impl Strategy<Value = CacheKey> {
    prop_oneof![
        (0usize..24).prop_map(CacheKey::Vertex),
        (0usize..8, 0usize..8).prop_map(|(p, q)| CacheKey::Edge(p, q)),
        (0usize..8, 0u64..4, 1usize..4).prop_map(|(p, off, lim)| CacheKey::Neighbors(p, off, lim)),
    ]
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (arb_key(), prop_oneof![Just(false), Just(true)])
            .prop_map(|(key, insert)| Op { key, insert }),
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn capacity_bound_and_coherence_hold_for_any_op_sequence(
        ops in arb_ops(),
        entries in 1usize..12,
        shards in 1usize..5,
    ) {
        let cache = ShardedCache::new(entries, shards);
        for op in &ops {
            if op.insert {
                cache.insert(op.key.clone(), Arc::new(canonical_body(&op.key)));
                // An insert of a key must make it immediately readable —
                // eviction may only claim *other* entries (the fresh key
                // is the most recently used in its shard).
                let read_back = cache.get(&op.key).map(|b| b.to_string());
                prop_assert_eq!(read_back, Some(canonical_body(&op.key)));
            } else if let Some(hit) = cache.get(&op.key) {
                prop_assert_eq!(hit.as_str(), canonical_body(&op.key));
            }
            prop_assert!(cache.len() <= cache.capacity());
        }
        // Bookkeeping sanity: every get above was tallied one way or the
        // other, never both.
        // One get per op (inserts do a read-back, gets are gets).
        prop_assert_eq!(cache.local_hits() + cache.local_misses(), ops.len() as u64);
    }
}

#[test]
fn coherence_under_concurrent_scoped_threads() {
    // Small capacity + many threads + overlapping key ranges: constant
    // eviction pressure with concurrent readers. Every hit anywhere must
    // still be the canonical body, and the bound must hold afterwards.
    let cache = ShardedCache::new(16, 4);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let cache = &cache;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xC0FFEE + t);
                for _ in 0..2_000 {
                    let key = match rng.gen_range(0u32..3) {
                        0 => CacheKey::Vertex(rng.gen_range(0usize..32)),
                        1 => CacheKey::Edge(rng.gen_range(0usize..8), rng.gen_range(0usize..8)),
                        _ => CacheKey::Neighbors(
                            rng.gen_range(0usize..8),
                            rng.gen_range(0u64..4),
                            rng.gen_range(1usize..4),
                        ),
                    };
                    if rng.gen_bool(0.5) {
                        cache.insert(key.clone(), Arc::new(canonical_body(&key)));
                    }
                    if let Some(hit) = cache.get(&key) {
                        assert_eq!(
                            hit.as_str(),
                            canonical_body(&key),
                            "stale entry for {key:?}"
                        );
                    }
                }
            });
        }
    });
    assert!(cache.len() <= cache.capacity());
    assert!(cache.local_hits() > 0, "workload never hit the cache");
    assert!(
        cache.local_evictions() > 0,
        "workload never forced an eviction"
    );
}
