//! Fixed thread-pool acceptor with a bounded pending-connection queue.
//!
//! One acceptor thread (the caller of [`Server::run`]) pulls connections
//! off the listener and offers them to a bounded queue; `threads` workers
//! drain it, each running a keep-alive request loop against the shared
//! [`ServeState`]. When the queue is full the acceptor *sheds load*: it
//! writes a `503 Service Unavailable` (with `Retry-After`) directly on
//! the fresh socket and closes it, so clients get an immediate, explicit
//! signal instead of an unbounded accept backlog. Memory is therefore
//! bounded by `threads + queue_capacity` sockets regardless of offered
//! load.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{parse_request, write_response, HttpError, Response};
use crate::state::ServeState;

/// How long the nonblocking acceptor sleeps between polls, and workers
/// wait on the queue, before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration (transport-level knobs only; query behaviour
/// lives in [`ServeState`]).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker thread count (min 1).
    pub threads: usize,
    /// Bounded pending-connection queue; beyond it, connections are shed
    /// with 503.
    pub queue_capacity: usize,
    /// Per-socket read timeout — bounds how long an idle or trickling
    /// client can pin a worker.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Bounded MPMC queue of accepted sockets: `Mutex<VecDeque>` + `Condvar`.
struct ConnQueue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking offer; returns the stream back when the queue is
    /// full so the acceptor can shed it.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap();
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop with a timeout, so workers periodically observe the
    /// shutdown flag even when idle.
    fn pop_timeout(&self, timeout: Duration) -> Option<TcpStream> {
        let q = self.inner.lock().unwrap();
        let (mut q, _) = self
            .ready
            .wait_timeout_while(q, timeout, |q| q.is_empty())
            .unwrap();
        q.pop_front()
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServerConfig,
}

impl Server {
    /// Bind the listener. Fails fast (before any thread spawns) on a bad
    /// or busy address.
    pub fn bind(config: ServerConfig, state: Arc<ServeState>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on the calling thread until shutdown is
    /// requested (admin endpoint or signal), then drain and join the
    /// workers.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            state,
            config,
        } = self;
        listener.set_nonblocking(true)?;
        let queue = Arc::new(ConnQueue::new(config.queue_capacity.max(1)));

        let workers: Vec<_> = (0..config.threads.max(1))
            .map(|n| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                let read_timeout = config.read_timeout;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{n}"))
                    .spawn(move || worker_loop(&queue, &state, read_timeout))
                    .expect("spawn worker thread")
            })
            .collect();

        while !state.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    state.metrics().connection_opened();
                    if let Err(shed) = queue.try_push(stream) {
                        shed_connection(shed, state.metrics());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Workers observe the same flag via `state`; join gives them one
        // queue-poll interval to finish in-flight requests.
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Write the 503 load-shed response on a fresh socket and close it.
fn shed_connection(mut stream: TcpStream, metrics: &crate::state::ServeMetrics) {
    let resp = Response::error(503, "pending-connection queue is full; retry shortly");
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let bytes = write_response(&mut stream, &resp, false).unwrap_or(0);
    let _ = stream.flush();
    metrics.record_shed(bytes);
}

/// Worker: pull connections until shutdown, serving each keep-alive
/// session to completion.
fn worker_loop(queue: &ConnQueue, state: &ServeState, read_timeout: Duration) {
    loop {
        match queue.pop_timeout(POLL_INTERVAL) {
            Some(stream) => serve_connection(stream, state, read_timeout),
            None if state.shutdown_requested() => return,
            None => {}
        }
    }
}

/// One keep-alive session: parse → route → respond, recording metrics
/// and one access-log event per request, until close/error/shutdown.
fn serve_connection(stream: TcpStream, state: &ServeState, read_timeout: Duration) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let metrics = state.metrics();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let parsed = parse_request(&mut reader);
        if matches!(parsed, Err(HttpError::Closed) | Err(HttpError::Io(_))) {
            return;
        }
        // The latency clock starts once a full request has been read, so
        // keep-alive idle time between requests never pollutes the
        // windowed p99 the health endpoint alarms on.
        let started = Instant::now();
        // Held through routing AND the response write: the live gauge a
        // dashboard polls must count requests still being flushed, not
        // only those inside the router.
        let _inflight = metrics.inflight().enter();
        crate::state::reset_cache_outcome();
        let (resp, keep_alive, method, shape) = match parsed {
            Ok(req) => {
                let resp = state.handle(&req);
                let keep = !req.wants_close();
                let shape = crate::state::path_shape(&req.path);
                (resp, keep, req.method, shape)
            }
            // Parse failures are answered, then the connection is closed:
            // after a framing error the byte stream can't be trusted.
            Err(e) => (
                Response::error(e.status(), &e.detail()),
                false,
                "-".to_string(),
                "malformed".to_string(),
            ),
        };
        let status = resp.status;
        match write_response(&mut writer, &resp, keep_alive) {
            Ok(bytes) => {
                let ns = started.elapsed().as_nanos() as u64;
                metrics.record(status, bytes, ns);
                state.log_access(
                    &method,
                    &shape,
                    status,
                    ns,
                    bytes,
                    crate::state::cache_outcome(),
                );
            }
            Err(_) => return,
        }
        if !keep_alive || state.shutdown_requested() {
            return;
        }
    }
}
