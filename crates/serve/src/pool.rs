//! Fixed thread-pool acceptor with a bounded pending-connection queue.
//!
//! One acceptor thread (the caller of [`Server::run`]) pulls connections
//! off the listener and offers them to a bounded queue; `threads` workers
//! drain it, each running a keep-alive request loop against the shared
//! [`ServeState`]. When the queue is full the acceptor *sheds load*: it
//! writes a `503 Service Unavailable` (with `Retry-After`) directly on
//! the fresh socket and closes it, so clients get an immediate, explicit
//! signal instead of an unbounded accept backlog. Memory is therefore
//! bounded by `threads + queue_capacity` sockets regardless of offered
//! load.

use std::collections::VecDeque;
use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bikron_obs::{SpanRecorder, TraceContext};

use crate::http::{parse_request, write_response, write_response_traced, HttpError, Response};
use crate::state::ServeState;

/// How long the nonblocking acceptor sleeps between polls, and workers
/// wait on the queue, before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Server configuration (transport-level knobs only; query behaviour
/// lives in [`ServeState`]).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker thread count (min 1).
    pub threads: usize,
    /// Bounded pending-connection queue; beyond it, connections are shed
    /// with 503.
    pub queue_capacity: usize,
    /// Per-socket read timeout — bounds how long an idle or trickling
    /// client can pin a worker.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Bounded MPMC queue of accepted sockets: `Mutex<VecDeque>` + `Condvar`.
struct ConnQueue {
    inner: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    capacity: usize,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Non-blocking offer; returns the stream back when the queue is
    /// full so the acceptor can shed it.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut q = self.inner.lock().unwrap();
        if q.len() >= self.capacity {
            return Err(stream);
        }
        q.push_back(stream);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking pop with a timeout, so workers periodically observe the
    /// shutdown flag even when idle.
    fn pop_timeout(&self, timeout: Duration) -> Option<TcpStream> {
        let q = self.inner.lock().unwrap();
        let (mut q, _) = self
            .ready
            .wait_timeout_while(q, timeout, |q| q.is_empty())
            .unwrap();
        q.pop_front()
    }
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServeState>,
    config: ServerConfig,
}

impl Server {
    /// Bind the listener. Fails fast (before any thread spawns) on a bad
    /// or busy address.
    pub fn bind(config: ServerConfig, state: Arc<ServeState>) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            state,
            config,
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Run the accept loop on the calling thread until shutdown is
    /// requested (admin endpoint or signal), then drain and join the
    /// workers.
    pub fn run(self) -> io::Result<()> {
        let Server {
            listener,
            state,
            config,
        } = self;
        listener.set_nonblocking(true)?;
        let queue = Arc::new(ConnQueue::new(config.queue_capacity.max(1)));

        let workers: Vec<_> = (0..config.threads.max(1))
            .map(|n| {
                let queue = Arc::clone(&queue);
                let state = Arc::clone(&state);
                let read_timeout = config.read_timeout;
                std::thread::Builder::new()
                    .name(format!("serve-worker-{n}"))
                    .spawn(move || worker_loop(&queue, &state, read_timeout))
                    .expect("spawn worker thread")
            })
            .collect();

        while !state.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    state.metrics().connection_opened();
                    if let Err(shed) = queue.try_push(stream) {
                        shed_connection(shed, state.metrics());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Workers observe the same flag via `state`; join gives them one
        // queue-poll interval to finish in-flight requests.
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Write the 503 load-shed response on a fresh socket and close it.
fn shed_connection(mut stream: TcpStream, metrics: &crate::state::ServeMetrics) {
    let resp = Response::error(503, "pending-connection queue is full; retry shortly");
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let bytes = write_response(&mut stream, &resp, false).unwrap_or(0);
    let _ = stream.flush();
    metrics.record_shed(bytes);
}

/// Worker: pull connections until shutdown, serving each keep-alive
/// session to completion.
fn worker_loop(queue: &ConnQueue, state: &ServeState, read_timeout: Duration) {
    loop {
        match queue.pop_timeout(POLL_INTERVAL) {
            Some(stream) => serve_connection(stream, state, read_timeout),
            None if state.shutdown_requested() => return,
            None => {}
        }
    }
}

/// One keep-alive session: parse → route → respond, recording metrics,
/// one access-log event, and (when tracing is enabled) one span tree
/// per request, until close/error/shutdown.
fn serve_connection(stream: TcpStream, state: &ServeState, read_timeout: Duration) {
    if stream.set_read_timeout(Some(read_timeout)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let metrics = state.metrics();
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        // The recorder's clock is based here, before the read, so the
        // `accept` span shows real time spent pulling the request off
        // the wire. On keep-alive connections this includes idle time
        // between requests — acceptable for a diagnostic span, and kept
        // out of the latency metrics below.
        let io_started = Instant::now();
        // The profiler's `accept` frame covers the blocking read (and,
        // on keep-alive connections, idle time between requests — the
        // sampler attributes a quiet server to `accept`, which is true:
        // the worker really is parked in the socket read).
        let accept_frame = bikron_obs::profile::phase("accept");
        let parsed = parse_request(&mut reader);
        drop(accept_frame);
        if matches!(parsed, Err(HttpError::Closed) | Err(HttpError::Io(_))) {
            return;
        }
        // The latency clock starts once a full request has been read, so
        // keep-alive idle time between requests never pollutes the
        // windowed p99 the health endpoint alarms on (nor the slow-trace
        // capture decision, which uses the same total).
        let started = Instant::now();
        // Held through routing AND the response write: the live gauge a
        // dashboard polls must count requests still being flushed, not
        // only those inside the router.
        let _inflight = metrics.inflight().enter();
        crate::state::reset_cache_outcome();
        // Every request gets a trace identity, recorder or not: adopt
        // the client's `traceparent` when one parses (our root span
        // becomes a child in the caller's trace), otherwise mint ids.
        let (ctx, remote_parent) = match parsed
            .as_ref()
            .ok()
            .and_then(|req| req.header("traceparent"))
            .and_then(TraceContext::parse_traceparent)
        {
            Some(remote) => (TraceContext::child_of(remote), remote.span_id),
            None => (TraceContext::generate(), 0),
        };
        let trace_hex = ctx.trace_id_hex();
        let recorder = state
            .spans()
            .enabled()
            .then(|| Arc::new(SpanRecorder::with_start(ctx, remote_parent, io_started)));
        if let Some(rec) = &recorder {
            // `accept` retroactively covers the socket read; `parse` is
            // a zero-width marker (parsing happens inside the read).
            let accept = rec.begin_at("accept", None, 0);
            rec.end(accept);
            let parse = rec.begin("parse", None);
            rec.end(parse);
        }
        let (resp, keep_alive, method, shape) = match parsed {
            Ok(req) => {
                // Install the recorder thread-locally for the duration
                // of routing so handlers can hang cache/serialize (and
                // per-batch-item) child spans off the evaluate span.
                let evaluate = recorder.as_ref().and_then(|rec| {
                    let tok = rec.begin("evaluate", None)?;
                    crate::state::set_current_recorder(Arc::clone(rec), tok);
                    Some(tok)
                });
                let evaluate_frame = bikron_obs::profile::phase("evaluate");
                let resp = state.handle(&req);
                drop(evaluate_frame);
                crate::state::take_current_recorder();
                if let Some(rec) = &recorder {
                    rec.end(evaluate);
                }
                let keep = !req.wants_close();
                let shape = crate::state::path_shape(&req.path);
                (resp, keep, req.method, shape)
            }
            // Parse failures are answered, then the connection is closed:
            // after a framing error the byte stream can't be trusted.
            Err(e) => (
                Response::error(e.status(), &e.detail()),
                false,
                "-".to_string(),
                "malformed".to_string(),
            ),
        };
        // Error bodies carry the trace id so a client pasting a failure
        // into a bug report hands over the lookup key; success bodies
        // stay byte-identical to the untraced server (the id travels in
        // the `x-bikron-trace-id` header instead).
        let resp = if resp.status >= 400 {
            resp.with_trace_id(&trace_hex)
        } else {
            resp
        };
        let status = resp.status;
        let write = recorder.as_ref().and_then(|rec| rec.begin("write", None));
        let write_frame = bikron_obs::profile::phase("write");
        let wrote = write_response_traced(&mut writer, &resp, keep_alive, Some(&trace_hex));
        drop(write_frame);
        match wrote {
            Ok(bytes) => {
                if let Some(rec) = &recorder {
                    rec.end(write);
                }
                let ns = started.elapsed().as_nanos() as u64;
                metrics.record(status, bytes, ns);
                state.log_access(
                    &method,
                    &shape,
                    status,
                    ns,
                    bytes,
                    crate::state::cache_outcome(),
                    Some(&trace_hex),
                );
                if let Some(rec) = recorder {
                    // Sole owner now that the thread-local clone is
                    // dropped; offer the finished tree for tail capture.
                    if let Ok(rec) = Arc::try_unwrap(rec) {
                        state.spans().offer(rec, &method, &shape, status, bytes, ns);
                    }
                }
            }
            Err(_) => return,
        }
        if !keep_alive || state.shutdown_requested() {
            return;
        }
    }
}
