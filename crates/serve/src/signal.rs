//! Ctrl-C / SIGTERM handling without any external crates.
//!
//! The workspace is std-only, so instead of the `ctrlc`/`signal-hook`
//! crates this installs a classic `signal(2)` handler through a raw
//! `extern "C"` declaration (libc is always linked by std on unix). The
//! handler only flips an [`AtomicBool`]; the accept loop polls it — the
//! one pattern that is async-signal-safe without a self-pipe.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_SIGNAL: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT/SIGTERM has been delivered since [`install`] was called.
pub fn ctrl_c_received() -> bool {
    SHUTDOWN_SIGNAL.load(Ordering::SeqCst)
}

/// Reset the flag (tests only; a real server exits after shutdown).
#[cfg(test)]
pub(crate) fn reset() {
    SHUTDOWN_SIGNAL.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_SIGNAL;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from libc, which std always links on unix. Using it
        // directly avoids a dependency on the `libc` crate.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe operation: a relaxed-or-stronger atomic
        // store. No allocation, no locks, no I/O.
        SHUTDOWN_SIGNAL.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No-op on non-unix targets; `/v1/shutdown` remains the only
    /// graceful stop there.
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handler (idempotent; no-op off unix).
pub fn install() {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_idempotent() {
        install();
        install();
        reset();
        assert!(!ctrl_c_received());
    }
}
