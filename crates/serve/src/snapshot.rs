//! The `bikron-snap/1` snapshot format: persistence for warm restarts.
//!
//! A snapshot captures everything a server computed at boot that is
//! expensive or order-sensitive — the factor graphs, their
//! [`FactorStats`], the cached `/v1/stats` body (which embeds the
//! O(product)-cost degree histogram and global square count on pair
//! servers), and optionally the hottest result-cache entries — so a
//! restart rebuilds [`crate::ServeState`] by *decoding* instead of
//! *recomputing*, and boots with a warm working set.
//!
//! ## Layout
//!
//! ```text
//! magic    8 bytes  b"BIKRSNAP"
//! version  u64 LE   1
//! section × 4, in fixed order:
//!   tag      u64 LE   1=META 2=FACTORS 3=STATS_JSON 4=CACHE
//!   len      u64 LE   payload byte length
//!   payload  len bytes
//!   checksum u64 LE   FNV-1a over the payload
//! ```
//!
//! Per DESIGN.md §9.1 the schema version is strict: a reader never
//! guesses at unknown versions (`UnsupportedVersion`), every section is
//! sealed by its own checksum (`ChecksumMismatch` names the section),
//! and a snapshot embeds the canonical expression it was taken for —
//! loading it under a different program is an `ExpressionMismatch`, and
//! matching expressions with different factor *graphs* (same names,
//! different edges) is a `FactorMismatch`. All decode failures are named
//! errors; none panic.

use std::fmt;
use std::sync::Arc;

use bikron_core::snap::{put_factor_stats, put_graph, read_factor_stats, read_graph};
use bikron_core::truth::FactorStats;
use bikron_core::SelfLoopMode;
use bikron_graph::Graph;
use bikron_sparse::snap::{fnv1a, put_str, put_u64, ByteReader, SnapError};

use crate::cache::CacheKey;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"BIKRSNAP";
/// The schema version this build reads and writes.
pub const VERSION: u64 = 1;
/// Schema identifier advertised in logs and docs.
pub const SCHEMA: &str = "bikron-snap/1";
/// Default number of hottest cache entries harvested into a snapshot.
pub const DEFAULT_CACHE_TOP_K: usize = 4096;

const TAG_META: u64 = 1;
const TAG_FACTORS: u64 = 2;
const TAG_STATS_JSON: u64 = 3;
const TAG_CACHE: u64 = 4;

/// Why a snapshot could not be written, read, or applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure while reading or writing the snapshot file.
    Io(String),
    /// The file does not start with [`MAGIC`] — not a snapshot at all.
    WrongMagic,
    /// The file declares a schema version this build does not speak.
    UnsupportedVersion(u64),
    /// The file ended inside the named structure.
    Truncated(&'static str),
    /// The named section's FNV-1a checksum did not match its payload.
    ChecksumMismatch(&'static str),
    /// Framing was intact but the decoded content is invalid.
    Corrupt(String),
    /// The snapshot was taken for a different canonical expression.
    ExpressionMismatch {
        /// Expression recorded in the snapshot.
        snapshot: String,
        /// Expression the server was asked to boot.
        requested: String,
    },
    /// Expressions agree but a factor graph differs from the served spec.
    FactorMismatch(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::WrongMagic => {
                write!(f, "not a {SCHEMA} snapshot (bad magic)")
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "snapshot schema version {v} unsupported (this build reads {VERSION})"
                )
            }
            SnapshotError::Truncated(what) => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::ChecksumMismatch(section) => {
                write!(f, "snapshot section {section} failed its checksum")
            }
            SnapshotError::Corrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            SnapshotError::ExpressionMismatch {
                snapshot,
                requested,
            } => write!(
                f,
                "snapshot was taken for '{snapshot}' but the server is booting '{requested}'"
            ),
            SnapshotError::FactorMismatch(msg) => {
                write!(f, "snapshot factor mismatch: {msg}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    fn from_snap(e: SnapError) -> Self {
        match e {
            SnapError::Truncated { what } => SnapshotError::Truncated(what),
            SnapError::Malformed(msg) => SnapshotError::Corrupt(msg),
        }
    }
}

/// The backend a snapshot rebuilds, mirroring the serve-layer split.
// One instance exists transiently at boot; the variant size gap of the
// inline Pair stats is irrelevant there, so boxing would only add noise.
#[allow(clippy::large_enum_variant)]
pub enum SnapshotBackend {
    /// A two-factor `A⊗B` / `(A+I)⊗B` server.
    Pair {
        /// Factor `A`.
        a: Graph,
        /// Factor `B`.
        b: Graph,
        /// Whether `A` is lifted with `+ I`.
        mode: SelfLoopMode,
        /// Precomputed stats for `A`.
        stats_a: FactorStats,
        /// Precomputed stats for `B`.
        stats_b: FactorStats,
    },
    /// An arbitrary `--expr` program over named atoms.
    Chain {
        /// Named atoms with their precomputed stats.
        bindings: Vec<(String, Graph, FactorStats)>,
        /// Ordered `(name, plus_identity)` level spec.
        levels: Vec<(String, bool)>,
    },
}

/// An in-memory snapshot: the decoded form of a `bikron-snap/1` file.
pub struct Snapshot {
    /// Canonical expression the snapshot was taken for.
    pub expr: String,
    /// The `--shard I/N` configuration at capture time, if any.
    pub shard: Option<(usize, usize)>,
    /// Factor graphs and statistics.
    pub backend: SnapshotBackend,
    /// The cached `/v1/stats` body *without* its `"snapshot"` field
    /// (the boot path injects `warm`/`cold` uniformly).
    pub stats_json: String,
    /// Hottest result-cache entries, most-recently-used first.
    pub cache: Vec<(CacheKey, Arc<String>)>,
}

fn put_section(buf: &mut Vec<u8>, tag: u64, payload: &[u8]) {
    put_u64(buf, tag);
    put_u64(buf, payload.len() as u64);
    buf.extend_from_slice(payload);
    put_u64(buf, fnv1a(payload));
}

/// Read one `tag/len/payload/checksum` frame, verifying tag order and
/// the payload seal.
fn read_section<'a>(
    r: &mut ByteReader<'a>,
    expect_tag: u64,
    name: &'static str,
) -> Result<&'a [u8], SnapshotError> {
    let tag = r.u64(name).map_err(SnapshotError::from_snap)?;
    if tag != expect_tag {
        return Err(SnapshotError::Corrupt(format!(
            "expected section {name} (tag {expect_tag}), found tag {tag}"
        )));
    }
    let len = r.len(name).map_err(SnapshotError::from_snap)?;
    if len > r.remaining() {
        return Err(SnapshotError::Truncated(name));
    }
    let payload = r.take(len, name).map_err(SnapshotError::from_snap)?;
    let sum = r.u64(name).map_err(|_| SnapshotError::Truncated(name))?;
    if sum != fnv1a(payload) {
        return Err(SnapshotError::ChecksumMismatch(name));
    }
    Ok(payload)
}

fn put_cache_key(buf: &mut Vec<u8>, key: &CacheKey) {
    match *key {
        CacheKey::Vertex(p) => {
            put_u64(buf, 1);
            put_u64(buf, p as u64);
        }
        CacheKey::Edge(p, q) => {
            put_u64(buf, 2);
            put_u64(buf, p as u64);
            put_u64(buf, q as u64);
        }
        CacheKey::Neighbors(p, offset, limit) => {
            put_u64(buf, 3);
            put_u64(buf, p as u64);
            put_u64(buf, offset);
            put_u64(buf, limit as u64);
        }
        CacheKey::Clustering(p, q) => {
            put_u64(buf, 4);
            put_u64(buf, p as u64);
            put_u64(buf, q as u64);
        }
        CacheKey::Scatter(offset, limit) => {
            put_u64(buf, 5);
            put_u64(buf, offset);
            put_u64(buf, limit as u64);
        }
    }
}

fn read_cache_key(r: &mut ByteReader<'_>) -> Result<CacheKey, SnapshotError> {
    const W: &str = "CACHE key";
    let nz = |e: SnapError| SnapshotError::from_snap(e);
    let tag = r.u64(W).map_err(nz)?;
    Ok(match tag {
        1 => CacheKey::Vertex(r.len(W).map_err(nz)?),
        2 => CacheKey::Edge(r.len(W).map_err(nz)?, r.len(W).map_err(nz)?),
        3 => CacheKey::Neighbors(
            r.len(W).map_err(nz)?,
            r.u64(W).map_err(nz)?,
            r.len(W).map_err(nz)?,
        ),
        4 => CacheKey::Clustering(r.len(W).map_err(nz)?, r.len(W).map_err(nz)?),
        5 => CacheKey::Scatter(r.u64(W).map_err(nz)?, r.len(W).map_err(nz)?),
        other => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown cache key tag {other}"
            )))
        }
    })
}

impl Snapshot {
    /// Serialize to the on-disk `bikron-snap/1` byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut meta = Vec::new();
        put_str(&mut meta, &self.expr);
        match self.shard {
            Some((index, count)) => {
                put_u64(&mut meta, 1);
                put_u64(&mut meta, index as u64);
                put_u64(&mut meta, count as u64);
            }
            None => put_u64(&mut meta, 0),
        }
        let mut factors = Vec::new();
        match &self.backend {
            SnapshotBackend::Pair {
                a,
                b,
                mode,
                stats_a,
                stats_b,
            } => {
                put_u64(&mut meta, 0); // backend kind: pair
                put_u64(
                    &mut meta,
                    match mode {
                        SelfLoopMode::None => 0,
                        SelfLoopMode::FactorA => 1,
                    },
                );
                put_u64(&mut factors, 2);
                for (name, g, s) in [("A", a, stats_a), ("B", b, stats_b)] {
                    put_str(&mut factors, name);
                    put_graph(&mut factors, g);
                    put_factor_stats(&mut factors, s);
                }
            }
            SnapshotBackend::Chain { bindings, levels } => {
                put_u64(&mut meta, 1); // backend kind: chain
                put_u64(&mut meta, levels.len() as u64);
                for (name, plus_identity) in levels {
                    put_str(&mut meta, name);
                    put_u64(&mut meta, u64::from(*plus_identity));
                }
                put_u64(&mut factors, bindings.len() as u64);
                for (name, g, s) in bindings {
                    put_str(&mut factors, name);
                    put_graph(&mut factors, g);
                    put_factor_stats(&mut factors, s);
                }
            }
        }

        let mut cache = Vec::new();
        put_u64(&mut cache, self.cache.len() as u64);
        for (key, body) in &self.cache {
            put_cache_key(&mut cache, key);
            put_str(&mut cache, body);
        }

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, VERSION);
        put_section(&mut out, TAG_META, &meta);
        put_section(&mut out, TAG_FACTORS, &factors);
        put_section(&mut out, TAG_STATS_JSON, self.stats_json.as_bytes());
        put_section(&mut out, TAG_CACHE, &cache);
        out
    }

    /// Decode and fully validate a `bikron-snap/1` byte stream.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        if bytes.len() < MAGIC.len() {
            return Err(SnapshotError::Truncated("magic"));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::WrongMagic);
        }
        let mut r = ByteReader::new(&bytes[MAGIC.len()..]);
        let version = r.u64("version").map_err(SnapshotError::from_snap)?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }

        let meta = read_section(&mut r, TAG_META, "META")?;
        let factors = read_section(&mut r, TAG_FACTORS, "FACTORS")?;
        let stats_json = read_section(&mut r, TAG_STATS_JSON, "STATS_JSON")?;
        let cache_bytes = read_section(&mut r, TAG_CACHE, "CACHE")?;
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the CACHE section",
                r.remaining()
            )));
        }

        // META: expr, shard, backend kind + kind-specific spec.
        let mut m = ByteReader::new(meta);
        let nz = SnapshotError::from_snap;
        let expr = m.str_("META expr").map_err(nz)?;
        let shard = match m.u64("META shard flag").map_err(nz)? {
            0 => None,
            1 => {
                let index = m.len("META shard index").map_err(nz)?;
                let count = m.len("META shard count").map_err(nz)?;
                if count == 0 || index >= count {
                    return Err(SnapshotError::Corrupt(format!(
                        "shard {index}/{count} is invalid"
                    )));
                }
                Some((index, count))
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "META shard flag must be 0 or 1, found {other}"
                )))
            }
        };
        let kind = m.u64("META backend kind").map_err(nz)?;

        // FACTORS: named (graph, stats) atoms, validated on decode.
        let mut fr = ByteReader::new(factors);
        let count = fr.len("FACTORS count").map_err(nz)?;
        if count > 64 {
            return Err(SnapshotError::Corrupt(format!(
                "{count} factors exceeds the chain level bound"
            )));
        }
        let mut atoms = Vec::with_capacity(count);
        for _ in 0..count {
            let name = fr.str_("FACTORS name").map_err(nz)?;
            let g = read_graph(&mut fr, "FACTORS graph").map_err(nz)?;
            let s = read_factor_stats(&mut fr, "FACTORS stats").map_err(nz)?;
            if s.order() != g.num_vertices() {
                return Err(SnapshotError::Corrupt(format!(
                    "stats for '{name}' cover {} vertices but its graph has {}",
                    s.order(),
                    g.num_vertices()
                )));
            }
            atoms.push((name, g, s));
        }
        if !fr.is_empty() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes in the FACTORS section".into(),
            ));
        }

        let backend = match kind {
            0 => {
                let mode = match m.u64("META pair mode").map_err(nz)? {
                    0 => SelfLoopMode::None,
                    1 => SelfLoopMode::FactorA,
                    other => {
                        return Err(SnapshotError::Corrupt(format!(
                            "unknown self-loop mode {other}"
                        )))
                    }
                };
                if atoms.len() != 2 {
                    return Err(SnapshotError::Corrupt(format!(
                        "pair snapshot carries {} factors (expected 2)",
                        atoms.len()
                    )));
                }
                let (_, b, stats_b) = atoms.pop().expect("len checked");
                let (_, a, stats_a) = atoms.pop().expect("len checked");
                SnapshotBackend::Pair {
                    a,
                    b,
                    mode,
                    stats_a,
                    stats_b,
                }
            }
            1 => {
                let num_levels = m.len("META level count").map_err(nz)?;
                if num_levels == 0 || num_levels > 64 {
                    return Err(SnapshotError::Corrupt(format!(
                        "chain snapshot declares {num_levels} levels"
                    )));
                }
                let mut levels = Vec::with_capacity(num_levels);
                for _ in 0..num_levels {
                    let name = m.str_("META level name").map_err(nz)?;
                    let pi = match m.u64("META level lift flag").map_err(nz)? {
                        0 => false,
                        1 => true,
                        other => {
                            return Err(SnapshotError::Corrupt(format!(
                                "level lift flag must be 0 or 1, found {other}"
                            )))
                        }
                    };
                    levels.push((name, pi));
                }
                SnapshotBackend::Chain {
                    bindings: atoms,
                    levels,
                }
            }
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown backend kind {other}"
                )))
            }
        };
        if !m.is_empty() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes in the META section".into(),
            ));
        }

        let stats_json = String::from_utf8(stats_json.to_vec())
            .map_err(|_| SnapshotError::Corrupt("STATS_JSON is not UTF-8".into()))?;

        let mut cr = ByteReader::new(cache_bytes);
        let cache_count = cr.len("CACHE count").map_err(nz)?;
        if cache_count > cr.remaining() / 8 {
            return Err(SnapshotError::Truncated("CACHE entries"));
        }
        let mut cache = Vec::with_capacity(cache_count);
        for _ in 0..cache_count {
            let key = read_cache_key(&mut cr)?;
            let body = cr.str_("CACHE body").map_err(nz)?;
            cache.push((key, Arc::new(body)));
        }
        if !cr.is_empty() {
            return Err(SnapshotError::Corrupt(
                "trailing bytes in the CACHE section".into(),
            ));
        }

        Ok(Snapshot {
            expr,
            shard,
            backend,
            stats_json,
            cache,
        })
    }

    /// Write the encoded snapshot to `path` (atomically via a sibling
    /// temp file, so a crash mid-write never leaves a torn snapshot).
    pub fn write_to(&self, path: &str) -> Result<(), SnapshotError> {
        let bytes = self.encode();
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| SnapshotError::Io(format!("{tmp}: {e}")))?;
        std::fs::rename(&tmp, path).map_err(|e| SnapshotError::Io(format!("{path}: {e}")))
    }

    /// Read and decode a snapshot file.
    pub fn read_from(path: &str) -> Result<Self, SnapshotError> {
        let bytes = std::fs::read(path).map_err(|e| SnapshotError::Io(format!("{path}: {e}")))?;
        Self::decode(&bytes)
    }

    /// Check this snapshot against a **pair** server spec: the implied
    /// canonical expression must match and both factor graphs must be
    /// identical to the ones parsed from the command line.
    pub fn validate_pair(
        &self,
        a: &Graph,
        b: &Graph,
        mode: SelfLoopMode,
    ) -> Result<(), SnapshotError> {
        let requested = match mode {
            SelfLoopMode::None => "A⊗B",
            SelfLoopMode::FactorA => "(A+I)⊗B",
        };
        if self.expr != requested {
            return Err(SnapshotError::ExpressionMismatch {
                snapshot: self.expr.clone(),
                requested: requested.to_string(),
            });
        }
        match &self.backend {
            SnapshotBackend::Pair {
                a: sa,
                b: sb,
                mode: smode,
                ..
            } => {
                if *smode != mode {
                    return Err(SnapshotError::ExpressionMismatch {
                        snapshot: self.expr.clone(),
                        requested: requested.to_string(),
                    });
                }
                if sa != a {
                    return Err(SnapshotError::FactorMismatch(
                        "factor A differs from the served spec".into(),
                    ));
                }
                if sb != b {
                    return Err(SnapshotError::FactorMismatch(
                        "factor B differs from the served spec".into(),
                    ));
                }
                Ok(())
            }
            SnapshotBackend::Chain { .. } => Err(SnapshotError::Corrupt(
                "expression snapshot offered to a pair server".into(),
            )),
        }
    }

    /// Check this snapshot against an **expression** server spec:
    /// `canonical` is the `⊗`-joined spelling of the requested levels and
    /// `bindings` the graphs parsed from the command line.
    pub fn validate_expr(
        &self,
        canonical: &str,
        bindings: &[(String, Graph)],
    ) -> Result<(), SnapshotError> {
        if self.expr != canonical {
            return Err(SnapshotError::ExpressionMismatch {
                snapshot: self.expr.clone(),
                requested: canonical.to_string(),
            });
        }
        match &self.backend {
            SnapshotBackend::Chain {
                bindings: snap_bindings,
                ..
            } => {
                for (name, g, _) in snap_bindings {
                    match bindings.iter().find(|(n, _)| n == name) {
                        Some((_, want)) if want == g => {}
                        Some(_) => {
                            return Err(SnapshotError::FactorMismatch(format!(
                                "factor '{name}' differs from the served spec"
                            )))
                        }
                        None => {
                            return Err(SnapshotError::FactorMismatch(format!(
                                "snapshot factor '{name}' is not bound by the served spec"
                            )))
                        }
                    }
                }
                Ok(())
            }
            SnapshotBackend::Pair { .. } => Err(SnapshotError::Corrupt(
                "pair snapshot offered to an expression server".into(),
            )),
        }
    }
}
