//! bikron-serve: a long-running ground-truth query service.
//!
//! The paper's closed forms (Thms 3–7, Cors 1–2) make every per-vertex
//! and per-edge statistic of a Kronecker product answerable from
//! *factor-sized* state: the factor graphs plus their
//! [`FactorStats`](bikron_core::truth::FactorStats). This crate turns
//! that into a service — `bikron serve` holds O(Σ n_i + Σ m_i) memory
//! and answers queries about the (potentially enormous,
//! never-materialised) product. Two backends share one router: the
//! classic pair server (`A B MODE` positional factors) and the
//! **expression server** (`--expr "(A+I)⊗B⊗C"`, an arbitrary
//! [`KronChain`](bikron_core::KronChain) program with compositional
//! ground truth):
//!
//! | endpoint | cost | answer |
//! |---|---|---|
//! | `GET /v1/vertex/{p}` | O(k) | degree + butterfly count at `p` (Thm 3/4) |
//! | `GET /v1/edge/{p}/{q}` | O(k log d) | existence + per-edge squares (Thm 5) |
//! | `GET /v1/neighbors/{p}` | O(Σ d_i + limit) | paged adjacency |
//! | `GET /v1/clustering/{p}/{q}` | O(k log d) | exact `Γ_C` + Thm 6 scaling-law bound |
//! | `GET /v1/community?a=…&b=…` | O(Σ\|S_i\| + Σ deg) | exact `m_in`/`m_out` (Thm 7) + Cor 1–2 density bounds |
//! | `GET /v1/scatter/degree-squares` | O(limit) | Fig-5-style `(vertex, degree, squares)` rows, JSON or CSV |
//! | `POST /v1/batch` | Σ per-item cost | up to `batch_max` of vertex/edge/neighbors, one JSON array |
//! | `GET /v1/stats` | O(1), cached | Table-I summary + canonicalised `expr` |
//! | `GET /v1/edges/{part}/{parts}` | O(factor + limit) | resumable edge stream (pair servers; 501 on expression servers) |
//! | `GET /metrics` | O(metrics) | live `bikron-obs/4` report (`?format=prometheus` for text exposition) |
//! | `GET /v1/health` | O(1) | `ok`/`degraded` from windowed SLO signals |
//! | `GET /v1/shutdown` | O(1) | graceful stop (token-gated) |
//! | `GET /v1/admin/stall` | O(1) | debug latency injection (token-gated) |
//! | `GET /v1/admin/traces` | O(captured) | tail-sampled span trees (`?min_ms=`, token-gated) |
//! | `GET /v1/admin/profile` | O(stacks) | sampled CPU profile (`?seconds=`, `?format=folded`, token-gated) |
//!
//! (`k` = number of chain levels; 2 for pair servers. FORMULAS.md maps
//! each endpoint to its theorem and evaluator function.)
//!
//! A sharded, bounded LRU result cache ([`cache`]) fronts the Thm 3/4/5
//! evaluators; because every answer is a pure function of the immutable
//! factors, cached bodies can never go stale and no invalidation exists.
//!
//! Like the rest of the workspace the crate is std-only: the HTTP/1.1
//! layer ([`http`]) is hand-rolled with hard bounds on every input
//! dimension, and the thread pool ([`pool`]) sheds load with 503 instead
//! of queueing unboundedly. Per-request memory is bounded by the page
//! `limit` cap (times `batch_max` for a batch), never by product size —
//! the "sublinear memory per request" in the service's name.
//!
//! For operations, every request also feeds rolling 1m/5m windows
//! (rates and windowed percentiles alongside the cumulative series) and,
//! with `--access-log`, one bounded, sampled JSON-lines access event per
//! request. `bikron monitor URL` renders the `/metrics` feed as a live
//! dashboard.
//!
//! Every request is also assigned a W3C trace context: an inbound
//! `traceparent` header is adopted (the server becomes a child span),
//! otherwise ids are generated. The trace id is echoed in the
//! `x-bikron-trace-id` response header, stamped into error bodies and
//! access-log lines, and — when `--trace-slow-ms` or `--trace-sample`
//! is set — slow requests keep their full span tree in a bounded ring,
//! retrievable via `GET /v1/admin/traces` and rendered by
//! `bikron trace URL`.

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod http;
pub mod pool;
pub mod signal;
pub mod snapshot;
pub mod state;

pub use cache::{CacheKey, ShardedCache};
pub use pool::{Server, ServerConfig};
pub use snapshot::{Snapshot, SnapshotBackend, SnapshotError};
pub use state::{
    profile_response, ServeOptions, ServeState, WarmInfo, DEFAULT_BATCH_MAX,
    DEFAULT_CACHE_ENTRIES, DEFAULT_CACHE_SHARDS, DEFAULT_LIMIT, MAX_LIMIT, MAX_PROFILE_SECONDS,
};
