//! `POST /v1/batch`: newline-delimited query parsing and concurrent
//! evaluation.
//!
//! A batch body is up to `batch_max` lines, each one query:
//!
//! ```text
//! vertex P
//! edge P Q
//! neighbors P [OFFSET [LIMIT]]
//! ```
//!
//! Parsing is strict: an unknown verb, wrong arity, non-numeric operand,
//! over-cap limit, empty line, or line count beyond `batch_max` fails the
//! *whole* request with a structured 400 naming the offending 0-based
//! line — a malformed batch is a client bug, and answering the valid
//! prefix would hide it. Well-formed lines always evaluate; semantic
//! errors (an out-of-range vertex, say) surface as that item's embedded
//! error object, exactly the body the single-query endpoint would have
//! returned, so a batch of N queries is byte-for-byte N single answers
//! joined into one JSON array.

use std::sync::Arc;

use bikron_obs::{SpanRecorder, SpanToken};

use crate::http::Response;
use crate::state::{ServeState, DEFAULT_LIMIT, MAX_LIMIT};

/// One parsed batch query line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchQuery {
    /// `vertex P` → same answer as `GET /v1/vertex/P`.
    Vertex(usize),
    /// `edge P Q` → same answer as `GET /v1/edge/P/Q`.
    Edge(usize, usize),
    /// `neighbors P [OFFSET [LIMIT]]` → same answer as
    /// `GET /v1/neighbors/P?offset=OFFSET&limit=LIMIT`.
    Neighbors(usize, u64, usize),
}

/// A parse failure: which 0-based line, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchParseError {
    /// 0-based index of the offending line.
    pub line: usize,
    /// Human-readable reason.
    pub detail: String,
}

impl BatchParseError {
    fn new(line: usize, detail: impl Into<String>) -> Self {
        BatchParseError {
            line,
            detail: detail.into(),
        }
    }

    /// The structured 400 response for this failure, carrying the line
    /// index as a machine-readable field.
    pub fn response(&self) -> Response {
        let mut w = bikron_obs::JsonWriter::new();
        w.open_object();
        w.u64_field("error", 400);
        w.string_field("status", crate::http::status_text(400));
        w.string_field("detail", &self.detail);
        w.u64_field("line", self.line as u64);
        w.close_object();
        Response::json(400, w.finish())
    }
}

fn num<T: std::str::FromStr>(tok: &str, what: &str, line: usize) -> Result<T, BatchParseError> {
    tok.parse()
        .map_err(|_| BatchParseError::new(line, format!("{what} is not a number: {tok:?}")))
}

/// Parse a whole batch body. `batch_max` bounds the accepted line count.
pub fn parse_batch(body: &str, batch_max: usize) -> Result<Vec<BatchQuery>, BatchParseError> {
    let mut queries = Vec::new();
    for (line, text) in body.lines().enumerate() {
        if queries.len() >= batch_max {
            return Err(BatchParseError::new(
                line,
                format!("batch exceeds the configured maximum of {batch_max} queries"),
            ));
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        let q = match toks.as_slice() {
            [] => return Err(BatchParseError::new(line, "empty query line")),
            ["vertex", p] => BatchQuery::Vertex(num(p, "vertex index", line)?),
            ["edge", p, q] => {
                BatchQuery::Edge(num(p, "vertex index", line)?, num(q, "vertex index", line)?)
            }
            ["neighbors", rest @ ..] if (1..=3).contains(&rest.len()) => {
                let p = num(rest[0], "vertex index", line)?;
                let offset = match rest.get(1) {
                    Some(t) => num(t, "offset", line)?,
                    None => 0,
                };
                let limit = match rest.get(2) {
                    Some(t) => {
                        let l: usize = num(t, "limit", line)?;
                        if l > MAX_LIMIT {
                            return Err(BatchParseError::new(
                                line,
                                format!("limit {l} exceeds the cap of {MAX_LIMIT}"),
                            ));
                        }
                        l
                    }
                    None => DEFAULT_LIMIT,
                };
                BatchQuery::Neighbors(p, offset, limit)
            }
            [verb, ..] if ["vertex", "edge", "neighbors"].contains(verb) => {
                return Err(BatchParseError::new(
                    line,
                    format!("wrong argument count for {verb:?}: {text:?}"),
                ))
            }
            [verb, ..] => {
                return Err(BatchParseError::new(
                    line,
                    format!("unknown query verb {verb:?} (expected vertex|edge|neighbors)"),
                ))
            }
        };
        queries.push(q);
    }
    if queries.is_empty() {
        return Err(BatchParseError::new(0, "batch body has no queries"));
    }
    Ok(queries)
}

/// Evaluate `queries` across up to `threads` scoped worker threads
/// (answers are pure functions of shared immutable state, so the fan-out
/// needs no synchronisation beyond the result slots) and assemble the
/// single JSON-array response. Item order follows query order.
pub fn eval_batch(state: &ServeState, queries: &[BatchQuery], threads: usize) -> Response {
    let mut results: Vec<Option<Response>> = vec![None; queries.len()];
    let threads = threads.clamp(1, queries.len().max(1));
    let chunk = queries.len().div_ceil(threads);
    // Captured on the request thread: the recorder is shared with worker
    // threads (it's internally synchronised), giving each batch item a
    // child span under the request's evaluate span even when items run
    // on the fan-out pool.
    let trace = crate::state::current_recorder();
    if threads == 1 {
        for (i, (q, slot)) in queries.iter().zip(results.iter_mut()).enumerate() {
            *slot = Some(eval_traced(state, q, i, &trace));
        }
    } else {
        std::thread::scope(|s| {
            for (c, (qs, slots)) in queries
                .chunks(chunk)
                .zip(results.chunks_mut(chunk))
                .enumerate()
            {
                let trace = &trace;
                s.spawn(move || {
                    for (i, (q, slot)) in qs.iter().zip(slots.iter_mut()).enumerate() {
                        *slot = Some(eval_traced(state, q, c * chunk + i, trace));
                    }
                });
            }
        });
    }

    let mut body = String::with_capacity(results.len() * 64);
    body.push('[');
    for (i, resp) in results.into_iter().enumerate() {
        let resp = resp.expect("every batch slot is filled");
        if i > 0 {
            body.push(',');
        }
        body.push('\n');
        body.push_str(resp.body.trim_end());
    }
    body.push_str("\n]\n");
    Response::json(200, body)
}

/// Evaluate one query — exactly the single-endpoint answer.
fn eval_one(state: &ServeState, q: &BatchQuery) -> Response {
    match *q {
        BatchQuery::Vertex(p) => state.vertex_at(p),
        BatchQuery::Edge(p, q) => state.edge_at(p, q),
        BatchQuery::Neighbors(p, offset, limit) => state.neighbors_at(p, offset, limit),
    }
}

/// [`eval_one`] wrapped in a per-item child span (when the request is
/// being recorded), annotated with the item's cache outcome. The answer
/// bytes are identical either way — tracing only observes.
fn eval_traced(
    state: &ServeState,
    q: &BatchQuery,
    i: usize,
    trace: &Option<(Arc<SpanRecorder>, SpanToken)>,
) -> Response {
    let Some((rec, evaluate)) = trace else {
        return eval_one(state, q);
    };
    let verb = match q {
        BatchQuery::Vertex(_) => "vertex",
        BatchQuery::Edge(..) => "edge",
        BatchQuery::Neighbors(..) => "neighbors",
    };
    let tok = rec.begin(&format!("batch[{i}] {verb}"), Some(*evaluate));
    // Each item reads its own thread's cache outcome, so the annotation
    // is per-item even when several items share a worker thread.
    crate::state::reset_cache_outcome();
    let resp = eval_one(state, q);
    rec.set_cache(tok, crate::state::cache_outcome());
    rec.end(tok);
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_verbs_and_defaults() {
        let qs = parse_batch(
            "vertex 3\nedge 1 2\nneighbors 7\nneighbors 7 5\nneighbors 7 5 9\n",
            16,
        )
        .unwrap();
        assert_eq!(
            qs,
            vec![
                BatchQuery::Vertex(3),
                BatchQuery::Edge(1, 2),
                BatchQuery::Neighbors(7, 0, DEFAULT_LIMIT),
                BatchQuery::Neighbors(7, 5, DEFAULT_LIMIT),
                BatchQuery::Neighbors(7, 5, 9),
            ]
        );
    }

    #[test]
    fn missing_trailing_newline_is_fine() {
        assert_eq!(parse_batch("vertex 0", 4).unwrap().len(), 1);
    }

    #[test]
    fn errors_carry_the_offending_line() {
        let cases = [
            ("vertex 1\nfrob 2\n", 1, "unknown query verb"),
            ("vertex 1\nvertex\n", 1, "wrong argument count"),
            ("edge 1\n", 0, "wrong argument count"),
            ("vertex banana\n", 0, "not a number"),
            ("vertex 1\n\nvertex 2\n", 1, "empty query line"),
            ("", 0, "no queries"),
            ("neighbors 1 2 3 4\n", 0, "wrong argument count"),
        ];
        for (body, line, needle) in cases {
            let err = parse_batch(body, 16).unwrap_err();
            assert_eq!(err.line, line, "{body:?}");
            assert!(err.detail.contains(needle), "{body:?} → {}", err.detail);
        }
    }

    #[test]
    fn oversized_batch_names_first_excess_line() {
        let body = "vertex 0\n".repeat(5);
        let err = parse_batch(&body, 3).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.detail.contains("maximum of 3"));
        let resp = err.response();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"line\": 3"));
    }

    #[test]
    fn over_cap_limit_rejected_at_parse() {
        let err = parse_batch(&format!("neighbors 0 0 {}\n", MAX_LIMIT + 1), 4).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.detail.contains("exceeds the cap"));
    }
}
