//! A minimal, bounded HTTP/1.1 request parser and response writer.
//!
//! Hand-rolled on `std::io` for the same reason `bikron-obs` hand-rolls
//! its JSON: the service speaks a tiny, fixed dialect (GET plus `POST
//! /v1/batch` with a small newline-delimited body, small JSON responses)
//! and the offline build cannot pull in `hyper`. Every input dimension
//! is **bounded before allocation** — request-line length, header-line
//! length, header count, body length — and overflow maps to a specific
//! status (413 for an oversized request line or body, 431 for header
//! overflow) instead of unbounded buffering. That bounding is what keeps
//! per-request memory O(1): the parser never holds more than one line
//! plus at most [`MAX_BODY`] body bytes.

use std::io::{self, BufRead, Write};

use bikron_obs::json::escape_into;

/// Longest accepted request line (method + URI + version), bytes.
pub const MAX_REQUEST_LINE: usize = 8192;
/// Longest accepted single header line, bytes.
pub const MAX_HEADER_LINE: usize = 8192;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes. Batch requests carry their
/// newline-delimited queries here; on GET the (stray) body is still
/// drained so keep-alive framing stays intact.
pub const MAX_BODY: usize = 65536;

/// Everything that can go wrong while reading one request.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or percent-encoding → 400.
    BadRequest(String),
    /// Syntactically valid but unsupported method (POST, PUT, …) → 405.
    MethodNotAllowed(String),
    /// Request line or declared body exceeds its bound → 413.
    TooLarge(&'static str),
    /// Header line too long or too many headers → 431.
    HeadersTooLarge(&'static str),
    /// Clean EOF before the first byte of a request (keep-alive close).
    Closed,
    /// Transport error (includes read timeouts).
    Io(io::Error),
}

impl HttpError {
    /// The response status this error maps to (`Closed`/`Io` get 400 as
    /// a formality; callers normally drop the connection instead).
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequest(_) => 400,
            HttpError::MethodNotAllowed(_) => 405,
            HttpError::TooLarge(_) => 413,
            HttpError::HeadersTooLarge(_) => 431,
            HttpError::Closed | HttpError::Io(_) => 400,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::BadRequest(m) => m.clone(),
            HttpError::MethodNotAllowed(m) => format!("method {m} not allowed (GET only)"),
            HttpError::TooLarge(what) => format!("{what} exceeds the configured bound"),
            HttpError::HeadersTooLarge(what) => format!("{what} exceeds the configured bound"),
            HttpError::Closed => "connection closed".to_string(),
            HttpError::Io(e) => format!("io: {e}"),
        }
    }
}

/// One parsed request: method (`GET` or `POST` on success),
/// percent-decoded path, raw query pairs, lower-cased headers, and the
/// (bounded) body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (only `GET` and `POST` survive parsing).
    pub method: String,
    /// Percent-decoded path, query stripped (e.g. `/v1/vertex/17`).
    pub path: String,
    /// Decoded `key=value` query pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, original-case values.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes, at most [`MAX_BODY`] of them.
    pub body: Vec<u8>,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// First header value for the lower-case `name`, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Methods we recognise as valid HTTP but do not serve → 405. Anything
/// else on the method position is a malformed request → 400.
const KNOWN_METHODS: [&str; 7] = [
    "PUT", "DELETE", "PATCH", "HEAD", "OPTIONS", "TRACE", "CONNECT",
];

/// Read one `\n`-terminated line of at most `limit` bytes (excluding the
/// terminator), stripping `\r\n`/`\n`. Returns `Ok(None)` on immediate
/// EOF; an overlong line is reported via `over` without draining the
/// rest (the connection is torn down anyway).
fn read_line_bounded<R: BufRead>(
    r: &mut R,
    limit: usize,
    over: impl FnOnce() -> HttpError,
) -> Result<Option<String>, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(128);
    loop {
        let chunk = r.fill_buf().map_err(HttpError::Io)?;
        if chunk.is_empty() {
            return if buf.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::BadRequest("unterminated line at EOF".into()))
            };
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.map_or(chunk.len(), |i| i + 1);
        if buf.len() + take > limit + 2 {
            return Err(over());
        }
        buf.extend_from_slice(&chunk[..take]);
        r.consume(take);
        if nl.is_some() {
            break;
        }
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::BadRequest("request is not valid UTF-8".into()))
}

/// Percent-decode `s`; `plus_space` additionally maps `+` → space (query
/// semantics). Rejects truncated or non-hex escapes and encoded NUL.
pub fn percent_decode(s: &str, plus_space: bool) -> Result<String, HttpError> {
    let bytes = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| HttpError::BadRequest("truncated percent-escape".into()))?;
                let hi = (hex[0] as char)
                    .to_digit(16)
                    .ok_or_else(|| HttpError::BadRequest("bad percent-escape digit".into()))?;
                let lo = (hex[1] as char)
                    .to_digit(16)
                    .ok_or_else(|| HttpError::BadRequest("bad percent-escape digit".into()))?;
                let b = (hi * 16 + lo) as u8;
                if b == 0 {
                    return Err(HttpError::BadRequest("encoded NUL rejected".into()));
                }
                out.push(b);
                i += 3;
            }
            b'+' if plus_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| HttpError::BadRequest("decoded path is not UTF-8".into()))
}

/// Parse one request from `r`. Blocks until a full head arrives, the
/// configured bounds trip, or the transport errors. Any declared body up
/// to [`MAX_BODY`] is drained so the next keep-alive request starts at a
/// clean frame boundary.
pub fn parse_request<R: BufRead>(r: &mut R) -> Result<Request, HttpError> {
    let line = match read_line_bounded(r, MAX_REQUEST_LINE, || HttpError::TooLarge("request line"))?
    {
        None => return Err(HttpError::Closed),
        Some(l) => l,
    };
    if line.is_empty() {
        return Err(HttpError::BadRequest("empty request line".into()));
    }
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::BadRequest(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    if method != "GET" && method != "POST" {
        return if KNOWN_METHODS.contains(&method) {
            Err(HttpError::MethodNotAllowed(method.to_string()))
        } else {
            Err(HttpError::BadRequest(format!("unknown method {method:?}")))
        };
    }
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!(
            "unsupported version {version:?}"
        )));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!(
            "request target must be absolute, got {target:?}"
        )));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
    }

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line_bounded(r, MAX_HEADER_LINE, || {
            HttpError::HeadersTooLarge("header line")
        })?
        .ok_or_else(|| HttpError::BadRequest("EOF inside headers".into()))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge("header count"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("header without colon: {line:?}")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::BadRequest("bad content-length".into()))?;
        }
        headers.push((name, value));
    }

    if content_length > MAX_BODY {
        return Err(HttpError::TooLarge("request body"));
    }
    // Read the (bounded) body: batch requests use it, and on GET the
    // drain keeps keep-alive framing intact for stray payloads.
    let mut body = Vec::with_capacity(content_length);
    let mut remaining = content_length;
    while remaining > 0 {
        let chunk = r.fill_buf().map_err(HttpError::Io)?;
        if chunk.is_empty() {
            return Err(HttpError::BadRequest("EOF inside body".into()));
        }
        let take = chunk.len().min(remaining);
        body.extend_from_slice(&chunk[..take]);
        r.consume(take);
        remaining -= take;
    }

    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// A response ready for serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// The body, already serialised.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    /// A canned JSON error body `{"error": status, "detail": …}`.
    pub fn error(status: u16, detail: &str) -> Self {
        let mut w = bikron_obs::JsonWriter::new();
        w.open_object();
        w.u64_field("error", status as u64);
        w.string_field("status", status_text(status));
        w.string_field("detail", detail);
        w.close_object();
        Response::json(status, w.finish())
    }

    /// Append a `"trace_id"` field to this response's JSON body — error
    /// statuses only. The connection loop applies this to the *outermost*
    /// response it serves, so live error bodies are self-correlating
    /// (headers alone don't survive copy-paste into a bug report) while
    /// success bodies, batch item bodies, and direct-`handle()` test
    /// responses keep their byte-exact contracts.
    pub fn with_trace_id(mut self, trace_id: &str) -> Response {
        if self.status < 400 || self.content_type != "application/json" {
            return self;
        }
        let Some(brace) = self.body.rfind('}') else {
            return self;
        };
        let mut body = String::with_capacity(self.body.len() + trace_id.len() + 24);
        body.push_str(self.body[..brace].trim_end_matches('\n'));
        body.push_str(",\n  \"trace_id\": \"");
        escape_into(&mut body, trace_id);
        body.push_str("\"\n");
        body.push_str(&self.body[brace..]);
        self.body = body;
        self
    }
}

/// Reason phrase for the status codes this server emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        421 => "Misdirected Request",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialise `resp` to `w`. Returns the total bytes written. The
/// `Connection` header reflects `keep_alive`; 503s additionally carry
/// `Retry-After: 1` so well-behaved clients back off a shed, not a
/// failure.
pub fn write_response<W: Write>(w: &mut W, resp: &Response, keep_alive: bool) -> io::Result<u64> {
    write_response_traced(w, resp, keep_alive, None)
}

/// [`write_response`] plus an optional `x-bikron-trace-id` header — the
/// serving path always has a trace id (propagated from an inbound
/// `traceparent` or generated), so every live response is correlatable
/// even when the span ring is disabled. The header is additive and the
/// body untouched, preserving the byte-exact body contract the batch
/// and differential suites assert on.
pub fn write_response_traced<W: Write>(
    w: &mut W,
    resp: &Response,
    keep_alive: bool,
    trace_id: Option<&str>,
) -> io::Result<u64> {
    let retry = if resp.status == 503 {
        "Retry-After: 1\r\n"
    } else {
        ""
    };
    let trace = match trace_id {
        Some(id) => format!("x-bikron-trace-id: {id}\r\n"),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: {}\r\n\r\n",
        resp.status,
        status_text(resp.status),
        resp.content_type,
        resp.body.len(),
        retry,
        trace,
        if keep_alive { "keep-alive" } else { "close" },
    );
    w.write_all(head.as_bytes())?;
    w.write_all(resp.body.as_bytes())?;
    w.flush()?;
    Ok((head.len() + resp.body.len()) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        parse_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_simple_get() {
        let req = parse("GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/stats");
        assert!(req.query.is_empty());
        assert_eq!(req.header("host"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_query_and_percent_encoding() {
        let req =
            parse("GET /v1/nei%67hbors/5?offset=2&limit=10&x=a%2Bb+c HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/v1/neighbors/5");
        assert_eq!(req.query_param("offset"), Some("2"));
        assert_eq!(req.query_param("limit"), Some("10"));
        assert_eq!(req.query_param("x"), Some("a+b c"));
    }

    #[test]
    fn known_method_is_405_unknown_is_400() {
        assert_eq!(parse("HEAD /x HTTP/1.1\r\n\r\n").unwrap_err().status(), 405);
        assert_eq!(parse("PUT /x HTTP/1.1\r\n\r\n").unwrap_err().status(), 405);
        assert_eq!(parse("BLAH /x HTTP/1.1\r\n\r\n").unwrap_err().status(), 400);
    }

    #[test]
    fn post_parses_with_body() {
        let raw = "POST /v1/batch HTTP/1.1\r\nContent-Length: 9\r\n\r\nvertex 42";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/batch");
        assert_eq!(req.body, b"vertex 42");
    }

    #[test]
    fn post_without_body_is_empty_body() {
        let req = parse("POST /v1/batch HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.body.is_empty());
    }

    #[test]
    fn truncated_and_malformed_are_400() {
        assert_eq!(parse("GET /x\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(
            parse("GET /x HTTP/2 extra HTTP/1.1\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse("GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n")
                .unwrap_err()
                .status(),
            400
        );
        assert_eq!(
            parse("GET /%zz HTTP/1.1\r\n\r\n").unwrap_err().status(),
            400
        );
        assert_eq!(parse("GET /%2 HTTP/1.1\r\n\r\n").unwrap_err().status(), 400);
        assert_eq!(parse("GET x HTTP/1.1\r\n\r\n").unwrap_err().status(), 400);
        // Headers cut off mid-request.
        assert_eq!(
            parse("GET /x HTTP/1.1\r\nHost: y\r\n")
                .unwrap_err()
                .status(),
            400
        );
    }

    #[test]
    fn oversized_request_line_is_413() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE));
        assert!(matches!(parse(&raw).unwrap_err(), HttpError::TooLarge(_)));
    }

    #[test]
    fn oversized_headers_are_431() {
        let raw = format!(
            "GET /x HTTP/1.1\r\nBig: {}\r\n\r\n",
            "v".repeat(MAX_HEADER_LINE)
        );
        assert!(matches!(
            parse(&raw).unwrap_err(),
            HttpError::HeadersTooLarge(_)
        ));
        let many = "X-H: 1\r\n".repeat(MAX_HEADERS + 1);
        let raw = format!("GET /x HTTP/1.1\r\n{many}\r\n");
        assert_eq!(parse(&raw).unwrap_err().status(), 431);
    }

    #[test]
    fn oversized_body_is_413() {
        let raw = format!(
            "GET /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(matches!(
            parse(&raw).unwrap_err(),
            HttpError::TooLarge("request body")
        ));
    }

    #[test]
    fn small_body_is_drained_for_keep_alive() {
        let raw = "GET /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(raw.as_bytes());
        assert_eq!(parse_request(&mut r).unwrap().path, "/a");
        assert_eq!(parse_request(&mut r).unwrap().path, "/b");
        assert!(matches!(
            parse_request(&mut r).unwrap_err(),
            HttpError::Closed
        ));
    }

    #[test]
    fn eof_before_request_is_closed() {
        assert!(matches!(parse("").unwrap_err(), HttpError::Closed));
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap();
        assert!(req.wants_close());
    }

    #[test]
    fn response_serialises_with_length_and_connection() {
        let mut buf = Vec::new();
        let n = write_response(&mut buf, &Response::json(200, "{}".into()), true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(n as usize, text.len());
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut buf2 = Vec::new();
        write_response(&mut buf2, &Response::error(503, "shed"), false).unwrap();
        let text2 = String::from_utf8(buf2).unwrap();
        assert!(text2.contains("Retry-After: 1\r\n"));
        assert!(text2.contains("Connection: close\r\n"));
        assert!(text2.contains("\"error\": 503"));
    }

    #[test]
    fn with_trace_id_extends_error_bodies_only() {
        let err = Response::error(404, "no route for /nope")
            .with_trace_id("0af7651916cd43dd8448eb211c80319c");
        assert!(
            err.body
                .contains(",\n  \"trace_id\": \"0af7651916cd43dd8448eb211c80319c\"\n}"),
            "{}",
            err.body
        );
        assert!(err.body.contains("\"detail\": \"no route for /nope\""));
        // Success bodies are byte-exact contracts; never touched.
        let ok = Response::json(200, "{\n  \"vertex\": 1\n}\n".to_string());
        let body_before = ok.body.clone();
        assert_eq!(ok.with_trace_id("deadbeef").body, body_before);
    }

    #[test]
    fn traced_response_carries_the_trace_id_header() {
        let resp = Response::json(200, "{}".into());
        let mut buf = Vec::new();
        let n = write_response_traced(
            &mut buf,
            &resp,
            true,
            Some("0af7651916cd43dd8448eb211c80319c"),
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(n as usize, text.len());
        assert!(text.contains("x-bikron-trace-id: 0af7651916cd43dd8448eb211c80319c\r\n"));
        // The body is untouched — only the head grows.
        assert!(text.ends_with("\r\n\r\n{}"));
        // And the untraced writer emits no such header.
        let mut plain = Vec::new();
        write_response(&mut plain, &resp, true).unwrap();
        assert!(!String::from_utf8(plain)
            .unwrap()
            .contains("x-bikron-trace-id"));
    }
}
