//! Shared server state and the request router.
//!
//! [`ServeState`] is the whole memory footprint of the service: the
//! factor graphs, their [`FactorStats`], one cached `/v1/stats` body,
//! and a bounded result cache. Nothing product-sized is ever built —
//! each request evaluates the closed-form theorems against factor-sized
//! state, so a server describing a graph with millions of vertices holds
//! only factor-sized state (plus the fixed-capacity cache) and each
//! request allocates at most `O(limit + Σ|factor|)` — `O(batch_max ×
//! limit)` for a batch.
//!
//! Two backends share the router: the classic **pair** server (factors
//! `A`, `B` and a [`SelfLoopMode`], built by [`ServeState::build_with`])
//! and the **expression** server (an arbitrary [`KronChain`] program like
//! `(A+I)⊗B⊗C`, built by [`ServeState::build_expr`]). Responses are
//! byte-identical between the two except where the index arithmetic
//! differs by construction: expression servers report per-level
//! `"coords"` where pair servers report `"alpha"`/`"beta"`, and only pair
//! servers stream `/v1/edges` (expression servers answer 501 there).

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bikron_core::stream::PartitionedStream;
use bikron_core::truth::clustering::{product_gamma, scaling_law_at};
use bikron_core::truth::community::{product_community, FactorCommunity};
use bikron_core::truth::squares_edge::edge_squares_at;
use bikron_core::truth::squares_vertex::{global_squares_with, vertex_squares_at};
use bikron_core::truth::FactorStats;
use bikron_core::{predict_structure, KronChain, KroneckerProduct, SelfLoopMode};
use bikron_graph::{bipartition, Graph};
use bikron_obs::span::DEFAULT_TRACE_CAPACITY;
use bikron_obs::window::{WindowedCounter, WindowedHistogram};
use bikron_obs::{
    Counter, EventLogger, Gauge, Histogram, JsonWriter, LogEvent, SpanRecorder, SpanSink,
    SpanToken, WindowRegistry, WindowSnapshot,
};

use crate::cache::{CacheKey, ShardedCache};
use crate::http::{Request, Response};

/// Default page size for `/v1/neighbors` and `/v1/edges`.
pub const DEFAULT_LIMIT: usize = 100;
/// Hard cap on a single page — the "sublinear memory per request"
/// guarantee: no query can make the server materialise more than this
/// many items.
pub const MAX_LIMIT: usize = 10_000;
/// Upper bound on the partition count a client may request.
pub const MAX_PARTS: usize = 1 << 20;
/// Default cap on queries per `POST /v1/batch` request
/// (`--batch-max` overrides).
pub const DEFAULT_BATCH_MAX: usize = 256;
/// Default total result-cache capacity in entries (`--cache-entries`
/// overrides; 0 disables the cache).
pub const DEFAULT_CACHE_ENTRIES: usize = 65_536;
/// Default result-cache shard count (`--cache-shards` overrides).
pub const DEFAULT_CACHE_SHARDS: usize = 16;
/// Default windowed-p99 SLO threshold in milliseconds
/// (`--slo-p99-ms` overrides).
pub const DEFAULT_SLO_P99_MS: u64 = 500;
/// Default windowed error-rate SLO threshold in whole percent
/// (`--slo-err-pct` overrides).
pub const DEFAULT_SLO_ERR_PCT: u64 = 5;
/// Access-log queue capacity (events buffered between the request path
/// and the writer thread before drops begin).
pub const ACCESS_LOG_QUEUE: usize = 4096;
/// Upper bound on `/v1/admin/stall?ms=` — the injected stall can spike
/// windowed latency but never pin a worker for more than this.
pub const MAX_STALL_MS: u64 = 2_000;
/// Upper bound on `/v1/admin/profile?seconds=` — a capture window holds
/// a worker thread (snapshot, sleep, snapshot) for its whole duration.
pub const MAX_PROFILE_SECONDS: u64 = 30;

/// Behavioural knobs for [`ServeState::build_with`]. Transport-level
/// knobs (address, pool size, queue) stay in
/// [`ServerConfig`](crate::ServerConfig).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Token gating `/v1/shutdown`; `None` disables admin endpoints.
    pub admin_token: Option<String>,
    /// Total result-cache entries across all shards; 0 disables caching.
    pub cache_entries: usize,
    /// Result-cache shard count (per-shard mutexes bound contention).
    pub cache_shards: usize,
    /// Maximum queries accepted per batch request.
    pub batch_max: usize,
    /// Scoped worker threads used to evaluate one batch.
    pub batch_threads: usize,
    /// Append one JSON-lines access event per request to this file
    /// (`--access-log`); `None` disables access logging.
    pub access_log: Option<String>,
    /// Keep every Nth access event per target (`--log-sample`; 1 keeps
    /// all).
    pub log_sample: u64,
    /// Serve only the owned slice of the product vertex space:
    /// `Some((index, count))` for `--shard I/N`. Ownership follows the
    /// [`bikron_core::partition::block_range`] tiling — the same
    /// arithmetic [`PartitionedStream`] and the cluster router use — and
    /// keyed endpoints answer 421 (Misdirected Request) for vertices
    /// another shard owns. `None` (the default) serves the full space.
    ///
    /// [`PartitionedStream`]: bikron_core::stream::PartitionedStream
    pub shard: Option<(usize, usize)>,
    /// `/v1/health` flips to `degraded` when a windowed p99 exceeds this
    /// many milliseconds.
    pub slo_p99_ms: u64,
    /// `/v1/health` flips to `degraded` when a windowed 5xx rate exceeds
    /// this percentage of requests.
    pub slo_err_pct: u64,
    /// Tail-sample any request slower than this many milliseconds into
    /// the span ring (`--trace-slow-ms`; 0 disables tail sampling).
    pub trace_slow_ms: u64,
    /// Additionally head-sample 1-in-N requests into the span ring
    /// (`--trace-sample`; 0 disables head sampling). Tracing is fully
    /// off — no recorder allocated per request — when both this and
    /// `trace_slow_ms` are 0.
    pub trace_sample: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            admin_token: None,
            cache_entries: DEFAULT_CACHE_ENTRIES,
            cache_shards: DEFAULT_CACHE_SHARDS,
            batch_max: DEFAULT_BATCH_MAX,
            batch_threads: 4,
            access_log: None,
            log_sample: 1,
            shard: None,
            slo_p99_ms: DEFAULT_SLO_P99_MS,
            slo_err_pct: DEFAULT_SLO_ERR_PCT,
            trace_slow_ms: 0,
            trace_sample: 0,
        }
    }
}

/// Pre-resolved handles for every metric the hot path touches, so a
/// request never takes the registry's name-lookup mutex. Requests,
/// server errors, and request latency are **windowed** wrappers: one
/// `record` call updates both the cumulative global series and this
/// state's private epoch ring, so `/metrics` and `/v1/health` can report
/// 1m/5m rates and percentiles alongside the since-boot totals.
pub struct ServeMetrics {
    requests: Arc<WindowedCounter>,
    errors_5xx: Arc<WindowedCounter>,
    bytes_out: Arc<Counter>,
    request_ns: Arc<WindowedHistogram>,
    inflight: Arc<Gauge>,
    connections: Arc<Counter>,
    shed: Arc<Counter>,
    batch_size: Arc<Histogram>,
    batch_items: Arc<Counter>,
    /// `(code, counter)` for every status the server can emit.
    status: Vec<(u16, Arc<Counter>)>,
    /// The epoch-ring registry behind the windowed handles above.
    windows: WindowRegistry,
}

impl ServeMetrics {
    fn new() -> Self {
        let obs = bikron_obs::global();
        let windows = WindowRegistry::new();
        let status = [200u16, 400, 403, 404, 405, 413, 421, 431, 500, 501, 503]
            .iter()
            .map(|&c| (c, obs.counter(&format!("serve.status.{c}"))))
            .collect();
        ServeMetrics {
            requests: windows.counter(obs, "serve.requests"),
            errors_5xx: windows.counter(obs, "serve.errors_5xx"),
            bytes_out: obs.counter("serve.bytes_out"),
            request_ns: windows.histogram(obs, "serve.request_ns"),
            inflight: obs.gauge("serve.inflight"),
            connections: obs.counter("serve.connections"),
            shed: obs.counter("serve.shed"),
            batch_size: obs.histogram("serve.batch_size"),
            batch_items: obs.counter("serve.batch.items"),
            status,
            windows,
        }
    }

    /// Record one accepted batch of `items` queries.
    pub fn record_batch(&self, items: u64) {
        self.batch_size.record(items);
        self.batch_items.add(items);
    }

    /// Record one completed request.
    pub fn record(&self, status: u16, bytes: u64, ns: u64) {
        self.requests.inc();
        if status >= 500 {
            self.errors_5xx.inc();
        }
        self.bytes_out.add(bytes);
        self.request_ns.record(ns);
        if let Some((_, c)) = self.status.iter().find(|(s, _)| *s == status) {
            c.inc();
        } else {
            bikron_obs::global()
                .counter(&format!("serve.status.{status}"))
                .inc();
        }
    }

    /// The window registry backing this state's rolling metrics.
    pub fn windows(&self) -> &WindowRegistry {
        &self.windows
    }

    /// Windowed request counts (1m/5m).
    pub fn requests_window(&self) -> WindowSnapshot {
        self.requests.snapshot()
    }

    /// Windowed 5xx counts (1m/5m).
    pub fn errors_window(&self) -> WindowSnapshot {
        self.errors_5xx.snapshot()
    }

    /// Windowed request-latency distribution (1m/5m).
    pub fn latency_window(&self) -> WindowSnapshot {
        self.request_ns.snapshot()
    }

    /// Record a connection shed with 503 at the accept gate.
    pub fn record_shed(&self, bytes: u64) {
        self.shed.inc();
        self.record(503, bytes, 0);
    }

    /// Count an accepted connection.
    pub fn connection_opened(&self) {
        self.connections.inc();
    }

    /// The in-flight request gauge (peak = observed concurrency).
    pub fn inflight(&self) -> &Gauge {
        &self.inflight
    }
}

/// Which ground-truth evaluator backs the router: the classic two-factor
/// product, or an arbitrary expression chain.
// Exactly one `Backend` lives per server (inside the `Arc<ServeState>`),
// so the Pair/Chain size asymmetry costs nothing — boxing Pair's factors
// would only add an indirection to the hot path.
#[allow(clippy::large_enum_variant)]
enum Backend {
    /// `A ⊗ B` / `(A + I_A) ⊗ B` with the two-factor Thm 3–7 evaluators.
    Pair {
        a: Graph,
        b: Graph,
        mode: SelfLoopMode,
        stats_a: FactorStats,
        stats_b: FactorStats,
    },
    /// An arbitrary `--expr` program with the chained evaluators.
    Chain(Box<KronChain>),
}

/// Everything a worker needs to answer queries. Send + Sync; shared via
/// `Arc` across the pool.
pub struct ServeState {
    backend: Backend,
    /// Canonicalised expression string — reported in `/v1/stats` and
    /// folded into the cache's shard-hash seed. Pair servers report the
    /// implied program (`A⊗B` / `(A+I)⊗B`).
    expr: String,
    stats_json: String,
    admin_token: Option<String>,
    cache: Option<ShardedCache>,
    batch_max: usize,
    batch_threads: usize,
    /// `--shard I/N`: serve only the owned block of the product vertex
    /// space; `None` serves everything.
    shard: Option<(usize, usize)>,
    shutdown: AtomicBool,
    metrics: ServeMetrics,
    logger: Option<EventLogger>,
    /// Captured slow/sampled request traces (per server instance, so
    /// multi-server tests and processes never cross-contaminate).
    spans: SpanSink,
    slo_p99_ms: u64,
    slo_err_pct: u64,
    started: Instant,
}

std::thread_local! {
    /// Cache outcome of the request currently handled on this worker
    /// thread: `Some(true)` hit, `Some(false)` miss, `None` when the
    /// request never consulted the cache. Requests are handled
    /// synchronously on one worker thread, so a thread-local carries the
    /// flag from [`ServeState::cached`] to the access-log emit without
    /// widening every router signature. (Batch *items* evaluated on
    /// scoped helper threads don't propagate here; the batch request
    /// logs `"-"`.)
    static CACHE_OUTCOME: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Clear the per-thread cache outcome before routing a request.
pub(crate) fn reset_cache_outcome() {
    CACHE_OUTCOME.set(None);
}

/// Read the cache outcome recorded while handling the current request.
pub(crate) fn cache_outcome() -> Option<bool> {
    CACHE_OUTCOME.get()
}

std::thread_local! {
    /// The span recorder (and its `evaluate` span token — the parent for
    /// router-level child spans) of the request currently being handled
    /// on this worker thread. Same propagation idiom as `CACHE_OUTCOME`:
    /// the pool installs it around `handle()`, [`ServeState::cached`]
    /// and the batch evaluator read it, and direct `handle()` calls in
    /// tests see `None` (untraced). Only set when the server's
    /// [`SpanSink`] is enabled.
    static CURRENT_RECORDER: RefCell<Option<(Arc<SpanRecorder>, SpanToken)>> =
        const { RefCell::new(None) };
}

/// Install the current request's recorder for this worker thread.
pub(crate) fn set_current_recorder(recorder: Arc<SpanRecorder>, evaluate: SpanToken) {
    CURRENT_RECORDER.with(|r| *r.borrow_mut() = Some((recorder, evaluate)));
}

/// Remove and return the current recorder (pool, after `handle()` —
/// clearing it before the sink consumes the recorder also drops this
/// thread's `Arc` so the pool's `try_unwrap` succeeds).
pub(crate) fn take_current_recorder() -> Option<(Arc<SpanRecorder>, SpanToken)> {
    CURRENT_RECORDER.with(|r| r.borrow_mut().take())
}

/// Clone of the current recorder pair, if this request is traced. The
/// batch evaluator hands the clone to its scoped fan-out threads (which
/// have their own, unset, thread-local).
pub(crate) fn current_recorder() -> Option<(Arc<SpanRecorder>, SpanToken)> {
    CURRENT_RECORDER.with(|r| r.borrow().clone())
}

/// Begin a child span under the current request's `evaluate` span.
/// `None` (nothing recorded) when the request is untraced.
fn begin_child(name: &str) -> Option<(Arc<SpanRecorder>, Option<SpanToken>)> {
    current_recorder().map(|(rec, eval)| {
        let tok = rec.begin(name, Some(eval));
        (rec, tok)
    })
}

/// Collapse a request path to a bounded-cardinality shape for access
/// logs: purely numeric segments become `{n}`, so `/v1/vertex/17` and
/// `/v1/vertex/23` aggregate under one key instead of exploding the
/// log's value space.
pub fn path_shape(path: &str) -> String {
    let mut out = String::with_capacity(path.len());
    for seg in path.split('/').filter(|s| !s.is_empty()) {
        out.push('/');
        if seg.bytes().all(|b| b.is_ascii_digit()) {
            out.push_str("{n}");
        } else {
            out.push_str(seg);
        }
    }
    if out.is_empty() {
        out.push('/');
    }
    out
}

/// What a warm boot restored — surfaced in the startup banner and the
/// `serve.snapshot.*` gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarmInfo {
    /// Wall-clock nanoseconds spent rebuilding state from the snapshot.
    pub load_ns: u64,
    /// Result-cache entries restored (after shard-ownership filtering).
    pub cache_entries_restored: usize,
}

/// Insert `"snapshot": "warm"|"cold"` as the last member of the cached
/// `/v1/stats` body. The body is a `JsonWriter` object, so its final
/// close brace is the only `\n}` at indent zero.
fn with_snapshot_field(stats_json: &str, warm: bool) -> String {
    let state = if warm { "warm" } else { "cold" };
    match stats_json.rfind("\n}") {
        Some(at) => format!(
            "{},\n  \"snapshot\": \"{state}\"{}",
            &stats_json[..at],
            &stats_json[at..]
        ),
        None => stats_json.to_string(),
    }
}

/// Strip the injected `"snapshot"` member again — snapshots persist the
/// *bare* body so a file captured warm and one captured cold are
/// byte-identical.
fn without_snapshot_field(stats_json: &str) -> String {
    const NEEDLE: &str = ",\n  \"snapshot\": \"";
    match stats_json.rfind(NEEDLE) {
        Some(start) => {
            let vstart = start + NEEDLE.len();
            match stats_json[vstart..].find('"') {
                Some(q) => format!("{}{}", &stats_json[..start], &stats_json[vstart + q + 1..]),
                None => stats_json.to_string(),
            }
        }
        None => stats_json.to_string(),
    }
}

impl ServeState {
    /// Build the service state with default [`ServeOptions`] apart from
    /// the admin token. See [`ServeState::build_with`].
    pub fn build(
        a: Graph,
        b: Graph,
        mode: SelfLoopMode,
        admin_token: Option<String>,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        Self::build_with(
            a,
            b,
            mode,
            ServeOptions {
                admin_token,
                ..ServeOptions::default()
            },
        )
    }

    /// Build the service state: validates the product, computes both
    /// factor statistics once, caches the `/v1/stats` body, and sizes
    /// the result cache.
    pub fn build_with(
        a: Graph,
        b: Graph,
        mode: SelfLoopMode,
        options: ServeOptions,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let _phase = bikron_obs::global().phase("serve.build");
        let stats_a = FactorStats::compute(&a)?;
        let stats_b = FactorStats::compute(&b)?;
        let expr = match mode {
            SelfLoopMode::None => "A⊗B".to_string(),
            SelfLoopMode::FactorA => "(A+I)⊗B".to_string(),
        };
        let stats_json = {
            let prod = KroneckerProduct::new(&a, &b, mode)?;
            stats_body(&prod, &stats_a, &stats_b, &expr)?
        };
        Self::assemble(
            Backend::Pair {
                a,
                b,
                mode,
                stats_a,
                stats_b,
            },
            expr,
            stats_json,
            options,
            false,
        )
    }

    /// Build an **expression** server: an arbitrary Kronecker program
    /// over named factor graphs (`bikron serve --expr`). `levels` is the
    /// flattened chain from [`bikron_sparse::parse_expr`]; `bindings`
    /// maps each referenced name to its graph.
    pub fn build_expr(
        bindings: Vec<(String, Graph)>,
        levels: &[(String, bool)],
        options: ServeOptions,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        let _phase = bikron_obs::global().phase("serve.build");
        let chain = KronChain::new(bindings, levels)?;
        let expr = chain.canonical().to_string();
        let stats_json = stats_body_chain(&chain);
        Self::assemble(
            Backend::Chain(Box::new(chain)),
            expr,
            stats_json,
            options,
            false,
        )
    }

    /// Rebuild a server from a decoded snapshot: factor stats come from
    /// the file instead of `FactorStats::compute`, the `/v1/stats` body
    /// is the captured one (skipping the O(product) degree histogram and
    /// global square count on pair servers), and the result cache is
    /// primed with the harvested hot entries. `/v1/stats` reports
    /// `"snapshot": "warm"` and the `serve.snapshot.*` gauges record the
    /// load cost. Callers are expected to have validated the snapshot
    /// against the requested spec first (`Snapshot::validate_pair` /
    /// `validate_expr`).
    pub fn build_from_snapshot(
        snap: crate::snapshot::Snapshot,
        options: ServeOptions,
    ) -> Result<(Self, WarmInfo), Box<dyn std::error::Error>> {
        let _phase = bikron_obs::global().phase("serve.build");
        let t0 = Instant::now();
        let backend = match snap.backend {
            crate::snapshot::SnapshotBackend::Pair {
                a,
                b,
                mode,
                stats_a,
                stats_b,
            } => {
                // Re-run the O(1) pair validation; the graphs themselves
                // were already re-validated during decode.
                KroneckerProduct::new(&a, &b, mode)?;
                Backend::Pair {
                    a,
                    b,
                    mode,
                    stats_a,
                    stats_b,
                }
            }
            crate::snapshot::SnapshotBackend::Chain { bindings, levels } => {
                Backend::Chain(Box::new(KronChain::with_stats(bindings, &levels)?))
            }
        };
        let state = Self::assemble(backend, snap.expr, snap.stats_json, options, true)?;
        let mut restored = 0;
        if let Some(cache) = &state.cache {
            let entries = match state.shard {
                None => snap.cache,
                Some((index, count)) => {
                    // A shard only answers keys whose primary vertex it
                    // owns (scatter pages are served anywhere), so only
                    // those entries can ever be hit again here.
                    let n = state.num_vertices();
                    snap.cache
                        .into_iter()
                        .filter(|(key, _)| match *key {
                            CacheKey::Vertex(p)
                            | CacheKey::Edge(p, _)
                            | CacheKey::Neighbors(p, _, _)
                            | CacheKey::Clustering(p, _) => {
                                bikron_core::partition::owner_of(n, count, p) == index
                            }
                            CacheKey::Scatter(_, _) => true,
                        })
                        .collect()
                }
            };
            restored = cache.restore(entries);
        }
        let info = WarmInfo {
            load_ns: t0.elapsed().as_nanos() as u64,
            cache_entries_restored: restored,
        };
        let obs = bikron_obs::global();
        obs.gauge("serve.snapshot.load_ns").set(info.load_ns);
        obs.gauge("serve.snapshot.cache_entries_restored")
            .set(restored as u64);
        Ok((state, info))
    }

    /// Capture this server's state as a [`crate::snapshot::Snapshot`],
    /// harvesting up to `top_k` of the hottest result-cache entries.
    pub fn to_snapshot(&self, top_k: usize) -> crate::snapshot::Snapshot {
        let backend = match &self.backend {
            Backend::Pair {
                a,
                b,
                mode,
                stats_a,
                stats_b,
            } => crate::snapshot::SnapshotBackend::Pair {
                a: a.clone(),
                b: b.clone(),
                mode: *mode,
                stats_a: stats_a.clone(),
                stats_b: stats_b.clone(),
            },
            Backend::Chain(chain) => crate::snapshot::SnapshotBackend::Chain {
                bindings: (0..chain.num_atoms())
                    .map(|i| {
                        let (name, g, s) = chain.atom_info(i);
                        (name.to_string(), g.clone(), s.clone())
                    })
                    .collect(),
                levels: chain.level_spec(),
            },
        };
        crate::snapshot::Snapshot {
            expr: self.expr.clone(),
            shard: self.shard,
            backend,
            stats_json: without_snapshot_field(&self.stats_json),
            cache: self
                .cache
                .as_ref()
                .map(|c| c.hottest(top_k))
                .unwrap_or_default(),
        }
    }

    fn assemble(
        backend: Backend,
        expr: String,
        stats_json: String,
        options: ServeOptions,
        warm: bool,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        // Seed the cache's shard hash with the canonical expression so a
        // key like `Vertex(7)` hashes differently under different served
        // programs (DESIGN.md §11).
        let mut seed = crate::cache::DEFAULT_HASH_SEED;
        for b in expr.as_bytes() {
            seed ^= *b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let cache = (options.cache_entries > 0)
            .then(|| ShardedCache::with_seed(options.cache_entries, options.cache_shards, seed));
        let logger = match &options.access_log {
            Some(path) => Some(EventLogger::to_file(
                std::path::Path::new(path),
                ACCESS_LOG_QUEUE,
                options.log_sample,
            )?),
            None => None,
        };
        if let Some((index, count)) = options.shard {
            if count == 0 || index >= count {
                return Err(
                    format!("shard {index}/{count} is invalid (need index < count)").into(),
                );
            }
        }
        // Advertise the boot path in `/v1/stats` (the single injection
        // point keeps warm and cold bodies byte-identical everywhere
        // else) and in the `serve.snapshot.warm` gauge so `monitor` can
        // surface it. Cold boots zero the companion gauges so the keys
        // always exist in a metrics report.
        let stats_json = with_snapshot_field(&stats_json, warm);
        let obs = bikron_obs::global();
        obs.gauge("serve.snapshot.warm").set(u64::from(warm));
        if !warm {
            obs.gauge("serve.snapshot.load_ns").set(0);
            obs.gauge("serve.snapshot.cache_entries_restored").set(0);
        }
        Ok(ServeState {
            backend,
            expr,
            stats_json,
            admin_token: options.admin_token,
            cache,
            batch_max: options.batch_max.max(1),
            batch_threads: options.batch_threads.max(1),
            shard: options.shard,
            shutdown: AtomicBool::new(false),
            metrics: ServeMetrics::new(),
            logger,
            spans: SpanSink::new(
                DEFAULT_TRACE_CAPACITY,
                options.trace_slow_ms,
                options.trace_sample,
            ),
            slo_p99_ms: options.slo_p99_ms.max(1),
            slo_err_pct: options.slo_err_pct.min(100),
            started: Instant::now(),
        })
    }

    /// The canonicalised expression string this server reports.
    pub fn expr(&self) -> &str {
        &self.expr
    }

    /// The hot-path metric handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The result cache, if enabled (`cache_entries > 0`).
    pub fn cache(&self) -> Option<&ShardedCache> {
        self.cache.as_ref()
    }

    /// The span sink capturing slow/sampled request traces.
    pub fn spans(&self) -> &SpanSink {
        &self.spans
    }

    /// The configured per-batch query cap.
    pub fn batch_max(&self) -> usize {
        self.batch_max
    }

    /// Whether shutdown has been requested (admin endpoint or signal).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || crate::signal::ctrl_c_received()
    }

    /// Request shutdown programmatically.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// The pair backend's product descriptor and factor stats, or `None`
    /// on an expression server. Construction is O(1) validation over
    /// already-validated factors.
    fn pair(&self) -> Option<(KroneckerProduct<'_>, &FactorStats, &FactorStats)> {
        match &self.backend {
            Backend::Pair {
                a,
                b,
                mode,
                stats_a,
                stats_b,
            } => Some((
                KroneckerProduct::new(a, b, *mode).expect("factors validated at build"),
                stats_a,
                stats_b,
            )),
            Backend::Chain(_) => None,
        }
    }

    /// Product vertex count (the `n` the shard ownership map tiles).
    pub fn num_vertices(&self) -> usize {
        match &self.backend {
            Backend::Pair { a, b, .. } => a.num_vertices() * b.num_vertices(),
            Backend::Chain(chain) => chain.num_vertices(),
        }
    }

    /// The `--shard I/N` configuration, if this backend serves only a
    /// slice of the product vertex space.
    pub fn shard(&self) -> Option<(usize, usize)> {
        self.shard
    }

    /// Ownership gate for keyed endpoints on a sharded backend: 421
    /// (Misdirected Request) when `p` belongs to another shard's block.
    /// Callers must range-check first (out-of-range stays 404, identical
    /// to an unsharded server, so a router can send such keys anywhere).
    fn check_owned(&self, p: usize) -> Result<(), Response> {
        let Some((index, count)) = self.shard else {
            return Ok(());
        };
        let n = self.num_vertices();
        let owner = bikron_core::partition::owner_of(n, count, p);
        if owner != index {
            return Err(Response::error(
                421,
                &format!("vertex {p} is owned by shard {owner}/{count}; this is shard {index}"),
            ));
        }
        Ok(())
    }

    /// Route and answer one request. Pure: no I/O, no blocking — the
    /// pool owns transport and metrics.
    pub fn handle(&self, req: &Request) -> Response {
        let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        if req.method == "POST" {
            return match segs.as_slice() {
                ["v1", "batch"] => self.batch(req),
                _ => Response::error(405, "POST is only accepted on /v1/batch"),
            };
        }
        match segs.as_slice() {
            ["metrics"] => self.metrics_response(req),
            ["v1", "stats"] => Response::json(200, self.stats_json.clone()),
            ["v1", "health"] => self.health_response(),
            ["v1", "vertex", p] => self.vertex(p),
            ["v1", "edge", p, q] => self.edge(p, q),
            ["v1", "neighbors", p] => self.neighbors(p, req),
            ["v1", "edges", part, parts] => self.edges(part, parts, req),
            ["v1", "clustering", p, q] => self.clustering(p, q),
            ["v1", "community"] => self.community(req),
            ["v1", "scatter", "degree-squares"] => self.scatter_degree_squares(req),
            ["v1", "batch"] => Response::error(405, "batch requires POST"),
            ["v1", "shutdown"] => self.shutdown_endpoint(req),
            ["v1", "admin", "stall"] => self.stall_endpoint(req),
            ["v1", "admin", "traces"] => self.traces_endpoint(req),
            ["v1", "admin", "profile"] => self.profile_endpoint(req),
            _ => Response::error(404, &format!("no route for {}", req.path)),
        }
    }

    fn batch(&self, req: &Request) -> Response {
        let body = match std::str::from_utf8(&req.body) {
            Ok(s) => s,
            Err(_) => return Response::error(400, "batch body is not valid UTF-8"),
        };
        let queries = match crate::batch::parse_batch(body, self.batch_max) {
            Ok(qs) => qs,
            Err(e) => return e.response(),
        };
        self.metrics.record_batch(queries.len() as u64);
        crate::batch::eval_batch(self, &queries, self.batch_threads)
    }

    /// Cache-through evaluation: serve `key` from the result cache when
    /// enabled, else compute via `f` and (for 200s) remember the body.
    /// Correctness never depends on the cache — every answer is a pure
    /// function of immutable state, so a cached body is always current.
    fn cached(&self, key: CacheKey, f: impl FnOnce() -> Response) -> Response {
        let Some(cache) = &self.cache else {
            return f();
        };
        let lookup = begin_child("cache");
        let lookup_frame = bikron_obs::profile::phase("cache_lookup");
        let hit = cache.get(&key);
        drop(lookup_frame);
        CACHE_OUTCOME.set(Some(hit.is_some()));
        if let Some((rec, tok)) = &lookup {
            rec.set_cache(*tok, Some(hit.is_some()));
            rec.end(*tok);
        }
        if let Some(body) = hit {
            return Response::json(200, (*body).clone());
        }
        // On a miss the closure both evaluates the closed form and
        // serialises the body (the two are fused in each endpoint's
        // JsonWriter pass), so one `serialize` span covers the compute.
        let serialize = begin_child("serialize");
        let serialize_frame = bikron_obs::profile::phase("serialize");
        let resp = f();
        drop(serialize_frame);
        if let Some((rec, tok)) = serialize {
            rec.end(tok);
        }
        if resp.status == 200 {
            cache.insert(key, Arc::new(resp.body.clone()));
        }
        resp
    }

    fn vertex(&self, raw: &str) -> Response {
        match parse_index(raw, self.num_vertices()) {
            Ok(p) => self.vertex_at(p),
            Err(resp) => resp,
        }
    }

    /// `GET /v1/vertex/{p}` for an already-parsed index (shared with the
    /// batch evaluator — both produce identical bytes). Pair servers
    /// report the two-factor coordinates as `"alpha"`/`"beta"`;
    /// expression servers report the per-level `"coords"` array.
    pub(crate) fn vertex_at(&self, p: usize) -> Response {
        if let Err(resp) = check_range(p, self.num_vertices()).and_then(|()| self.check_owned(p)) {
            return resp;
        }
        self.cached(CacheKey::Vertex(p), || {
            let mut w = JsonWriter::new();
            w.open_object();
            w.u64_field("vertex", p as u64);
            match &self.backend {
                Backend::Pair { .. } => {
                    let (prod, sa, sb) = self.pair().expect("pair backend");
                    let (i, k) = prod.indexer().split(p);
                    w.u64_field("alpha", i as u64);
                    w.u64_field("beta", k as u64);
                    w.u64_field("degree", prod.degree(p));
                    w.u64_field("squares", vertex_squares_at(&prod, sa, sb, p));
                }
                Backend::Chain(chain) => {
                    w.key("coords");
                    w.open_array();
                    for c in chain.split(p) {
                        w.u64_element(c as u64);
                    }
                    w.close_array();
                    w.u64_field("degree", chain.degree(p));
                    w.u64_field("squares", chain.vertex_squares_at(p));
                }
            }
            w.close_object();
            Response::json(200, w.finish())
        })
    }

    fn edge(&self, raw_p: &str, raw_q: &str) -> Response {
        let n = self.num_vertices();
        match (parse_index(raw_p, n), parse_index(raw_q, n)) {
            (Ok(p), Ok(q)) => self.edge_at(p, q),
            (Err(resp), _) | (_, Err(resp)) => resp,
        }
    }

    /// `GET /v1/edge/{p}/{q}` for already-parsed indices. Byte-identical
    /// between the two backends.
    pub(crate) fn edge_at(&self, p: usize, q: usize) -> Response {
        let n = self.num_vertices();
        // Pair queries are routed (and therefore owned) by their first
        // index `p`; `q` may live on any shard — factor-sized state
        // answers it regardless.
        if let Err(resp) = check_range(p, n)
            .and_then(|()| check_range(q, n))
            .and_then(|()| self.check_owned(p))
        {
            return resp;
        }
        self.cached(CacheKey::Edge(p, q), || {
            let (squares, dp, dq) = match &self.backend {
                Backend::Pair { .. } => {
                    let (prod, sa, sb) = self.pair().expect("pair backend");
                    (
                        edge_squares_at(&prod, sa, sb, p, q),
                        prod.degree(p),
                        prod.degree(q),
                    )
                }
                Backend::Chain(chain) => (
                    chain.edge_squares_at(p, q),
                    chain.degree(p),
                    chain.degree(q),
                ),
            };
            let mut w = JsonWriter::new();
            w.open_object();
            w.u64_field("p", p as u64);
            w.u64_field("q", q as u64);
            w.bool_field("edge", squares.is_some());
            w.u64_field("degree_p", dp);
            w.u64_field("degree_q", dq);
            match squares {
                Some(s) => w.u64_field("squares", s),
                None => w.null_field("squares"),
            }
            w.close_object();
            Response::json(200, w.finish())
        })
    }

    fn neighbors(&self, raw: &str, req: &Request) -> Response {
        let p = match parse_index(raw, self.num_vertices()) {
            Ok(p) => p,
            Err(resp) => return resp,
        };
        match parse_page(req) {
            Ok((offset, limit)) => self.neighbors_at(p, offset, limit),
            Err(resp) => resp,
        }
    }

    /// `GET /v1/neighbors/{p}?offset&limit` for already-parsed values
    /// (`limit` must respect [`MAX_LIMIT`]; both entry points enforce it).
    pub(crate) fn neighbors_at(&self, p: usize, offset: u64, limit: usize) -> Response {
        if let Err(resp) = check_range(p, self.num_vertices()).and_then(|()| self.check_owned(p)) {
            return resp;
        }
        self.cached(CacheKey::Neighbors(p, offset, limit), || {
            let (degree, page) = match &self.backend {
                Backend::Pair { .. } => {
                    let (prod, ..) = self.pair().expect("pair backend");
                    (prod.degree(p), prod.neighbors_page(p, offset, limit))
                }
                Backend::Chain(chain) => (chain.degree(p), chain.neighbors_page(p, offset, limit)),
            };
            let mut w = JsonWriter::new();
            w.open_object();
            w.u64_field("vertex", p as u64);
            w.u64_field("degree", degree);
            w.u64_field("offset", offset);
            w.u64_field("count", page.len() as u64);
            let next = offset + page.len() as u64;
            if next < degree && !page.is_empty() {
                w.u64_field("next_offset", next);
            } else {
                w.null_field("next_offset");
            }
            w.key("neighbors");
            w.open_array();
            for q in &page {
                w.u64_element(*q as u64);
            }
            w.close_array();
            w.close_object();
            Response::json(200, w.finish())
        })
    }

    fn edges(&self, raw_part: &str, raw_parts: &str, req: &Request) -> Response {
        let parts: usize = match raw_parts.parse() {
            Ok(v) if (1..=MAX_PARTS).contains(&v) => v,
            _ => {
                return Response::error(
                    400,
                    &format!("parts must be an integer in 1..={MAX_PARTS}, got {raw_parts:?}"),
                )
            }
        };
        let part: usize = match raw_part.parse() {
            Ok(v) if v < parts => v,
            _ => {
                return Response::error(
                    400,
                    &format!("part must be an integer below parts={parts}, got {raw_part:?}"),
                )
            }
        };
        // Sharded backend: the partition space itself is tiled across
        // shards with the same block arithmetic the vertex space uses,
        // so a shard only streams parts inside its owned slice. Without
        // this gate a shard would happily page the *full* edge set
        // (PartitionedStream always assumes the whole space) — every
        // shard would re-stream every part and a cluster would emit
        // N copies of each edge.
        if let Some((index, count)) = self.shard {
            let owner = bikron_core::partition::owner_of(parts, count, part);
            if owner != index {
                return Response::error(
                    421,
                    &format!(
                        "part {part}/{parts} is owned by shard {owner}/{count}; \
                         this is shard {index}"
                    ),
                );
            }
        }
        let (offset, limit) = match parse_page(req) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let annotate = matches!(req.query_param("annotate"), Some("1") | Some("true"));
        let Some((prod, stats_a, stats_b)) = self.pair() else {
            return Response::error(
                501,
                "/v1/edges streaming is not implemented for expression servers; \
                 page adjacency via /v1/neighbors instead",
            );
        };
        let ps = PartitionedStream::new(&prod, stats_a, stats_b, parts);
        let total = ps.part_len(part);
        let page = ps.edges_page(part, offset, limit);
        let mut w = JsonWriter::new();
        w.open_object();
        w.u64_field("part", part as u64);
        w.u64_field("parts", parts as u64);
        w.u64_field("part_edges", total);
        w.u64_field("offset", offset);
        w.u64_field("count", page.len() as u64);
        let next = offset + page.len() as u64;
        if next < total && !page.is_empty() {
            w.u64_field("next_offset", next);
        } else {
            w.null_field("next_offset");
        }
        w.key("edges");
        w.open_array();
        for &(p, q) in &page {
            w.array_element();
            w.open_array();
            w.u64_element(p as u64);
            w.u64_element(q as u64);
            if annotate {
                w.u64_element(prod.degree(p));
                w.u64_element(prod.degree(q));
                w.u64_element(
                    edge_squares_at(&prod, stats_a, stats_b, p, q)
                        .expect("streamed pairs are edges"),
                );
            }
            w.close_array();
        }
        w.close_array();
        w.close_object();
        Response::json(200, w.finish())
    }

    fn clustering(&self, raw_p: &str, raw_q: &str) -> Response {
        let n = self.num_vertices();
        match (parse_index(raw_p, n), parse_index(raw_q, n)) {
            (Ok(p), Ok(q)) => self.clustering_at(p, q),
            (Err(resp), _) | (_, Err(resp)) => resp,
        }
    }

    /// `GET /v1/clustering/{p}/{q}`: the Thm 6 surface — exact edge
    /// clustering coefficient `Γ_C(p,q)` (Eq. 5) plus the scaling-law
    /// lower bound `ψ·Γ_A·Γ_B` (Thm 6) where defined. `gamma` is exact
    /// for every served program; `bound`/`psi` are only defined on
    /// identity-free programs with all factor degrees ≥ 2 (the theorem's
    /// hypotheses), and are `null` otherwise.
    fn clustering_at(&self, p: usize, q: usize) -> Response {
        let n = self.num_vertices();
        if let Err(resp) = check_range(p, n)
            .and_then(|()| check_range(q, n))
            .and_then(|()| self.check_owned(p))
        {
            return resp;
        }
        self.cached(CacheKey::Clustering(p, q), || {
            let (squares, dp, dq, gamma, bound, psi) = match &self.backend {
                Backend::Pair { .. } => {
                    let (prod, sa, sb) = self.pair().expect("pair backend");
                    let sample = scaling_law_at(&prod, sa, sb, p, q);
                    (
                        edge_squares_at(&prod, sa, sb, p, q),
                        prod.degree(p),
                        prod.degree(q),
                        product_gamma(&prod, sa, sb, p, q),
                        sample.as_ref().map(|s| s.bound),
                        sample.as_ref().map(|s| s.psi),
                    )
                }
                Backend::Chain(chain) => {
                    let c = chain.clustering_at(p, q);
                    (
                        c.squares,
                        chain.degree(p),
                        chain.degree(q),
                        c.gamma,
                        c.bound,
                        c.psi,
                    )
                }
            };
            let mut w = JsonWriter::new();
            w.open_object();
            w.u64_field("p", p as u64);
            w.u64_field("q", q as u64);
            w.bool_field("edge", squares.is_some());
            w.u64_field("degree_p", dp);
            w.u64_field("degree_q", dq);
            match squares {
                Some(s) => w.u64_field("squares", s),
                None => w.null_field("squares"),
            }
            for (key, value) in [("gamma", gamma), ("bound", bound), ("psi", psi)] {
                match value {
                    Some(v) => w.f64_field(key, v),
                    None => w.null_field(key),
                }
            }
            w.close_object();
            Response::json(200, w.finish())
        })
    }

    /// `GET /v1/community`: the Thm 7 / Cor 1–2 surface. Pair servers
    /// take `?a=<ids>&b=<ids>` (comma-separated factor-vertex sets);
    /// expression servers take one `?s{i}=<ids>` per level. `m_in` and
    /// `m_out` are **exact** for every program (Thm 7, chained); the
    /// density fields `rho_in` / `rho_in_lower_bound` (Cor 1) /
    /// `rho_out_upper_bound` (Cor 2) additionally require the pair
    /// backend with bipartite factors and are `null` otherwise.
    ///
    /// Not cached: set-valued queries have unbounded key cardinality and
    /// each answer is O(Σ|S_i| + Σ deg) anyway.
    fn community(&self, req: &Request) -> Response {
        match &self.backend {
            Backend::Pair { a, b, mode, .. } => {
                let (set_a, set_b) =
                    match (req.query_param("a"), req.query_param("b")) {
                        (Some(ra), Some(rb)) => {
                            match (parse_id_list("a", ra), parse_id_list("b", rb)) {
                                (Ok(sa), Ok(sb)) => (sa, sb),
                                (Err(resp), _) | (_, Err(resp)) => return resp,
                            }
                        }
                        _ => return Response::error(
                            400,
                            "community requires ?a=<ids>&b=<ids> (comma-separated factor vertices)",
                        ),
                    };
                let eps_a = *mode == SelfLoopMode::FactorA;
                let Some((in_a, vol_a, la)) = community_level_counts(a, &set_a, eps_a) else {
                    return Response::error(404, "a contains a vertex outside factor A");
                };
                let Some((in_b, vol_b, lb)) = community_level_counts(b, &set_b, false) else {
                    return Response::error(404, "b contains a vertex outside factor B");
                };
                // Thm 7: 2·m_in(S_C) = Π 1ᵀ_{S}(M)1_{S}; vol factors the
                // same way, and m_out = vol − 2·m_in.
                let m_in = (in_a * in_b) / 2;
                let m_out = vol_a * vol_b - in_a * in_b;
                // Cor 1–2 need the factor bipartitions (community sides).
                let density = match (bipartition(a), bipartition(b)) {
                    (Some(bip_a), Some(bip_b)) => {
                        let prod = self.pair().expect("pair backend").0;
                        let com_a = FactorCommunity::measure(a, &bip_a, &set_a);
                        let com_b = FactorCommunity::measure(b, &bip_b, &set_b);
                        product_community(&prod, &com_a, &com_b, &bip_a, &bip_b)
                    }
                    _ => None,
                };
                let mut w = JsonWriter::new();
                w.open_object();
                w.string_field("theorem", "thm7");
                w.u64_field("size", (la * lb) as u64);
                w.u64_field("m_in", m_in as u64);
                w.u64_field("m_out", m_out as u64);
                for (key, value) in [
                    ("rho_in", density.as_ref().and_then(|d| d.rho_in)),
                    (
                        "rho_in_lower_bound",
                        density.as_ref().and_then(|d| d.rho_in_lower_bound),
                    ),
                    (
                        "rho_out_upper_bound",
                        density.as_ref().and_then(|d| d.rho_out_upper_bound),
                    ),
                ] {
                    match value {
                        Some(v) => w.f64_field(key, v),
                        None => w.null_field(key),
                    }
                }
                w.close_object();
                Response::json(200, w.finish())
            }
            Backend::Chain(chain) => {
                let mut sets = Vec::with_capacity(chain.num_levels());
                for i in 0..chain.num_levels() {
                    let name = format!("s{i}");
                    let Some(raw) = req.query_param(&name) else {
                        return Response::error(
                            400,
                            &format!(
                                "community on a {}-level expression requires ?s0=…&s{}=<ids>",
                                chain.num_levels(),
                                chain.num_levels() - 1
                            ),
                        );
                    };
                    match parse_id_list(&name, raw) {
                        Ok(set) => sets.push(set),
                        Err(resp) => return resp,
                    }
                }
                let truth = match chain.community(&sets) {
                    Ok(t) => t,
                    Err(e) => {
                        return Response::error(404, &format!("community sets rejected: {e}"))
                    }
                };
                let mut w = JsonWriter::new();
                w.open_object();
                w.string_field("theorem", "thm7");
                w.u64_field("size", truth.size);
                w.u64_field("m_in", truth.m_in);
                w.u64_field("m_out", truth.m_out);
                w.null_field("rho_in");
                w.null_field("rho_in_lower_bound");
                w.null_field("rho_out_upper_bound");
                w.close_object();
                Response::json(200, w.finish())
            }
        }
    }

    /// `GET /v1/scatter/degree-squares?offset&limit&format=json|csv`: the
    /// Fig. 5 export — one `(vertex, degree, squares)` row per product
    /// vertex, paged under the same [`MAX_LIMIT`] bound as every other
    /// endpoint so the sublinear-memory contract holds.
    fn scatter_degree_squares(&self, req: &Request) -> Response {
        let (offset, limit) = match parse_page(req) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let n = self.num_vertices() as u64;
        let start = offset.min(n);
        let end = n.min(offset.saturating_add(limit as u64));
        let row = |p: usize| -> (u64, u64) {
            match &self.backend {
                Backend::Pair { .. } => {
                    let (prod, sa, sb) = self.pair().expect("pair backend");
                    (prod.degree(p), vertex_squares_at(&prod, sa, sb, p))
                }
                Backend::Chain(chain) => (chain.degree(p), chain.vertex_squares_at(p)),
            }
        };
        match req.query_param("format") {
            // The JSON page is cached like every other paged endpoint
            // (the cache stores bare JSON bodies, so the CSV rendering
            // below stays uncached), which also gives scatter requests a
            // cache hit/miss outcome for access logs and span trees.
            None | Some("json") => self.cached(CacheKey::Scatter(offset, limit), || {
                let mut w = JsonWriter::new();
                w.open_object();
                w.u64_field("offset", offset);
                w.u64_field("count", end - start);
                if end < n && end > start {
                    w.u64_field("next_offset", end);
                } else {
                    w.null_field("next_offset");
                }
                w.key("rows");
                w.open_array();
                for p in start..end {
                    let (d, s) = row(p as usize);
                    w.array_element();
                    w.open_array();
                    w.u64_element(p);
                    w.u64_element(d);
                    w.u64_element(s);
                    w.close_array();
                }
                w.close_array();
                w.close_object();
                Response::json(200, w.finish())
            }),
            Some("csv") => {
                let mut body = String::from("vertex,degree,squares\n");
                for p in start..end {
                    let (d, s) = row(p as usize);
                    body.push_str(&format!("{p},{d},{s}\n"));
                }
                Response {
                    status: 200,
                    content_type: "text/csv; charset=utf-8",
                    body,
                }
            }
            Some(other) => {
                Response::error(400, &format!("unknown scatter format {other:?} (json|csv)"))
            }
        }
    }

    fn metrics_response(&self, req: &Request) -> Response {
        // uptime_ms lets scrapers derive the cumulative (since-boot)
        // request rate without a second endpoint.
        let obs = bikron_obs::global();
        obs.gauge("serve.uptime_ms")
            .set(self.started.elapsed().as_millis() as u64);
        // Mirror the per-instance trace/log loss counters into the
        // report so dropped telemetry is observable (monitor flags them
        // when nonzero) instead of only being countable in principle.
        obs.gauge("serve.trace.seen").set(self.spans.seen());
        obs.gauge("serve.trace.captured").set(self.spans.captured());
        obs.gauge("serve.trace.dropped_spans")
            .set(self.spans.dropped_spans());
        obs.gauge("serve.log.dropped_lines")
            .set(self.logger.as_ref().map_or(0, EventLogger::dropped));
        let mut report = bikron_obs::global().snapshot();
        report.set_meta("tool", "bikron-serve");
        report.set_meta("endpoint", "/metrics");
        self.metrics.windows().snapshot_into(&mut report);
        // Ride the cumulative profile along when a sampler is running,
        // so `--metrics-out` files and scrapes carry attribution too.
        let prof = bikron_obs::profile::profiler();
        if prof.sampler_hz() > 0 {
            report.set_profile(prof.snapshot());
        }
        match req.query_param("format") {
            None | Some("json") => Response::json(200, report.to_json()),
            Some("prometheus") => Response {
                status: 200,
                content_type: "text/plain; version=0.0.4; charset=utf-8",
                body: bikron_obs::prom::to_prometheus(&report),
            },
            Some(other) => Response::error(
                400,
                &format!("unknown metrics format {other:?} (json|prometheus)"),
            ),
        }
    }

    /// `GET /v1/health`: readiness plus windowed SLO signals. `degraded`
    /// when any window that saw traffic violates either threshold.
    fn health_response(&self) -> Response {
        let requests = self.metrics.requests_window();
        let errors = self.metrics.errors_window();
        let latency = self.metrics.latency_window();
        let windows = [
            ("1m", requests.w1m, errors.w1m, latency.w1m),
            ("5m", requests.w5m, errors.w5m, latency.w5m),
        ];
        // Pre-pass: evaluate every window so `status` can lead the body.
        let rows: Vec<_> = windows
            .into_iter()
            .map(|(label, req, err, lat)| {
                let err_pct = (err.count * 100).checked_div(req.count).unwrap_or(0);
                let p99_ms = lat.p99 / 1_000_000;
                let ok =
                    req.count == 0 || (err_pct <= self.slo_err_pct && p99_ms <= self.slo_p99_ms);
                (label, req, err, err_pct, p99_ms, ok)
            })
            .collect();
        let degraded = rows.iter().any(|&(.., ok)| !ok);

        let mut w = JsonWriter::new();
        w.open_object();
        w.string_field("status", if degraded { "degraded" } else { "ok" });
        // Sharded backends self-identify so the router can verify at
        // startup that each upstream really is the shard its position in
        // `--shards` claims (a shuffled list would misroute everything).
        if let Some((index, count)) = self.shard {
            w.string_field("shard", &format!("{index}/{count}"));
            let (lo, hi) = bikron_core::partition::block_range(self.num_vertices(), count, index);
            w.u64_field("owned_lo", lo as u64);
            w.u64_field("owned_hi", hi as u64);
        }
        w.u64_field("uptime_ms", self.started.elapsed().as_millis() as u64);
        w.key("slo");
        w.open_object();
        w.u64_field("p99_ms", self.slo_p99_ms);
        w.u64_field("err_pct", self.slo_err_pct);
        w.close_object();
        w.key("windows");
        w.open_object();
        for (label, req, err, err_pct, p99_ms, ok) in rows {
            w.key(label);
            w.open_object();
            w.u64_field("requests", req.count);
            w.u64_field("rate_per_sec", req.rate_per_sec);
            w.u64_field("errors_5xx", err.count);
            w.u64_field("err_pct", err_pct);
            w.u64_field("p99_ms", p99_ms);
            w.bool_field("ok", ok);
            w.close_object();
        }
        w.close_object();
        w.close_object();
        Response::json(200, w.finish())
    }

    /// `GET /v1/admin/stall?ms=N` (token-gated): sleep `N` ms inside the
    /// request path. The debug lever behind the ISSUE's injected-stall
    /// test — latency recorded for this request spikes the windowed p99
    /// so `/v1/health` demonstrably flips to `degraded`.
    fn stall_endpoint(&self, req: &Request) -> Response {
        if let Err(resp) = self.check_admin(req) {
            return resp;
        }
        let ms: u64 = match req.query_param("ms").map(str::parse) {
            Some(Ok(v)) => v,
            _ => return Response::error(400, "stall requires ?ms=N"),
        };
        let ms = ms.min(MAX_STALL_MS);
        std::thread::sleep(std::time::Duration::from_millis(ms));
        let mut w = JsonWriter::new();
        w.open_object();
        w.u64_field("stalled_ms", ms);
        w.close_object();
        Response::json(200, w.finish())
    }

    /// `GET /v1/admin/traces[?min_ms=N]` (token-gated): the captured
    /// span trees, newest first, plus the sink's policy and counters —
    /// what `bikron trace` renders as waterfalls.
    fn traces_endpoint(&self, req: &Request) -> Response {
        if let Err(resp) = self.check_admin(req) {
            return resp;
        }
        let min_ms: u64 = match req.query_param("min_ms").map(str::parse) {
            None => 0,
            Some(Ok(v)) => v,
            Some(Err(_)) => return Response::error(400, "min_ms must be an integer"),
        };
        let traces = self.spans.snapshot(min_ms.saturating_mul(1_000_000));
        let mut w = JsonWriter::new();
        w.open_object();
        w.string_field("schema", "bikron-traces/1");
        w.bool_field("enabled", self.spans.enabled());
        w.u64_field("slow_ms", self.spans.slow_ms());
        w.u64_field("seen", self.spans.seen());
        w.u64_field("captured", self.spans.captured());
        w.u64_field("dropped_spans", self.spans.dropped_spans());
        w.u64_field("count", traces.len() as u64);
        w.key("traces");
        w.open_array();
        for t in &traces {
            w.array_element();
            t.write_json(&mut w);
        }
        w.close_array();
        w.close_object();
        Response::json(200, w.finish())
    }

    /// `GET /v1/admin/profile[?seconds=N][&format=folded]` (token-gated):
    /// a sample-on-demand window over the process-wide continuous
    /// profiler. See [`profile_response`] for the contract.
    fn profile_endpoint(&self, req: &Request) -> Response {
        if let Err(resp) = self.check_admin(req) {
            return resp;
        }
        profile_response(req)
    }

    /// Emit one access-log event for a completed request (no-op without
    /// `--access-log`). `cache` is the thread-local outcome captured by
    /// the connection loop; `trace_id` is the request's 32-hex-char
    /// trace id (always present on the serving path, `None` only from
    /// contexts with no trace identity), making every access line
    /// joinable against captured span trees and upstream traces.
    #[allow(clippy::too_many_arguments)]
    pub fn log_access(
        &self,
        method: &str,
        path_shape: &str,
        status: u16,
        latency_ns: u64,
        bytes: u64,
        cache: Option<bool>,
        trace_id: Option<&str>,
    ) {
        let Some(logger) = &self.logger else {
            return;
        };
        logger.publish(
            LogEvent::new("access")
                .field("method", method)
                .field("path", path_shape)
                .field("status", status as u64)
                .field("latency_ns", latency_ns)
                .field("bytes", bytes)
                .field(
                    "cache",
                    match cache {
                        Some(true) => "hit",
                        Some(false) => "miss",
                        None => "-",
                    },
                )
                .field("trace_id", trace_id.unwrap_or("-")),
        );
    }

    /// Block until all published access-log events are on disk (tests
    /// and orderly shutdown).
    pub fn flush_logs(&self) {
        if let Some(logger) = &self.logger {
            logger.flush();
        }
    }

    /// Validate the admin token on `req` (`?token=` or `x-admin-token`).
    fn check_admin(&self, req: &Request) -> Result<(), Response> {
        let Some(expected) = &self.admin_token else {
            return Err(Response::error(
                403,
                "admin endpoints are disabled; restart with --admin-token",
            ));
        };
        let presented = req
            .query_param("token")
            .or_else(|| req.header("x-admin-token"));
        if presented != Some(expected.as_str()) {
            return Err(Response::error(403, "missing or invalid admin token"));
        }
        Ok(())
    }

    fn shutdown_endpoint(&self, req: &Request) -> Response {
        if let Err(resp) = self.check_admin(req) {
            return resp;
        }
        self.request_shutdown();
        let mut w = JsonWriter::new();
        w.open_object();
        w.bool_field("shutting_down", true);
        w.close_object();
        Response::json(200, w.finish())
    }
}

/// Parse a vertex index; 400 on malformed input, 404 on out-of-range.
fn parse_index(raw: &str, n: usize) -> Result<usize, Response> {
    let p: usize = raw
        .parse()
        .map_err(|_| Response::error(400, &format!("not a vertex index: {raw:?}")))?;
    check_range(p, n)?;
    Ok(p)
}

/// 404 for an index beyond the product — the shared range gate for the
/// path-segment and batch entry points.
fn check_range(p: usize, n: usize) -> Result<(), Response> {
    if p >= n {
        return Err(Response::error(
            404,
            &format!("vertex {p} out of range (product has {n} vertices)"),
        ));
    }
    Ok(())
}

/// Parse `offset` / `limit` query params with defaults and the MAX_LIMIT
/// cap.
fn parse_page(req: &Request) -> Result<(u64, usize), Response> {
    let offset = match req.query_param("offset") {
        None => 0,
        Some(raw) => raw
            .parse()
            .map_err(|_| Response::error(400, &format!("bad offset {raw:?}")))?,
    };
    let limit = match req.query_param("limit") {
        None => DEFAULT_LIMIT,
        Some(raw) => {
            let l: usize = raw
                .parse()
                .map_err(|_| Response::error(400, &format!("bad limit {raw:?}")))?;
            if l > MAX_LIMIT {
                return Err(Response::error(
                    400,
                    &format!("limit {l} exceeds the cap of {MAX_LIMIT}"),
                ));
            }
            l
        }
    };
    Ok((offset, limit))
}

/// Parse a comma-separated factor-vertex set (`?a=0,2,5`). Bounded at
/// [`MAX_LIMIT`] members so a community query obeys the same per-request
/// memory cap as a page. Sorted and deduplicated on return.
fn parse_id_list(name: &str, raw: &str) -> Result<Vec<usize>, Response> {
    let mut out = Vec::new();
    for piece in raw.split(',').filter(|s| !s.is_empty()) {
        let v: usize = piece
            .parse()
            .map_err(|_| Response::error(400, &format!("{name} has a non-integer id {piece:?}")))?;
        out.push(v);
        if out.len() > MAX_LIMIT {
            return Err(Response::error(
                400,
                &format!("{name} exceeds the {MAX_LIMIT}-member cap"),
            ));
        }
    }
    if out.is_empty() {
        return Err(Response::error(400, &format!("{name} is an empty set")));
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// One Thm 7 level: `(1ᵀ_S M 1_S, 1ᵀ_S M 1_V, |S|)` for the effective
/// matrix `M = A (+ I when eps)` — the quantities whose products give the
/// exact chained `m_in`/`m_out`. `None` if a member is out of range.
/// `members` must be sorted and deduplicated.
fn community_level_counts(g: &Graph, members: &[usize], eps: bool) -> Option<(u128, u128, usize)> {
    if members.last().is_some_and(|&v| v >= g.num_vertices()) {
        return None;
    }
    let (mut m_in2, mut m_out) = (0u128, 0u128);
    for &u in members {
        for &v in g.neighbors(u) {
            if members.binary_search(&v).is_ok() {
                m_in2 += 1;
            } else {
                m_out += 1;
            }
        }
    }
    let e = u128::from(eps) * members.len() as u128;
    Some((m_in2 + e, m_in2 + m_out + e, members.len()))
}

/// Build the cached Table-I-style `/v1/stats` body.
fn stats_body(
    prod: &KroneckerProduct<'_>,
    stats_a: &FactorStats,
    stats_b: &FactorStats,
    expr: &str,
) -> Result<String, Box<dyn std::error::Error>> {
    let st = predict_structure(prod);
    let hist = bikron_core::truth::degrees::degree_histogram(prod);
    let mut w = JsonWriter::new();
    w.open_object();
    w.string_field("schema", "bikron-serve/1");
    w.key("metrics_schemas");
    w.open_array();
    for schema in [
        bikron_obs::SCHEMA_V1,
        bikron_obs::SCHEMA_V2,
        bikron_obs::SCHEMA_V3,
        bikron_obs::SCHEMA,
    ] {
        w.string_element(schema);
    }
    w.close_array();
    w.string_field(
        "mode",
        match prod.mode() {
            SelfLoopMode::None => "none",
            SelfLoopMode::FactorA => "loops-a",
        },
    );
    w.string_field("expr", expr);
    for (key, g) in [("factor_a", prod.factor_a()), ("factor_b", prod.factor_b())] {
        w.key(key);
        w.open_object();
        w.u64_field("vertices", g.num_vertices() as u64);
        w.u64_field("edges", g.num_edges() as u64);
        w.close_object();
    }
    w.u64_field("vertices", prod.num_vertices() as u64);
    w.u64_field("edges", prod.num_edges());
    w.bool_field("bipartite", st.bipartite);
    match st.parts {
        Some((u, wn)) => {
            w.u64_field("part_u", u as u64);
            w.u64_field("part_w", wn as u64);
        }
        None => {
            w.null_field("part_u");
            w.null_field("part_w");
        }
    }
    w.bool_field("connected", st.connected);
    match st.num_components {
        Some(c) => w.u64_field("components", c as u64),
        None => w.null_field("components"),
    }
    w.u64_field(
        "global_squares",
        global_squares_with(prod, stats_a, stats_b)?,
    );
    w.u64_field("max_degree", bikron_core::truth::degrees::max_degree(prod));
    w.u64_field("distinct_degrees", hist.len() as u64);
    w.close_object();
    Ok(w.finish())
}

/// The `/v1/stats` body for an expression server: the canonicalised
/// program, one entry per level, and the chained global counts. The
/// pair-only structure predictions (bipartiteness, connectivity — Thms
/// 1–2 are two-factor statements) are intentionally absent.
fn stats_body_chain(chain: &KronChain) -> String {
    let mut w = JsonWriter::new();
    w.open_object();
    w.string_field("schema", "bikron-serve/1");
    w.key("metrics_schemas");
    w.open_array();
    for schema in [
        bikron_obs::SCHEMA_V1,
        bikron_obs::SCHEMA_V2,
        bikron_obs::SCHEMA_V3,
        bikron_obs::SCHEMA,
    ] {
        w.string_element(schema);
    }
    w.close_array();
    w.string_field("expr", chain.canonical());
    w.key("levels");
    w.open_array();
    for i in 0..chain.num_levels() {
        let (name, g, plus_identity) = chain.level_info(i);
        w.array_element();
        w.open_object();
        w.string_field("name", name);
        w.u64_field("vertices", g.num_vertices() as u64);
        w.u64_field("edges", g.num_edges() as u64);
        w.bool_field("plus_identity", plus_identity);
        w.close_object();
    }
    w.close_array();
    w.u64_field("vertices", chain.num_vertices() as u64);
    w.u64_field("edges", chain.num_edges());
    w.u64_field("global_squares", chain.global_squares());
    w.u64_field("max_degree", chain.max_degree());
    w.close_object();
    w.finish()
}

/// Answer a (pre-authorised) `/v1/admin/profile` request against the
/// process-wide sampling profiler. Shared by the single-shard server and
/// the cluster router, which gate it behind their own admin tokens.
///
/// `?seconds=N` (capped at [`MAX_PROFILE_SECONDS`], default 0) scopes
/// the profile to an on-demand window: snapshot, sleep N seconds while
/// the sampler keeps running, snapshot again, return the difference.
/// `seconds=0` returns the cumulative profile since the sampler started.
/// `?format=folded` returns flamegraph-ready folded text instead of the
/// `bikron-profile/1` JSON (collapsed stacks plus a per-frame
/// self-vs-cumulative split). Answers 409 when no sampler is running —
/// the process was started with `--profile-hz 0`.
pub fn profile_response(req: &Request) -> Response {
    let prof = bikron_obs::profile::profiler();
    if prof.sampler_hz() == 0 {
        return Response::error(
            409,
            "profiling is disabled; restart with --profile-hz N (default 99)",
        );
    }
    let seconds: u64 = match req.query_param("seconds").map(str::parse) {
        None => 0,
        Some(Ok(v)) => v,
        Some(Err(_)) => return Response::error(400, "seconds must be an integer"),
    };
    let seconds = seconds.min(MAX_PROFILE_SECONDS);
    let snap = if seconds == 0 {
        prof.snapshot()
    } else {
        let base = prof.snapshot();
        std::thread::sleep(std::time::Duration::from_secs(seconds));
        prof.snapshot().since(&base)
    };
    match req.query_param("format") {
        Some("folded") => Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: snap.to_folded(),
        },
        None | Some("json") => {
            let mut w = JsonWriter::new();
            w.open_object();
            w.string_field("schema", bikron_obs::profile::PROFILE_SCHEMA);
            w.u64_field("hz", snap.hz);
            w.u64_field("seconds", seconds);
            w.u64_field("samples", snap.samples);
            w.u64_field("dropped_samples", snap.dropped);
            w.u64_field("idle_samples", snap.idle);
            w.key("stacks");
            w.open_object();
            for (stack, count) in &snap.stacks {
                w.u64_field(stack, *count);
            }
            w.close_object();
            w.key("frames");
            w.open_object();
            for (path, stat) in bikron_obs::profile::frame_totals(&snap.stacks) {
                w.key(&path);
                w.open_object();
                w.u64_field("self", stat.self_samples);
                w.u64_field("total", stat.total);
                w.close_object();
            }
            w.close_object();
            w.close_object();
            Response::json(200, w.finish())
        }
        Some(other) => {
            Response::error(400, &format!("unknown profile format {other:?} (json|folded)"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_generators::{complete_bipartite, crown, cycle};

    fn get(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        crate::http::parse_request(&mut std::io::BufReader::new(raw.as_bytes())).unwrap()
    }

    fn post(path: &str, body: &str) -> Request {
        let raw = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        crate::http::parse_request(&mut std::io::BufReader::new(raw.as_bytes())).unwrap()
    }

    fn state() -> ServeState {
        ServeState::build(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::None,
            Some("sesame".into()),
        )
        .unwrap()
    }

    fn state_no_cache() -> ServeState {
        ServeState::build_with(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::None,
            ServeOptions {
                cache_entries: 0,
                ..ServeOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn vertex_response_is_byte_exact() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        for p in 0..prod.num_vertices() {
            let resp = st.handle(&get(&format!("/v1/vertex/{p}")));
            assert_eq!(resp.status, 200);
            let (i, k) = prod.indexer().split(p);
            let expect = format!(
                "{{\n  \"vertex\": {p},\n  \"alpha\": {i},\n  \"beta\": {k},\n  \
                 \"degree\": {},\n  \"squares\": {}\n}}\n",
                prod.degree(p),
                vertex_squares_at(&prod, &sa, &sb, p),
            );
            assert_eq!(resp.body, expect);
        }
    }

    #[test]
    fn vertex_error_statuses() {
        let st = state();
        assert_eq!(st.handle(&get("/v1/vertex/banana")).status, 400);
        assert_eq!(st.handle(&get("/v1/vertex/25")).status, 404);
        assert_eq!(st.handle(&get("/v1/vertex/24")).status, 200);
        assert_eq!(st.handle(&get("/v2/vertex/1")).status, 404);
    }

    #[test]
    fn edge_matches_ground_truth_both_ways() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let g = prod.materialize();
        for p in 0..g.num_vertices() {
            for q in 0..g.num_vertices() {
                let resp = st.handle(&get(&format!("/v1/edge/{p}/{q}")));
                assert_eq!(resp.status, 200);
                if g.has_edge(p, q) {
                    let s = edge_squares_at(&prod, &sa, &sb, p, q).unwrap();
                    assert!(resp.body.contains("\"edge\": true"), "({p},{q})");
                    assert!(resp.body.contains(&format!("\"squares\": {s}")));
                } else {
                    assert!(resp.body.contains("\"edge\": false"), "({p},{q})");
                    assert!(resp.body.contains("\"squares\": null"));
                }
            }
        }
    }

    #[test]
    fn neighbors_pages_cover_degree() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let g = prod.materialize();
        let p = 7;
        let mut collected: Vec<usize> = Vec::new();
        let mut offset = 0;
        loop {
            let resp = st.handle(&get(&format!("/v1/neighbors/{p}?offset={offset}&limit=2")));
            assert_eq!(resp.status, 200);
            let body = &resp.body;
            let inside = body
                .split("\"neighbors\": [")
                .nth(1)
                .unwrap()
                .split(']')
                .next()
                .unwrap();
            let page: Vec<usize> = inside
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap())
                .collect();
            if page.is_empty() {
                break;
            }
            offset += page.len();
            collected.extend(page);
            if body.contains("\"next_offset\": null") {
                break;
            }
        }
        assert_eq!(collected, g.neighbors(p));
    }

    #[test]
    fn neighbors_limit_cap_enforced() {
        let st = state();
        assert_eq!(st.handle(&get("/v1/neighbors/0?limit=10001")).status, 400);
        assert_eq!(st.handle(&get("/v1/neighbors/0?limit=banana")).status, 400);
        assert_eq!(st.handle(&get("/v1/neighbors/0?offset=-1")).status, 400);
    }

    #[test]
    fn edges_pages_are_resumable_and_complete() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let mut collected = 0u64;
        for part in 0..3 {
            let mut offset = 0u64;
            loop {
                let resp = st.handle(&get(&format!("/v1/edges/{part}/3?offset={offset}&limit=7")));
                assert_eq!(resp.status, 200);
                let count: u64 = resp
                    .body
                    .split("\"count\": ")
                    .nth(1)
                    .unwrap()
                    .split(',')
                    .next()
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap();
                collected += count;
                offset += count;
                if resp.body.contains("\"next_offset\": null") {
                    break;
                }
            }
        }
        assert_eq!(collected, prod.num_edges());
    }

    #[test]
    fn edges_validation() {
        let st = state();
        assert_eq!(st.handle(&get("/v1/edges/0/0")).status, 400);
        assert_eq!(st.handle(&get("/v1/edges/3/3")).status, 400);
        assert_eq!(st.handle(&get("/v1/edges/0/1")).status, 200);
        assert_eq!(
            st.handle(&get(&format!("/v1/edges/0/{}", MAX_PARTS + 1)))
                .status,
            400
        );
    }

    #[test]
    fn annotated_edges_match_truth() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let ps = PartitionedStream::new(&prod, &sa, &sb, 1);
        let resp = st.handle(&get("/v1/edges/0/1?limit=5&annotate=1"));
        assert_eq!(resp.status, 200);
        for (n, (p, q)) in ps.edges_page(0, 0, 5).into_iter().enumerate() {
            let s = edge_squares_at(&prod, &sa, &sb, p, q).unwrap();
            let row = format!(
                "[\n      {p},\n      {q},\n      {},\n      {},\n      {s}\n    ]",
                prod.degree(p),
                prod.degree(q)
            );
            assert!(resp.body.contains(&row), "row {n}: missing {row:?}");
        }
    }

    #[test]
    fn stats_is_cached_and_consistent() {
        let st = state();
        let r1 = st.handle(&get("/v1/stats"));
        let r2 = st.handle(&get("/v1/stats"));
        assert_eq!(r1, r2);
        assert!(r1.body.contains("\"vertices\": 25"));
        assert!(r1.body.contains("\"edges\": 60"));
        assert!(r1.body.contains("\"bipartite\": true"));
        assert!(r1.body.contains("\"global_squares\": "));
    }

    #[test]
    fn metrics_endpoint_returns_obs_report() {
        let st = state();
        // `record` is the pool's per-request hook; invoke it directly so the
        // windowed series carry a sample.
        st.metrics().record(200, 64, 1_000_000);
        let resp = st.handle(&get("/metrics"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"schema\": \"bikron-obs/4\""));
        assert!(resp.body.contains("\"tool\": \"bikron-serve\""));
        assert!(resp.body.contains("\"windows\""));
        let parsed = bikron_obs::Report::from_json(&resp.body).unwrap();
        assert_eq!(parsed.meta("endpoint"), Some("/metrics"));
        // The windowed series ride the same report as the cumulative ones.
        let win = parsed.window("serve.request_ns").expect("windowed latency");
        assert!(win.w1m.count >= 1, "recorded request in the 1m window");
    }

    #[test]
    fn metrics_format_param_selects_prometheus() {
        let st = state();
        st.handle(&get("/v1/vertex/3"));
        let resp = st.handle(&get("/metrics?format=prometheus"));
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain; version=0.0.4"));
        bikron_obs::prom::check_exposition(&resp.body).expect("valid exposition");
        assert!(resp.body.contains("bikron_serve_requests"));
        // Satellite: live gauge and high-water mark export as distinct series.
        assert!(resp.body.contains("bikron_serve_inflight "));
        assert!(resp.body.contains("bikron_serve_inflight_peak "));

        assert_eq!(st.handle(&get("/metrics?format=json")).status, 200);
        assert_eq!(st.handle(&get("/metrics?format=xml")).status, 400);
    }

    #[test]
    fn stats_advertises_metrics_schemas() {
        let st = state();
        let resp = st.handle(&get("/v1/stats"));
        assert!(resp.body.contains("\"metrics_schemas\""));
        for schema in [
            "bikron-obs/1",
            "bikron-obs/2",
            "bikron-obs/3",
            "bikron-obs/4",
        ] {
            assert!(resp.body.contains(&format!("\"{schema}\"")), "{schema}");
        }
    }

    #[test]
    fn health_starts_ok_and_degrades_on_slo_breach() {
        let st = ServeState::build_with(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::None,
            ServeOptions {
                slo_p99_ms: 50,
                slo_err_pct: 10,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        // No traffic yet: windows are empty, which is healthy, not degraded.
        let resp = st.handle(&get("/v1/health"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"status\": \"ok\""), "{}", resp.body);

        // Fast, successful traffic stays ok.
        for _ in 0..10 {
            st.metrics().record(200, 100, 1_000_000); // 1ms
        }
        let resp = st.handle(&get("/v1/health"));
        assert!(resp.body.contains("\"status\": \"ok\""), "{}", resp.body);

        // One 200ms outlier pushes windowed p99 past the 50ms SLO.
        st.metrics().record(200, 100, 200_000_000);
        let resp = st.handle(&get("/v1/health"));
        assert!(
            resp.body.contains("\"status\": \"degraded\""),
            "{}",
            resp.body
        );
        assert!(resp.body.contains("\"ok\": false"));
    }

    #[test]
    fn health_degrades_on_error_budget_breach() {
        let st = ServeState::build_with(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::None,
            ServeOptions {
                slo_p99_ms: 10_000,
                slo_err_pct: 5,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        for _ in 0..9 {
            st.metrics().record(200, 100, 1_000_000);
        }
        assert!(st.handle(&get("/v1/health")).body.contains("\"ok\": true"));
        // 1 error in 10 requests = 10% > the 5% budget.
        st.metrics().record(500, 100, 1_000_000);
        let resp = st.handle(&get("/v1/health"));
        assert!(
            resp.body.contains("\"status\": \"degraded\""),
            "{}",
            resp.body
        );
    }

    #[test]
    fn stall_endpoint_is_token_gated_and_validated() {
        let st = state();
        assert_eq!(st.handle(&get("/v1/admin/stall?ms=1")).status, 403);
        assert_eq!(
            st.handle(&get("/v1/admin/stall?ms=1&token=wrong")).status,
            403
        );
        assert_eq!(st.handle(&get("/v1/admin/stall?token=sesame")).status, 400);
        assert_eq!(
            st.handle(&get("/v1/admin/stall?ms=banana&token=sesame"))
                .status,
            400
        );
        let resp = st.handle(&get("/v1/admin/stall?ms=2&token=sesame"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"stalled_ms\": 2"));
    }

    #[test]
    fn profile_endpoint_is_token_gated_and_samples_on_demand() {
        let st = state();
        assert_eq!(st.handle(&get("/v1/admin/profile")).status, 403);
        assert_eq!(
            st.handle(&get("/v1/admin/profile?token=wrong")).status,
            403
        );
        match bikron_obs::profile::start_sampler(500) {
            None => {
                // No sampler could start (hz race with a concurrent
                // test): the endpoint must say so, not serve zeros.
                if bikron_obs::profile::profiler().sampler_hz() == 0 {
                    let resp = st.handle(&get("/v1/admin/profile?token=sesame"));
                    assert_eq!(resp.status, 409);
                    assert!(resp.body.contains("profiling is disabled"));
                }
            }
            Some(sampler) => {
                // Generate some attributable work, then read the
                // cumulative profile (seconds=0: no capture sleep).
                for _ in 0..50 {
                    st.handle(&get("/v1/vertex/3"));
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let resp = st.handle(&get("/v1/admin/profile?token=sesame"));
                assert_eq!(resp.status, 200);
                assert!(resp.body.contains("\"schema\": \"bikron-profile/1\""));
                assert!(resp.body.contains("\"hz\": 500"));
                assert!(resp.body.contains("\"stacks\""));
                assert!(resp.body.contains("\"frames\""));
                let folded = st.handle(&get("/v1/admin/profile?token=sesame&format=folded"));
                assert_eq!(folded.status, 200);
                assert!(folded.content_type.starts_with("text/plain"));
                assert_eq!(
                    st.handle(&get("/v1/admin/profile?token=sesame&format=svg"))
                        .status,
                    400
                );
                assert_eq!(
                    st.handle(&get("/v1/admin/profile?token=sesame&seconds=x"))
                        .status,
                    400
                );
                sampler.stop();
            }
        }
    }

    #[test]
    fn path_shape_collapses_numeric_segments() {
        assert_eq!(path_shape("/v1/vertex/17"), "/v1/vertex/{n}");
        assert_eq!(path_shape("/v1/edge/0/13"), "/v1/edge/{n}/{n}");
        assert_eq!(path_shape("/v1/stats"), "/v1/stats");
        assert_eq!(path_shape("/"), "/");
        assert_eq!(path_shape(""), "/");
        assert_eq!(path_shape("/metrics"), "/metrics");
    }

    #[test]
    fn access_log_round_trips_through_file() {
        let path = std::env::temp_dir().join(format!(
            "bikron-serve-access-{}-{:?}.log",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let st = ServeState::build_with(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::None,
            ServeOptions {
                access_log: Some(path.display().to_string()),
                admin_token: Some("sesame".into()),
                ..ServeOptions::default()
            },
        )
        .unwrap();
        st.log_access(
            "GET",
            "/v1/vertex/{n}",
            200,
            1_234,
            99,
            Some(true),
            Some("00f067aa0ba902b7deadbeefcafef00d"),
        );
        st.log_access("GET", "/metrics", 200, 5_678, 400, None, None);
        st.flush_logs();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("\"target\": \"access\""));
        assert!(lines[0].contains("\"path\": \"/v1/vertex/{n}\""));
        assert!(lines[0].contains("\"cache\": \"hit\""));
        assert!(lines[0].contains("\"trace_id\": \"00f067aa0ba902b7deadbeefcafef00d\""));
        assert!(lines[1].contains("\"cache\": \"-\""));
        assert!(lines[1].contains("\"trace_id\": \"-\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shutdown_gating() {
        let st = state();
        assert!(!st.shutdown_requested());
        assert_eq!(st.handle(&get("/v1/shutdown")).status, 403);
        assert_eq!(st.handle(&get("/v1/shutdown?token=wrong")).status, 403);
        assert!(!st.shutdown_requested());
        let resp = st.handle(&get("/v1/shutdown?token=sesame"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"shutting_down\": true"));
        assert!(st.shutdown_requested());

        let no_admin = ServeState::build(crown(3), crown(3), SelfLoopMode::FactorA, None).unwrap();
        assert_eq!(
            no_admin.handle(&get("/v1/shutdown?token=sesame")).status,
            403
        );
    }

    #[test]
    fn batch_matches_singles_cached_and_uncached() {
        for st in [state(), state_no_cache()] {
            let singles: Vec<String> = vec![
                st.handle(&get("/v1/vertex/7")).body,
                st.handle(&get("/v1/edge/0/13")).body,
                st.handle(&get("/v1/neighbors/7?offset=1&limit=2")).body,
                st.handle(&get("/v1/vertex/999")).body, // embedded 404 body
            ];
            let resp = st.handle(&post(
                "/v1/batch",
                "vertex 7\nedge 0 13\nneighbors 7 1 2\nvertex 999\n",
            ));
            assert_eq!(resp.status, 200);
            let expected = format!(
                "[\n{}\n]\n",
                singles
                    .iter()
                    .map(|b| b.trim_end())
                    .collect::<Vec<_>>()
                    .join(",\n")
            );
            assert_eq!(resp.body, expected);
        }
    }

    #[test]
    fn batch_requires_post_and_post_is_batch_only() {
        let st = state();
        assert_eq!(st.handle(&get("/v1/batch")).status, 405);
        assert_eq!(st.handle(&post("/v1/vertex/1", "")).status, 405);
        assert_eq!(st.handle(&post("/v1/stats", "x")).status, 405);
    }

    #[test]
    fn malformed_batch_is_400_with_line_index() {
        let st = state();
        let resp = st.handle(&post("/v1/batch", "vertex 1\nfrob 9\n"));
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"line\": 1"), "{}", resp.body);
        let resp = st.handle(&post("/v1/batch", ""));
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"line\": 0"));
        let resp = st.handle(&post("/v1/batch", "vertex \u{fffd}"));
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let st = state();
        let cache = st.cache().expect("cache on by default");
        let first = st.handle(&get("/v1/vertex/3"));
        let before = cache.local_hits();
        let second = st.handle(&get("/v1/vertex/3"));
        assert_eq!(first, second, "cache must not change bytes");
        assert_eq!(cache.local_hits(), before + 1);
        assert!(!cache.is_empty());

        // Error responses are not cached.
        let miss_len = cache.len();
        st.handle(&get("/v1/vertex/999"));
        st.handle(&get("/v1/vertex/999"));
        assert_eq!(cache.len(), miss_len);
    }

    #[test]
    fn header_token_accepted() {
        let st = state();
        let raw = "GET /v1/shutdown HTTP/1.1\r\nX-Admin-Token: sesame\r\n\r\n";
        let req = crate::http::parse_request(&mut std::io::BufReader::new(raw.as_bytes())).unwrap();
        assert_eq!(st.handle(&req).status, 200);
    }

    /// `(A+I)⊗B` as an expression server — same program as the pair
    /// server in `FactorA` mode, so truth values must agree even though
    /// the backends differ.
    fn chain_state() -> ServeState {
        ServeState::build_expr(
            vec![
                ("A".into(), cycle(5)),
                ("B".into(), complete_bipartite(2, 3)),
            ],
            &[("A".into(), true), ("B".into(), false)],
            ServeOptions::default(),
        )
        .unwrap()
    }

    fn chain_truth() -> KronChain {
        KronChain::new(
            vec![
                ("A".into(), cycle(5)),
                ("B".into(), complete_bipartite(2, 3)),
            ],
            &[("A".into(), true), ("B".into(), false)],
        )
        .unwrap()
    }

    #[test]
    fn expr_vertex_reports_coords_and_matches_pair_truth() {
        let st = chain_state();
        let pair = ServeState::build(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::FactorA,
            None,
        )
        .unwrap();
        let chain = chain_truth();
        for p in 0..chain.num_vertices() {
            let resp = st.handle(&get(&format!("/v1/vertex/{p}")));
            assert_eq!(resp.status, 200);
            let coords = chain.split(p);
            let expect = format!(
                "{{\n  \"vertex\": {p},\n  \"coords\": [\n    {},\n    {}\n  ],\n  \
                 \"degree\": {},\n  \"squares\": {}\n}}\n",
                coords[0],
                coords[1],
                chain.degree(p),
                chain.vertex_squares_at(p),
            );
            assert_eq!(resp.body, expect);
            // Same program as the pair server: numbers must agree.
            let pair_body = pair.handle(&get(&format!("/v1/vertex/{p}"))).body;
            let tail = |b: &str| b.split("\"degree\"").nth(1).map(str::to_owned).unwrap();
            assert_eq!(tail(&resp.body), tail(&pair_body), "vertex {p}");
        }
        assert_eq!(st.handle(&get("/v1/vertex/25")).status, 404);
    }

    #[test]
    fn expr_stats_reports_canonical_expression() {
        let pair = state();
        assert!(
            pair.handle(&get("/v1/stats"))
                .body
                .contains("\"expr\": \"A⊗B\""),
            "pair stats expr"
        );
        let st = chain_state();
        assert_eq!(st.expr(), "(A+I)⊗B");
        let resp = st.handle(&get("/v1/stats"));
        assert!(resp.body.contains("\"expr\": \"(A+I)⊗B\""), "{}", resp.body);
        assert!(resp.body.contains("\"levels\""));
        assert!(resp.body.contains("\"plus_identity\": true"));
        let chain = chain_truth();
        assert!(resp
            .body
            .contains(&format!("\"global_squares\": {}", chain.global_squares())));
    }

    #[test]
    fn expr_edges_stream_is_501() {
        let st = chain_state();
        let resp = st.handle(&get("/v1/edges/0/2"));
        assert_eq!(resp.status, 501);
        assert!(resp.body.contains("/v1/neighbors"), "{}", resp.body);
    }

    #[test]
    fn expr_batch_matches_singles() {
        let st = chain_state();
        let singles: Vec<String> = vec![
            st.handle(&get("/v1/vertex/7")).body,
            st.handle(&get("/v1/edge/0/2")).body,
            st.handle(&get("/v1/neighbors/7?offset=1&limit=2")).body,
        ];
        let resp = st.handle(&post("/v1/batch", "vertex 7\nedge 0 2\nneighbors 7 1 2\n"));
        assert_eq!(resp.status, 200);
        let expected = format!(
            "[\n{}\n]\n",
            singles
                .iter()
                .map(|b| b.trim_end())
                .collect::<Vec<_>>()
                .join(",\n")
        );
        assert_eq!(resp.body, expected);
    }

    #[test]
    fn clustering_matches_truth_and_validates() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let g = prod.materialize();
        for p in 0..g.num_vertices() {
            for q in 0..g.num_vertices() {
                let resp = st.handle(&get(&format!("/v1/clustering/{p}/{q}")));
                assert_eq!(resp.status, 200);
                if g.has_edge(p, q) {
                    assert!(resp.body.contains("\"edge\": true"), "({p},{q})");
                    match product_gamma(&prod, &sa, &sb, p, q) {
                        Some(v) => {
                            assert!(resp.body.contains(&format!("\"gamma\": {v}")), "({p},{q})")
                        }
                        None => assert!(resp.body.contains("\"gamma\": null")),
                    }
                    match scaling_law_at(&prod, &sa, &sb, p, q) {
                        Some(s) => {
                            assert!(resp.body.contains(&format!("\"bound\": {}", s.bound)));
                            assert!(resp.body.contains(&format!("\"psi\": {}", s.psi)));
                        }
                        None => assert!(resp.body.contains("\"bound\": null")),
                    }
                } else {
                    assert!(resp.body.contains("\"edge\": false"), "({p},{q})");
                    assert!(resp.body.contains("\"squares\": null"));
                    assert!(resp.body.contains("\"gamma\": null"));
                }
            }
        }
        assert_eq!(st.handle(&get("/v1/clustering/0/banana")).status, 400);
        assert_eq!(st.handle(&get("/v1/clustering/0/25")).status, 404);
        assert_eq!(st.handle(&get("/v1/clustering/25/0")).status, 404);
    }

    #[test]
    fn clustering_chain_bound_present_only_when_thm6_applies() {
        // Bare chain of degree-≥2 factors: Thm 6 hypotheses hold, so an
        // edge must carry a non-null bound ≤ gamma.
        let bare = ServeState::build_expr(
            vec![("A".into(), cycle(3)), ("B".into(), cycle(4))],
            &[("A".into(), false), ("B".into(), false)],
            ServeOptions::default(),
        )
        .unwrap();
        // cycle(3)⊗cycle(4): (0,0)–(1,1) is an edge, i.e. 0–5.
        let resp = bare.handle(&get("/v1/clustering/0/5"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"edge\": true"), "{}", resp.body);
        assert!(!resp.body.contains("\"gamma\": null"), "{}", resp.body);
        assert!(!resp.body.contains("\"bound\": null"), "{}", resp.body);

        // A lifted level breaks the hypotheses: bound/psi must be null.
        let lifted = chain_state();
        let resp = lifted.handle(&get("/v1/clustering/0/2"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"edge\": true"), "{}", resp.body);
        assert!(resp.body.contains("\"bound\": null"), "{}", resp.body);
        assert!(resp.body.contains("\"psi\": null"), "{}", resp.body);
    }

    #[test]
    fn community_pair_matches_brute_force() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let g = prod.materialize();
        let set_a = [0usize, 1, 3];
        let set_b = [0usize, 2, 4];
        let member = |p: usize| {
            let (i, k) = prod.indexer().split(p);
            set_a.contains(&i) && set_b.contains(&k)
        };
        let (mut m_in, mut m_out) = (0u64, 0u64);
        for p in 0..g.num_vertices() {
            if !member(p) {
                continue;
            }
            for &q in g.neighbors(p) {
                if member(q) {
                    m_in += 1;
                } else {
                    m_out += 1;
                }
            }
        }
        m_in /= 2;
        let resp = st.handle(&get("/v1/community?a=0,1,3&b=0,2,4"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"size\": 9"), "{}", resp.body);
        assert!(
            resp.body.contains(&format!("\"m_in\": {m_in}")),
            "{}",
            resp.body
        );
        assert!(
            resp.body.contains(&format!("\"m_out\": {m_out}")),
            "{}",
            resp.body
        );
        // cycle(5) is an odd cycle — no bipartition, so Cor 1–2 are null.
        assert!(resp.body.contains("\"rho_in\": null"));
    }

    #[test]
    fn community_pair_reports_density_on_bipartite_factors() {
        let st = ServeState::build(crown(3), crown(3), SelfLoopMode::None, None).unwrap();
        // Sets straddling both sides of each crown's bipartition.
        let resp = st.handle(&get("/v1/community?a=0,3&b=1,2,4"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"theorem\": \"thm7\""));
        assert!(!resp.body.contains("\"rho_in\": null"), "{}", resp.body);
    }

    #[test]
    fn community_validation_statuses() {
        let st = state();
        assert_eq!(st.handle(&get("/v1/community")).status, 400);
        assert_eq!(st.handle(&get("/v1/community?a=0,1")).status, 400);
        assert_eq!(st.handle(&get("/v1/community?a=zero&b=0")).status, 400);
        assert_eq!(st.handle(&get("/v1/community?a=&b=0")).status, 400);
        assert_eq!(st.handle(&get("/v1/community?a=99&b=0")).status, 404);
        assert_eq!(st.handle(&get("/v1/community?a=0&b=99")).status, 404);
    }

    #[test]
    fn community_chain_matches_brute_force() {
        let st = chain_state();
        let chain = chain_truth();
        let g = chain.materialize();
        let s0 = [0usize, 2, 4];
        let s1 = [1usize, 3];
        let member = |p: usize| {
            let c = chain.split(p);
            s0.contains(&c[0]) && s1.contains(&c[1])
        };
        let (mut m_in, mut m_out) = (0u64, 0u64);
        for p in 0..g.num_vertices() {
            if !member(p) {
                continue;
            }
            for &q in g.neighbors(p) {
                if member(q) {
                    m_in += 1;
                } else {
                    m_out += 1;
                }
            }
        }
        m_in /= 2;
        let resp = st.handle(&get("/v1/community?s0=0,2,4&s1=1,3"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"size\": 6"), "{}", resp.body);
        assert!(
            resp.body.contains(&format!("\"m_in\": {m_in}")),
            "{}",
            resp.body
        );
        assert!(
            resp.body.contains(&format!("\"m_out\": {m_out}")),
            "{}",
            resp.body
        );
        // Density corollaries are pair-only statements.
        assert!(resp.body.contains("\"rho_in\": null"));

        assert_eq!(st.handle(&get("/v1/community?s0=0,2,4")).status, 400);
        assert_eq!(st.handle(&get("/v1/community?a=0&b=0")).status, 400);
        assert_eq!(st.handle(&get("/v1/community?s0=99&s1=0")).status, 404);
    }

    #[test]
    fn scatter_pages_cover_all_vertices_and_match_truth() {
        let st = state();
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let mut rows = 0u64;
        let mut offset = 0u64;
        loop {
            let resp = st.handle(&get(&format!(
                "/v1/scatter/degree-squares?offset={offset}&limit=10"
            )));
            assert_eq!(resp.status, 200);
            let count: u64 = resp
                .body
                .split("\"count\": ")
                .nth(1)
                .unwrap()
                .split(',')
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            rows += count;
            offset += count;
            if resp.body.contains("\"next_offset\": null") {
                break;
            }
        }
        assert_eq!(rows, 25);

        let csv = st.handle(&get("/v1/scatter/degree-squares?format=csv&limit=25"));
        assert_eq!(csv.status, 200);
        assert!(csv.content_type.starts_with("text/csv"));
        let lines: Vec<&str> = csv.body.lines().collect();
        assert_eq!(lines[0], "vertex,degree,squares");
        assert_eq!(lines.len(), 26);
        for (p, line) in lines[1..].iter().enumerate() {
            let expect = format!(
                "{p},{},{}",
                prod.degree(p),
                vertex_squares_at(&prod, &sa, &sb, p)
            );
            assert_eq!(*line, expect);
        }

        assert_eq!(
            st.handle(&get("/v1/scatter/degree-squares?format=xml"))
                .status,
            400
        );
        assert_eq!(
            st.handle(&get("/v1/scatter/degree-squares?limit=10001"))
                .status,
            400
        );
    }

    #[test]
    fn scatter_chain_rows_match_chain_truth() {
        let st = chain_state();
        let chain = chain_truth();
        let csv = st.handle(&get("/v1/scatter/degree-squares?format=csv&limit=25"));
        assert_eq!(csv.status, 200);
        for (p, line) in csv.body.lines().skip(1).enumerate() {
            let expect = format!("{p},{},{}", chain.degree(p), chain.vertex_squares_at(p));
            assert_eq!(line, expect);
        }
    }

    /// Shard 1 of 3 over the 25-vertex fixture: owns `[9, 18)`.
    fn sharded_state(index: usize, count: usize) -> ServeState {
        ServeState::build_with(
            cycle(5),
            complete_bipartite(2, 3),
            SelfLoopMode::None,
            ServeOptions {
                shard: Some((index, count)),
                ..ServeOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn sharded_state_answers_owned_keys_byte_identically() {
        let st = sharded_state(1, 3);
        let full = state();
        for p in 9..18 {
            for path in [
                format!("/v1/vertex/{p}"),
                format!("/v1/edge/{p}/24"),
                format!("/v1/neighbors/{p}?offset=1&limit=3"),
                format!("/v1/clustering/{p}/0"),
            ] {
                let sharded = st.handle(&get(&path));
                let single = full.handle(&get(&path));
                assert_eq!(sharded.status, 200, "{path}");
                assert_eq!(sharded.body, single.body, "{path}");
            }
        }
    }

    #[test]
    fn sharded_state_421s_foreign_keys_with_owner_detail() {
        let st = sharded_state(1, 3);
        let resp = st.handle(&get("/v1/vertex/3"));
        assert_eq!(resp.status, 421);
        assert!(
            resp.body
                .contains("vertex 3 is owned by shard 0/3; this is shard 1"),
            "{}",
            resp.body
        );
        // Only the first index gates: the partner vertex of an edge or
        // clustering probe may live anywhere.
        assert_eq!(st.handle(&get("/v1/edge/20/1")).status, 421);
        assert_eq!(st.handle(&get("/v1/edge/10/24")).status, 200);
        assert_eq!(st.handle(&get("/v1/neighbors/0")).status, 421);
        assert_eq!(st.handle(&get("/v1/clustering/18/10")).status, 421);
        // Range and parse errors keep their canonical status so the
        // router can send such keys to any shard and relay verbatim.
        assert_eq!(st.handle(&get("/v1/vertex/25")).status, 404);
        assert_eq!(st.handle(&get("/v1/vertex/banana")).status, 400);
        assert_eq!(st.handle(&get("/v1/edge/10/99")).status, 404);
    }

    #[test]
    fn sharded_edges_stream_gates_the_part_space() {
        // The partition space tiles over shards with the same block
        // arithmetic as the vertex space: parts 0..6 over 3 shards give
        // shard 1 parts {2, 3}. Off-slice parts must 421 — otherwise
        // every shard would stream every part and a cluster would emit
        // N copies of each edge.
        let st = sharded_state(1, 3);
        let full = state();
        for part in [2usize, 3] {
            let path = format!("/v1/edges/{part}/6?limit=50");
            let sharded = st.handle(&get(&path));
            assert_eq!(sharded.status, 200, "{path}");
            assert_eq!(sharded.body, full.handle(&get(&path)).body, "{path}");
        }
        for part in [0usize, 1, 4, 5] {
            let resp = st.handle(&get(&format!("/v1/edges/{part}/6")));
            assert_eq!(resp.status, 421, "part {part}");
        }
        let resp = st.handle(&get("/v1/edges/5/6"));
        assert!(
            resp.body
                .contains("part 5/6 is owned by shard 2/3; this is shard 1"),
            "{}",
            resp.body
        );
        // Malformed part specs keep their canonical 400 on any shard.
        assert_eq!(st.handle(&get("/v1/edges/6/6")).status, 400);
        assert_eq!(st.handle(&get("/v1/edges/x/6")).status, 400);
    }

    #[test]
    fn sharded_health_reports_owned_slice() {
        let resp = sharded_state(1, 3).handle(&get("/v1/health"));
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"shard\": \"1/3\""), "{}", resp.body);
        assert!(resp.body.contains("\"owned_lo\": 9"), "{}", resp.body);
        assert!(resp.body.contains("\"owned_hi\": 18"), "{}", resp.body);
        // An unsharded server advertises no slice at all.
        let single = state().handle(&get("/v1/health"));
        assert!(!single.body.contains("owned_lo"), "{}", single.body);
    }
}
