//! Sharded, bounded LRU cache for ground-truth answers.
//!
//! Every answer the service computes is a pure function of the immutable
//! factor graphs — the product never changes after startup, so a cached
//! body can **never** go stale and no invalidation path exists or is
//! needed (DESIGN.md §10.1). The only thing the cache must bound is
//! memory, hence a fixed total capacity split into `N` shards of `M`
//! entries each, every shard behind its own mutex so concurrent workers
//! contend only when they hash to the same shard.
//!
//! Each shard is a classic intrusive-list LRU: a `HashMap` from key to a
//! slot index plus a doubly-linked recency list threaded through a
//! fixed-capacity slot arena. `get` promotes to most-recent, `insert`
//! evicts the least-recent slot when the shard is full. All operations
//! are O(1).
//!
//! Observability: the cache owns local atomic tallies (exact, per
//! instance — what the tests assert on) and mirrors them into the global
//! registry (`serve.cache.hits` / `.misses` / `.evictions`, plus the
//! derived `serve.cache.hit_rate_pct` gauge) so `/metrics` reports them
//! live.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bikron_obs::{Counter, Gauge};

/// Sentinel slot index for "no slot" in the recency list.
const NIL: usize = usize::MAX;

/// What a cached answer is keyed by. Only successful (200) bodies are
/// cached; error bodies are cheap to recompute and would pollute the
/// working set.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// `/v1/vertex/{p}` — Thm 3/4 per-vertex answer.
    Vertex(usize),
    /// `/v1/edge/{p}/{q}` — Thm 5 per-edge answer.
    Edge(usize, usize),
    /// `/v1/neighbors/{p}?offset&limit` — one adjacency page.
    Neighbors(usize, u64, usize),
    /// `/v1/clustering/{p}/{q}` — Thm 6 per-edge answer.
    Clustering(usize, usize),
    /// `/v1/scatter/degree-squares?offset&limit` (JSON format only —
    /// the cache stores bare JSON bodies, so the CSV rendering stays
    /// uncached).
    Scatter(u64, usize),
}

/// FNV-1a offset basis — the default shard-hash seed.
pub const DEFAULT_HASH_SEED: u64 = 0xcbf2_9ce4_8422_2325;

impl CacheKey {
    /// Stable, cheap hash used for shard selection (FNV-1a over the
    /// discriminant and operands — `DefaultHasher` is not guaranteed
    /// stable across releases and this value picks a shard, so keep it
    /// under our control). `seed` replaces the offset basis so caches
    /// serving different expression programs hash the same key
    /// differently (see DESIGN.md §11 — keys are expression-qualified).
    fn shard_hash(&self, seed: u64) -> u64 {
        let mut h: u64 = seed;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        match *self {
            CacheKey::Vertex(p) => {
                mix(1);
                mix(p as u64);
            }
            CacheKey::Edge(p, q) => {
                mix(2);
                mix(p as u64);
                mix(q as u64);
            }
            CacheKey::Neighbors(p, offset, limit) => {
                mix(3);
                mix(p as u64);
                mix(offset);
                mix(limit as u64);
            }
            CacheKey::Clustering(p, q) => {
                mix(4);
                mix(p as u64);
                mix(q as u64);
            }
            CacheKey::Scatter(offset, limit) => {
                mix(5);
                mix(offset);
                mix(limit as u64);
            }
        }
        h
    }
}

/// One arena slot: key + body + recency-list links.
struct Slot {
    key: CacheKey,
    value: Arc<String>,
    prev: usize,
    next: usize,
}

/// One shard: map + recency list over a fixed-capacity arena.
struct LruShard {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    /// Most-recently-used slot, or NIL when empty.
    head: usize,
    /// Least-recently-used slot (eviction victim), or NIL when empty.
    tail: usize,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Unlink slot `i` from the recency list.
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Link slot `i` at the head (most-recent position).
    fn link_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<Arc<String>> {
        let i = *self.map.get(key)?;
        self.unlink(i);
        self.link_front(i);
        Some(Arc::clone(&self.slots[i].value))
    }

    /// Insert (or refresh) a value. Returns whether an entry was evicted.
    fn insert(&mut self, key: CacheKey, value: Arc<String>) -> bool {
        if let Some(&i) = self.map.get(&key) {
            // Answers are immutable, so a re-insert carries the same
            // body; just refresh recency.
            self.slots[i].value = value;
            self.unlink(i);
            self.link_front(i);
            return false;
        }
        if self.slots.len() < self.capacity {
            let i = self.slots.len();
            self.slots.push(Slot {
                key: key.clone(),
                value,
                prev: NIL,
                next: NIL,
            });
            self.map.insert(key, i);
            self.link_front(i);
            return false;
        }
        // Full: recycle the least-recently-used slot in place.
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "capacity > 0 and full implies a tail");
        self.unlink(victim);
        let old_key = std::mem::replace(&mut self.slots[victim].key, key.clone());
        self.map.remove(&old_key);
        self.slots[victim].value = value;
        self.map.insert(key, victim);
        self.link_front(victim);
        true
    }

    fn len(&self) -> usize {
        self.slots.len()
    }

    /// Entries in recency order, most-recently-used first.
    fn entries_mru(&self) -> Vec<(CacheKey, Arc<String>)> {
        let mut out = Vec::with_capacity(self.slots.len());
        let mut i = self.head;
        while i != NIL {
            let s = &self.slots[i];
            out.push((s.key.clone(), Arc::clone(&s.value)));
            i = s.next;
        }
        out
    }
}

/// Sharded, bounded LRU cache. See the module docs for the design;
/// construction resolves all metric handles once so the hot path never
/// touches the registry lock.
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    /// Shard-hash seed; defaults to [`DEFAULT_HASH_SEED`], replaced by a
    /// hash of the canonical expression for expression servers.
    seed: u64,
    // Exact per-instance tallies (test observability)…
    local_hits: AtomicU64,
    local_misses: AtomicU64,
    local_evictions: AtomicU64,
    // …mirrored into the process-wide registry for `/metrics`.
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    hit_rate_pct: Arc<Gauge>,
    entries_gauge: Arc<Gauge>,
}

impl ShardedCache {
    /// Build a cache with `entries` total capacity spread over `shards`
    /// shards (both forced ≥ 1; per-shard capacity is rounded up so the
    /// total is never *below* the request).
    pub fn new(entries: usize, shards: usize) -> Self {
        Self::with_seed(entries, shards, DEFAULT_HASH_SEED)
    }

    /// [`ShardedCache::new`] with an explicit shard-hash seed. Expression
    /// servers pass an FNV hash of the canonicalised expression, making
    /// every cache key implicitly expression-qualified.
    pub fn with_seed(entries: usize, shards: usize, seed: u64) -> Self {
        let shards = shards.max(1);
        let per_shard = entries.max(1).div_ceil(shards);
        let obs = bikron_obs::global();
        ShardedCache {
            shards: (0..shards)
                .map(|_| Mutex::new(LruShard::new(per_shard)))
                .collect(),
            seed,
            local_hits: AtomicU64::new(0),
            local_misses: AtomicU64::new(0),
            local_evictions: AtomicU64::new(0),
            hits: obs.counter("serve.cache.hits"),
            misses: obs.counter("serve.cache.misses"),
            evictions: obs.counter("serve.cache.evictions"),
            hit_rate_pct: obs.gauge("serve.cache.hit_rate_pct"),
            entries_gauge: obs.gauge("serve.cache.entries"),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<LruShard> {
        &self.shards[(key.shard_hash(self.seed) % self.shards.len() as u64) as usize]
    }

    /// Look up a cached body, recording hit/miss and refreshing the
    /// derived hit-rate gauge.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<String>> {
        let found = self.shard_for(key).lock().unwrap().get(key);
        if found.is_some() {
            self.local_hits.fetch_add(1, Ordering::Relaxed);
            self.hits.inc();
        } else {
            self.local_misses.fetch_add(1, Ordering::Relaxed);
            self.misses.inc();
        }
        let (h, m) = (self.local_hits(), self.local_misses());
        self.hit_rate_pct.set(h * 100 / (h + m).max(1));
        found
    }

    /// Cache a freshly-computed body.
    pub fn insert(&self, key: CacheKey, value: Arc<String>) {
        let evicted = self.shard_for(&key).lock().unwrap().insert(key, value);
        if evicted {
            self.local_evictions.fetch_add(1, Ordering::Relaxed);
            self.evictions.inc();
        }
        self.entries_gauge.set(self.len() as u64);
    }

    /// Current number of cached entries, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total configured capacity (shards × per-shard entries).
    pub fn capacity(&self) -> usize {
        self.shards.len() * self.shards[0].lock().unwrap().capacity
    }

    /// Exact hit count for *this* cache instance (global counters are
    /// shared across every instance in the process).
    pub fn local_hits(&self) -> u64 {
        self.local_hits.load(Ordering::Relaxed)
    }

    /// Exact miss count for this cache instance.
    pub fn local_misses(&self) -> u64 {
        self.local_misses.load(Ordering::Relaxed)
    }

    /// Exact eviction count for this cache instance.
    pub fn local_evictions(&self) -> u64 {
        self.local_evictions.load(Ordering::Relaxed)
    }

    /// Harvest up to `k` of the hottest entries, globally most-recent
    /// first (approximated by a round-robin merge of the per-shard MRU
    /// lists — recency is only tracked within a shard). The result is
    /// what a snapshot persists; feed it back through
    /// [`ShardedCache::restore`] to reproduce the working set.
    pub fn hottest(&self, k: usize) -> Vec<(CacheKey, Arc<String>)> {
        let per_shard: Vec<Vec<(CacheKey, Arc<String>)>> = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().entries_mru())
            .collect();
        let mut out = Vec::new();
        let mut depth = 0;
        while out.len() < k {
            let mut any = false;
            for shard in &per_shard {
                if let Some(e) = shard.get(depth) {
                    any = true;
                    out.push(e.clone());
                    if out.len() == k {
                        break;
                    }
                }
            }
            if !any {
                break;
            }
            depth += 1;
        }
        out
    }

    /// Re-insert snapshot entries (hottest first, as produced by
    /// [`ShardedCache::hottest`]). Insertion runs coldest-first so the
    /// first entry of the slice ends up most recently used. Restoration
    /// does not count as traffic: hit/miss/eviction counters are left
    /// untouched; only the entries gauge is refreshed. Returns the number
    /// of entries offered to the shards (capacity may retain fewer).
    pub fn restore(&self, entries: Vec<(CacheKey, Arc<String>)>) -> usize {
        let n = entries.len();
        for (key, value) in entries.into_iter().rev() {
            self.shard_for(&key).lock().unwrap().insert(key, value);
        }
        self.entries_gauge.set(self.len() as u64);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Arc<String> {
        Arc::new(s.to_string())
    }

    #[test]
    fn get_after_put_returns_the_value() {
        let c = ShardedCache::new(64, 4);
        assert!(c.get(&CacheKey::Vertex(7)).is_none());
        c.insert(CacheKey::Vertex(7), body("seven"));
        assert_eq!(c.get(&CacheKey::Vertex(7)).unwrap().as_str(), "seven");
        assert_eq!(c.local_hits(), 1);
        assert_eq!(c.local_misses(), 1);
    }

    #[test]
    fn distinct_key_kinds_do_not_collide() {
        let c = ShardedCache::new(64, 4);
        c.insert(CacheKey::Vertex(1), body("v"));
        c.insert(CacheKey::Edge(1, 1), body("e"));
        c.insert(CacheKey::Neighbors(1, 1, 1), body("n"));
        c.insert(CacheKey::Scatter(1, 1), body("s"));
        assert_eq!(c.get(&CacheKey::Vertex(1)).unwrap().as_str(), "v");
        assert_eq!(c.get(&CacheKey::Edge(1, 1)).unwrap().as_str(), "e");
        assert_eq!(c.get(&CacheKey::Neighbors(1, 1, 1)).unwrap().as_str(), "n");
        assert_eq!(c.get(&CacheKey::Scatter(1, 1)).unwrap().as_str(), "s");
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_a_shard() {
        // Single shard of 2: inserting a third key must evict the LRU.
        let c = ShardedCache::new(2, 1);
        c.insert(CacheKey::Vertex(1), body("1"));
        c.insert(CacheKey::Vertex(2), body("2"));
        // Touch 1 so 2 becomes LRU.
        assert!(c.get(&CacheKey::Vertex(1)).is_some());
        c.insert(CacheKey::Vertex(3), body("3"));
        assert_eq!(c.local_evictions(), 1);
        assert!(c.get(&CacheKey::Vertex(1)).is_some(), "recent key survives");
        assert!(c.get(&CacheKey::Vertex(2)).is_none(), "LRU key evicted");
        assert!(c.get(&CacheKey::Vertex(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_eviction() {
        let c = ShardedCache::new(2, 1);
        c.insert(CacheKey::Vertex(1), body("1"));
        c.insert(CacheKey::Vertex(2), body("2"));
        c.insert(CacheKey::Vertex(1), body("1")); // refresh, 2 is now LRU
        c.insert(CacheKey::Vertex(3), body("3"));
        assert!(c.get(&CacheKey::Vertex(1)).is_some());
        assert!(c.get(&CacheKey::Vertex(2)).is_none());
        assert_eq!(c.local_evictions(), 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let c = ShardedCache::new(16, 4);
        for p in 0..1000 {
            c.insert(CacheKey::Vertex(p), body("x"));
        }
        assert!(c.len() <= c.capacity());
        assert!(c.capacity() >= 16);
    }

    #[test]
    fn hottest_then_restore_reproduces_the_working_set() {
        let cache = ShardedCache::new(16, 4);
        for p in 0..10usize {
            cache.insert(CacheKey::Vertex(p), body(&format!("v{p}")));
        }
        // Touch a few keys so recency differs from insertion order.
        cache.get(&CacheKey::Vertex(2));
        cache.get(&CacheKey::Vertex(7));

        let hot = cache.hottest(usize::MAX);
        assert_eq!(hot.len(), cache.len());

        let restored = ShardedCache::new(16, 4);
        assert_eq!(restored.restore(hot.clone()), hot.len());
        assert_eq!(restored.len(), cache.len());
        for (key, val) in &hot {
            assert_eq!(restored.get(key).as_deref(), Some(&**val));
        }
        // Restoration itself must not count as traffic.
        assert_eq!(restored.local_misses(), 0);
    }

    #[test]
    fn hottest_truncates_and_leads_with_recent_entries() {
        // One shard so recency order is exact.
        let cache = ShardedCache::new(8, 1);
        for p in 0..5usize {
            cache.insert(CacheKey::Vertex(p), body("x"));
        }
        cache.get(&CacheKey::Vertex(0));
        let hot = cache.hottest(2);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, CacheKey::Vertex(0));
        assert_eq!(hot[1].0, CacheKey::Vertex(4));
    }

    #[test]
    fn hit_rate_gauge_tracks_ratio() {
        let c = ShardedCache::new(8, 1);
        c.insert(CacheKey::Vertex(1), body("1"));
        for _ in 0..3 {
            c.get(&CacheKey::Vertex(1));
        }
        c.get(&CacheKey::Vertex(99));
        // 3 hits, 1 miss → 75%.
        assert_eq!(
            c.local_hits() * 100 / (c.local_hits() + c.local_misses()),
            75
        );
    }
}
