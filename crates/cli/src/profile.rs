//! `bikron profile URL`: fetch a sampled CPU profile from a running
//! `bikron serve` (or `bikron router`) via `GET /v1/admin/profile` and
//! render the hottest frames as a top-table — self and cumulative
//! sample shares per phase path, sorted by self time. The admin
//! endpoint is token-gated, so `--token` is required in practice.
//!
//! With `--seconds N` the server samples a fresh N-second window before
//! answering; the default (0) returns the cumulative profile since the
//! sampler started. Everything except the socket I/O is pure
//! (`parse_profile`, `render_top`), so decoding and layout are
//! unit-testable without a server. JSON decoding uses the workspace's
//! shared reader ([`bikron_obs::parse_json`]).

use std::collections::BTreeMap;

use bikron_obs::parse_json;
use bikron_obs::profile::{frame_totals, PROFILE_SCHEMA};

use crate::monitor::{http_get, parse_host_port};

/// Default number of frames rendered.
pub const DEFAULT_TOP: usize = 20;

/// Parsed `bikron profile` invocation.
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Server host.
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Sampling window the server should collect (0 = cumulative).
    pub seconds: u64,
    /// How many frames to render (hottest first).
    pub top: usize,
    /// Admin token for the gated endpoint.
    pub token: Option<String>,
}

impl ProfileConfig {
    /// Parse `URL [--seconds N] [--top K] [--token TOKEN]`.
    pub fn parse(args: &[String]) -> Result<ProfileConfig, String> {
        let mut url: Option<String> = None;
        let mut seconds = 0u64;
        let mut top = DEFAULT_TOP;
        let mut token = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seconds" | "--top" | "--token" => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("profile: {} requires a value", args[i]))?;
                    match args[i].as_str() {
                        "--token" => token = Some(v.clone()),
                        flag => {
                            let n: u64 = v
                                .parse()
                                .map_err(|e| format!("profile: bad {flag} {v:?}: {e}"))?;
                            if flag == "--seconds" {
                                seconds = n;
                            } else {
                                top = n as usize;
                            }
                        }
                    }
                    i += 2;
                }
                other if url.is_none() && !other.starts_with("--") => {
                    url = Some(other.to_string());
                    i += 1;
                }
                other => return Err(format!("profile: unknown argument {other:?}")),
            }
        }
        let url = url.ok_or("profile requires a server URL (e.g. http://127.0.0.1:7474)")?;
        let (host, port) = parse_host_port(&url)?;
        Ok(ProfileConfig {
            host,
            port,
            seconds,
            top,
            token,
        })
    }
}

/// The decoded `/v1/admin/profile` payload.
#[derive(Debug, Clone)]
pub struct ProfileDump {
    /// Sampler rate in Hz.
    pub hz: u64,
    /// The window the server sampled (0 = cumulative since start).
    pub seconds: u64,
    /// Stack samples in the window.
    pub samples: u64,
    /// Samples lost to stack-table capacity.
    pub dropped: u64,
    /// Sweeps where no phase was open on any thread.
    pub idle: u64,
    /// Collapsed stack (`a;b;c`) → sample count.
    pub stacks: BTreeMap<String, u64>,
}

/// Decode the `bikron-profile/1` JSON payload.
pub fn parse_profile(body: &str) -> Result<ProfileDump, String> {
    let root = parse_json(body).map_err(|e| e.to_string())?;
    match root.str_of("schema") {
        Some(s) if s == PROFILE_SCHEMA => {}
        other => return Err(format!("unexpected profile schema {other:?}")),
    }
    let field = |key: &str| {
        root.num_of(key)
            .ok_or_else(|| format!("profile payload is missing integer field {key:?}"))
    };
    let mut stacks = BTreeMap::new();
    if let Some(obj) = root.get("stacks").and_then(|v| v.as_object()) {
        for (stack, count) in obj {
            match count {
                bikron_obs::JsonValue::Num(n) => {
                    stacks.insert(stack.clone(), *n);
                }
                _ => return Err(format!("stack {stack:?} has a non-integer count")),
            }
        }
    }
    Ok(ProfileDump {
        hz: field("hz")?,
        seconds: field("seconds")?,
        samples: field("samples")?,
        dropped: field("dropped_samples")?,
        idle: field("idle_samples")?,
        stacks,
    })
}

/// Integer-tenths percentage of `part` in `whole` (`"12.5"` for 1/8).
fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "0.0".to_string();
    }
    let tenths = part * 1000 / whole;
    format!("{}.{}", tenths / 10, tenths % 10)
}

/// Render the top-table: hottest frames by self samples, one row per
/// phase path, `SELF%`/`TOTAL%` relative to all stack samples. Pure —
/// no I/O. Columns are whitespace-separated with the path last, so
/// `awk '{print $1, $4}'` works.
pub fn render_top(dump: &ProfileDump, top: usize) -> String {
    let mut out = String::new();
    let window = if dump.seconds == 0 {
        "cumulative".to_string()
    } else {
        format!("{}s window", dump.seconds)
    };
    out.push_str(&format!(
        "profile @ {} Hz ({window}): {} samples across {} stacks, {} dropped, {} idle\n",
        dump.hz,
        dump.samples,
        dump.stacks.len(),
        dump.dropped,
        dump.idle,
    ));
    if dump.dropped > 0 {
        out.push_str("!! LOSSY PROFILE — the stack table overflowed; shares are undercounts\n");
    }
    if dump.samples == 0 {
        out.push_str("no samples (yet) — is the server idle? try --seconds 3 under load\n");
        return out;
    }
    let frames = frame_totals(&dump.stacks);
    let mut rows: Vec<(&String, u64, u64)> = frames
        .iter()
        .map(|(path, stat)| (path, stat.self_samples, stat.total))
        .collect();
    // Hottest self time first; total then path break ties stably.
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(b.2.cmp(&a.2)).then(a.0.cmp(b.0)));
    out.push_str(&format!(
        "\n{:>6} {:>6} {:>8}  {}\n",
        "SELF%", "TOTAL%", "SAMPLES", "STACK"
    ));
    for (path, self_samples, total) in rows.iter().take(top) {
        out.push_str(&format!(
            "{:>6} {:>6} {:>8}  {}\n",
            pct(*self_samples, dump.samples),
            pct(*total, dump.samples),
            self_samples,
            path,
        ));
    }
    if rows.len() > top {
        out.push_str(&format!(
            "({} more frame(s); raise --top to see them)\n",
            rows.len() - top
        ));
    }
    out
}

/// Fetch, decode and render. Returns `Ok(false)` when the server refused
/// the admin endpoint (bad/missing token) or has no sampler running.
pub fn run(
    config: &ProfileConfig,
    out: &mut impl std::io::Write,
) -> Result<bool, Box<dyn std::error::Error>> {
    let mut path = format!("/v1/admin/profile?seconds={}", config.seconds);
    if let Some(token) = &config.token {
        path.push_str("&token=");
        path.push_str(token);
    }
    let (status, body) = http_get(&config.host, config.port, &path)?;
    if status == 401 || status == 403 {
        writeln!(
            out,
            "profile: server refused the admin endpoint ({status}) — pass --token TOKEN"
        )?;
        return Ok(false);
    }
    if status == 409 {
        writeln!(
            out,
            "profile: profiling is disabled on this server — restart it with --profile-hz N"
        )?;
        return Ok(false);
    }
    if status != 200 {
        return Err(format!("GET /v1/admin/profile returned {status}: {body}").into());
    }
    let dump = parse_profile(&body).map_err(|e| format!("parse /v1/admin/profile: {e}"))?;
    write!(out, "{}", render_top(&dump, config.top))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let cfg = ProfileConfig::parse(&[
            "http://h:7475".into(),
            "--seconds".into(),
            "3".into(),
            "--top".into(),
            "2".into(),
            "--token".into(),
            "ci".into(),
        ])
        .unwrap();
        assert_eq!((cfg.host.as_str(), cfg.port), ("h", 7475));
        assert_eq!(cfg.seconds, 3);
        assert_eq!(cfg.top, 2);
        assert_eq!(cfg.token.as_deref(), Some("ci"));
        // Defaults: cumulative window, DEFAULT_TOP frames.
        let cfg = ProfileConfig::parse(&["h:1".into()]).unwrap();
        assert_eq!(cfg.seconds, 0);
        assert_eq!(cfg.top, DEFAULT_TOP);
        assert!(ProfileConfig::parse(&[]).is_err());
        assert!(ProfileConfig::parse(&["h:1".into(), "--frob".into()]).is_err());
        assert!(ProfileConfig::parse(&["h:1".into(), "--seconds".into(), "x".into()]).is_err());
    }

    fn sample_payload() -> &'static str {
        r#"{
  "schema": "bikron-profile/1",
  "hz": 99,
  "seconds": 3,
  "samples": 200,
  "dropped_samples": 0,
  "idle_samples": 40,
  "stacks": {
    "serve;accept": 40,
    "serve;evaluate": 100,
    "serve;evaluate;cache_lookup": 20,
    "serve;evaluate;serialize": 30,
    "serve;write": 10
  }
}
"#
    }

    #[test]
    fn payload_decodes_and_renders_a_top_table() {
        let dump = parse_profile(sample_payload()).unwrap();
        assert_eq!((dump.hz, dump.seconds), (99, 3));
        assert_eq!(dump.samples, 200);
        assert_eq!(dump.stacks.len(), 5);

        let text = render_top(&dump, 10);
        assert!(text.contains("profile @ 99 Hz (3s window)"), "{text}");
        assert!(text.contains("200 samples across 5 stacks"), "{text}");
        let lines: Vec<&str> = text.lines().collect();
        let header = lines
            .iter()
            .position(|l| l.contains("SELF%") && l.contains("STACK"))
            .expect("header row");
        // Hottest self frame first: evaluate has 100 self samples (its
        // children's 50 count toward its total only).
        let first = lines[header + 1];
        assert!(first.ends_with("serve;evaluate"), "{text}");
        let cols: Vec<&str> = first.split_whitespace().collect();
        assert_eq!(cols[0], "50.0", "{text}"); // 100/200 self
        assert_eq!(cols[1], "75.0", "{text}"); // 150/200 cumulative
        assert_eq!(cols[2], "100", "{text}");
        // The root frame has zero self time but 100% total.
        let root = lines
            .iter()
            .find(|l| l.split_whitespace().last() == Some("serve"))
            .expect("root row");
        let cols: Vec<&str> = root.split_whitespace().collect();
        assert_eq!((cols[0], cols[1]), ("0.0", "100.0"), "{text}");
        assert!(!text.contains("LOSSY"), "{text}");
    }

    #[test]
    fn drops_and_emptiness_are_called_out() {
        let mut dump = parse_profile(sample_payload()).unwrap();
        dump.dropped = 9;
        let text = render_top(&dump, 10);
        assert!(text.contains("LOSSY PROFILE"), "{text}");
        assert!(text.contains("9 dropped"), "{text}");

        let empty = ProfileDump {
            hz: 99,
            seconds: 0,
            samples: 0,
            dropped: 0,
            idle: 5,
            stacks: BTreeMap::new(),
        };
        let text = render_top(&empty, 10);
        assert!(text.contains("cumulative"), "{text}");
        assert!(text.contains("no samples (yet)"), "{text}");
    }

    #[test]
    fn top_limits_rendered_frames() {
        let dump = parse_profile(sample_payload()).unwrap();
        // 5 stacks expand to 6 frames (the shared "serve" root).
        let text = render_top(&dump, 2);
        assert!(text.contains("4 more frame(s)"), "{text}");
    }

    #[test]
    fn schema_and_type_errors_are_rejected() {
        assert!(parse_profile(r#"{"schema": "bikron-else/9"}"#).is_err());
        let bad = r#"{"schema": "bikron-profile/1", "hz": 99, "seconds": 0, "samples": 1,
                      "dropped_samples": 0, "idle_samples": 0, "stacks": {"a": "lots"}}"#;
        let err = parse_profile(bad).unwrap_err();
        assert!(err.contains("non-integer count"), "{err}");
        let missing = r#"{"schema": "bikron-profile/1", "hz": 99}"#;
        assert!(parse_profile(missing).unwrap_err().contains("seconds"));
    }
}
