//! The `bikron` command-line tool.
//!
//! ```text
//! bikron stats    A_SPEC B_SPEC MODE
//! bikron factor   SPEC
//! bikron generate A_SPEC B_SPEC MODE --out PREFIX [--parts N] [--annotate]
//! bikron validate A_SPEC B_SPEC MODE CLAIMED_GLOBAL_4CYCLES
//! bikron parts    A_SPEC B_SPEC MODE
//! ```
//!
//! `MODE` is `none` (`C = A ⊗ B`, Assump. 1(i)) or `loops-a`
//! (`C = (A+I_A) ⊗ B`, Assump. 1(ii)). See `bikron help` for factor specs.

use std::process::ExitCode;

use bikron_cli::commands;
use bikron_cli::{parse_factor, parse_mode};

const USAGE: &str = "\
bikron — bipartite Kronecker graphs with ground truth

USAGE:
  bikron stats    A_SPEC B_SPEC MODE
  bikron factor   SPEC
  bikron generate A_SPEC B_SPEC MODE --out PREFIX [--parts N] [--annotate]
  bikron validate A_SPEC B_SPEC MODE CLAIMED_COUNT
  bikron parts    A_SPEC B_SPEC MODE
  bikron verify-file FILE.tsv

GLOBAL OPTIONS (after the positional arguments):
  --metrics-out FILE   write a bikron-obs/1 JSON metrics report (phase
                       timers, counters, peak worker gauges) after the
                       command completes

MODE: none | loops-a

FACTOR SPECS:
  path:N cycle:N star:N complete:N kmn:MxN crown:N hypercube:D
  grid:MxN wheel:N petersen unicode[:SEED] powerlaw:SEED
  file:PATH konect:PATH
";

fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_out = match args.iter().position(|x| x == "--metrics-out") {
        Some(i) => Some(
            args.get(i + 1)
                .ok_or("--metrics-out requires a FILE argument")?
                .clone(),
        ),
        None => None,
    };
    let result = dispatch(&args);
    if let Some(path) = metrics_out {
        if result.is_ok() {
            write_metrics(&path, &args)?;
        }
    }
    result
}

/// Snapshot the global metrics registry and write the `bikron-obs/1`
/// report to `path`, stamping the invoking command line as metadata.
fn write_metrics(path: &str, args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut report = bikron_obs::global().snapshot();
    report.set_meta("tool", "bikron-cli");
    report.set_meta("command", args.join(" "));
    report.write_to_file(std::path::Path::new(path))?;
    eprintln!("metrics written to {path}");
    Ok(())
}

fn dispatch(args: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let mut out = std::io::stdout().lock();
    match args.first().map(String::as_str) {
        Some("stats") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            commands::stats(&a, &b, parse_mode(&args[3])?, &mut out)?;
            Ok(true)
        }
        Some("factor") if args.len() >= 2 => {
            let g = parse_factor(&args[1])?;
            commands::factor_report(&g, &mut out)?;
            Ok(true)
        }
        Some("generate") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            let mode = parse_mode(&args[3])?;
            let flag_val = |name: &str| {
                args.iter()
                    .position(|x| x == name)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let prefix = flag_val("--out").ok_or("generate requires --out PREFIX")?;
            let parts: usize = flag_val("--parts").map_or(Ok(1), |s| s.parse())?;
            let annotate = args.iter().any(|x| x == "--annotate");
            let total = commands::generate(&a, &b, mode, parts, &prefix, annotate, &mut out)?;
            println!("total: {total} edges");
            Ok(true)
        }
        Some("validate") if args.len() >= 5 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            let mode = parse_mode(&args[3])?;
            let claimed: u64 = args[4].parse()?;
            commands::validate(&a, &b, mode, claimed, &mut out)
        }
        Some("parts") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            commands::parts(&a, &b, parse_mode(&args[3])?, &mut out)?;
            Ok(true)
        }
        Some("verify-file") if args.len() >= 2 => {
            let tsv = std::fs::read_to_string(&args[1])?;
            commands::verify_file(&tsv, &mut out)
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(true)
        }
        _ => {
            eprintln!("{USAGE}");
            Err("bad arguments".into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2), // validation mismatch
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
