//! The `bikron` command-line tool.
//!
//! ```text
//! bikron stats    A_SPEC B_SPEC MODE
//! bikron factor   SPEC
//! bikron generate A_SPEC B_SPEC MODE --out PREFIX [--parts N] [--annotate]
//! bikron validate A_SPEC B_SPEC MODE CLAIMED_GLOBAL_4CYCLES
//! bikron parts    A_SPEC B_SPEC MODE
//! bikron perfdiff BASELINE.json CANDIDATE.json [--threshold PCT] [--warn-only] [--watch P1,P2]
//! ```
//!
//! `MODE` is `none` (`C = A ⊗ B`, Assump. 1(i)) or `loops-a`
//! (`C = (A+I_A) ⊗ B`, Assump. 1(ii)). See `bikron help` for factor specs.

use std::process::ExitCode;

use bikron_cli::{commands, split_global_flags, GlobalOpts, PerfDiffConfig};
use bikron_cli::{parse_factor, parse_mode, perfdiff_files};

const USAGE: &str = "\
bikron — bipartite Kronecker graphs with ground truth

USAGE:
  bikron stats    A_SPEC B_SPEC MODE
  bikron factor   SPEC
  bikron generate A_SPEC B_SPEC MODE --out PREFIX [--parts N] [--annotate]
  bikron validate A_SPEC B_SPEC MODE CLAIMED_COUNT
  bikron parts    A_SPEC B_SPEC MODE
  bikron verify-file FILE.tsv
  bikron perfdiff BASELINE.json CANDIDATE.json
                  [--threshold PCT] [--warn-only] [--watch PHASE[,PHASE...]]

GLOBAL OPTIONS (any position, --flag FILE or --flag=FILE, last wins):
  --metrics-out FILE   write a bikron-obs/2 JSON metrics report (phase
                       timers, counters, gauges, histograms) after the
                       command completes
  --trace-out FILE     record phase spans and write a Chrome trace_event
                       JSON file, viewable in chrome://tracing or
                       https://ui.perfetto.dev

PERFDIFF:
  Compares two metrics reports (schema v1 or v2) and exits non-zero when
  a watched phase's total wall-clock regressed beyond the threshold
  (default 25%). Counters and histogram tails are shown as context.

MODE: none | loops-a

FACTOR SPECS:
  path:N cycle:N star:N complete:N kmn:MxN crown:N hypercube:D
  grid:MxN wheel:N petersen unicode[:SEED] powerlaw:SEED
  file:PATH konect:PATH
";

fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, opts) = split_global_flags(&raw)?;
    if opts.trace_out.is_some() {
        bikron_obs::trace::tracer().enable();
    }
    let result = dispatch(&args);
    if result.is_ok() {
        write_observability(&opts, &raw)?;
    }
    result
}

/// Write the metrics report and/or Chrome trace the global flags asked
/// for, stamping the invoking command line as metadata.
fn write_observability(
    opts: &GlobalOpts,
    raw_args: &[String],
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = &opts.metrics_out {
        let mut report = bikron_obs::global().snapshot();
        report.set_meta("tool", "bikron-cli");
        report.set_meta("command", raw_args.join(" "));
        report.write_to_file(std::path::Path::new(path))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = &opts.trace_out {
        let tracer = bikron_obs::trace::tracer();
        tracer.write_chrome_trace(std::path::Path::new(path))?;
        eprintln!(
            "trace written to {path} ({} span(s), {} dropped) — open in chrome://tracing or ui.perfetto.dev",
            tracer.spans().len(),
            tracer.dropped(),
        );
    }
    Ok(())
}

/// Parse `perfdiff`'s own flags from its argument tail.
fn parse_perfdiff_config(args: &[String]) -> Result<PerfDiffConfig, Box<dyn std::error::Error>> {
    let mut cfg = PerfDiffConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--warn-only" => i += 1,
            "--threshold" | "--watch" => i += 2,
            other => return Err(format!("perfdiff: unknown argument {other:?}").into()),
        }
    }
    if args.iter().any(|a| a == "--warn-only") {
        cfg.warn_only = true;
    }
    let flag_val = |name: &str| {
        args.iter()
            .rposition(|x| x == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(t) = flag_val("--threshold") {
        cfg.threshold_pct = t
            .parse()
            .map_err(|e| format!("perfdiff: bad --threshold {t:?}: {e}"))?;
    }
    if let Some(w) = flag_val("--watch") {
        cfg.watch = Some(w.split(',').map(|s| s.trim().to_string()).collect());
    }
    Ok(cfg)
}

fn dispatch(args: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let mut out = std::io::stdout().lock();
    match args.first().map(String::as_str) {
        Some("stats") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            commands::stats(&a, &b, parse_mode(&args[3])?, &mut out)?;
            Ok(true)
        }
        Some("factor") if args.len() >= 2 => {
            let g = parse_factor(&args[1])?;
            commands::factor_report(&g, &mut out)?;
            Ok(true)
        }
        Some("generate") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            let mode = parse_mode(&args[3])?;
            let flag_val = |name: &str| {
                args.iter()
                    .position(|x| x == name)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let prefix = flag_val("--out").ok_or("generate requires --out PREFIX")?;
            let parts: usize = flag_val("--parts").map_or(Ok(1), |s| s.parse())?;
            let annotate = args.iter().any(|x| x == "--annotate");
            let total = commands::generate(&a, &b, mode, parts, &prefix, annotate, &mut out)?;
            println!("total: {total} edges");
            Ok(true)
        }
        Some("validate") if args.len() >= 5 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            let mode = parse_mode(&args[3])?;
            let claimed: u64 = args[4].parse()?;
            commands::validate(&a, &b, mode, claimed, &mut out)
        }
        Some("parts") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            commands::parts(&a, &b, parse_mode(&args[3])?, &mut out)?;
            Ok(true)
        }
        Some("verify-file") if args.len() >= 2 => {
            let tsv = std::fs::read_to_string(&args[1])?;
            commands::verify_file(&tsv, &mut out)
        }
        Some("perfdiff") if args.len() >= 3 => {
            let cfg = parse_perfdiff_config(&args[3..])?;
            perfdiff_files(&args[1], &args[2], &cfg, &mut out)
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(true)
        }
        _ => {
            eprintln!("{USAGE}");
            Err("bad arguments".into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2), // validation mismatch / perf regression
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
