//! The `bikron` command-line tool.
//!
//! ```text
//! bikron stats    A_SPEC B_SPEC MODE
//! bikron factor   SPEC
//! bikron generate A_SPEC B_SPEC MODE --out PREFIX [--parts N] [--annotate]
//! bikron validate A_SPEC B_SPEC MODE CLAIMED_GLOBAL_4CYCLES
//! bikron parts    A_SPEC B_SPEC MODE
//! bikron serve    A_SPEC B_SPEC MODE [--addr HOST:PORT] [--threads N] [--queue N] [--admin-token TOK]
//! bikron serve    --expr "EXPR" NAME=SPEC... [same flags]
//! bikron router   --shards URL,URL,... [--addr HOST:PORT] [--replicate-stats]
//! bikron promcheck FILE
//! bikron monitor  URL [--interval SEC] [--once] [--top K]
//! bikron trace    URL [--min-ms N] [--top K] [--token TOKEN]
//! bikron profile  URL [--seconds N] [--top K] [--token TOKEN]
//! bikron perfdiff BASELINE.json CANDIDATE.json [--threshold PCT] [--warn-only] [--watch P1,P2]
//! bikron perfdiff --profile BASE.folded CAND.folded [--threshold PCT] [--warn-only] [--watch F1,F2]
//! bikron --version
//! ```
//!
//! `MODE` is `none` (`C = A ⊗ B`, Assump. 1(i)) or `loops-a`
//! (`C = (A+I_A) ⊗ B`, Assump. 1(ii)). See `bikron help` for factor specs.

use std::process::ExitCode;

use bikron_cli::{commands, split_global_flags, Outcome, PerfDiffConfig};
use bikron_cli::{parse_factor, parse_mode, perfdiff_files, write_observability};

const USAGE: &str = "\
bikron — bipartite Kronecker graphs with ground truth

USAGE:
  bikron stats    A_SPEC B_SPEC MODE
  bikron factor   SPEC
  bikron generate A_SPEC B_SPEC MODE --out PREFIX [--parts N] [--annotate]
  bikron validate A_SPEC B_SPEC MODE CLAIMED_COUNT
  bikron parts    A_SPEC B_SPEC MODE
  bikron verify-file FILE.tsv
  bikron serve    A_SPEC B_SPEC MODE [--addr HOST:PORT] [--threads N]
                  [--queue N] [--admin-token TOKEN] [--cache-entries N]
                  [--cache-shards N] [--batch-max K] [--access-log FILE]
                  [--log-sample N] [--slo-p99-ms MS] [--slo-err-pct PCT]
                  [--trace-slow-ms MS] [--trace-sample N]
                  [--snapshot-in FILE] [--snapshot-out FILE]
                  [--snapshot-lenient]
  bikron serve    --expr \"EXPR\" NAME=SPEC... [same flags as serve]
  bikron replay   ACCESS_LOG URL [--speed X] [--max-rps N] [--count K]
                  [--seed N] [--label NAME] [--out FILE] [--dry-run]
  bikron router   --shards URL[,URL...] [--addr HOST:PORT] [--threads N]
                  [--queue N] [--batch-max K] [--replicate-stats]
                  [--upstream-timeout-ms MS] [--admin-token TOKEN]
  bikron promcheck FILE
  bikron monitor  URL [--interval SEC] [--once] [--top K]
  bikron trace    URL [--min-ms N] [--top K] [--token TOKEN]
  bikron profile  URL [--seconds N] [--top K] [--token TOKEN]
  bikron perfdiff BASELINE.json CANDIDATE.json
                  [--threshold PCT] [--warn-only] [--watch PHASE[,PHASE...]]
  bikron perfdiff --profile BASE.folded CAND.folded
                  [--threshold PCT] [--warn-only] [--watch FRAME[,FRAME...]]
  bikron --version | -V

GLOBAL OPTIONS (any position, --flag VALUE or --flag=VALUE, last wins):
  --metrics-out FILE   write a bikron-obs/4 JSON metrics report (phase
                       timers, counters, gauges, histograms, rolling
                       windows, sampled profile) after the command
                       completes
  --trace-out FILE     record phase spans and write a Chrome trace_event
                       JSON file, viewable in chrome://tracing or
                       https://ui.perfetto.dev
  --profile-out FILE   write the sampled CPU profile as a folded
                       flamegraph file on exit (feed to flamegraph.pl or
                       speedscope; implies sampling at the default rate)
  --profile-hz N       wall-clock sampling rate. serve and router sample
                       at 99 Hz by default; batch commands only sample
                       when --profile-out or --profile-hz is given.
                       0 disables sampling everywhere

SERVE:
  Runs a long-lived HTTP/1.1 ground-truth query service over the factor
  graphs (default 127.0.0.1:7474). Endpoints: /v1/vertex/{p},
  /v1/edge/{p}/{q}, /v1/neighbors/{p}, POST /v1/batch (newline-delimited
  `vertex P` / `edge P Q` / `neighbors P [OFFSET [LIMIT]]` lines, up to
  --batch-max per request, answered as one JSON array), /v1/stats,
  /v1/edges/{part}/{parts}, /metrics, and /v1/shutdown (requires
  --admin-token). A sharded LRU result cache (--cache-entries, default
  65536; 0 disables) fronts the per-vertex/per-edge/neighbors answers —
  they are immutable ground truth, so cached entries never go stale.
  /metrics serves JSON (add ?format=prometheus for text exposition);
  /v1/health reports ok|degraded from rolling 1m/5m SLO windows
  (--slo-p99-ms, --slo-err-pct). --access-log FILE appends one JSON
  line per request (--log-sample N keeps every Nth per target).
  Stop with ctrl-c.

  Every request gets a trace id: an inbound W3C `traceparent` header is
  adopted (the server's root span joins the caller's trace), otherwise
  ids are minted. The id is echoed in the `x-bikron-trace-id` response
  header and embedded in error bodies. --trace-slow-ms MS additionally
  captures the full span tree of every request slower than MS
  (tail-based sampling); --trace-sample N head-samples 1-in-N requests.
  Captured traces are served by the token-gated GET /v1/admin/traces
  and rendered by `bikron trace`. A 99 Hz wall-clock sampler (see
  --profile-hz) attributes CPU time to request phases; the token-gated
  GET /v1/admin/profile serves the accumulated (or ?seconds=N windowed)
  profile as JSON or ?format=folded flamegraph stacks, rendered by
  `bikron profile`.

  With --expr, the server answers queries about an arbitrary Kronecker
  program instead of a single pair: EXPR is a chain of named factors
  joined by `⊗` (or `kron`/`*`), with `(NAME+I)` lifting one level by
  the identity and `NAME^{⊗k}` abbreviating a k-fold tower. Every name
  in EXPR must be bound by a NAME=SPEC argument. Expression servers add
  /v1/clustering/{p}/{q} (Thm 6), /v1/community?s0=..&s1=.. (Thm 7) and
  /v1/scatter/degree-squares, and report the canonicalised expression
  in /v1/stats. Example:
    bikron serve --expr \"(A+I)⊗B⊗C\" A=cycle:5 B=kmn:2x3 C=crown:3

ROUTER:
  Fronts a sharded serve cluster (default 127.0.0.1:7070). Start N shard
  processes over the SAME factors, each with --shard I/N, then point the
  router at them in shard order:
    bikron serve A B MODE --shard 0/3 --addr 127.0.0.1:7481 &
    bikron serve A B MODE --shard 1/3 --addr 127.0.0.1:7482 &
    bikron serve A B MODE --shard 2/3 --addr 127.0.0.1:7483 &
    bikron router --shards 127.0.0.1:7481,127.0.0.1:7482,127.0.0.1:7483
  Shard I owns product vertices [I*ceil(n/N), (I+1)*ceil(n/N)). Keyed
  reads relay to the owner byte-identically; POST /v1/batch is split per
  owning shard, fanned out concurrently, and reassembled in request
  order; /metrics aggregates every shard's report (shard{i}.* keys in
  JSON, shard=\"i\" labels in ?format=prometheus); /v1/health reports the
  worst shard verdict with a per-shard detail array. A dead shard yields
  503 (with Retry-After) only for its own key range after one retry on a
  fresh connection. --replicate-stats serves /v1/stats from a copy
  fetched at startup instead of proxying. At startup each shard must
  self-identify as shard I/N via /v1/health (catching a shuffled
  --shards list) and serve identical /v1/stats (catching mismatched
  factors).

SNAPSHOTS (bikron-snap/1):
  --snapshot-out FILE writes a versioned binary snapshot (factor CSRs,
  FactorStats, the /v1/stats body, and the hottest result-cache
  entries, each section checksummed) after a graceful shutdown.
  --snapshot-in FILE warm-starts from one: factor statistics are
  decoded instead of recomputed and the cache boots primed; /v1/stats
  reports \"snapshot\": \"warm\". A snapshot for a different expression,
  different factor graphs, a future schema version, or a corrupted
  file is rejected at boot — pass --snapshot-lenient to log the
  rejection and boot cold instead. Works with --shard I/N (restored
  cache entries are filtered to the shard's owned keys).

REPLAY:
  Re-issues a recorded access log (the JSON-lines file --access-log
  writes) against a live server — for cache warming after a deploy,
  capacity planning, or realistic benchmarking. Numeric path segments
  were normalised to {n} at record time; replay re-materialises them
  with seeded, deterministic vertex samples drawn from the target's
  /v1/stats vertex count. --speed X scales recorded inter-arrival
  gaps (2 = twice as fast; 0 = no pacing); --max-rps N caps the rate;
  --count K stops after K requests; --dry-run parses and plans
  without connecting. Reports replayed/skipped/error counts and
  p50/p99 latency, and with --out writes a BENCH_-style metrics
  report (replay.* keys).

PROMCHECK:
  Validates a Prometheus text-exposition file (e.g. a saved /metrics
  scrape) against the format rules this workspace emits; exits non-zero
  with a line-numbered error on the first violation. CI runs this over
  live single-node and cluster scrapes.

MONITOR:
  Polls URL/metrics every --interval seconds (default 2) and redraws a
  live dashboard: windowed + cumulative request rates, p50/p90/p99
  latency, status mix, cache hit-rate, in-flight requests, profile
  sample counts, dropped spans/log lines/profile samples (flagged when
  nonzero), hottest histograms (--top K). --once prints one
  machine-readable `key value` snapshot and exits.

TRACE:
  Fetches the span trees a server captured (see --trace-slow-ms /
  --trace-sample above) from GET /v1/admin/traces and renders each as
  an indented waterfall: accept → parse → evaluate (with cache /
  serialize / per-batch-item children and their hit/miss outcomes) →
  write. --min-ms N keeps only traces at least that slow; --top K
  limits how many are shown (newest first). The endpoint is gated by
  the server's --admin-token; pass it with --token.

PROFILE:
  Fetches a sampled CPU profile from the token-gated
  GET /v1/admin/profile (serve or router — the router profiles itself)
  and renders a top-table: self and cumulative sample share per phase
  path, hottest self time first. --seconds N asks the server to sample
  a fresh N-second window (max 30); the default 0 returns everything
  since the sampler started. Servers sample at 99 Hz unless started
  with --profile-hz 0. Add ?format=folded to the endpoint (e.g. via
  curl) for raw flamegraph-ready folded stacks.

PERFDIFF:
  Compares two metrics reports (schema v1 through v4) and exits
  non-zero when a watched phase's total wall-clock regressed beyond the
  threshold (default 25%). Counters and histogram tails are shown as
  context. With --profile, compares two folded-flamegraph files (from
  --profile-out or /v1/admin/profile?format=folded) by per-frame
  self-time *share* instead, so differently-long runs diff cleanly;
  a watched frame growing beyond the threshold (and by at least one
  percentage point) fails the gate.

MODE: none | loops-a

FACTOR SPECS:
  path:N cycle:N star:N complete:N kmn:MxN crown:N hypercube:D
  grid:MxN wheel:N petersen unicode[:SEED] powerlaw:SEED
  file:PATH konect:PATH
";

fn run() -> Result<bool, Box<dyn std::error::Error>> {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, opts) = split_global_flags(&raw)?;
    if opts.trace_out.is_some() {
        bikron_obs::trace::tracer().enable();
    }
    // Sampler lifecycle: long-running servers profile by default (the
    // publication path costs one atomic store per phase transition, and
    // nothing is rendered until someone scrapes /v1/admin/profile);
    // batch commands sample only when asked. --profile-hz 0 forces off
    // everywhere. The handle's Drop stops the thread after the
    // observability files (which read the accumulated table) are
    // written.
    let default_on = matches!(
        args.first().map(String::as_str),
        Some("serve") | Some("router")
    );
    let hz = opts.profile_hz.unwrap_or(if default_on || opts.profile_out.is_some() {
        bikron_obs::profile::DEFAULT_HZ
    } else {
        0
    });
    let _sampler = (hz > 0)
        .then(|| bikron_obs::profile::start_sampler(hz))
        .flatten();
    let result = dispatch(&args);
    // Write the report on the error path too (stamped `outcome: error`):
    // a failed run's timers and counters are debugging evidence, not
    // something to discard. An observability write failure must not mask
    // the command's own error.
    let outcome = if result.is_ok() {
        Outcome::Ok
    } else {
        Outcome::Error
    };
    match write_observability(&opts, &raw, outcome) {
        Ok(()) => result,
        Err(obs_err) => match result {
            Ok(_) => Err(obs_err),
            Err(e) => {
                eprintln!("warning: observability output failed: {obs_err}");
                Err(e)
            }
        },
    }
}

/// Parse `serve`'s flags from its argument tail.
fn parse_serve_config(
    args: &[String],
) -> Result<
    (
        bikron_serve::ServerConfig,
        bikron_serve::ServeOptions,
        commands::SnapshotOptions,
    ),
    Box<dyn std::error::Error>,
> {
    let mut config = bikron_serve::ServerConfig {
        addr: "127.0.0.1:7474".to_string(),
        ..bikron_serve::ServerConfig::default()
    };
    let mut options = bikron_serve::ServeOptions::default();
    let mut snapshot = commands::SnapshotOptions::default();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("serve: {} requires a value", args[i]))
        };
        let parse_num = |i: usize, what: &str| -> Result<usize, String> {
            need_value(i)?
                .parse()
                .map_err(|e| format!("serve: bad {what}: {e}"))
        };
        match args[i].as_str() {
            "--addr" => config.addr = need_value(i)?,
            "--threads" => config.threads = parse_num(i, "--threads")?,
            "--queue" => config.queue_capacity = parse_num(i, "--queue")?,
            "--admin-token" => options.admin_token = Some(need_value(i)?),
            "--cache-entries" => options.cache_entries = parse_num(i, "--cache-entries")?,
            "--cache-shards" => options.cache_shards = parse_num(i, "--cache-shards")?,
            "--batch-max" => options.batch_max = parse_num(i, "--batch-max")?,
            "--access-log" => options.access_log = Some(need_value(i)?),
            "--log-sample" => options.log_sample = parse_num(i, "--log-sample")? as u64,
            "--slo-p99-ms" => options.slo_p99_ms = parse_num(i, "--slo-p99-ms")? as u64,
            "--slo-err-pct" => options.slo_err_pct = parse_num(i, "--slo-err-pct")? as u64,
            "--trace-slow-ms" => options.trace_slow_ms = parse_num(i, "--trace-slow-ms")? as u64,
            "--trace-sample" => options.trace_sample = parse_num(i, "--trace-sample")? as u64,
            "--shard" => {
                let v = need_value(i)?;
                let (index, count) = v
                    .split_once('/')
                    .ok_or_else(|| format!("serve: --shard expects I/N, got {v:?}"))?;
                let index: usize = index
                    .parse()
                    .map_err(|e| format!("serve: bad --shard index: {e}"))?;
                let count: usize = count
                    .parse()
                    .map_err(|e| format!("serve: bad --shard count: {e}"))?;
                options.shard = Some((index, count));
            }
            "--snapshot-in" => snapshot.snapshot_in = Some(need_value(i)?),
            "--snapshot-out" => snapshot.snapshot_out = Some(need_value(i)?),
            "--snapshot-lenient" => {
                snapshot.lenient = true;
                i += 1;
                continue;
            }
            other => return Err(format!("serve: unknown argument {other:?}").into()),
        }
        i += 2;
    }
    // Batches fan out over the same worker budget the pool uses.
    options.batch_threads = config.threads.max(1);
    Ok((config, options, snapshot))
}

/// Parse `router`'s flags from its argument tail. Returns the shard URL
/// list (in ownership order) plus transport and routing options.
fn parse_router_config(
    args: &[String],
) -> Result<
    (
        Vec<String>,
        bikron_router::RouterConfig,
        bikron_router::RouterOptions,
    ),
    Box<dyn std::error::Error>,
> {
    let mut shards: Vec<String> = Vec::new();
    let mut config = bikron_router::RouterConfig {
        addr: "127.0.0.1:7070".to_string(),
        ..bikron_router::RouterConfig::default()
    };
    let mut options = bikron_router::RouterOptions::default();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("router: {} requires a value", args[i]))
        };
        let parse_num = |i: usize, what: &str| -> Result<usize, String> {
            need_value(i)?
                .parse()
                .map_err(|e| format!("router: bad {what}: {e}"))
        };
        match args[i].as_str() {
            "--shards" => {
                shards = need_value(i)?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--addr" => config.addr = need_value(i)?,
            "--threads" => config.threads = parse_num(i, "--threads")?,
            "--queue" => config.queue_capacity = parse_num(i, "--queue")?,
            "--admin-token" => options.admin_token = Some(need_value(i)?),
            "--batch-max" => options.batch_max = parse_num(i, "--batch-max")?,
            "--upstream-timeout-ms" => {
                options.upstream_timeout =
                    std::time::Duration::from_millis(parse_num(i, "--upstream-timeout-ms")? as u64)
            }
            "--replicate-stats" => {
                options.replicate_stats = true;
                i += 1;
                continue;
            }
            other => return Err(format!("router: unknown argument {other:?}").into()),
        }
        i += 2;
    }
    if shards.is_empty() {
        return Err("router requires --shards URL[,URL...]".into());
    }
    Ok((shards, config, options))
}

/// Parse `perfdiff`'s own flags from its argument tail.
fn parse_perfdiff_config(args: &[String]) -> Result<PerfDiffConfig, Box<dyn std::error::Error>> {
    let mut cfg = PerfDiffConfig::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--warn-only" => i += 1,
            "--threshold" | "--watch" => i += 2,
            other => return Err(format!("perfdiff: unknown argument {other:?}").into()),
        }
    }
    if args.iter().any(|a| a == "--warn-only") {
        cfg.warn_only = true;
    }
    let flag_val = |name: &str| {
        args.iter()
            .rposition(|x| x == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(t) = flag_val("--threshold") {
        cfg.threshold_pct = t
            .parse()
            .map_err(|e| format!("perfdiff: bad --threshold {t:?}: {e}"))?;
    }
    if let Some(w) = flag_val("--watch") {
        cfg.watch = Some(w.split(',').map(|s| s.trim().to_string()).collect());
    }
    Ok(cfg)
}

fn dispatch(args: &[String]) -> Result<bool, Box<dyn std::error::Error>> {
    let mut out = std::io::stdout().lock();
    match args.first().map(String::as_str) {
        Some("stats") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            commands::stats(&a, &b, parse_mode(&args[3])?, &mut out)?;
            Ok(true)
        }
        Some("factor") if args.len() >= 2 => {
            let g = parse_factor(&args[1])?;
            commands::factor_report(&g, &mut out)?;
            Ok(true)
        }
        Some("generate") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            let mode = parse_mode(&args[3])?;
            let flag_val = |name: &str| {
                args.iter()
                    .position(|x| x == name)
                    .and_then(|i| args.get(i + 1))
                    .cloned()
            };
            let prefix = flag_val("--out").ok_or("generate requires --out PREFIX")?;
            let parts: usize = flag_val("--parts").map_or(Ok(1), |s| s.parse())?;
            let annotate = args.iter().any(|x| x == "--annotate");
            let total = commands::generate(&a, &b, mode, parts, &prefix, annotate, &mut out)?;
            println!("total: {total} edges");
            Ok(true)
        }
        Some("validate") if args.len() >= 5 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            let mode = parse_mode(&args[3])?;
            let claimed: u64 = args[4].parse()?;
            commands::validate(&a, &b, mode, claimed, &mut out)
        }
        Some("parts") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            commands::parts(&a, &b, parse_mode(&args[3])?, &mut out)?;
            Ok(true)
        }
        Some("verify-file") if args.len() >= 2 => {
            let tsv = std::fs::read_to_string(&args[1])?;
            commands::verify_file(&tsv, &mut out)
        }
        // Dispatched before the positional form: `serve --expr EXPR
        // NAME=SPEC...` also has ≥ 4 arguments.
        Some("serve") if args.get(1).map(String::as_str) == Some("--expr") => {
            let expr = args
                .get(2)
                .ok_or("serve --expr requires an expression argument")?;
            let mut bindings = Vec::new();
            let mut rest = 3;
            while let Some(arg) = args.get(rest) {
                if arg.starts_with("--") {
                    break;
                }
                let (name, spec) = arg.split_once('=').ok_or_else(|| {
                    format!("serve --expr: expected NAME=SPEC binding, got {arg:?}")
                })?;
                bindings.push((name.to_string(), parse_factor(spec)?));
                rest += 1;
            }
            let (config, options, snapshot) = parse_serve_config(&args[rest..])?;
            commands::serve_expr(expr, bindings, config, options, snapshot, &mut out)?;
            Ok(true)
        }
        Some("serve") if args.len() >= 4 => {
            let a = parse_factor(&args[1])?;
            let b = parse_factor(&args[2])?;
            let mode = parse_mode(&args[3])?;
            let (config, options, snapshot) = parse_serve_config(&args[4..])?;
            commands::serve(a, b, mode, config, options, snapshot, &mut out)?;
            Ok(true)
        }
        Some("replay") if args.len() >= 3 => {
            let cfg = bikron_cli::replay::ReplayConfig::parse(&args[1..])?;
            bikron_cli::replay::run(&cfg, &mut out)
        }
        Some("router") => {
            let (shards, config, options) = parse_router_config(&args[1..])?;
            commands::router(&shards, config, options, &mut out)?;
            Ok(true)
        }
        Some("promcheck") if args.len() >= 2 => {
            let text = std::fs::read_to_string(&args[1])?;
            commands::promcheck(&text, &mut out)
        }
        Some("monitor") if args.len() >= 2 => {
            let cfg = bikron_cli::MonitorConfig::parse(&args[1..])?;
            bikron_cli::monitor::run(&cfg, &mut out)
        }
        Some("trace") if args.len() >= 2 => {
            let cfg = bikron_cli::TraceConfig::parse(&args[1..])?;
            bikron_cli::trace::run(&cfg, &mut out)
        }
        Some("profile") if args.len() >= 2 => {
            let cfg = bikron_cli::ProfileConfig::parse(&args[1..])?;
            bikron_cli::profile::run(&cfg, &mut out)
        }
        // Dispatched before the report form: `perfdiff --profile` also
        // has ≥ 3 arguments.
        Some("perfdiff") if args.get(1).map(String::as_str) == Some("--profile") => {
            if args.len() < 4 {
                return Err("perfdiff --profile requires BASE.folded CAND.folded".into());
            }
            let cfg = parse_perfdiff_config(&args[4..])?;
            bikron_cli::perfdiff_profile_files(&args[2], &args[3], &cfg, &mut out)
        }
        Some("perfdiff") if args.len() >= 3 => {
            let cfg = parse_perfdiff_config(&args[3..])?;
            perfdiff_files(&args[1], &args[2], &cfg, &mut out)
        }
        Some("--version") | Some("-V") | Some("version") => {
            println!(
                "bikron {} (metrics schemas: {}, {}, {}, {}; profile schema: {})",
                env!("CARGO_PKG_VERSION"),
                bikron_obs::SCHEMA_V1,
                bikron_obs::SCHEMA_V2,
                bikron_obs::SCHEMA_V3,
                bikron_obs::SCHEMA,
                bikron_obs::profile::PROFILE_SCHEMA,
            );
            Ok(true)
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(true)
        }
        _ => {
            eprintln!("{USAGE}");
            Err("bad arguments".into())
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(2), // validation mismatch / perf regression
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
