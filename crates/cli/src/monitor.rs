//! `bikron monitor URL`: a live terminal dashboard over a running
//! `bikron serve` instance or a `bikron router` cluster front.
//!
//! The monitor polls `GET /metrics` (the `bikron-obs/4` JSON report),
//! diffs consecutive snapshots, and redraws one screen in place:
//! windowed and cumulative request rates, windowed p50/p99 latency,
//! status-code mix, cache hit-rate, in-flight requests (live + peak),
//! and the top-K hottest histograms by count. With `--once` it prints a
//! single machine-readable `key value` snapshot instead — that is what
//! CI asserts against.
//!
//! When the target identifies itself as a router (report meta
//! `tool = bikron-router`), the headline series switch from `serve.*`
//! to `router.*` and a per-shard breakdown is appended: each shard's
//! request counter, 1-minute rate, request p99, and health verdict
//! (from the `router.shard{i}.health` gauge). A shard whose scrape is
//! missing from the aggregate, or that answered zero requests in the
//! last minute, is flagged `SHARD DARK`. In `--once` mode the same
//! breakdown is emitted as `shards` plus numeric `shard{i}_*` keys.
//!
//! Everything except the socket I/O is pure (`render_frame`,
//! `render_once`), so the formatting and diffing logic is unit-testable
//! without a server.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use bikron_obs::Report;

/// Default seconds between dashboard refreshes.
pub const DEFAULT_INTERVAL_SECS: u64 = 2;
/// Default number of hottest histograms shown.
pub const DEFAULT_TOP: usize = 5;
/// Consecutive fetch failures tolerated before the loop gives up.
const MAX_CONSECUTIVE_FAILURES: u32 = 3;

/// Parsed `bikron monitor` invocation.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Server base, `http://host:port` (scheme and trailing path
    /// optional on the command line).
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Seconds between refreshes in dashboard mode.
    pub interval_secs: u64,
    /// Print one machine-readable snapshot and exit.
    pub once: bool,
    /// How many hottest histograms to show.
    pub top: usize,
}

impl MonitorConfig {
    /// Parse `URL [--interval SEC] [--once] [--top K]`.
    pub fn parse(args: &[String]) -> Result<MonitorConfig, String> {
        let mut url: Option<String> = None;
        let mut interval_secs = DEFAULT_INTERVAL_SECS;
        let mut once = false;
        let mut top = DEFAULT_TOP;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--once" => {
                    once = true;
                    i += 1;
                }
                "--interval" | "--top" => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("monitor: {} requires a value", args[i]))?;
                    let n: u64 = v
                        .parse()
                        .map_err(|e| format!("monitor: bad {} {v:?}: {e}", args[i]))?;
                    if args[i] == "--interval" {
                        interval_secs = n.max(1);
                    } else {
                        top = n as usize;
                    }
                    i += 2;
                }
                other if url.is_none() && !other.starts_with("--") => {
                    url = Some(other.to_string());
                    i += 1;
                }
                other => return Err(format!("monitor: unknown argument {other:?}")),
            }
        }
        let url = url.ok_or("monitor requires a server URL (e.g. http://127.0.0.1:7474)")?;
        let (host, port) = parse_host_port(&url)?;
        Ok(MonitorConfig {
            host,
            port,
            interval_secs,
            once,
            top,
        })
    }
}

/// Accepts `http://host:port[/...]`, `host:port`, or bare `host`
/// (default port 7474).
pub(crate) fn parse_host_port(url: &str) -> Result<(String, u16), String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    if rest.starts_with("https://") || url.starts_with("https://") {
        return Err("monitor: https is not supported (std-only client)".to_string());
    }
    let authority = rest.split('/').next().unwrap_or("");
    if authority.is_empty() {
        return Err(format!("monitor: bad URL {url:?}"));
    }
    match authority.rsplit_once(':') {
        Some((host, port)) => {
            let port: u16 = port
                .parse()
                .map_err(|e| format!("monitor: bad port in {url:?}: {e}"))?;
            Ok((host.to_string(), port))
        }
        None => Ok((authority.to_string(), 7474)),
    }
}

/// One `GET {path}` over a fresh connection (std-only HTTP/1.1 client,
/// shared with `bikron trace`); returns `(status, body)`.
pub(crate) fn http_get(host: &str, port: u16, path: &str) -> Result<(u16, String), String> {
    let addr = format!("{host}:{port}");
    let mut stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("malformed HTTP response")?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("missing status code")?;
    Ok((status, body.to_string()))
}

/// One `GET /metrics` over a fresh connection; returns the parsed report.
fn fetch_report(host: &str, port: u16) -> Result<Report, String> {
    let (status, body) = http_get(host, port, "/metrics")?;
    if status != 200 {
        return Err(format!("GET /metrics returned {status}"));
    }
    Report::from_json(&body).map_err(|e| format!("parse /metrics: {e}"))
}

/// One shard's row in the cluster breakdown, assembled from the
/// `shard{i}.*` series the router merges into its aggregate report.
struct ShardRow {
    index: usize,
    /// Cumulative requests served by the shard (`shard{i}.serve.requests`).
    requests: u64,
    /// 1-minute windowed rate, `None` when the shard report lacks windows.
    rps_1m: Option<u64>,
    /// Cumulative request p99 in nanoseconds.
    p99_ns: u64,
    /// `router.shard{i}.health` gauge: 0 ok, 1 degraded, 2 down.
    health: Option<u64>,
    /// Scrape missing from the aggregate, or zero requests in the last
    /// minute — either way the shard is not visibly doing work.
    dark: bool,
}

impl ShardRow {
    fn health_str(&self) -> &'static str {
        match self.health {
            Some(0) => "ok",
            Some(1) => "degraded",
            Some(2) => "down",
            _ => "unknown",
        }
    }
}

/// Counters and windows the dashboard reads, pulled out of a [`Report`].
/// `prefix` is `serve.` for a single node and `router.` when the target
/// identifies as a cluster front, so the same accessors work for both.
struct Snapshot<'a> {
    report: &'a Report,
    prefix: &'static str,
    requests: u64,
    uptime_ms: u64,
}

impl<'a> Snapshot<'a> {
    fn new(report: &'a Report) -> Snapshot<'a> {
        let prefix = if report.meta("tool") == Some("bikron-router") {
            "router."
        } else {
            "serve."
        };
        Snapshot {
            report,
            prefix,
            requests: report.counter(&format!("{prefix}requests")).unwrap_or(0),
            uptime_ms: report
                .gauge(&format!("{prefix}uptime_ms"))
                .map_or(0, |(v, _)| v),
        }
    }

    fn name(&self, suffix: &str) -> String {
        format!("{}{suffix}", self.prefix)
    }

    /// Windowed request rate (per second), `None` when the server
    /// predates windowed metrics (v2 report).
    fn windowed_rate(&self, which: Window) -> Option<u64> {
        let w = self.report.window(&self.name("requests"))?;
        Some(match which {
            Window::OneMin => w.w1m.rate_per_sec,
            Window::FiveMin => w.w5m.rate_per_sec,
        })
    }

    fn windowed_latency(&self, which: Window) -> Option<bikron_obs::WindowStats> {
        let w = self.report.window(&self.name("request_ns"))?;
        Some(match which {
            Window::OneMin => w.w1m,
            Window::FiveMin => w.w5m,
        })
    }

    /// Shard count a router target advertises; 0 for a single node.
    fn shard_count(&self) -> usize {
        if self.prefix != "router." {
            return 0;
        }
        self.report
            .meta("shards")
            .and_then(|s| s.parse().ok())
            .or_else(|| self.report.gauge("router.shards").map(|(v, _)| v as usize))
            .unwrap_or(0)
    }

    /// Per-shard breakdown rows (empty for a single-node target).
    fn shard_rows(&self) -> Vec<ShardRow> {
        (0..self.shard_count())
            .map(|i| {
                let req = format!("shard{i}.serve.requests");
                let requests = self.report.counter(&req);
                let rps_1m = self.report.window(&req).map(|w| w.w1m.rate_per_sec);
                let p99_ns = self
                    .report
                    .histogram(&format!("shard{i}.serve.request_ns"))
                    .map_or(0, |h| h.percentile(99));
                let health = self
                    .report
                    .gauge(&format!("router.shard{i}.health"))
                    .map(|(v, _)| v);
                ShardRow {
                    index: i,
                    requests: requests.unwrap_or(0),
                    rps_1m,
                    p99_ns,
                    health,
                    dark: requests.is_none() || rps_1m.unwrap_or(0) == 0,
                }
            })
            .collect()
    }

    /// Cumulative (since-boot) requests per second, derived from the
    /// `serve.uptime_ms` gauge the server stamps at scrape time.
    fn cumulative_rps(&self) -> u64 {
        if self.uptime_ms == 0 {
            return 0;
        }
        self.requests * 1000 / self.uptime_ms
    }

    fn cache_hit_pct(&self) -> Option<u64> {
        let hits = self.report.counter("serve.cache.hits")?;
        let misses = self.report.counter("serve.cache.misses").unwrap_or(0);
        let total = hits + misses;
        if total == 0 {
            return Some(0);
        }
        Some(hits * 100 / total)
    }

    /// `(code, count)` rows for every `{prefix}status.*` counter, by
    /// count descending.
    fn status_mix(&self) -> Vec<(String, u64)> {
        let status_prefix = self.name("status.");
        let mut rows: Vec<(String, u64)> = self
            .report
            .counters()
            .filter_map(|(name, v)| {
                let code = name.strip_prefix(&status_prefix)?;
                (v > 0).then(|| (code.to_string(), v))
            })
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// The `top` histograms by observation count.
    fn hottest_histograms(&self, top: usize) -> Vec<(String, u64, u64)> {
        let mut rows: Vec<(String, u64, u64)> = self
            .report
            .histograms()
            .map(|(name, h)| (name.to_string(), h.count, h.percentile(99)))
            .filter(|&(_, count, _)| count > 0)
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(top);
        rows
    }
}

#[derive(Clone, Copy)]
enum Window {
    OneMin,
    FiveMin,
}

/// Render nanoseconds as a human latency (`1.2ms`, `340µs`, `2.1s`).
pub(crate) fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{}.{}µs", ns / 1_000, ns % 1_000 / 100),
        1_000_000..=999_999_999 => format!("{}.{}ms", ns / 1_000_000, ns % 1_000_000 / 100_000),
        _ => format!(
            "{}.{}s",
            ns / 1_000_000_000,
            ns % 1_000_000_000 / 100_000_000
        ),
    }
}

/// Render one dashboard frame. `prev` (with `dt_secs` since it was
/// taken) enables the instantaneous-rate line; the windowed lines come
/// from the report itself. Pure — no I/O, no clock.
pub fn render_frame(prev: Option<&Report>, cur: &Report, dt_secs: f64, top: usize) -> String {
    let snap = Snapshot::new(cur);
    let mut out = String::new();
    out.push_str("bikron monitor — ");
    out.push_str(cur.meta("tool").unwrap_or("unknown"));
    out.push_str(&format!(
        " (schema v{}), uptime {}s\n\n",
        cur.schema_version(),
        snap.uptime_ms / 1000
    ));

    // Requests: windowed rates, since-boot rate, and the poll-diff rate.
    let rate = |w| {
        snap.windowed_rate(w)
            .map_or_else(|| "n/a".to_string(), |r| r.to_string())
    };
    out.push_str(&format!(
        "  requests   total {:<12} rps 1m {:<8} 5m {:<8} boot {}\n",
        snap.requests,
        rate(Window::OneMin),
        rate(Window::FiveMin),
        snap.cumulative_rps(),
    ));
    if let Some(prev) = prev {
        let before = prev.counter(&snap.name("requests")).unwrap_or(0);
        let delta = snap.requests.saturating_sub(before);
        let inst = if dt_secs > 0.0 {
            (delta as f64 / dt_secs).round() as u64
        } else {
            0
        };
        out.push_str(&format!(
            "             since last poll: {delta} reqs ({inst} rps)\n"
        ));
    }

    // Latency: windowed percentiles vs the cumulative distribution.
    for (label, w) in [("1m", Window::OneMin), ("5m", Window::FiveMin)] {
        if let Some(stats) = snap.windowed_latency(w) {
            out.push_str(&format!(
                "  latency {label} p50 {:<10} p90 {:<10} p99 {:<10} n={}\n",
                fmt_ns(stats.p50),
                fmt_ns(stats.p90),
                fmt_ns(stats.p99),
                stats.count
            ));
        }
    }
    if let Some(h) = cur.histogram(&snap.name("request_ns")) {
        out.push_str(&format!(
            "  latency ∞  p50 {:<10} p90 {:<10} p99 {:<10} n={}\n",
            fmt_ns(h.percentile(50)),
            fmt_ns(h.percentile(90)),
            fmt_ns(h.percentile(99)),
            h.count
        ));
    }

    // Status mix.
    let mix = snap.status_mix();
    if !mix.is_empty() {
        out.push_str("  status    ");
        for (code, n) in &mix {
            out.push_str(&format!(" {code}:{n}"));
        }
        out.push('\n');
    }

    // Cache and concurrency.
    if let Some(pct) = snap.cache_hit_pct() {
        out.push_str(&format!("  cache      hit-rate {pct}%\n"));
    }
    // Snapshot provenance: whether this process warm-started from a
    // `--snapshot-in` file, and what the restore cost/bought.
    if let Some((warm, _)) = cur.gauge("serve.snapshot.warm") {
        if warm == 1 {
            let load_ns = cur.gauge("serve.snapshot.load_ns").map_or(0, |(v, _)| v);
            let restored = cur
                .gauge("serve.snapshot.cache_entries_restored")
                .map_or(0, |(v, _)| v);
            out.push_str(&format!(
                "  snapshot   warm ({restored} cache entries restored in {})\n",
                fmt_ns(load_ns)
            ));
        } else {
            out.push_str("  snapshot   cold\n");
        }
    }
    if let Some((live, peak)) = cur.gauge(&snap.name("inflight")) {
        out.push_str(&format!("  inflight   {live} (peak {peak})\n"));
    }

    // Cluster targets: one row per shard, with dark shards flagged as
    // loudly as lossy telemetry — a shard that serves nothing is the
    // routing bug (or outage) this dashboard exists to surface.
    let shards = snap.shard_rows();
    if !shards.is_empty() {
        out.push_str(&format!("\n  shards     {}", shards.len()));
        if let Some((pct, _)) = cur.gauge("router.load_imbalance") {
            out.push_str(&format!(" — load imbalance {pct}% (100 = even)"));
        }
        out.push('\n');
        for row in &shards {
            out.push_str(&format!(
                "    shard {:<4} reqs {:<10} rps 1m {:<6} p99 {:<10} {}{}\n",
                row.index,
                row.requests,
                row.rps_1m
                    .map_or_else(|| "n/a".to_string(), |r| r.to_string()),
                fmt_ns(row.p99_ns),
                row.health_str(),
                if row.dark { "  !! SHARD DARK" } else { "" },
            ));
        }
    }

    // Tracing: capture counters, with lossy telemetry flagged loudly —
    // a nonzero drop count means the span cap or the access-log queue
    // was exceeded, i.e. the observability data itself is incomplete.
    if let Some((captured, _)) = cur.gauge("serve.trace.captured") {
        let seen = cur.gauge("serve.trace.seen").map_or(0, |(v, _)| v);
        out.push_str(&format!("  traces     captured {captured} of {seen}\n"));
    }
    // Profiling: sampler totals from the report's profile section (v4),
    // falling back to the `profile.*` counters for reports that carry
    // the counters but not the section.
    let profile_samples = cur
        .profile()
        .map(|p| p.samples)
        .or_else(|| cur.counter("profile.samples"));
    let profile_dropped = cur
        .profile()
        .map(|p| p.dropped)
        .or_else(|| cur.counter("profile.dropped_samples"))
        .unwrap_or(0);
    if let Some(samples) = profile_samples {
        out.push_str(&format!(
            "  profile    {samples} samples, {profile_dropped} dropped\n"
        ));
    }
    let dropped_spans = cur.gauge("serve.trace.dropped_spans").map_or(0, |(v, _)| v);
    let dropped_lines = cur.gauge("serve.log.dropped_lines").map_or(0, |(v, _)| v);
    if dropped_spans > 0 || dropped_lines > 0 || profile_dropped > 0 {
        out.push_str(&format!(
            "  !! LOSSY TELEMETRY  dropped spans {dropped_spans}, dropped log lines {dropped_lines}, dropped profile samples {profile_dropped}\n"
        ));
    }

    // Hottest histograms.
    let hot = snap.hottest_histograms(top);
    if !hot.is_empty() {
        out.push_str("\n  hottest histograms (by count):\n");
        for (name, count, p99) in hot {
            out.push_str(&format!(
                "    {name:<28} n={count:<10} p99={}\n",
                fmt_ns(p99)
            ));
        }
    }
    out
}

/// Render the `--once` machine-readable snapshot: one `key value` per
/// line, stable keys, no alignment — for shell pipelines and CI.
pub fn render_once(cur: &Report) -> String {
    let snap = Snapshot::new(cur);
    let w1m = snap.windowed_latency(Window::OneMin).unwrap_or_default();
    let cum_p99 = cur
        .histogram(&snap.name("request_ns"))
        .map_or(0, |h| h.percentile(99));
    let (inflight, inflight_peak) = cur.gauge(&snap.name("inflight")).unwrap_or((0, 0));
    let mut out = String::new();
    out.push_str(&format!("schema_version {}\n", cur.schema_version()));
    out.push_str(&format!("requests_total {}\n", snap.requests));
    out.push_str(&format!(
        "rps_1m {}\n",
        snap.windowed_rate(Window::OneMin).unwrap_or(0)
    ));
    out.push_str(&format!(
        "rps_5m {}\n",
        snap.windowed_rate(Window::FiveMin).unwrap_or(0)
    ));
    out.push_str(&format!("rps_cumulative {}\n", snap.cumulative_rps()));
    out.push_str(&format!("p50_1m_ns {}\n", w1m.p50));
    out.push_str(&format!("p99_1m_ns {}\n", w1m.p99));
    out.push_str(&format!("p99_cumulative_ns {cum_p99}\n"));
    out.push_str(&format!("inflight {inflight}\n"));
    out.push_str(&format!("inflight_peak {inflight_peak}\n"));
    out.push_str(&format!(
        "cache_hit_pct {}\n",
        snap.cache_hit_pct().unwrap_or(0)
    ));
    out.push_str(&format!(
        "errors_5xx_total {}\n",
        cur.counter(&snap.name("errors_5xx"))
            .or_else(|| cur.counter(&snap.name("errors")))
            .unwrap_or(0)
    ));
    let gauge = |name: &str| cur.gauge(name).map_or(0, |(v, _)| v);
    out.push_str(&format!("traces_seen {}\n", gauge("serve.trace.seen")));
    out.push_str(&format!(
        "traces_captured {}\n",
        gauge("serve.trace.captured")
    ));
    out.push_str(&format!(
        "dropped_spans {}\n",
        gauge("serve.trace.dropped_spans")
    ));
    out.push_str(&format!(
        "dropped_log_lines {}\n",
        gauge("serve.log.dropped_lines")
    ));
    out.push_str(&format!(
        "profile_samples {}\n",
        cur.profile()
            .map(|p| p.samples)
            .or_else(|| cur.counter("profile.samples"))
            .unwrap_or(0)
    ));
    out.push_str(&format!(
        "profile_dropped {}\n",
        cur.profile()
            .map(|p| p.dropped)
            .or_else(|| cur.counter("profile.dropped_samples"))
            .unwrap_or(0)
    ));
    // Snapshot provenance — only present on serve targets (the gauge is
    // always set at boot, warm or cold), so routers emit nothing here.
    if let Some((warm, _)) = cur.gauge("serve.snapshot.warm") {
        out.push_str(&format!(
            "snapshot {}\n",
            if warm == 1 { "warm" } else { "cold" }
        ));
        out.push_str(&format!(
            "snapshot_load_ns {}\n",
            gauge("serve.snapshot.load_ns")
        ));
        out.push_str(&format!(
            "cache_entries_restored {}\n",
            gauge("serve.snapshot.cache_entries_restored")
        ));
    }
    // Cluster targets: stable numeric keys per shard so CI can assert
    // "no shard went dark" without parsing the dashboard layout. A
    // shard with no health gauge reads as down (2).
    let shards = snap.shard_rows();
    if !shards.is_empty() {
        out.push_str(&format!("shards {}\n", shards.len()));
        for row in &shards {
            let i = row.index;
            out.push_str(&format!("shard{i}_requests {}\n", row.requests));
            out.push_str(&format!("shard{i}_rps_1m {}\n", row.rps_1m.unwrap_or(0)));
            out.push_str(&format!("shard{i}_p99_ns {}\n", row.p99_ns));
            out.push_str(&format!("shard{i}_health {}\n", row.health.unwrap_or(2)));
            out.push_str(&format!("shard{i}_dark {}\n", u64::from(row.dark)));
        }
    }
    out
}

/// Run the monitor until interrupted (or once, with `--once`). Returns
/// `Ok(false)` — the perf-regression exit code — when the poll loop gave
/// up after repeated fetch failures.
pub fn run(
    config: &MonitorConfig,
    out: &mut impl std::io::Write,
) -> Result<bool, Box<dyn std::error::Error>> {
    if config.once {
        let report = fetch_report(&config.host, config.port)?;
        write!(out, "{}", render_once(&report))?;
        return Ok(true);
    }
    let mut prev: Option<Report> = None;
    let mut failures = 0u32;
    loop {
        match fetch_report(&config.host, config.port) {
            Ok(report) => {
                failures = 0;
                let frame = render_frame(
                    prev.as_ref(),
                    &report,
                    config.interval_secs as f64,
                    config.top,
                );
                // Home the cursor and clear before each frame: an
                // in-place dashboard, not a scrolling log.
                write!(out, "\x1b[H\x1b[2J{frame}")?;
                out.flush()?;
                prev = Some(report);
            }
            Err(e) => {
                failures += 1;
                writeln!(out, "monitor: fetch failed ({e}) [{failures}]")?;
                if failures >= MAX_CONSECUTIVE_FAILURES {
                    writeln!(out, "monitor: giving up after {failures} failures")?;
                    return Ok(false);
                }
            }
        }
        std::thread::sleep(Duration::from_secs(config.interval_secs));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let base = bikron_obs::Registry::new();
        let win = bikron_obs::WindowRegistry::new();
        let requests = win.counter(&base, "serve.requests");
        let latency = win.histogram(&base, "serve.request_ns");
        for i in 0..120u64 {
            requests.inc();
            latency.record(1_000_000 + i * 10_000);
        }
        base.counter("serve.status.200").add(118);
        base.counter("serve.status.404").add(2);
        base.counter("serve.cache.hits").add(90);
        base.counter("serve.cache.misses").add(30);
        base.gauge("serve.uptime_ms").set(60_000);
        base.gauge("serve.snapshot.warm").set(1);
        base.gauge("serve.snapshot.load_ns").set(2_000_000);
        base.gauge("serve.snapshot.cache_entries_restored").set(42);
        let g = base.gauge("serve.inflight");
        g.raise(3);
        g.lower(2);
        let mut report = base.snapshot();
        report.set_meta("tool", "bikron-serve");
        win.snapshot_into(&mut report);
        report
    }

    /// A shard report as `bikron serve --shard` exposes it, sized so
    /// the 1-minute window rate is `events / 60` requests per second.
    fn shard_report(events: u64) -> Report {
        let base = bikron_obs::Registry::new();
        let win = bikron_obs::WindowRegistry::new();
        let requests = win.counter(&base, "serve.requests");
        let latency = win.histogram(&base, "serve.request_ns");
        for _ in 0..events {
            requests.inc();
            latency.record(1_500_000);
        }
        let mut report = base.snapshot();
        win.snapshot_into(&mut report);
        report
    }

    /// A router aggregate over two shards. With `shard1_dead` the second
    /// shard's scrape is missing and its health gauge reads down.
    fn router_report(shard1_dead: bool) -> Report {
        let base = bikron_obs::Registry::new();
        let win = bikron_obs::WindowRegistry::new();
        let requests = win.counter(&base, "router.requests");
        let latency = win.histogram(&base, "router.request_ns");
        for i in 0..180u64 {
            requests.inc();
            latency.record(2_000_000 + i * 10_000);
        }
        base.counter("router.status.200").add(178);
        base.counter("router.status.503").add(2);
        base.gauge("router.uptime_ms").set(60_000);
        base.gauge("router.shards").set(2);
        base.gauge("router.load_imbalance").set(110);
        base.gauge("router.shard0.health").set(0);
        base.gauge("router.shard1.health")
            .set(if shard1_dead { 2 } else { 0 });
        let mut report = base.snapshot();
        report.set_meta("tool", "bikron-router");
        report.set_meta("shards", "2");
        win.snapshot_into(&mut report);
        report.merge_prefixed("shard0.", &shard_report(120));
        if !shard1_dead {
            report.merge_prefixed("shard1.", &shard_report(60));
        }
        report
    }

    #[test]
    fn parse_accepts_url_forms() {
        for (input, host, port) in [
            ("http://127.0.0.1:7474", "127.0.0.1", 7474),
            ("http://localhost:8080/metrics", "localhost", 8080),
            ("10.0.0.1:9999", "10.0.0.1", 9999),
            ("myhost", "myhost", 7474),
        ] {
            let cfg = MonitorConfig::parse(&[input.to_string()]).unwrap();
            assert_eq!(cfg.host, host, "{input}");
            assert_eq!(cfg.port, port, "{input}");
            assert_eq!(cfg.interval_secs, DEFAULT_INTERVAL_SECS);
            assert!(!cfg.once);
        }
        assert!(MonitorConfig::parse(&[]).is_err());
        assert!(MonitorConfig::parse(&["https://x:1".into()]).is_err());
        assert!(MonitorConfig::parse(&["h:1".into(), "--frob".into()]).is_err());
    }

    #[test]
    fn parse_flags() {
        let cfg = MonitorConfig::parse(&[
            "http://h:1".into(),
            "--interval".into(),
            "7".into(),
            "--once".into(),
            "--top".into(),
            "2".into(),
        ])
        .unwrap();
        assert_eq!(cfg.interval_secs, 7);
        assert!(cfg.once);
        assert_eq!(cfg.top, 2);
        // Interval 0 clamps to 1 (no busy-loop).
        let cfg = MonitorConfig::parse(&["h:1".into(), "--interval".into(), "0".into()]).unwrap();
        assert_eq!(cfg.interval_secs, 1);
    }

    #[test]
    fn frame_shows_windowed_and_cumulative_signals() {
        let report = sample_report();
        let frame = render_frame(None, &report, 2.0, 5);
        assert!(frame.contains("bikron-serve"), "{frame}");
        assert!(frame.contains("total 120"), "{frame}");
        // 120 requests over a 60s window = 2/s windowed; 60s uptime = 2/s boot.
        assert!(frame.contains("rps 1m 2"), "{frame}");
        assert!(frame.contains("latency 1m"), "{frame}");
        assert!(frame.contains("latency ∞"), "{frame}");
        assert!(frame.contains("200:118"), "{frame}");
        assert!(frame.contains("404:2"), "{frame}");
        assert!(frame.contains("hit-rate 75%"), "{frame}");
        assert!(frame.contains("inflight   1 (peak 3)"), "{frame}");
        assert!(frame.contains("serve.request_ns"), "{frame}");
    }

    #[test]
    fn frame_diffs_against_previous_poll() {
        let report = sample_report();
        let mut older = sample_report();
        // Rewind the "previous" snapshot by dropping its counter.
        older = {
            let json = older
                .to_json()
                .replace("\"serve.requests\": 120", "\"serve.requests\": 100");
            Report::from_json(&json).unwrap()
        };
        let frame = render_frame(Some(&older), &report, 2.0, 5);
        assert!(
            frame.contains("since last poll: 20 reqs (10 rps)"),
            "{frame}"
        );
    }

    #[test]
    fn once_mode_is_machine_readable() {
        let report = sample_report();
        let text = render_once(&report);
        let mut keys = std::collections::BTreeSet::new();
        for line in text.lines() {
            let (k, v) = line.split_once(' ').expect("key value");
            if k == "snapshot" {
                assert!(v == "warm" || v == "cold", "{line}");
            } else {
                assert!(v.parse::<u64>().is_ok(), "{line}");
            }
            keys.insert(k.to_string());
        }
        for k in [
            "schema_version",
            "requests_total",
            "rps_1m",
            "rps_5m",
            "rps_cumulative",
            "p50_1m_ns",
            "p99_1m_ns",
            "p99_cumulative_ns",
            "inflight",
            "inflight_peak",
            "cache_hit_pct",
            "profile_samples",
            "profile_dropped",
            "snapshot",
            "snapshot_load_ns",
            "cache_entries_restored",
        ] {
            assert!(keys.contains(k), "missing {k} in {text}");
        }
        assert!(text.contains("rps_1m 2\n"), "{text}");
        assert!(text.contains("snapshot warm\n"), "{text}");
        assert!(text.contains("cache_entries_restored 42\n"), "{text}");
    }

    #[test]
    fn snapshot_state_renders_warm_and_cold() {
        // The canned report warm-started: both renderers say so.
        let frame = render_frame(None, &sample_report(), 2.0, 5);
        assert!(
            frame.contains("snapshot   warm (42 cache entries restored in 2.0ms)"),
            "{frame}"
        );
        // A cold boot (gauge present, zero) reads cold.
        let base = bikron_obs::Registry::new();
        base.counter("serve.requests").add(1);
        base.gauge("serve.snapshot.warm").set(0);
        base.gauge("serve.snapshot.load_ns").set(0);
        base.gauge("serve.snapshot.cache_entries_restored").set(0);
        let cold = base.snapshot();
        assert!(
            render_frame(None, &cold, 2.0, 5).contains("snapshot   cold"),
            "cold frame"
        );
        let once = render_once(&cold);
        assert!(once.contains("snapshot cold\n"), "{once}");
        assert!(once.contains("cache_entries_restored 0\n"), "{once}");
        // A target with no snapshot gauge at all (router, old server)
        // emits no snapshot keys.
        let bare = bikron_obs::Registry::new();
        bare.counter("router.requests").add(1);
        let none = render_once(&bare.snapshot());
        assert!(!none.contains("snapshot"), "{none}");
    }

    #[test]
    fn v2_report_renders_without_windows() {
        // A report with no windowed series (old server) must not panic
        // and must mark windowed fields n/a or 0.
        let base = bikron_obs::Registry::new();
        base.counter("serve.requests").add(10);
        let report = base.snapshot();
        let frame = render_frame(None, &report, 2.0, 5);
        assert!(frame.contains("rps 1m n/a"), "{frame}");
        let once = render_once(&report);
        assert!(once.contains("rps_1m 0"), "{once}");
    }

    #[test]
    fn lossy_telemetry_is_flagged() {
        let base = bikron_obs::Registry::new();
        base.counter("serve.requests").add(1);
        base.gauge("serve.trace.seen").set(40);
        base.gauge("serve.trace.captured").set(3);
        base.gauge("serve.trace.dropped_spans").set(2);
        base.gauge("serve.log.dropped_lines").set(5);
        let report = base.snapshot();
        let frame = render_frame(None, &report, 2.0, 5);
        assert!(frame.contains("captured 3 of 40"), "{frame}");
        assert!(frame.contains("LOSSY TELEMETRY"), "{frame}");
        assert!(
            frame.contains("dropped spans 2, dropped log lines 5"),
            "{frame}"
        );
        let once = render_once(&report);
        assert!(once.contains("traces_seen 40\n"), "{once}");
        assert!(once.contains("traces_captured 3\n"), "{once}");
        assert!(once.contains("dropped_spans 2\n"), "{once}");
        assert!(once.contains("dropped_log_lines 5\n"), "{once}");
        // A server that has dropped nothing gets no warning line.
        let clean = render_frame(None, &sample_report(), 2.0, 5);
        assert!(!clean.contains("LOSSY"), "{clean}");
    }

    #[test]
    fn profile_counters_render_and_drops_are_lossy() {
        // A report whose sampler dropped nothing: informational line,
        // no warning banner.
        let base = bikron_obs::Registry::new();
        base.counter("serve.requests").add(1);
        let mut report = base.snapshot();
        report.set_profile(bikron_obs::ProfileSnapshot {
            hz: 99,
            samples: 500,
            dropped: 0,
            idle: 20,
            stacks: [("serve;evaluate".to_string(), 500)].into_iter().collect(),
        });
        let frame = render_frame(None, &report, 2.0, 5);
        assert!(frame.contains("profile    500 samples, 0 dropped"), "{frame}");
        assert!(!frame.contains("LOSSY"), "{frame}");
        let once = render_once(&report);
        assert!(once.contains("profile_samples 500\n"), "{once}");
        assert!(once.contains("profile_dropped 0\n"), "{once}");

        // Dropped samples mean the flamegraph is missing weight — that
        // joins the lossy-telemetry banner.
        let mut lossy = base.snapshot();
        lossy.set_profile(bikron_obs::ProfileSnapshot {
            hz: 99,
            samples: 500,
            dropped: 7,
            idle: 0,
            stacks: std::collections::BTreeMap::new(),
        });
        let frame = render_frame(None, &lossy, 2.0, 5);
        assert!(frame.contains("profile    500 samples, 7 dropped"), "{frame}");
        assert!(frame.contains("LOSSY TELEMETRY"), "{frame}");
        assert!(frame.contains("dropped profile samples 7"), "{frame}");
        assert!(render_once(&lossy).contains("profile_dropped 7\n"));

        // Counters-only fallback (no profile section): same line.
        let counters = bikron_obs::Registry::new();
        counters.counter("serve.requests").add(1);
        counters.counter("profile.samples").add(33);
        counters.counter("profile.dropped_samples").add(0);
        let frame = render_frame(None, &counters.snapshot(), 2.0, 5);
        assert!(frame.contains("profile    33 samples, 0 dropped"), "{frame}");

        // No sampler at all: no profile line.
        assert!(
            !render_frame(None, &sample_report(), 2.0, 5).contains("profile "),
            "no sampler"
        );
    }

    #[test]
    fn router_frame_switches_prefix_and_lists_shards() {
        let report = router_report(false);
        let frame = render_frame(None, &report, 2.0, 5);
        assert!(frame.contains("bikron-router"), "{frame}");
        assert!(frame.contains("total 180"), "{frame}");
        // 180 requests in the 1m window = 3/s, read from router.requests.
        assert!(frame.contains("rps 1m 3"), "{frame}");
        assert!(frame.contains("200:178"), "{frame}");
        assert!(frame.contains("503:2"), "{frame}");
        assert!(frame.contains("shards     2"), "{frame}");
        assert!(frame.contains("load imbalance 110%"), "{frame}");
        assert!(frame.contains("shard 0"), "{frame}");
        assert!(frame.contains("shard 1"), "{frame}");
        // Both shards answered traffic this window: nothing is dark.
        assert!(!frame.contains("SHARD DARK"), "{frame}");
        assert!(frame.contains("ok"), "{frame}");
    }

    #[test]
    fn dead_shard_is_flagged_dark() {
        let report = router_report(true);
        let frame = render_frame(None, &report, 2.0, 5);
        assert!(frame.contains("SHARD DARK"), "{frame}");
        assert!(frame.contains("down"), "{frame}");
        // Shard 0 is healthy; exactly one row is flagged.
        assert_eq!(frame.matches("SHARD DARK").count(), 1, "{frame}");
    }

    #[test]
    fn router_once_emits_numeric_shard_keys() {
        let text = render_once(&router_report(true));
        for line in text.lines() {
            let (_, v) = line.split_once(' ').expect("key value");
            assert!(v.parse::<u64>().is_ok(), "{line}");
        }
        assert!(text.contains("shards 2\n"), "{text}");
        assert!(text.contains("requests_total 180\n"), "{text}");
        assert!(text.contains("rps_1m 3\n"), "{text}");
        assert!(text.contains("shard0_requests 120\n"), "{text}");
        assert!(text.contains("shard0_rps_1m 2\n"), "{text}");
        assert!(text.contains("shard0_health 0\n"), "{text}");
        assert!(text.contains("shard0_dark 0\n"), "{text}");
        assert!(text.contains("shard1_requests 0\n"), "{text}");
        assert!(text.contains("shard1_health 2\n"), "{text}");
        assert!(text.contains("shard1_dark 1\n"), "{text}");
        // Router reports fold 5xx into router.errors.
        assert!(text.contains("errors_5xx_total 0\n"), "{text}");
        // A single-node report emits no shard keys at all.
        assert!(!render_once(&sample_report()).contains("shard"), "single");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_300_000), "2.3ms");
        assert_eq!(fmt_ns(1_200_000_000), "1.2s");
    }
}
