//! Subcommand implementations. Each takes parsed inputs and a writer so
//! the logic is unit-testable without a process boundary.

use std::io::Write;

use bikron_core::connectivity::product_bipartition;
use bikron_core::stream::PartitionedStream;
use bikron_core::truth::FactorStats;
use bikron_core::{predict_structure, GroundTruth, KroneckerProduct, SelfLoopMode};
use bikron_graph::{bipartition, connected_components, Graph};
use bikron_serve::snapshot::{Snapshot, SnapshotError, DEFAULT_CACHE_TOP_K};
use bikron_serve::{ServeOptions, ServeState, Server, ServerConfig, WarmInfo};

/// Generic error type for command plumbing.
pub type CmdResult = Result<(), Box<dyn std::error::Error>>;

/// Snapshot persistence flags shared by `serve` and `serve --expr`.
#[derive(Debug, Clone, Default)]
pub struct SnapshotOptions {
    /// `--snapshot-in FILE`: warm-start from this snapshot at boot.
    pub snapshot_in: Option<String>,
    /// `--snapshot-out FILE`: write a snapshot after graceful shutdown.
    pub snapshot_out: Option<String>,
    /// `--snapshot-lenient`: when the snapshot is rejected, log why and
    /// boot cold instead of refusing to start.
    pub lenient: bool,
}

/// Read and validate a snapshot file against the requested spec.
fn load_snapshot(
    path: &str,
    validate: impl FnOnce(&Snapshot) -> Result<(), SnapshotError>,
) -> Result<Snapshot, SnapshotError> {
    let snap = Snapshot::read_from(path)?;
    validate(&snap)?;
    Ok(snap)
}

/// Announce a warm boot before the listening banner, so operators (and
/// CI greps) can tell the factor-stats recomputation was skipped.
fn warm_banner(out: &mut dyn Write, path: &str, expr: &str, info: &WarmInfo) -> CmdResult {
    writeln!(
        out,
        "warm start: restored '{expr}' from {path} in {:.1} ms ({} cache entries)",
        info.load_ns as f64 / 1e6,
        info.cache_entries_restored,
    )?;
    Ok(())
}

/// After a graceful shutdown, persist the server's state if asked to.
fn write_snapshot_on_shutdown(
    snapshot: &SnapshotOptions,
    state: &ServeState,
    out: &mut dyn Write,
) -> CmdResult {
    if let Some(path) = &snapshot.snapshot_out {
        let snap = state.to_snapshot(DEFAULT_CACHE_TOP_K);
        snap.write_to(path)?;
        writeln!(
            out,
            "snapshot written to {path} ({} cache entries)",
            snap.cache.len()
        )?;
    }
    Ok(())
}

/// `bikron stats A B MODE` — print a Table-I-style report for the product
/// of two factors, entirely from ground truth.
pub fn stats(a: &Graph, b: &Graph, mode: SelfLoopMode, out: &mut dyn Write) -> CmdResult {
    let prod = KroneckerProduct::new(a, b, mode)?;
    let st = predict_structure(&prod);
    writeln!(
        out,
        "factors: A({} v, {} e)  B({} v, {} e)  mode {:?}",
        a.num_vertices(),
        a.num_edges(),
        b.num_vertices(),
        b.num_edges(),
        mode
    )?;
    writeln!(
        out,
        "product: {} vertices, {} edges",
        prod.num_vertices(),
        prod.num_edges()
    )?;
    writeln!(
        out,
        "structure: bipartite={} connected={} components={:?} parts={:?} theorem={:?}",
        st.bipartite, st.connected, st.num_components, st.parts, st.theorem
    )?;
    let gt = GroundTruth::new(prod.clone())?;
    writeln!(out, "global 4-cycles: {}", gt.global_squares()?)?;
    writeln!(
        out,
        "max degree: {}",
        bikron_core::truth::degrees::max_degree(&prod)
    )?;
    let hist = bikron_core::truth::degrees::degree_histogram(&prod);
    let distinct = hist.len();
    writeln!(out, "degree histogram: {distinct} distinct degrees")?;
    Ok(())
}

/// `bikron factor SPEC` — inspect one factor graph.
pub fn factor_report(g: &Graph, out: &mut dyn Write) -> CmdResult {
    writeln!(
        out,
        "vertices: {}  edges: {}  self-loops: {}  max-degree: {}",
        g.num_vertices(),
        g.num_edges(),
        g.num_self_loops(),
        g.max_degree()
    )?;
    let comps = connected_components(g);
    writeln!(out, "components: {}", comps.count)?;
    match bipartition(g) {
        Some(b) => writeln!(out, "bipartite: yes (|U|={}, |W|={})", b.u_len(), b.w_len())?,
        None => writeln!(out, "bipartite: no")?,
    }
    if g.has_no_self_loops() {
        let fs = FactorStats::compute(g)?;
        writeln!(out, "global 4-cycles: {}", fs.global_squares())?;
        let t: i128 = fs.diag_a3.iter().sum::<i128>() / 6;
        writeln!(out, "global triangles: {t}")?;
    }
    Ok(())
}

/// `bikron generate A B MODE --parts N --out PREFIX [--annotate]` —
/// stream the product to `PREFIX.partK.el` (or `.tsv` annotated) files.
/// Returns the total edges written.
pub fn generate(
    a: &Graph,
    b: &Graph,
    mode: SelfLoopMode,
    parts: usize,
    out_prefix: &str,
    annotate: bool,
    log: &mut dyn Write,
) -> Result<u64, Box<dyn std::error::Error>> {
    let prod = KroneckerProduct::new(a, b, mode)?;
    let sa = FactorStats::compute(a)?;
    let sb = FactorStats::compute(b)?;
    let ps = PartitionedStream::new(&prod, &sa, &sb, parts);
    let mut total = 0u64;
    for part in 0..parts {
        let ext = if annotate { "tsv" } else { "el" };
        let path = format!("{out_prefix}.part{part}.{ext}");
        let file = std::fs::File::create(&path)?;
        let mut w = std::io::BufWriter::new(file);
        let n = if annotate {
            ps.write_annotated(part, &mut w)?
        } else {
            ps.write_edges(part, &mut w)?
        };
        writeln!(log, "wrote {n} edges to {path}")?;
        total += n;
    }
    assert_eq!(total, prod.num_edges(), "partition coverage invariant");
    Ok(total)
}

/// `bikron validate A B MODE CLAIMED` — compare a claimed global 4-cycle
/// count against ground truth. Returns whether the claim was correct.
pub fn validate(
    a: &Graph,
    b: &Graph,
    mode: SelfLoopMode,
    claimed: u64,
    out: &mut dyn Write,
) -> Result<bool, Box<dyn std::error::Error>> {
    let prod = KroneckerProduct::new(a, b, mode)?;
    let gt = GroundTruth::new(prod)?;
    let v = gt.validate_global(claimed)?;
    if v.ok {
        writeln!(out, "OK: claimed count {claimed} matches ground truth")?;
    } else {
        writeln!(
            out,
            "MISMATCH: claimed {claimed}, ground truth {} (off by {})",
            v.truth,
            claimed.abs_diff(v.truth)
        )?;
    }
    Ok(v.ok)
}

/// `bikron parts A B MODE` — report the bipartition layout of the
/// product (which vertices are U-side), summarised.
pub fn parts(a: &Graph, b: &Graph, mode: SelfLoopMode, out: &mut dyn Write) -> CmdResult {
    let prod = KroneckerProduct::new(a, b, mode)?;
    match product_bipartition(&prod) {
        Some(bip) => writeln!(
            out,
            "bipartition from factor B: |U|={} |W|={} (side of p = side_B(p mod {}))",
            bip.u_len(),
            bip.w_len(),
            b.num_vertices()
        )?,
        None => writeln!(out, "product is not bipartite via factor B")?,
    }
    Ok(())
}

/// `bikron verify-file FILE.tsv` — reload an annotated TSV written by
/// `generate --annotate` (possibly several concatenated partitions),
/// rebuild the graph from its edges, recount per-edge 4-cycles with the
/// independent direct algorithm, and compare against the annotation
/// column. Returns `Ok(true)` when every annotation matches.
///
/// Note: the file must contain the *complete* product (all partitions) —
/// per-edge counts on a partial subgraph are lower, and the mismatch
/// report will say so.
pub fn verify_file(tsv: &str, out: &mut dyn Write) -> Result<bool, Box<dyn std::error::Error>> {
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut annotated: Vec<(usize, usize, u64)> = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in tsv.lines().enumerate() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = t.split('\t').collect();
        if cols.len() != 5 {
            return Err(format!("line {}: expected 5 TSV columns", lineno + 1).into());
        }
        let p: usize = cols[0].parse()?;
        let q: usize = cols[1].parse()?;
        let squares: u64 = cols[4].parse()?;
        max_v = max_v.max(p).max(q);
        edges.push((p, q));
        annotated.push((p.min(q), p.max(q), squares));
    }
    if edges.is_empty() {
        writeln!(out, "empty file: nothing to verify")?;
        return Ok(true);
    }
    let g = Graph::from_edges(max_v + 1, &edges)?;
    let direct = bikron_analytics::butterflies_per_edge(&g);
    let mut mismatches = 0u64;
    for &(p, q, claimed) in &annotated {
        let measured = direct.get(p, q).unwrap_or(0);
        if measured != claimed {
            mismatches += 1;
            if mismatches <= 5 {
                writeln!(
                    out,
                    "MISMATCH edge ({p},{q}): annotated {claimed}, measured {measured}"
                )?;
            }
        }
    }
    if mismatches == 0 {
        writeln!(out, "OK: {} annotated edges all verified", annotated.len())?;
        Ok(true)
    } else {
        writeln!(
            out,
            "{mismatches} of {} annotations mismatched (is the file the full product?)",
            annotated.len()
        )?;
        Ok(false)
    }
}

/// `bikron serve A B MODE` — run the ground-truth query service until a
/// signal or the token-gated `/v1/shutdown` endpoint stops it. Takes the
/// factors by value: the server owns them for its whole lifetime.
pub fn serve(
    a: Graph,
    b: Graph,
    mode: SelfLoopMode,
    config: ServerConfig,
    options: ServeOptions,
    snapshot: SnapshotOptions,
    out: &mut dyn Write,
) -> CmdResult {
    let cache_entries = options.cache_entries;
    let state = match &snapshot.snapshot_in {
        Some(path) => match load_snapshot(path, |s| s.validate_pair(&a, &b, mode)) {
            Ok(snap) => {
                let (st, info) = ServeState::build_from_snapshot(snap, options)?;
                warm_banner(out, path, st.expr(), &info)?;
                std::sync::Arc::new(st)
            }
            Err(e) if snapshot.lenient => {
                writeln!(
                    out,
                    "snapshot {path} rejected ({e}); booting cold (--snapshot-lenient)"
                )?;
                std::sync::Arc::new(ServeState::build_with(a, b, mode, options)?)
            }
            Err(e) => return Err(format!("--snapshot-in {path}: {e}").into()),
        },
        None => std::sync::Arc::new(ServeState::build_with(a, b, mode, options)?),
    };
    bikron_serve::signal::install();
    let server = Server::bind(config.clone(), std::sync::Arc::clone(&state))?;
    writeln!(
        out,
        "listening on http://{} ({} worker(s), queue {}, cache {}, batch ≤ {}{}) — stop with ctrl-c",
        server.local_addr()?,
        config.threads.max(1),
        config.queue_capacity.max(1),
        if cache_entries > 0 {
            format!("{cache_entries} entries")
        } else {
            "off".to_string()
        },
        state.batch_max(),
        shard_banner(&state),
    )?;
    out.flush()?;
    server.run()?;
    write_snapshot_on_shutdown(&snapshot, &state, out)?;
    writeln!(out, "shutdown complete")?;
    Ok(())
}

/// `bikron serve --expr EXPR NAME=SPEC...` — run the query service over
/// an arbitrary Kronecker program (`(A+I)⊗B⊗C`, `A^{⊗3}`, …) with
/// compositional ground truth. Bindings map each name in the expression
/// to a factor spec; the chain evaluator rejects unbound or duplicate
/// names with a structural error.
pub fn serve_expr(
    expr: &str,
    bindings: Vec<(String, Graph)>,
    config: ServerConfig,
    options: ServeOptions,
    snapshot: SnapshotOptions,
    out: &mut dyn Write,
) -> CmdResult {
    let chain = bikron_sparse::parse_expr(expr).map_err(|e| render_expr_error(expr, &e))?;
    let levels: Vec<(String, bool)> = chain
        .levels
        .iter()
        .map(|l| (l.name.clone(), l.plus_identity))
        .collect();
    // The canonical spelling a snapshot must match; KronChain builds the
    // same string, but validation has to happen *before* the expensive
    // cold construction.
    let canonical = levels
        .iter()
        .map(|(name, pi)| {
            if *pi {
                format!("({name}+I)")
            } else {
                name.clone()
            }
        })
        .collect::<Vec<_>>()
        .join("⊗");
    let cache_entries = options.cache_entries;
    let state = match &snapshot.snapshot_in {
        Some(path) => match load_snapshot(path, |s| s.validate_expr(&canonical, &bindings)) {
            Ok(snap) => {
                let (st, info) = ServeState::build_from_snapshot(snap, options)?;
                warm_banner(out, path, st.expr(), &info)?;
                std::sync::Arc::new(st)
            }
            Err(e) if snapshot.lenient => {
                writeln!(
                    out,
                    "snapshot {path} rejected ({e}); booting cold (--snapshot-lenient)"
                )?;
                std::sync::Arc::new(ServeState::build_expr(bindings, &levels, options)?)
            }
            Err(e) => return Err(format!("--snapshot-in {path}: {e}").into()),
        },
        None => std::sync::Arc::new(ServeState::build_expr(bindings, &levels, options)?),
    };
    bikron_serve::signal::install();
    let server = Server::bind(config.clone(), std::sync::Arc::clone(&state))?;
    writeln!(
        out,
        "serving {} on http://{} ({} worker(s), queue {}, cache {}, batch ≤ {}{}) — stop with ctrl-c",
        state.expr(),
        server.local_addr()?,
        config.threads.max(1),
        config.queue_capacity.max(1),
        if cache_entries > 0 {
            format!("{cache_entries} entries")
        } else {
            "off".to_string()
        },
        state.batch_max(),
        shard_banner(&state),
    )?;
    out.flush()?;
    server.run()?;
    write_snapshot_on_shutdown(&snapshot, &state, out)?;
    writeln!(out, "shutdown complete")?;
    Ok(())
}

/// `, shard I/N owning [lo, hi)` when the server is a cluster shard;
/// empty for a whole-keyspace server.
fn shard_banner(state: &ServeState) -> String {
    match state.shard() {
        Some((index, count)) => {
            let (lo, hi) = bikron_core::partition::block_range(state.num_vertices(), count, index);
            format!(", shard {index}/{count} owning [{lo}, {hi})")
        }
        None => String::new(),
    }
}

/// `bikron router --shards URL,URL,...` — run the scatter-gather front
/// for a sharded serve cluster until a signal stops it. Hands back the
/// handshake error (unreachable shard, shuffled list, mismatched
/// factors) before binding the client-facing listener.
pub fn router(
    shards: &[String],
    config: bikron_router::RouterConfig,
    options: bikron_router::RouterOptions,
    out: &mut dyn Write,
) -> CmdResult {
    let state = std::sync::Arc::new(bikron_router::RouterState::connect(shards, options)?);
    bikron_serve::signal::install();
    let server = bikron_router::RouterServer::bind(config.clone(), std::sync::Arc::clone(&state))?;
    writeln!(
        out,
        "router listening on http://{} fronting {} shard(s) over {} vertices ({} worker(s), queue {}) — stop with ctrl-c",
        server.local_addr()?,
        state.num_shards(),
        state.num_vertices(),
        config.threads.max(1),
        config.queue_capacity.max(1),
    )?;
    for (i, addr) in state.shard_addrs().iter().enumerate() {
        let (lo, hi) =
            bikron_core::partition::block_range(state.num_vertices(), state.num_shards(), i);
        writeln!(out, "  shard {i}: http://{addr} owns [{lo}, {hi})")?;
    }
    out.flush()?;
    server.run()?;
    writeln!(out, "router shutdown complete")?;
    Ok(())
}

/// `bikron promcheck FILE` — validate a saved Prometheus text-exposition
/// scrape. Returns whether the file passed.
pub fn promcheck(text: &str, out: &mut dyn Write) -> Result<bool, Box<dyn std::error::Error>> {
    match bikron_obs::prom::check_exposition(text) {
        Ok(()) => {
            let samples = text
                .lines()
                .filter(|l| !l.is_empty() && !l.starts_with('#'))
                .count();
            writeln!(out, "OK: {samples} samples, exposition format valid")?;
            Ok(true)
        }
        Err(e) => {
            writeln!(out, "INVALID: {e}")?;
            Ok(false)
        }
    }
}

/// Render an expression parse error with the offending input and a caret
/// under the failing column, so `bikron serve --expr` failures point at
/// the exact token. Columns are 1-based characters (the multi-byte `⊗`
/// counts as one), matching [`bikron_sparse::ExprParseError`].
pub fn render_expr_error(expr: &str, e: &bikron_sparse::ExprParseError) -> String {
    let pad = " ".repeat(e.column.saturating_sub(1));
    format!("--expr parse failed at {e}\n  {expr}\n  {pad}^")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_generators::{complete_bipartite, crown, cycle};

    #[test]
    fn stats_runs_and_reports() {
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let mut buf = Vec::new();
        stats(&a, &b, SelfLoopMode::None, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("bipartite=true connected=true"));
        assert!(text.contains("global 4-cycles"));
    }

    #[test]
    fn factor_report_contents() {
        // crown(4) = K_{4,4} minus a perfect matching: C(4,2) pairs of
        // left vertices, each sharing exactly 2 neighbours → 6 squares.
        let g = crown(4);
        let mut buf = Vec::new();
        factor_report(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("bipartite: yes"));
        assert!(text.contains("global 4-cycles: 6"));
        assert!(text.contains("global triangles: 0"));
    }

    #[test]
    fn generate_writes_partition_files() {
        let a = cycle(3);
        let b = complete_bipartite(2, 2);
        let dir = std::env::temp_dir().join("bikron_gen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("prod").display().to_string();
        let mut log = Vec::new();
        let total = generate(&a, &b, SelfLoopMode::None, 2, &prefix, false, &mut log).unwrap();
        assert_eq!(total, 24); // nnz(C3)=6, nnz(K22)=8 → 48/2
        let p0 = std::fs::read_to_string(format!("{prefix}.part0.el")).unwrap();
        let p1 = std::fs::read_to_string(format!("{prefix}.part1.el")).unwrap();
        assert_eq!(p0.lines().count() + p1.lines().count(), 24);
    }

    #[test]
    fn validate_accepts_and_rejects() {
        let a = crown(3);
        let b = complete_bipartite(2, 2);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let truth = GroundTruth::new(prod).unwrap().global_squares().unwrap();
        let mut buf = Vec::new();
        assert!(validate(&a, &b, SelfLoopMode::FactorA, truth, &mut buf).unwrap());
        assert!(!validate(&a, &b, SelfLoopMode::FactorA, truth + 7, &mut buf).unwrap());
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("MISMATCH"));
        assert!(text.contains("off by 7"));
    }

    #[test]
    fn verify_file_round_trip() {
        // Generate annotated partitions, concatenate, verify.
        let a = cycle(3);
        let b = complete_bipartite(2, 2);
        let dir = std::env::temp_dir().join("bikron_verify_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("ann").display().to_string();
        let mut log = Vec::new();
        generate(&a, &b, SelfLoopMode::None, 2, &prefix, true, &mut log).unwrap();
        let mut tsv = std::fs::read_to_string(format!("{prefix}.part0.tsv")).unwrap();
        tsv += &std::fs::read_to_string(format!("{prefix}.part1.tsv")).unwrap();
        let mut out = Vec::new();
        assert!(verify_file(&tsv, &mut out).unwrap());
        // Corrupt one annotation → detected.
        let corrupted = {
            let mut lines: Vec<String> = tsv.lines().map(String::from).collect();
            let mut cols: Vec<String> = lines[0].split('\t').map(String::from).collect();
            let bumped: u64 = cols[4].parse::<u64>().unwrap() + 1;
            cols[4] = bumped.to_string();
            lines[0] = cols.join("\t");
            lines.join("\n")
        };
        let mut out2 = Vec::new();
        assert!(!verify_file(&corrupted, &mut out2).unwrap());
        assert!(String::from_utf8(out2).unwrap().contains("MISMATCH"));
    }

    #[test]
    fn verify_file_rejects_malformed() {
        assert!(verify_file("1\t2\t3\n", &mut Vec::new()).is_err());
        assert!(verify_file("", &mut Vec::new()).unwrap());
    }

    #[test]
    fn expr_error_renders_column_caret() {
        let input = "(A+⊗B";
        let e = bikron_sparse::parse_expr(input).unwrap_err();
        let text = render_expr_error(input, &e);
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("--expr parse failed at column "),
            "{text}"
        );
        assert_eq!(lines[1], format!("  {input}"));
        // The caret sits under the reported (1-based, char-counted)
        // column, two display cells in from the margin like the input.
        assert_eq!(lines[2].chars().count(), e.column + 2);
        assert!(lines[2].ends_with('^'));
    }

    #[test]
    fn serve_expr_surfaces_unbound_name() {
        let mut out = Vec::new();
        let err = serve_expr(
            "A⊗B",
            vec![("A".into(), cycle(5))],
            ServerConfig::default(),
            ServeOptions::default(),
            SnapshotOptions::default(),
            &mut out,
        )
        .unwrap_err();
        assert!(err.to_string().contains('B'), "{err}");
    }

    #[test]
    fn parts_summary() {
        let a = cycle(3);
        let b = complete_bipartite(2, 3);
        let mut buf = Vec::new();
        parts(&a, &b, SelfLoopMode::None, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("|U|=6 |W|=9"));
    }
}
