//! `bikron replay ACCESS_LOG URL`: re-issue a recorded access log
//! against a live server.
//!
//! The input is the JSON-lines file `bikron serve --access-log` writes.
//! Paths were normalised to bounded-cardinality *shapes* at record time
//! (`/v1/vertex/17` → `/v1/vertex/{n}`), so replay re-materialises each
//! `{n}` with a deterministic, seeded sample drawn from the target
//! server's own vertex count (`/v1/stats`). That keeps the replayed
//! *workload mix* — endpoint shapes, their proportions, and optionally
//! their recorded arrival rhythm — faithful to production, which is
//! what cache warming and capacity planning need; the exact key values
//! are intentionally not reconstructible from a shape log.
//!
//! Rate control (DESIGN.md §14): `--speed X` scales the recorded
//! inter-arrival gaps (2 = twice as fast; 0, the default, replays at
//! full speed), `--max-rps N` imposes a hard rate cap on top, and
//! `--count K` stops after K replayed requests. `--dry-run` parses and
//! plans without opening a socket — CI uses it to check a log is
//! replayable before spending the traffic.
//!
//! Lines that cannot be replayed are *skipped*, never errored: non-GET
//! methods (batch POST bodies are not recorded), admin and shutdown
//! endpoints, and non-access log lines. Transport failures and 5xx
//! responses count as errors; the process exits non-zero if any
//! occurred.

use std::io::{BufRead as _, BufReader, Read as _, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::monitor::{http_get, parse_host_port};

/// Parsed `bikron replay` invocation.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// Path of the recorded JSON-lines access log.
    pub log_path: String,
    /// Target host.
    pub host: String,
    /// Target port.
    pub port: u16,
    /// Recorded-gap multiplier; 0 disables pacing entirely.
    pub speed: f64,
    /// Hard requests-per-second cap (applied after `speed`); 0 = none.
    pub max_rps: u64,
    /// Stop after this many replayed requests; 0 = the whole log.
    pub count: u64,
    /// Parse and plan only; do not connect.
    pub dry_run: bool,
    /// Seed for the deterministic `{n}` materialiser.
    pub seed: u64,
    /// Label folded into `replay.{label}.*` metric names.
    pub label: String,
    /// Write a `BENCH_`-style metrics report here after the run.
    pub out: Option<String>,
}

impl ReplayConfig {
    /// Parse `ACCESS_LOG URL [--speed X] [--max-rps N] [--count K]
    /// [--seed N] [--label NAME] [--out FILE] [--dry-run]`.
    pub fn parse(args: &[String]) -> Result<ReplayConfig, String> {
        let mut positional: Vec<&String> = Vec::new();
        let mut cfg = ReplayConfig {
            log_path: String::new(),
            host: String::new(),
            port: 0,
            speed: 0.0,
            max_rps: 0,
            count: 0,
            dry_run: false,
            seed: 0x5eed,
            label: String::new(),
            out: None,
        };
        let mut i = 0;
        while i < args.len() {
            let need_value = |i: usize| {
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| format!("replay: {} requires a value", args[i]))
            };
            match args[i].as_str() {
                "--dry-run" => {
                    cfg.dry_run = true;
                    i += 1;
                    continue;
                }
                "--speed" => {
                    let v = need_value(i)?;
                    cfg.speed = v
                        .parse()
                        .map_err(|e| format!("replay: bad --speed {v:?}: {e}"))?;
                    if cfg.speed < 0.0 {
                        return Err(format!("replay: --speed must be ≥ 0, got {v}"));
                    }
                }
                "--max-rps" => {
                    let v = need_value(i)?;
                    cfg.max_rps = v
                        .parse()
                        .map_err(|e| format!("replay: bad --max-rps {v:?}: {e}"))?;
                }
                "--count" => {
                    let v = need_value(i)?;
                    cfg.count = v
                        .parse()
                        .map_err(|e| format!("replay: bad --count {v:?}: {e}"))?;
                }
                "--seed" => {
                    let v = need_value(i)?;
                    cfg.seed = v
                        .parse()
                        .map_err(|e| format!("replay: bad --seed {v:?}: {e}"))?;
                }
                "--label" => cfg.label = need_value(i)?,
                "--out" => cfg.out = Some(need_value(i)?),
                other if other.starts_with("--") => {
                    return Err(format!("replay: unknown argument {other:?}"))
                }
                _ => {
                    positional.push(&args[i]);
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        match positional.as_slice() {
            [log, url] => {
                cfg.log_path = (*log).clone();
                let (host, port) = parse_host_port(url)?;
                cfg.host = host;
                cfg.port = port;
                Ok(cfg)
            }
            _ => Err("replay: expected ACCESS_LOG URL".to_string()),
        }
    }
}

/// One replayable request recovered from the log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessLine {
    /// Millisecond timestamp the request was recorded at.
    pub ts_ms: u64,
    /// The normalised path shape, e.g. `/v1/vertex/{n}`.
    pub path_shape: String,
}

/// Split a recorded access log into replayable lines and a skip count.
///
/// Skipped (by design, not error): blank lines, non-`access` events,
/// non-GET methods, and the `/v1/shutdown` / `/v1/admin/*` endpoints —
/// replaying a recorded shutdown would be a remarkable footgun.
pub fn parse_access_log(text: &str) -> (Vec<AccessLine>, u64) {
    let mut lines = Vec::new();
    let mut skipped = 0u64;
    for raw in text.lines() {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let is_access = json_str_field(raw, "target") == Some("access");
        let method = json_str_field(raw, "method");
        let path = json_str_field(raw, "path");
        let ts_ms = json_u64_field(raw, "ts_ms");
        match (is_access, method, path, ts_ms) {
            (true, Some("GET"), Some(p), Some(ts))
                if !p.starts_with("/v1/shutdown") && !p.starts_with("/v1/admin") =>
            {
                lines.push(AccessLine {
                    ts_ms: ts,
                    path_shape: p.to_string(),
                });
            }
            _ => skipped += 1,
        }
    }
    (lines, skipped)
}

/// Extract a string field from one flat JSON log line
/// (`"key": "value"` with the exact spacing `LogEvent` emits).
fn json_str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let end = line[start..].find('"')? + start;
    Some(&line[start..end])
}

/// Extract a numeric field from one flat JSON log line.
fn json_u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// xorshift64* — deterministic `{n}` sampling, seeded per run.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Fill a path shape's `{n}` holes with sampled vertices in `[0, n)`.
///
/// `/v1/edges/{part}/{parts}` is special-cased to the full single-part
/// page (`0/1`): its holes are a partition index, not vertices, and a
/// random pair would usually be out of range.
fn materialize(shape: &str, n: u64, rng: &mut Rng) -> String {
    if shape.starts_with("/v1/edges/") {
        return "/v1/edges/0/1".to_string();
    }
    let mut out = String::with_capacity(shape.len());
    let mut rest = shape;
    while let Some(at) = rest.find("{n}") {
        out.push_str(&rest[..at]);
        out.push_str(&(rng.next() % n.max(1)).to_string());
        rest = &rest[at + 3..];
    }
    out.push_str(rest);
    out
}

/// Outcome of a replay run, for summaries and the metrics report.
pub struct ReplaySummary {
    /// Requests actually issued (or planned, under `--dry-run`).
    pub replayed: u64,
    /// Log lines that were not replayable.
    pub skipped: u64,
    /// Transport failures plus 5xx responses.
    pub errors: u64,
    /// Wall-clock duration of the replay loop.
    pub elapsed: Duration,
    /// Sorted per-request latencies (empty under `--dry-run`).
    pub latencies_ns: Vec<u64>,
}

impl ReplaySummary {
    /// Replayed requests per second.
    pub fn rps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.replayed as f64 / self.elapsed.as_secs_f64()
    }

    /// Median request latency (nearest-rank) in nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        percentile(&self.latencies_ns, 0.50)
    }

    /// 99th-percentile request latency in nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        percentile(&self.latencies_ns, 0.99)
    }

    /// `replay.{key}` or `replay.{label}.{key}` — same labelling scheme
    /// as loadgen reports, so perfdiff can watch either.
    pub fn metric_name(&self, label: &str, key: &str) -> String {
        if label.is_empty() {
            format!("replay.{key}")
        } else {
            format!("replay.{label}.{key}")
        }
    }

    /// Record the headline numbers into the global metrics registry.
    pub fn emit(&self, label: &str) {
        let obs = bikron_obs::global();
        obs.counter(&self.metric_name(label, "replayed"))
            .add(self.replayed);
        obs.counter(&self.metric_name(label, "skipped"))
            .add(self.skipped);
        obs.counter(&self.metric_name(label, "errors"))
            .add(self.errors);
        obs.counter(&self.metric_name(label, "rps"))
            .add(self.rps().round() as u64);
        obs.counter(&self.metric_name(label, "p50_ns"))
            .add(self.p50_ns());
        obs.counter(&self.metric_name(label, "p99_ns"))
            .add(self.p99_ns());
        obs.counter(&self.metric_name(label, "elapsed_ms"))
            .add(self.elapsed.as_millis() as u64);
        let hist = obs.histogram(&self.metric_name(label, "request_ns"));
        for &ns in &self.latencies_ns {
            hist.record(ns);
        }
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Keep-alive HTTP/1.1 client for the replay loop (one fresh
/// `http_get` connection per request would distort the latency tail).
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl Client {
    fn connect(host: &str, port: u16) -> Result<Self, String> {
        let addr = format!("{host}:{port}");
        let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .map_err(|e| e.to_string())?;
        // One small request per round trip: without NODELAY, Nagle holds
        // each request for the peer's delayed ACK (~40 ms), wrecking both
        // the replay rate and the latencies it reports.
        stream.set_nodelay(true).map_err(|e| e.to_string())?;
        let writer = stream.try_clone().map_err(|e| e.to_string())?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            host: host.to_string(),
        })
    }

    /// Issue one GET; returns the response status.
    fn get(&mut self, path: &str) -> Result<u16, String> {
        let request = format!("GET {path} HTTP/1.1\r\nHost: {}\r\n\r\n", self.host);
        self.writer
            .write_all(request.as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| format!("status line: {e}"))?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line {line:?}"))?;
        let mut content_length = 0usize;
        loop {
            let mut h = String::new();
            self.reader
                .read_line(&mut h)
                .map_err(|e| format!("header: {e}"))?;
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|e| format!("content-length: {e}"))?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader
            .read_exact(&mut body)
            .map_err(|e| format!("body: {e}"))?;
        Ok(status)
    }
}

/// Run the replay. Returns `Ok(true)` when every replayed request got a
/// non-5xx response, `Ok(false)` otherwise (mapped to exit code 2).
pub fn run(cfg: &ReplayConfig, out: &mut dyn Write) -> Result<bool, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(&cfg.log_path)
        .map_err(|e| format!("replay: {}: {e}", cfg.log_path))?;
    let (mut lines, skipped) = parse_access_log(&text);
    if cfg.count > 0 {
        lines.truncate(cfg.count as usize);
    }

    if cfg.dry_run {
        let summary = ReplaySummary {
            replayed: lines.len() as u64,
            skipped,
            errors: 0,
            elapsed: Duration::ZERO,
            latencies_ns: Vec::new(),
        };
        writeln!(
            out,
            "replay (dry-run): {} replayable request(s), {} skipped line(s) in {}",
            summary.replayed, summary.skipped, cfg.log_path
        )?;
        finish(cfg, &summary)?;
        return Ok(true);
    }

    // The target's vertex count bounds the `{n}` samples.
    let (status, stats) = http_get(&cfg.host, cfg.port, "/v1/stats")
        .map_err(|e| format!("replay: GET /v1/stats: {e}"))?;
    if status != 200 {
        return Err(format!("replay: GET /v1/stats returned {status}").into());
    }
    let n = json_u64_field(&stats, "vertices")
        .ok_or("replay: /v1/stats did not report a vertex count")?;

    let mut rng = Rng(cfg.seed);
    let mut client = Client::connect(&cfg.host, cfg.port)?;
    let mut replayed = 0u64;
    let mut errors = 0u64;
    let mut latencies = Vec::with_capacity(lines.len());
    let base_ts = lines.first().map(|l| l.ts_ms).unwrap_or(0);
    let started = Instant::now();
    for line in &lines {
        // Pacing: recorded rhythm first, hard rate cap second.
        if cfg.speed > 0.0 {
            let target_ms = (line.ts_ms.saturating_sub(base_ts)) as f64 / cfg.speed;
            let target = Duration::from_millis(target_ms as u64);
            let elapsed = started.elapsed();
            if target > elapsed {
                std::thread::sleep(target - elapsed);
            }
        }
        // checked_div doubles as the off switch: --max-rps 0 → None.
        if let Some(floor_ms) = (replayed * 1000).checked_div(cfg.max_rps) {
            let floor = Duration::from_millis(floor_ms);
            let elapsed = started.elapsed();
            if floor > elapsed {
                std::thread::sleep(floor - elapsed);
            }
        }
        let path = materialize(&line.path_shape, n, &mut rng);
        let t0 = Instant::now();
        match client.get(&path) {
            Ok(status) => {
                latencies.push(t0.elapsed().as_nanos() as u64);
                replayed += 1;
                if status >= 500 {
                    errors += 1;
                }
            }
            Err(_) => {
                // One reconnect per failure; a dead server fails fast
                // because the reconnect itself errors.
                errors += 1;
                match Client::connect(&cfg.host, cfg.port) {
                    Ok(c) => client = c,
                    Err(e) => return Err(format!("replay: reconnect failed: {e}").into()),
                }
            }
        }
    }
    latencies.sort_unstable();
    let summary = ReplaySummary {
        replayed,
        skipped,
        errors,
        elapsed: started.elapsed(),
        latencies_ns: latencies,
    };
    writeln!(
        out,
        "replay{}: {} replayed, {} skipped, {} error(s) in {:.2}s → {:.0} req/s \
         (p50 {:.1}µs, p99 {:.1}µs)",
        if cfg.label.is_empty() {
            String::new()
        } else {
            format!(" [{}]", cfg.label)
        },
        summary.replayed,
        summary.skipped,
        summary.errors,
        summary.elapsed.as_secs_f64(),
        summary.rps(),
        summary.p50_ns() as f64 / 1e3,
        summary.p99_ns() as f64 / 1e3,
    )?;
    finish(cfg, &summary)?;
    Ok(summary.errors == 0)
}

/// Emit metrics and write the report file when `--out` was given.
fn finish(cfg: &ReplayConfig, summary: &ReplaySummary) -> Result<(), Box<dyn std::error::Error>> {
    let Some(path) = &cfg.out else {
        return Ok(());
    };
    summary.emit(&cfg.label);
    let mut report = bikron_obs::global().snapshot();
    report.set_meta("tool", "bikron-replay");
    report.set_meta("log", cfg.log_path.clone());
    report.set_meta("addr", format!("{}:{}", cfg.host, cfg.port));
    if cfg.speed > 0.0 {
        report.set_meta("speed", cfg.speed.to_string());
    }
    if cfg.max_rps > 0 {
        report.set_meta("max_rps", cfg.max_rps.to_string());
    }
    if cfg.dry_run {
        report.set_meta("dry_run", "true");
    }
    if !cfg.label.is_empty() {
        report.set_meta("label", cfg.label.clone());
    }
    report.write_to_file(std::path::Path::new(path))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(ts: u64, method: &str, path: &str) -> String {
        format!(
            "{{\"ts_ms\": {ts}, \"target\": \"access\", \"method\": \"{method}\", \
             \"path\": \"{path}\", \"status\": 200, \"latency_ns\": 1000, \"bytes\": 10, \
             \"cache\": \"miss\", \"trace_id\": \"abc\"}}"
        )
    }

    #[test]
    fn parses_gets_and_skips_everything_else() {
        let log = [
            line(1, "GET", "/v1/vertex/{n}"),
            line(2, "POST", "/v1/batch"),
            line(3, "GET", "/v1/shutdown"),
            line(4, "GET", "/v1/admin/traces"),
            line(5, "GET", "/v1/edge/{n}/{n}"),
            "{\"ts_ms\": 6, \"target\": \"log\", \"dropped\": 3}".to_string(),
            String::new(),
        ]
        .join("\n");
        let (lines, skipped) = parse_access_log(&log);
        assert_eq!(
            lines,
            vec![
                AccessLine {
                    ts_ms: 1,
                    path_shape: "/v1/vertex/{n}".into()
                },
                AccessLine {
                    ts_ms: 5,
                    path_shape: "/v1/edge/{n}/{n}".into()
                },
            ]
        );
        assert_eq!(skipped, 4);
    }

    #[test]
    fn materialize_is_deterministic_and_in_range() {
        let mut a = Rng(42);
        let mut b = Rng(42);
        let pa = materialize("/v1/edge/{n}/{n}", 30, &mut a);
        let pb = materialize("/v1/edge/{n}/{n}", 30, &mut b);
        assert_eq!(pa, pb);
        for seg in pa.trim_start_matches("/v1/edge/").split('/') {
            let v: u64 = seg.parse().expect("numeric segment");
            assert!(v < 30);
        }
        // Non-hole segments pass through untouched.
        assert_eq!(materialize("/v1/stats", 30, &mut a), "/v1/stats");
        // Edge-stream shapes page the whole set instead of guessing parts.
        assert_eq!(
            materialize("/v1/edges/{n}/{n}", 30, &mut a),
            "/v1/edges/0/1"
        );
    }

    #[test]
    fn config_parses_flags_and_positionals() {
        let args: Vec<String> = [
            "access.log",
            "http://127.0.0.1:7475",
            "--speed",
            "2.5",
            "--count",
            "100",
            "--dry-run",
            "--label",
            "warm",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = ReplayConfig::parse(&args).unwrap();
        assert_eq!(cfg.log_path, "access.log");
        assert_eq!(cfg.host, "127.0.0.1");
        assert_eq!(cfg.port, 7475);
        assert_eq!(cfg.speed, 2.5);
        assert_eq!(cfg.count, 100);
        assert!(cfg.dry_run);
        assert_eq!(cfg.label, "warm");

        assert!(ReplayConfig::parse(&["onlylog".to_string()]).is_err());
        assert!(ReplayConfig::parse(&[
            "a".to_string(),
            "b:1".to_string(),
            "--speed".to_string(),
            "-1".to_string()
        ])
        .is_err());
    }

    #[test]
    fn summary_percentiles_and_metric_names() {
        let s = ReplaySummary {
            replayed: 4,
            skipped: 1,
            errors: 0,
            elapsed: Duration::from_millis(500),
            latencies_ns: vec![10, 20, 30, 40],
        };
        assert_eq!(s.p50_ns(), 20);
        assert_eq!(s.p99_ns(), 40);
        assert_eq!(s.rps(), 8.0);
        assert_eq!(s.metric_name("", "rps"), "replay.rps");
        assert_eq!(s.metric_name("warm", "rps"), "replay.warm.rps");
    }
}
