//! `bikron perfdiff` — compare two `bikron-obs` JSON reports and gate on
//! phase regressions.
//!
//! This turns `BENCH_kron.json` from a file we write into a contract we
//! enforce: CI regenerates the report and diffs it against the committed
//! baseline; any watched phase whose total wall-clock grew beyond the
//! threshold fails the run (unless `--warn-only`). Counters and
//! histogram tails are diffed too — a counter drift means the *workload*
//! changed (formula drift, lost edges), which is worth seeing in the
//! same table even though only phases gate.
//!
//! Reports of both schema versions are accepted ([`bikron_obs::Report::from_json`]);
//! a v1 baseline simply has no histogram rows.
//!
//! With `--profile BASE.folded CAND.folded` the diff runs over sampled
//! CPU profiles instead: per-frame **self-time share** (what fraction of
//! all samples landed in this frame itself) is compared, and a watched
//! frame whose share grew beyond the threshold fails the gate. Shares —
//! not raw sample counts — so a longer candidate run does not read as a
//! regression; an absolute floor of one percentage point keeps sampling
//! noise on cold frames from tripping the relative threshold.

use std::io::Write;

use bikron_obs::profile::frame_totals;
use bikron_obs::{ProfileSnapshot, Report};

/// Configuration for a perfdiff run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfDiffConfig {
    /// Allowed growth of a watched phase's `total_ns`, in percent
    /// (e.g. 25 = up to 1.25× the baseline passes).
    pub threshold_pct: u64,
    /// Report regressions but always pass.
    pub warn_only: bool,
    /// Phases to gate on. `None` gates every top-level phase present in
    /// both reports; an explicit list additionally *requires* each named
    /// phase to exist in both.
    pub watch: Option<Vec<String>>,
}

impl Default for PerfDiffConfig {
    fn default() -> Self {
        PerfDiffConfig {
            // Generous by design: CI wall-clock is noisy, and the gate
            // exists to catch 2× cliffs, not 3% jitter.
            threshold_pct: 25,
            warn_only: false,
            watch: None,
        }
    }
}

/// Outcome of one watched phase.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Verdict {
    Ok,
    Faster,
    Regressed,
    Missing,
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Signed percent delta, one decimal, computed in integer arithmetic.
fn fmt_delta_pct(base: u64, cand: u64) -> String {
    if base == 0 {
        return if cand == 0 {
            "+0.0%".into()
        } else {
            "new".into()
        };
    }
    let (sign, diff) = if cand >= base {
        ("+", cand - base)
    } else {
        ("-", base - cand)
    };
    let tenths = (diff as u128 * 1000 / base as u128) as u64;
    format!("{sign}{}.{}%", tenths / 10, tenths % 10)
}

/// Whether `cand` exceeds `base` by more than `threshold_pct` percent.
fn regressed(base: u64, cand: u64, threshold_pct: u64) -> bool {
    (cand as u128) * 100 > (base as u128) * (100 + threshold_pct as u128)
}

/// Compare `baseline` and `candidate`, print the delta table to `out`,
/// and return `true` when the gate passes (no watched phase regressed,
/// or `warn_only`). An explicitly watched phase missing from either
/// report fails the gate.
pub fn perfdiff(
    baseline: &Report,
    candidate: &Report,
    cfg: &PerfDiffConfig,
    out: &mut dyn Write,
) -> std::io::Result<bool> {
    writeln!(
        out,
        "perfdiff: baseline schema v{}, candidate schema v{}, threshold {}%{}",
        baseline.schema_version(),
        candidate.schema_version(),
        cfg.threshold_pct,
        if cfg.warn_only { " (warn-only)" } else { "" },
    )?;

    // Watched set: explicit list, or all top-level phases in both.
    let watched: Vec<String> = match &cfg.watch {
        Some(list) => list.clone(),
        None => baseline
            .timers()
            .filter(|(name, _)| !name.contains('/') && candidate.timer(name).is_some())
            .map(|(name, _)| name.to_string())
            .collect(),
    };

    writeln!(
        out,
        "\n  {:<34} {:>12} {:>12} {:>9}  status",
        "phase", "base ms", "cand ms", "delta"
    )?;
    let mut failures = 0usize;
    for name in &watched {
        let (verdict, base_ns, cand_ns) = match (baseline.timer(name), candidate.timer(name)) {
            (Some(b), Some(c)) => {
                let v = if regressed(b.total_ns, c.total_ns, cfg.threshold_pct) {
                    Verdict::Regressed
                } else if b.total_ns > 0 && c.total_ns < b.total_ns {
                    Verdict::Faster
                } else {
                    Verdict::Ok
                };
                (v, b.total_ns, c.total_ns)
            }
            (b, c) => (
                Verdict::Missing,
                b.map_or(0, |t| t.total_ns),
                c.map_or(0, |t| t.total_ns),
            ),
        };
        let status = match verdict {
            Verdict::Ok => "ok",
            Verdict::Faster => "faster",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
        };
        if matches!(verdict, Verdict::Regressed | Verdict::Missing) {
            failures += 1;
        }
        writeln!(
            out,
            "  {:<34} {:>12} {:>12} {:>9}  {}",
            name,
            fmt_ms(base_ns),
            fmt_ms(cand_ns),
            fmt_delta_pct(base_ns, cand_ns),
            status,
        )?;
    }

    // Non-gating context: unwatched phases that appeared or vanished.
    for (name, _) in baseline.timers().filter(|(n, _)| !n.contains('/')) {
        if candidate.timer(name).is_none() && !watched.iter().any(|w| w == name) {
            writeln!(out, "  {name:<34} (phase gone from candidate)")?;
        }
    }
    for (name, _) in candidate.timers().filter(|(n, _)| !n.contains('/')) {
        if baseline.timer(name).is_none() && !watched.iter().any(|w| w == name) {
            writeln!(out, "  {name:<34} (new phase in candidate)")?;
        }
    }

    // Counters: exact integers, so any delta is workload drift, not
    // noise. Informational — the phase gate decides pass/fail.
    let mut drift = 0usize;
    let mut header_done = false;
    for (name, b) in baseline.counters() {
        let c = candidate.counter(name).unwrap_or(0);
        if b != c {
            if !header_done {
                writeln!(
                    out,
                    "\n  {:<34} {:>14} {:>14} {:>9}",
                    "counter", "base", "cand", "delta"
                )?;
                header_done = true;
            }
            drift += 1;
            writeln!(
                out,
                "  {:<34} {:>14} {:>14} {:>9}",
                name,
                b,
                c,
                fmt_delta_pct(b, c)
            )?;
        }
    }
    for (name, c) in candidate.counters() {
        if baseline.counter(name).is_none() {
            if !header_done {
                writeln!(
                    out,
                    "\n  {:<34} {:>14} {:>14} {:>9}",
                    "counter", "base", "cand", "delta"
                )?;
                header_done = true;
            }
            drift += 1;
            writeln!(out, "  {:<34} {:>14} {:>14} {:>9}", name, 0, c, "new")?;
        }
    }

    // Histogram tails: distribution shift at p50/p99 for shared names.
    let shared_hists: Vec<&str> = baseline
        .histograms()
        .filter(|(n, _)| candidate.histogram(n).is_some())
        .map(|(n, _)| n)
        .collect();
    if !shared_hists.is_empty() {
        writeln!(
            out,
            "\n  {:<34} {:>14} {:>14} {:>14} {:>14}",
            "histogram", "base p50", "cand p50", "base p99", "cand p99"
        )?;
        for name in shared_hists {
            let b = baseline.histogram(name).expect("filtered on presence");
            let c = candidate.histogram(name).expect("filtered on presence");
            writeln!(
                out,
                "  {:<34} {:>14} {:>14} {:>14} {:>14}",
                name,
                b.percentile(50),
                c.percentile(50),
                b.percentile(99),
                c.percentile(99),
            )?;
        }
    }

    let pass = failures == 0 || cfg.warn_only;
    writeln!(
        out,
        "\nperfdiff: {} watched phase(s), {} regression(s), {} counter drift(s) -> {}",
        watched.len(),
        failures,
        drift,
        if failures == 0 {
            "PASS"
        } else if cfg.warn_only {
            "FAIL (ignored: warn-only)"
        } else {
            "FAIL"
        },
    )?;
    Ok(pass)
}

/// Load both reports from disk and run [`perfdiff`].
pub fn perfdiff_files(
    baseline_path: &str,
    candidate_path: &str,
    cfg: &PerfDiffConfig,
    out: &mut dyn Write,
) -> Result<bool, Box<dyn std::error::Error>> {
    let load = |path: &str| -> Result<Report, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read report {path:?}: {e}"))?;
        Ok(Report::from_json(&text).map_err(|e| format!("in {path:?}: {e}"))?)
    };
    Ok(perfdiff(
        &load(baseline_path)?,
        &load(candidate_path)?,
        cfg,
        out,
    )?)
}

/// Minimum self-time share (basis points of all samples) for a frame to
/// be auto-watched, and the minimum *absolute* share growth before the
/// relative threshold can fail a frame. One percentage point: below
/// that, 99 Hz sampling noise dominates.
const PROFILE_FLOOR_BP: u64 = 100;

/// Self-time share of each frame in basis points (1/100 of a percent)
/// of the snapshot's total samples.
fn self_shares_bp(snap: &ProfileSnapshot) -> std::collections::BTreeMap<String, u64> {
    let total = snap.samples.max(1);
    frame_totals(&snap.stacks)
        .into_iter()
        .map(|(path, stat)| (path, stat.self_samples * 10_000 / total))
        .collect()
}

/// Render basis points as a percentage with one decimal (`1234` → `12.3%`).
fn fmt_bp(bp: u64) -> String {
    format!("{}.{}%", bp / 100, bp % 100 / 10)
}

/// Compare two sampled profiles by per-frame self-time share; print the
/// delta table and return `true` when the gate passes. Watched frames:
/// the explicit `cfg.watch` list (each then *required* in the baseline),
/// or every baseline frame with at least 1% self share. A frame fails
/// when its share grows beyond `threshold_pct` relative *and* by at
/// least one absolute percentage point.
pub fn perfdiff_profiles(
    baseline: &ProfileSnapshot,
    candidate: &ProfileSnapshot,
    cfg: &PerfDiffConfig,
    out: &mut dyn Write,
) -> std::io::Result<bool> {
    writeln!(
        out,
        "perfdiff --profile: baseline {} sample(s), candidate {} sample(s), threshold {}%{}",
        baseline.samples,
        candidate.samples,
        cfg.threshold_pct,
        if cfg.warn_only { " (warn-only)" } else { "" },
    )?;
    let base = self_shares_bp(baseline);
    let cand = self_shares_bp(candidate);

    let watched: Vec<String> = match &cfg.watch {
        Some(list) => list.clone(),
        None => base
            .iter()
            .filter(|&(_, &bp)| bp >= PROFILE_FLOOR_BP)
            .map(|(path, _)| path.clone())
            .collect(),
    };

    writeln!(
        out,
        "\n  {:<44} {:>9} {:>9} {:>9}  status",
        "frame", "base self", "cand self", "delta"
    )?;
    let mut failures = 0usize;
    for name in &watched {
        let (verdict, base_bp, cand_bp) = match (base.get(name), cand.get(name)) {
            (Some(&b), c) => {
                let c = c.copied().unwrap_or(0);
                let v = if regressed(b, c, cfg.threshold_pct)
                    && c.saturating_sub(b) >= PROFILE_FLOOR_BP
                {
                    Verdict::Regressed
                } else if c < b {
                    Verdict::Faster
                } else {
                    Verdict::Ok
                };
                (v, b, c)
            }
            // Only an explicit watch list can name a frame the baseline
            // lacks — that is a config error worth failing on.
            (None, c) => (Verdict::Missing, 0, c.copied().unwrap_or(0)),
        };
        let status = match verdict {
            Verdict::Ok => "ok",
            Verdict::Faster => "faster",
            Verdict::Regressed => "REGRESSED",
            Verdict::Missing => "MISSING",
        };
        if matches!(verdict, Verdict::Regressed | Verdict::Missing) {
            failures += 1;
        }
        writeln!(
            out,
            "  {:<44} {:>9} {:>9} {:>9}  {}",
            name,
            fmt_bp(base_bp),
            fmt_bp(cand_bp),
            fmt_delta_pct(base_bp, cand_bp),
            status,
        )?;
    }

    // Non-gating context: hot frames the candidate grew that the
    // baseline never had — a brand-new hot path is worth eyeballing
    // even though only share growth gates.
    for (name, &bp) in &cand {
        if bp >= PROFILE_FLOOR_BP
            && !base.contains_key(name)
            && !watched.iter().any(|w| w == name)
        {
            writeln!(out, "  {:<44} (new frame at {} self)", name, fmt_bp(bp))?;
        }
    }

    let pass = failures == 0 || cfg.warn_only;
    writeln!(
        out,
        "\nperfdiff --profile: {} watched frame(s), {} regression(s) -> {}",
        watched.len(),
        failures,
        if failures == 0 {
            "PASS"
        } else if cfg.warn_only {
            "FAIL (ignored: warn-only)"
        } else {
            "FAIL"
        },
    )?;
    Ok(pass)
}

/// Load two folded-flamegraph files and run [`perfdiff_profiles`].
pub fn perfdiff_profile_files(
    baseline_path: &str,
    candidate_path: &str,
    cfg: &PerfDiffConfig,
    out: &mut dyn Write,
) -> Result<bool, Box<dyn std::error::Error>> {
    let load = |path: &str| -> Result<ProfileSnapshot, Box<dyn std::error::Error>> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read profile {path:?}: {e}"))?;
        Ok(ProfileSnapshot::parse_folded(&text).map_err(|e| format!("in {path:?}: {e}"))?)
    };
    Ok(perfdiff_profiles(
        &load(baseline_path)?,
        &load(candidate_path)?,
        cfg,
        out,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal report with the given phase totals and counters.
    fn report(timers: &[(&str, u64)], counters: &[(&str, u64)]) -> Report {
        let json = {
            let t: Vec<String> = timers
                .iter()
                .map(|(n, total)| {
                    format!(
                        "\"{n}\": {{\"count\": 1, \"total_ns\": {total}, \"min_ns\": {total}, \"max_ns\": {total}, \"mean_ns\": {total}}}"
                    )
                })
                .collect();
            let c: Vec<String> = counters
                .iter()
                .map(|(n, v)| format!("\"{n}\": {v}"))
                .collect();
            format!(
                "{{\"schema\": \"bikron-obs/2\", \"timers\": {{{}}}, \"counters\": {{{}}}}}",
                t.join(", "),
                c.join(", ")
            )
        };
        Report::from_json(&json).unwrap()
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(&[("generate", 1_000_000)], &[("edges", 42)]);
        let mut out = Vec::new();
        assert!(perfdiff(&r, &r, &PerfDiffConfig::default(), &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("0 regression(s)"), "{text}");
    }

    #[test]
    fn synthetic_regression_fails_the_gate() {
        let base = report(&[("generate", 1_000_000), ("reduce", 500_000)], &[]);
        // generate got 2× slower: beyond any sane threshold.
        let cand = report(&[("generate", 2_000_000), ("reduce", 500_000)], &[]);
        let mut out = Vec::new();
        let pass = perfdiff(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!pass, "2x regression must fail:\n{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("+100.0%"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
    }

    #[test]
    fn threshold_is_respected_and_configurable() {
        let base = report(&[("p", 1_000_000)], &[]);
        let cand = report(&[("p", 1_200_000)], &[]);
        let mut out = Vec::new();
        // +20% passes at the default 25% threshold…
        assert!(perfdiff(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap());
        // …and fails at a 10% threshold.
        let strict = PerfDiffConfig {
            threshold_pct: 10,
            ..PerfDiffConfig::default()
        };
        assert!(!perfdiff(&base, &cand, &strict, &mut out).unwrap());
    }

    #[test]
    fn warn_only_reports_but_passes() {
        let base = report(&[("p", 1_000)], &[]);
        let cand = report(&[("p", 10_000)], &[]);
        let cfg = PerfDiffConfig {
            warn_only: true,
            ..PerfDiffConfig::default()
        };
        let mut out = Vec::new();
        assert!(perfdiff(&base, &cand, &cfg, &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("warn-only"), "{text}");
    }

    #[test]
    fn explicit_watch_requires_presence() {
        let base = report(&[("p", 1_000)], &[]);
        let cand = report(&[("q", 1_000)], &[]);
        let cfg = PerfDiffConfig {
            watch: Some(vec!["p".into()]),
            ..PerfDiffConfig::default()
        };
        let mut out = Vec::new();
        assert!(!perfdiff(&base, &cand, &cfg, &mut out).unwrap());
        assert!(String::from_utf8(out).unwrap().contains("MISSING"));
    }

    #[test]
    fn counter_drift_is_reported_not_gated() {
        let base = report(&[("p", 1_000)], &[("edges", 100)]);
        let cand = report(&[("p", 1_000)], &[("edges", 90), ("squares", 7)]);
        let mut out = Vec::new();
        assert!(perfdiff(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("edges"), "{text}");
        assert!(text.contains("-10.0%"), "{text}");
        assert!(text.contains("2 counter drift(s)"), "{text}");
    }

    #[test]
    fn faster_is_not_a_failure() {
        let base = report(&[("p", 2_000_000)], &[]);
        let cand = report(&[("p", 1_000_000)], &[]);
        let mut out = Vec::new();
        assert!(perfdiff(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap());
        assert!(String::from_utf8(out).unwrap().contains("faster"));
    }

    /// Build a profile snapshot straight from folded text.
    fn profile(folded: &str) -> ProfileSnapshot {
        ProfileSnapshot::parse_folded(folded).unwrap()
    }

    #[test]
    fn profile_synthetic_regression_fails_the_gate() {
        // `evaluate` goes from 50% to 80% self share: a real shift.
        let base = profile("serve;accept 40\nserve;evaluate 50\nserve;write 10\n");
        let cand = profile("serve;accept 15\nserve;evaluate 80\nserve;write 5\n");
        let mut out = Vec::new();
        let pass = perfdiff_profiles(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!pass, "50%->80% self share must fail:\n{text}");
        assert!(text.contains("serve;evaluate"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("50.0%"), "{text}");
        assert!(text.contains("80.0%"), "{text}");
        assert!(text.contains("FAIL"), "{text}");
        // accept shrank — reported as faster, not a failure condition.
        assert!(text.contains("faster"), "{text}");
    }

    #[test]
    fn profile_shares_are_scale_invariant() {
        // The candidate ran 10x longer but the *shape* is identical:
        // raw counts differ by 10x, shares by 0% — must pass.
        let base = profile("a;b 50\na;c 50\n");
        let cand = profile("a;b 500\na;c 500\n");
        let mut out = Vec::new();
        assert!(perfdiff_profiles(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("PASS"), "{text}");
        assert!(text.contains("+0.0%"), "{text}");
    }

    #[test]
    fn profile_floor_shields_cold_frames_from_noise() {
        // A frame at 0.5% tripling to 1.4% is within sampling noise:
        // the absolute floor (1 point) keeps the relative gate quiet.
        let base = profile("hot 995\ncold 5\n");
        let cand = profile("hot 986\ncold 14\n");
        let cfg = PerfDiffConfig {
            watch: Some(vec!["cold".into(), "hot".into()]),
            ..PerfDiffConfig::default()
        };
        let mut out = Vec::new();
        assert!(perfdiff_profiles(&base, &cand, &cfg, &mut out).unwrap());
        // …but the same relative growth above the floor fails.
        let base = profile("hot 80\nwarm 20\n");
        let cand = profile("hot 55\nwarm 45\n");
        let mut out = Vec::new();
        assert!(!perfdiff_profiles(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap());
    }

    #[test]
    fn profile_explicit_watch_requires_presence_and_new_frames_are_noted() {
        let base = profile("a 100\n");
        let cand = profile("a 50\nb 50\n");
        let cfg = PerfDiffConfig {
            watch: Some(vec!["zzz".into()]),
            ..PerfDiffConfig::default()
        };
        let mut out = Vec::new();
        assert!(!perfdiff_profiles(&base, &cand, &cfg, &mut out).unwrap());
        assert!(String::from_utf8(out).unwrap().contains("MISSING"));
        // Default watch: the brand-new hot frame is reported as context.
        let mut out = Vec::new();
        assert!(perfdiff_profiles(&base, &cand, &PerfDiffConfig::default(), &mut out).unwrap());
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("new frame at 50.0% self"), "{text}");
    }

    #[test]
    fn profile_files_load_and_diff() {
        let dir = std::env::temp_dir();
        let base_path = dir.join(format!("bikron-pd-base-{}.folded", std::process::id()));
        let cand_path = dir.join(format!("bikron-pd-cand-{}.folded", std::process::id()));
        std::fs::write(&base_path, "serve;evaluate 90\nserve;write 10\n").unwrap();
        std::fs::write(&cand_path, "serve;evaluate 45\nserve;write 55\n").unwrap();
        let mut out = Vec::new();
        let pass = perfdiff_profile_files(
            base_path.to_str().unwrap(),
            cand_path.to_str().unwrap(),
            &PerfDiffConfig::default(),
            &mut out,
        )
        .unwrap();
        assert!(!pass, "write 10%->55% must fail");
        assert!(perfdiff_profile_files("/no/such/file", "/none", &PerfDiffConfig::default(), &mut Vec::new()).is_err());
        std::fs::remove_file(&base_path).ok();
        std::fs::remove_file(&cand_path).ok();
    }
}
