//! Post-command observability output (`--metrics-out` / `--trace-out` /
//! `--profile-out`).
//!
//! Lives in the library (not `main.rs`) so the error path is
//! unit-testable: a failed command must **still** write its metrics
//! report — that run's phase timers and counters are exactly what you
//! need to debug the failure — stamped with `outcome: error` so tooling
//! can tell partial runs from clean ones.

use crate::GlobalOpts;

/// How the dispatched command ended, recorded as report metadata.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The command ran to completion (including "validation mismatch"
    /// exits — those are answers, not failures).
    Ok,
    /// The command returned an error; the report covers a partial run.
    Error,
}

impl Outcome {
    fn as_str(self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
        }
    }
}

/// Write the metrics report and/or Chrome trace requested by the global
/// flags, stamping the invoking command line and the run outcome as
/// metadata. Called on *both* the success and error paths of `run()`.
pub fn write_observability(
    opts: &GlobalOpts,
    raw_args: &[String],
    outcome: Outcome,
) -> Result<(), Box<dyn std::error::Error>> {
    let prof = bikron_obs::profile::profiler();
    if let Some(path) = &opts.metrics_out {
        let mut report = bikron_obs::global().snapshot();
        report.set_meta("tool", "bikron-cli");
        report.set_meta("command", raw_args.join(" "));
        report.set_meta("outcome", outcome.as_str());
        if prof.sampler_hz() > 0 {
            report.set_profile(prof.snapshot());
        }
        report.write_to_file(std::path::Path::new(path))?;
        eprintln!("metrics written to {path}");
    }
    if let Some(path) = &opts.profile_out {
        // Written even when no sampler ran (hz forced to 0): an empty
        // folded file is an unambiguous "profiling was off", where a
        // missing file would read as a tooling failure.
        let snap = prof.snapshot();
        std::fs::write(std::path::Path::new(path), snap.to_folded())?;
        eprintln!(
            "profile written to {path} ({} sample(s) across {} stack(s), {} dropped)",
            snap.samples,
            snap.stacks.len(),
            snap.dropped,
        );
    }
    if let Some(path) = &opts.trace_out {
        let tracer = bikron_obs::trace::tracer();
        tracer.write_chrome_trace(std::path::Path::new(path))?;
        eprintln!(
            "trace written to {path} ({} span(s), {} dropped) — open in chrome://tracing or ui.perfetto.dev",
            tracer.spans().len(),
            tracer.dropped(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("bikron-obs-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn error_outcome_is_stamped_into_the_report() {
        let path = tmp("error.json");
        let opts = GlobalOpts {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..GlobalOpts::default()
        };
        let raw = vec!["stats".to_string(), "nonsense:spec".to_string()];
        write_observability(&opts, &raw, Outcome::Error).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let report = bikron_obs::Report::from_json(&text).unwrap();
        assert_eq!(report.meta("outcome"), Some("error"));
        assert_eq!(report.meta("command"), Some("stats nonsense:spec"));
        assert_eq!(report.meta("tool"), Some("bikron-cli"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ok_outcome_is_stamped_too() {
        let path = tmp("ok.json");
        let opts = GlobalOpts {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..GlobalOpts::default()
        };
        write_observability(&opts, &["stats".to_string()], Outcome::Ok).unwrap();
        let report =
            bikron_obs::Report::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.meta("outcome"), Some("ok"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn no_flags_writes_nothing() {
        write_observability(&GlobalOpts::default(), &[], Outcome::Error).unwrap();
    }

    #[test]
    fn profile_out_writes_a_folded_file_even_without_samples() {
        // With no sampler running the folded file is empty — written
        // anyway, so "profiling was off" is distinguishable from "the
        // write failed". (Sampled content is covered by the obs-crate
        // profile tests; this one avoids touching the global sampler.)
        let path = tmp("empty.folded");
        let opts = GlobalOpts {
            profile_out: Some(path.to_string_lossy().into_owned()),
            ..GlobalOpts::default()
        };
        write_observability(&opts, &["stats".to_string()], Outcome::Ok).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            // Any content present must already be folded-format.
            let (_, count) = line.rsplit_once(' ').expect("stack count");
            assert!(count.parse::<u64>().is_ok(), "{line}");
        }
        std::fs::remove_file(&path).ok();
    }
}
