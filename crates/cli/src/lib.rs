#![warn(missing_docs)]

//! # bikron-cli
//!
//! Library backing the `bikron` command-line tool: factor specification
//! parsing and the subcommand implementations, kept in a library so they
//! are unit-testable. The binary (`src/main.rs`) is a thin wrapper.
//!
//! ## Factor specifications
//!
//! Factors are given as compact specs:
//!
//! | spec | graph |
//! |---|---|
//! | `path:N` | path on `N` vertices |
//! | `cycle:N` | cycle `C_N` |
//! | `star:N` | star with `N` leaves |
//! | `complete:N` | clique `K_N` |
//! | `kmn:MxN` | complete bipartite `K_{M,N}` |
//! | `crown:N` | crown (biclique minus matching) |
//! | `hypercube:D` | `Q_D` |
//! | `grid:MxN` | grid graph |
//! | `wheel:N` | wheel with rim `N` |
//! | `petersen` | the Petersen graph |
//! | `unicode` | the Table-I unicode-like factor |
//! | `unicode:SEED` | same with an explicit seed |
//! | `powerlaw:SEED` | default bipartite Chung–Lu with the given seed |
//! | `file:PATH` | 0-based edge list on disk |
//! | `konect:PATH` | 1-based KONECT bipartite edge list |

pub mod commands;
pub mod flags;
pub mod monitor;
pub mod observability;
pub mod perfdiff;
pub mod profile;
pub mod replay;
pub mod spec;
pub mod trace;

pub use flags::{split_global_flags, GlobalOpts};
pub use monitor::MonitorConfig;
pub use observability::{write_observability, Outcome};
pub use perfdiff::{perfdiff_files, perfdiff_profile_files, PerfDiffConfig};
pub use profile::ProfileConfig;
pub use spec::{parse_factor, parse_mode, SpecError};
pub use trace::TraceConfig;
