//! Factor and mode specification parsing.

use std::fmt;
use std::fs::File;

use bikron_core::SelfLoopMode;
use bikron_generators::powerlaw::{bipartite_chung_lu, PowerLawParams};
use bikron_generators::unicode_like::{unicode_like, unicode_like_seeded};
use bikron_generators::{
    complete, complete_bipartite, crown, cycle, grid, hypercube, path, petersen, star, wheel,
};
use bikron_graph::Graph;

/// Errors from spec parsing.
#[derive(Debug)]
pub enum SpecError {
    /// Spec string did not match any known form.
    Unknown(String),
    /// Numeric argument missing or malformed.
    BadArgument {
        /// The spec that failed.
        spec: String,
        /// What was expected.
        expected: &'static str,
    },
    /// File loading failed.
    Io(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Unknown(s) => write!(f, "unknown factor spec '{s}'"),
            SpecError::BadArgument { spec, expected } => {
                write!(f, "bad argument in '{spec}': expected {expected}")
            }
            SpecError::Io(msg) => write!(f, "io: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

fn parse_n(spec: &str, arg: Option<&str>, expected: &'static str) -> Result<usize, SpecError> {
    arg.and_then(|a| a.parse().ok())
        .ok_or_else(|| SpecError::BadArgument {
            spec: spec.to_string(),
            expected,
        })
}

fn parse_mxn(spec: &str, arg: Option<&str>) -> Result<(usize, usize), SpecError> {
    let err = || SpecError::BadArgument {
        spec: spec.to_string(),
        expected: "MxN",
    };
    let a = arg.ok_or_else(err)?;
    let (m, n) = a.split_once('x').ok_or_else(err)?;
    Ok((m.parse().map_err(|_| err())?, n.parse().map_err(|_| err())?))
}

/// Parse a factor spec into a graph (see crate docs for the grammar).
pub fn parse_factor(spec: &str) -> Result<Graph, SpecError> {
    let (kind, arg) = match spec.split_once(':') {
        Some((k, a)) => (k, Some(a)),
        None => (spec, None),
    };
    match kind {
        "path" => Ok(path(parse_n(spec, arg, "vertex count")?)),
        "cycle" => Ok(cycle(parse_n(spec, arg, "vertex count >= 3")?)),
        "star" => Ok(star(parse_n(spec, arg, "leaf count")?)),
        "complete" => Ok(complete(parse_n(spec, arg, "vertex count")?)),
        "kmn" => {
            let (m, n) = parse_mxn(spec, arg)?;
            Ok(complete_bipartite(m, n))
        }
        "crown" => Ok(crown(parse_n(spec, arg, "side size >= 2")?)),
        "hypercube" => Ok(hypercube(parse_n(spec, arg, "dimension")? as u32)),
        "grid" => {
            let (m, n) = parse_mxn(spec, arg)?;
            Ok(grid(m, n))
        }
        "wheel" => Ok(wheel(parse_n(spec, arg, "rim size >= 3")?)),
        "petersen" => Ok(petersen()),
        "unicode" => Ok(match arg {
            None => unicode_like(),
            Some(s) => unicode_like_seeded(s.parse().map_err(|_| SpecError::BadArgument {
                spec: spec.to_string(),
                expected: "seed",
            })?),
        }),
        "powerlaw" => {
            let seed = parse_n(spec, arg, "seed")? as u64;
            Ok(bipartite_chung_lu(&PowerLawParams::default(), seed))
        }
        "file" => {
            let p = arg.ok_or_else(|| SpecError::BadArgument {
                spec: spec.to_string(),
                expected: "a path",
            })?;
            let f = File::open(p).map_err(|e| SpecError::Io(format!("{p}: {e}")))?;
            bikron_graph::io::read_edge_list(f, false, None)
                .map_err(|e| SpecError::Io(e.to_string()))
        }
        "konect" => {
            let p = arg.ok_or_else(|| SpecError::BadArgument {
                spec: spec.to_string(),
                expected: "a path",
            })?;
            let f = File::open(p).map_err(|e| SpecError::Io(format!("{p}: {e}")))?;
            bikron_graph::io::read_bipartite_edge_list(f, true)
                .map(|(g, _)| g)
                .map_err(|e| SpecError::Io(e.to_string()))
        }
        _ => Err(SpecError::Unknown(spec.to_string())),
    }
}

/// Parse a self-loop mode: `none` (Assump. 1(i)) or `loops-a` /
/// `factor-a` (Assump. 1(ii)).
pub fn parse_mode(s: &str) -> Result<SelfLoopMode, SpecError> {
    match s {
        "none" => Ok(SelfLoopMode::None),
        "loops-a" | "factor-a" => Ok(SelfLoopMode::FactorA),
        other => Err(SpecError::Unknown(format!("mode '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_specs() {
        assert_eq!(parse_factor("path:5").unwrap().num_vertices(), 5);
        assert_eq!(parse_factor("cycle:6").unwrap().num_edges(), 6);
        assert_eq!(parse_factor("kmn:3x4").unwrap().num_edges(), 12);
        assert_eq!(parse_factor("grid:2x3").unwrap().num_vertices(), 6);
        assert_eq!(parse_factor("petersen").unwrap().num_vertices(), 10);
        assert_eq!(parse_factor("hypercube:3").unwrap().num_vertices(), 8);
        assert_eq!(parse_factor("wheel:5").unwrap().num_vertices(), 6);
    }

    #[test]
    fn unicode_specs() {
        let g1 = parse_factor("unicode").unwrap();
        assert_eq!(g1.num_edges(), 1256);
        let g2 = parse_factor("unicode:3").unwrap();
        assert_ne!(g1, g2);
    }

    #[test]
    fn powerlaw_is_seeded() {
        let a = parse_factor("powerlaw:1").unwrap();
        let b = parse_factor("powerlaw:1").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_specs_error() {
        assert!(matches!(parse_factor("zorp:3"), Err(SpecError::Unknown(_))));
        assert!(matches!(
            parse_factor("path"),
            Err(SpecError::BadArgument { .. })
        ));
        assert!(matches!(
            parse_factor("kmn:3"),
            Err(SpecError::BadArgument { .. })
        ));
        assert!(matches!(
            parse_factor("file:/nonexistent/x.el"),
            Err(SpecError::Io(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bikron_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("tiny.el");
        std::fs::write(&p, "0 1\n1 2\n").unwrap();
        let g = parse_factor(&format!("file:{}", p.display())).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn modes() {
        assert_eq!(parse_mode("none").unwrap(), SelfLoopMode::None);
        assert_eq!(parse_mode("loops-a").unwrap(), SelfLoopMode::FactorA);
        assert_eq!(parse_mode("factor-a").unwrap(), SelfLoopMode::FactorA);
        assert!(parse_mode("both").is_err());
    }
}
