//! `bikron trace URL`: fetch the span trees a running `bikron serve`
//! captured (tail-based slow-request sampling plus optional 1-in-N head
//! sampling) from `GET /v1/admin/traces` and render each as an indented
//! waterfall — span tree on the left, a proportional timeline bar on the
//! right. The admin endpoint is token-gated, so `--token` (or a server
//! without `--admin-token`, which refuses the endpoint entirely) is
//! required in practice.
//!
//! Everything except the socket I/O is pure (`parse_dump`,
//! `render_traces`), so the JSON decoding and waterfall layout are
//! unit-testable without a server. JSON decoding uses the workspace's
//! shared reader ([`bikron_obs::parse_json`]).

use bikron_obs::{parse_json, JsonValue};

use crate::monitor::{fmt_ns, http_get, parse_host_port};

/// Default number of traces rendered.
pub const DEFAULT_TOP: usize = 5;
/// Width of the waterfall bar in characters.
const BAR_WIDTH: usize = 24;

/// Parsed `bikron trace` invocation.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Server host.
    pub host: String,
    /// TCP port.
    pub port: u16,
    /// Only show traces at least this slow (server-side filter).
    pub min_ms: u64,
    /// How many traces to render (newest first).
    pub top: usize,
    /// Admin token for the gated endpoint.
    pub token: Option<String>,
}

impl TraceConfig {
    /// Parse `URL [--min-ms N] [--top K] [--token TOKEN]`.
    pub fn parse(args: &[String]) -> Result<TraceConfig, String> {
        let mut url: Option<String> = None;
        let mut min_ms = 0u64;
        let mut top = DEFAULT_TOP;
        let mut token = None;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--min-ms" | "--top" | "--token" => {
                    let v = args
                        .get(i + 1)
                        .ok_or_else(|| format!("trace: {} requires a value", args[i]))?;
                    match args[i].as_str() {
                        "--token" => token = Some(v.clone()),
                        flag => {
                            let n: u64 = v
                                .parse()
                                .map_err(|e| format!("trace: bad {flag} {v:?}: {e}"))?;
                            if flag == "--min-ms" {
                                min_ms = n;
                            } else {
                                top = n as usize;
                            }
                        }
                    }
                    i += 2;
                }
                other if url.is_none() && !other.starts_with("--") => {
                    url = Some(other.to_string());
                    i += 1;
                }
                other => return Err(format!("trace: unknown argument {other:?}")),
            }
        }
        let url = url.ok_or("trace requires a server URL (e.g. http://127.0.0.1:7474)")?;
        let (host, port) = parse_host_port(&url)?;
        Ok(TraceConfig {
            host,
            port,
            min_ms,
            top,
            token,
        })
    }
}

/// One span row of a captured trace.
#[derive(Debug, Clone)]
pub struct SpanEntry {
    /// Span name (`evaluate`, `batch[3] vertex`, ...).
    pub name: String,
    /// Span id, 16 hex chars.
    pub span_id: String,
    /// Parent span id, 16 hex chars (the root span for top-level spans).
    pub parent_id: String,
    /// Start offset from the request's span clock, nanoseconds.
    pub start_ns: u64,
    /// End offset, nanoseconds.
    pub end_ns: u64,
    /// Cache outcome annotation, if the span touched the result cache.
    pub cache: Option<bool>,
}

/// One captured request trace.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// 32-hex-char trace id.
    pub trace_id: String,
    /// Root span id (the implicit request-level span).
    pub root_span_id: String,
    /// Remote parent span id when the client sent a `traceparent`.
    pub remote_parent: Option<String>,
    /// Request method.
    pub method: String,
    /// Bounded path shape.
    pub path: String,
    /// Response status.
    pub status: u64,
    /// Response body bytes.
    pub bytes: u64,
    /// Total latency in nanoseconds.
    pub total_ns: u64,
    /// Why the trace was kept (`slow` or `head`).
    pub sampled: String,
    /// The span rows, in begin order.
    pub spans: Vec<SpanEntry>,
}

/// The decoded `/v1/admin/traces` payload.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Whether any sampling policy is active on the server.
    pub enabled: bool,
    /// The server's `--trace-slow-ms` threshold (0 = tail sampling off).
    pub slow_ms: u64,
    /// Requests completed while tracing was enabled.
    pub seen: u64,
    /// Traces retained (including ones since overwritten in the ring).
    pub captured: u64,
    /// Spans lost to the per-request cap.
    pub dropped_spans: u64,
    /// Retained traces, newest first.
    pub traces: Vec<TraceEntry>,
}

/// Decode the `bikron-traces/1` JSON payload.
pub fn parse_dump(body: &str) -> Result<TraceDump, String> {
    let root = parse_json(body).map_err(|e| e.to_string())?;
    match root.str_of("schema") {
        Some("bikron-traces/1") => {}
        other => return Err(format!("unexpected traces schema {other:?}")),
    }
    let field = |key: &str| {
        root.num_of(key)
            .ok_or_else(|| format!("traces payload is missing integer field {key:?}"))
    };
    let mut traces = Vec::new();
    if let Some(JsonValue::Arr(items)) = root.get("traces") {
        for item in items {
            let s = |key: &str| {
                item.str_of(key)
                    .map(str::to_string)
                    .ok_or_else(|| format!("trace is missing string field {key:?}"))
            };
            let n = |key: &str| {
                item.num_of(key)
                    .ok_or_else(|| format!("trace is missing integer field {key:?}"))
            };
            let mut spans = Vec::new();
            if let Some(JsonValue::Arr(rows)) = item.get("spans") {
                for row in rows {
                    spans.push(SpanEntry {
                        name: row.str_of("name").unwrap_or("?").to_string(),
                        span_id: row.str_of("span_id").unwrap_or("?").to_string(),
                        parent_id: row.str_of("parent_id").unwrap_or("?").to_string(),
                        start_ns: row.num_of("start_ns").unwrap_or(0),
                        end_ns: row.num_of("end_ns").unwrap_or(0),
                        cache: match row.get("cache") {
                            Some(JsonValue::Str(s)) => Some(s == "hit"),
                            _ => None,
                        },
                    });
                }
            }
            traces.push(TraceEntry {
                trace_id: s("trace_id")?,
                root_span_id: s("root_span_id")?,
                remote_parent: item.str_of("remote_parent").map(str::to_string),
                method: s("method")?,
                path: s("path")?,
                status: n("status")?,
                bytes: n("bytes")?,
                total_ns: n("total_ns")?,
                sampled: s("sampled")?,
                spans,
            });
        }
    }
    Ok(TraceDump {
        enabled: root.bool_of("enabled").unwrap_or(false),
        slow_ms: field("slow_ms")?,
        seen: field("seen")?,
        captured: field("captured")?,
        dropped_spans: field("dropped_spans")?,
        traces,
    })
}

/// The `[start, end)` timeline bar for one span, on a `scale_ns`-wide
/// axis. At least one `#` so instantaneous spans stay visible.
fn bar(start_ns: u64, end_ns: u64, scale_ns: u64) -> String {
    let scale = scale_ns.max(1);
    let from = (start_ns.min(scale) as usize * BAR_WIDTH) / scale as usize;
    let to = (end_ns.min(scale) as usize * BAR_WIDTH) / scale as usize;
    let from = from.min(BAR_WIDTH - 1);
    let to = to.clamp(from + 1, BAR_WIDTH);
    let mut out = String::with_capacity(BAR_WIDTH + 2);
    out.push('[');
    for i in 0..BAR_WIDTH {
        out.push(if (from..to).contains(&i) { '#' } else { ' ' });
    }
    out.push(']');
    out
}

/// Append one span row and, recursively, its children (in begin order).
fn render_span(out: &mut String, spans: &[SpanEntry], parent: &str, depth: usize, scale_ns: u64) {
    for s in spans.iter().filter(|s| s.parent_id == parent) {
        let label = match s.cache {
            Some(true) => format!("{} (hit)", s.name),
            Some(false) => format!("{} (miss)", s.name),
            None => s.name.clone(),
        };
        let indent = "  ".repeat(depth + 1);
        out.push_str(&format!(
            "{indent}{label:<w$} {dur:>8} @{at:<8} {bar}\n",
            w = 30usize.saturating_sub(2 * depth),
            dur = fmt_ns(s.end_ns.saturating_sub(s.start_ns)),
            at = fmt_ns(s.start_ns),
            bar = bar(s.start_ns, s.end_ns, scale_ns),
        ));
        // Guard against id cycles (impossible from our recorder, cheap
        // to refuse anyway): a span is never its own ancestor.
        if s.span_id != parent {
            render_span(out, spans, &s.span_id, depth + 1, scale_ns);
        }
    }
}

/// Render up to `top` traces as waterfalls. Pure — no I/O.
pub fn render_traces(dump: &TraceDump, top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "captured {} of {} requests (slow_ms {}, dropped spans {})\n",
        dump.captured, dump.seen, dump.slow_ms, dump.dropped_spans
    ));
    if !dump.enabled {
        out.push_str(
            "tracing is disabled on this server (start it with --trace-slow-ms or --trace-sample)\n",
        );
        return out;
    }
    if dump.traces.is_empty() {
        out.push_str("no traces captured (yet) — lower --min-ms or the server's --trace-slow-ms\n");
        return out;
    }
    for t in dump.traces.iter().take(top) {
        let parent = t
            .remote_parent
            .as_deref()
            .map_or(String::new(), |p| format!("  parent {p}"));
        out.push_str(&format!(
            "\ntrace {}  {} {}  status {}  {}  [{}]{}\n",
            t.trace_id,
            t.method,
            t.path,
            t.status,
            fmt_ns(t.total_ns),
            t.sampled,
            parent,
        ));
        // Bars are scaled by the larger of the request total and the
        // last span end: the recorder's clock starts at socket read, so
        // span offsets can exceed the post-parse total.
        let scale = t
            .spans
            .iter()
            .map(|s| s.end_ns)
            .chain([t.total_ns])
            .max()
            .unwrap_or(1);
        render_span(&mut out, &t.spans, &t.root_span_id, 0, scale);
    }
    if dump.traces.len() > top {
        out.push_str(&format!(
            "\n({} more captured; raise --top to see them)\n",
            dump.traces.len() - top
        ));
    }
    out
}

/// Fetch, decode and render. Returns `Ok(false)` when the server refused
/// the admin endpoint (bad/missing token).
pub fn run(
    config: &TraceConfig,
    out: &mut impl std::io::Write,
) -> Result<bool, Box<dyn std::error::Error>> {
    let mut path = format!("/v1/admin/traces?min_ms={}", config.min_ms);
    if let Some(token) = &config.token {
        path.push_str("&token=");
        path.push_str(token);
    }
    let (status, body) = http_get(&config.host, config.port, &path)?;
    if status == 401 || status == 403 {
        writeln!(
            out,
            "trace: server refused the admin endpoint ({status}) — pass --token TOKEN"
        )?;
        return Ok(false);
    }
    if status != 200 {
        return Err(format!("GET /v1/admin/traces returned {status}: {body}").into());
    }
    let dump = parse_dump(&body).map_err(|e| format!("parse /v1/admin/traces: {e}"))?;
    write!(out, "{}", render_traces(&dump, config.top))?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        let cfg = TraceConfig::parse(&[
            "http://h:7475".into(),
            "--min-ms".into(),
            "250".into(),
            "--top".into(),
            "2".into(),
            "--token".into(),
            "ci".into(),
        ])
        .unwrap();
        assert_eq!((cfg.host.as_str(), cfg.port), ("h", 7475));
        assert_eq!(cfg.min_ms, 250);
        assert_eq!(cfg.top, 2);
        assert_eq!(cfg.token.as_deref(), Some("ci"));
        assert!(TraceConfig::parse(&[]).is_err());
        assert!(TraceConfig::parse(&["h:1".into(), "--frob".into()]).is_err());
        assert!(TraceConfig::parse(&["h:1".into(), "--min-ms".into(), "x".into()]).is_err());
    }

    fn sample_dump() -> &'static str {
        r#"{
  "schema": "bikron-traces/1",
  "enabled": true,
  "slow_ms": 50,
  "seen": 120,
  "captured": 2,
  "dropped_spans": 0,
  "count": 1,
  "traces": [
    {
      "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736",
      "root_span_id": "00f067aa0ba902b7",
      "remote_parent": "b7ad6b7169203331",
      "method": "GET",
      "path": "/v1/clustering/{p}/{q}",
      "status": 200,
      "bytes": 180,
      "total_ns": 300400000,
      "sampled": "slow",
      "unix_ms": 1700000000000,
      "spans": [
        {"name": "accept", "span_id": "aaaaaaaaaaaaaaa1", "parent_id": "00f067aa0ba902b7", "start_ns": 0, "end_ns": 120000, "cache": null},
        {"name": "evaluate", "span_id": "aaaaaaaaaaaaaaa2", "parent_id": "00f067aa0ba902b7", "start_ns": 130000, "end_ns": 300300000, "cache": null},
        {"name": "cache", "span_id": "aaaaaaaaaaaaaaa3", "parent_id": "aaaaaaaaaaaaaaa2", "start_ns": 140000, "end_ns": 150000, "cache": "miss"},
        {"name": "write", "span_id": "aaaaaaaaaaaaaaa4", "parent_id": "00f067aa0ba902b7", "start_ns": 300310000, "end_ns": 300400000, "cache": null}
      ]
    }
  ]
}
"#
    }

    #[test]
    fn dump_round_trips_and_renders_a_waterfall() {
        let dump = parse_dump(sample_dump()).unwrap();
        assert!(dump.enabled);
        assert_eq!((dump.seen, dump.captured), (120, 2));
        assert_eq!(dump.traces.len(), 1);
        let t = &dump.traces[0];
        assert_eq!(t.trace_id, "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(t.remote_parent.as_deref(), Some("b7ad6b7169203331"));
        assert_eq!(t.spans.len(), 4);
        assert_eq!(t.spans[2].cache, Some(false));

        let text = render_traces(&dump, 5);
        assert!(text.contains("captured 2 of 120 requests"), "{text}");
        assert!(
            text.contains("trace 4bf92f3577b34da6a3ce929d0e0e4736"),
            "{text}"
        );
        assert!(text.contains("[slow]"), "{text}");
        assert!(text.contains("parent b7ad6b7169203331"), "{text}");
        let lines: Vec<&str> = text.lines().collect();
        let eval = lines
            .iter()
            .position(|l| l.trim_start().starts_with("evaluate"))
            .expect("evaluate row");
        // The cache child is indented one level deeper than evaluate.
        let cache = lines[eval + 1];
        assert!(cache.contains("cache (miss)"), "{text}");
        assert!(
            cache.find("cache").unwrap() > lines[eval].find("evaluate").unwrap(),
            "{text}"
        );
        // The evaluate span dominates the waterfall: its bar is the
        // widest on the screen.
        let width = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert!(width(lines[eval]) > width(cache), "{text}");
        assert!(width(lines[eval]) > width(lines[eval + 2]), "{text}");
        // awk-able: the duration is column 2 of the evaluate row.
        let dur = lines[eval].split_whitespace().nth(1).unwrap();
        assert_eq!(dur, "300.1ms", "{text}");
    }

    #[test]
    fn disabled_and_empty_states_are_explained() {
        let disabled = parse_dump(
            r#"{"schema": "bikron-traces/1", "enabled": false, "slow_ms": 0, "seen": 0, "captured": 0, "dropped_spans": 0, "count": 0, "traces": []}"#,
        )
        .unwrap();
        let text = render_traces(&disabled, 5);
        assert!(text.contains("tracing is disabled"), "{text}");

        let mut empty = disabled.clone();
        empty.enabled = true;
        let text = render_traces(&empty, 5);
        assert!(text.contains("no traces captured"), "{text}");

        assert!(parse_dump(r#"{"schema": "bikron-else/9"}"#).is_err());
    }

    #[test]
    fn top_limits_rendered_traces() {
        let mut dump = parse_dump(sample_dump()).unwrap();
        let second = dump.traces[0].clone();
        dump.traces.push(second);
        let text = render_traces(&dump, 1);
        assert_eq!(text.matches("trace 4bf92f").count(), 1, "{text}");
        assert!(text.contains("1 more captured"), "{text}");
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(bar(0, 0, 0), format!("[#{}]", " ".repeat(BAR_WIDTH - 1)));
        let full = bar(0, 100, 100);
        assert_eq!(full.matches('#').count(), BAR_WIDTH);
        // Past-the-end spans clamp instead of panicking.
        let clamped = bar(150, 200, 100);
        assert_eq!(clamped.matches('#').count(), 1);
        assert!(clamped.ends_with("#]"), "{clamped}");
    }
}
