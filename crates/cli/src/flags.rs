//! Global CLI flag extraction, shared by every subcommand.
//!
//! `--metrics-out FILE`, `--trace-out FILE`, `--profile-out FILE`, and
//! `--profile-hz N` may appear anywhere on the command line (before or
//! after the positionals), in either `--flag VALUE` or `--flag=VALUE`
//! form. Duplicates are allowed — the **last occurrence wins**, matching
//! the usual Unix convention so wrapper scripts can append overrides. A
//! flag with no value (end of line, or followed by another `--` option)
//! is a clear error, not a silently swallowed argument. Extraction
//! removes the flags from the argument list, so subcommand positional
//! parsing never sees them and is therefore order-robust.

/// Parsed global options, extracted before subcommand dispatch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GlobalOpts {
    /// Write a `bikron-obs/4` metrics report here after the command.
    pub metrics_out: Option<String>,
    /// Collect spans and write a Chrome `trace_event` JSON file here.
    pub trace_out: Option<String>,
    /// Write a folded-flamegraph profile here after the command
    /// (implicitly starts the sampler at the default rate).
    pub profile_out: Option<String>,
    /// Sampler rate override: `Some(0)` disables profiling even where it
    /// defaults on (`serve`/`router`), `Some(n)` forces `n` Hz, `None`
    /// leaves each command's default in place.
    pub profile_hz: Option<u64>,
}

/// The global flags every subcommand accepts, with the value noun used
/// in error messages.
const VALUE_FLAGS: [(&str, &str); 4] = [
    ("--metrics-out", "FILE"),
    ("--trace-out", "FILE"),
    ("--profile-out", "FILE"),
    ("--profile-hz", "N"),
];

/// Split `args` into (remaining arguments, global options).
///
/// ```
/// use bikron_cli::flags::split_global_flags;
/// let args: Vec<String> = ["--trace-out", "t.json", "stats", "path:3", "path:3", "none"]
///     .iter().map(|s| s.to_string()).collect();
/// let (rest, opts) = split_global_flags(&args).unwrap();
/// assert_eq!(rest[0], "stats");
/// assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
/// ```
pub fn split_global_flags(args: &[String]) -> Result<(Vec<String>, GlobalOpts), String> {
    let mut rest = Vec::with_capacity(args.len());
    let mut opts = GlobalOpts::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let matched = VALUE_FLAGS.iter().find_map(|(flag, noun)| {
            if arg == flag {
                Some((*flag, *noun, None))
            } else {
                arg.strip_prefix(flag)
                    .and_then(|rem| rem.strip_prefix('='))
                    .map(|v| (*flag, *noun, Some(v.to_string())))
            }
        });
        match matched {
            Some((flag, noun, Some(value))) => {
                // --flag=VALUE form; empty value is an error.
                if value.is_empty() {
                    return Err(format!("{flag}= requires a {noun} argument"));
                }
                set_flag(&mut opts, flag, value)?;
                i += 1;
            }
            Some((flag, noun, None)) => {
                // --flag VALUE form; the next argument must exist and not
                // itself look like an option.
                match args.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        set_flag(&mut opts, flag, v.clone())?;
                        i += 2;
                    }
                    Some(v) => {
                        return Err(format!(
                            "{flag} requires a {noun} argument, found option {v:?}"
                        ))
                    }
                    None => return Err(format!("{flag} requires a {noun} argument")),
                }
            }
            None => {
                rest.push(arg.clone());
                i += 1;
            }
        }
    }
    Ok((rest, opts))
}

fn set_flag(opts: &mut GlobalOpts, flag: &str, value: String) -> Result<(), String> {
    match flag {
        "--metrics-out" => opts.metrics_out = Some(value),
        "--trace-out" => opts.trace_out = Some(value),
        "--profile-out" => opts.profile_out = Some(value),
        "--profile-hz" => {
            let hz: u64 = value
                .parse()
                .map_err(|_| format!("--profile-hz expects an integer rate, got {value:?}"))?;
            opts.profile_hz = Some(hz);
        }
        _ => unreachable!("unknown global flag {flag}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_flags_passes_through() {
        let input = args(&["stats", "path:3", "cycle:4", "none"]);
        let (rest, opts) = split_global_flags(&input).unwrap();
        assert_eq!(rest, input);
        assert_eq!(opts, GlobalOpts::default());
    }

    #[test]
    fn flags_are_position_independent() {
        for permuted in [
            args(&["--metrics-out", "m.json", "stats", "a", "b", "none"]),
            args(&["stats", "--metrics-out", "m.json", "a", "b", "none"]),
            args(&["stats", "a", "b", "none", "--metrics-out", "m.json"]),
        ] {
            let (rest, opts) = split_global_flags(&permuted).unwrap();
            assert_eq!(rest, args(&["stats", "a", "b", "none"]));
            assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
        }
    }

    #[test]
    fn equals_form_works() {
        let (rest, opts) = split_global_flags(&args(&[
            "generate",
            "--trace-out=t.json",
            "--metrics-out=m.json",
        ]))
        .unwrap();
        assert_eq!(rest, args(&["generate"]));
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
    }

    #[test]
    fn duplicate_flags_last_wins() {
        let (_, opts) = split_global_flags(&args(&[
            "--metrics-out",
            "first.json",
            "stats",
            "--metrics-out=second.json",
            "--metrics-out",
            "third.json",
        ]))
        .unwrap();
        assert_eq!(opts.metrics_out.as_deref(), Some("third.json"));
    }

    #[test]
    fn both_flags_together() {
        let (rest, opts) = split_global_flags(&args(&[
            "generate",
            "a",
            "b",
            "none",
            "--trace-out",
            "t.json",
            "--out",
            "p",
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        // Subcommand-local flags like --out survive untouched.
        assert_eq!(rest, args(&["generate", "a", "b", "none", "--out", "p"]));
        assert_eq!(opts.trace_out.as_deref(), Some("t.json"));
        assert_eq!(opts.metrics_out.as_deref(), Some("m.json"));
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = split_global_flags(&args(&["stats", "--metrics-out"])).unwrap_err();
        assert!(err.contains("--metrics-out requires a FILE"), "{err}");
        let err =
            split_global_flags(&args(&["--trace-out", "--metrics-out", "m.json"])).unwrap_err();
        assert!(err.contains("--trace-out requires a FILE"), "{err}");
        let err = split_global_flags(&args(&["--metrics-out="])).unwrap_err();
        assert!(err.contains("requires a FILE"), "{err}");
    }

    #[test]
    fn profile_flags_extract_and_validate() {
        let (rest, opts) = split_global_flags(&args(&[
            "serve",
            "--profile-out",
            "p.folded",
            "--profile-hz=250",
            "--addr",
            "127.0.0.1:0",
        ]))
        .unwrap();
        assert_eq!(rest, args(&["serve", "--addr", "127.0.0.1:0"]));
        assert_eq!(opts.profile_out.as_deref(), Some("p.folded"));
        assert_eq!(opts.profile_hz, Some(250));

        // 0 is a valid, meaningful rate (profiling off).
        let (_, opts) = split_global_flags(&args(&["serve", "--profile-hz", "0"])).unwrap();
        assert_eq!(opts.profile_hz, Some(0));

        let err = split_global_flags(&args(&["--profile-hz", "fast"])).unwrap_err();
        assert!(err.contains("integer rate"), "{err}");
        let err = split_global_flags(&args(&["--profile-out"])).unwrap_err();
        assert!(err.contains("--profile-out requires a FILE"), "{err}");
    }

    #[test]
    fn similar_prefixes_are_not_confused() {
        // "--metrics-outfile" is not "--metrics-out" — unknown flags are
        // left for the subcommand to reject.
        let (rest, opts) = split_global_flags(&args(&["--metrics-outfile", "x", "stats"])).unwrap();
        assert_eq!(rest, args(&["--metrics-outfile", "x", "stats"]));
        assert_eq!(opts, GlobalOpts::default());
    }
}
