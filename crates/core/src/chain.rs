//! [`KronChain`]: the k-factor generalisation of [`KroneckerProduct`] —
//! an arbitrary Kronecker **program** `M_1 ⊗ M_2 ⊗ … ⊗ M_k`, where each
//! level `M_i` is a named loop-free factor `A_i` or its identity lift
//! `A_i + I` (the paper's Assump. 1(ii) construction, applied per level).
//!
//! The paper derives Thms 3–7 for the two-factor products `A ⊗ B` and
//! `(A + I_A) ⊗ B`, but every quantity in those derivations is
//! **multiplicative through the Kronecker product**, so the formulas
//! compose through chains of any length:
//!
//! * diagonal walk counts: `(C⁴)_vv = Π_i (M_i⁴)_{v_i v_i}` (Thm 3/4),
//! * entry walk counts: `(C³)_pq = Π_i (M_i³)_{p_i q_i}` (Thm 5),
//! * degrees: `d_C(v) = Π_i d_{M_i}(v_i)`,
//! * community volumes: `1_Sᵀ C 1_T = Π_i 1_{S_i}ᵀ M_i 1_{T_i}` (Thm 7).
//!
//! The only structural requirement is that the *product* be loop-free
//! (the per-vertex identity `2q(v) = walk₄(v) − d(v)² − w₂(v) + d(v)`
//! counts closed 4-walks, and loops would add degenerate walks). That
//! holds iff **at least one level lacks `+ I`**: a loop-free level has a
//! zero diagonal, and the Kronecker product's diagonal is the product of
//! the levels' diagonals. [`KronChain::new`] enforces exactly this.
//!
//! Product vertex indices use **mixed-radix** (row-major) arithmetic,
//! level 0 most significant: `p = Σ_i v_i · stride_i` with
//! `stride_i = Π_{j>i} n_j` — the k-factor generalisation of
//! [`KronIndexer`](crate::KronIndexer)'s `γ(i, k) = i·n_B + k`.
//!
//! Per-level [`FactorStats`] are computed **once per distinct atom** at
//! construction; every query afterwards is O(k) arithmetic on factor-sized
//! tables (plus O(limit) for neighbor pages), preserving the serving
//! layer's sublinear-memory contract for arbitrary programs.

use std::collections::HashMap;
use std::fmt;

use bikron_graph::Graph;
use bikron_sparse::semiring::Times;
use bikron_sparse::{ewise_add, kron, Csr, Ix, SparseError};

use crate::product::SelfLoopMode;
use crate::truth::clustering::{factor_gamma, psi};
use crate::truth::squares_edge::w3_effective_a;
use crate::truth::squares_vertex::single_terms;
use crate::truth::FactorStats;

/// A named factor graph with its precomputed walk statistics.
struct ChainAtom {
    name: String,
    graph: Graph,
    stats: FactorStats,
}

/// One level of the chain: which atom, and whether it is identity-lifted.
#[derive(Copy, Clone)]
struct Level {
    atom: usize,
    plus_identity: bool,
}

/// Why a chain could not be built. Every variant is a user-input problem
/// (the CLI prints these verbatim), not an internal invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The expression had no levels.
    Empty,
    /// A level referenced a name with no bound graph.
    UnboundName(String),
    /// Two atom bindings used the same name.
    DuplicateName(String),
    /// A bound factor graph had no vertices.
    EmptyFactor(String),
    /// A bound factor graph had self-loops (`+ I` must stay logical).
    SelfLoops(String),
    /// Every level was `+ I`-lifted, so the product would have loops and
    /// the Thm 3–5 closed forms would not apply.
    NoLoopFreeLevel,
    /// The product size overflowed the index or count type.
    TooLarge,
    /// Walk-statistics precomputation failed (overflow in a factor).
    Stats(SparseError),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Empty => write!(f, "expression has no factors"),
            ChainError::UnboundName(n) => {
                write!(f, "factor '{n}' is not bound (add {n}=SPEC)")
            }
            ChainError::DuplicateName(n) => write!(f, "factor '{n}' is bound twice"),
            ChainError::EmptyFactor(n) => write!(f, "factor '{n}' has no vertices"),
            ChainError::SelfLoops(n) => {
                write!(f, "factor '{n}' has self-loops; use (+I) to lift instead")
            }
            ChainError::NoLoopFreeLevel => write!(
                f,
                "every level is '+ I'-lifted; at least one bare factor is \
                 required so the product is loop-free"
            ),
            ChainError::TooLarge => write!(f, "product size overflows the index type"),
            ChainError::Stats(e) => write!(f, "factor statistics failed: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Thm 6 surface for one product pair `(p, q)` of a chain.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainClustering {
    /// `◇_pq` (Thm 5, chained) — `None` when `(p, q)` is not an edge.
    pub squares: Option<u64>,
    /// Exact `Γ_C(p, q) = ◇_pq / ((d_p − 1)(d_q − 1))` — `None` when not
    /// an edge or the denominator vanishes.
    pub gamma: Option<f64>,
    /// Thm 6 lower bound `Π ψ · Π Γ_i`, folded pairwise over the chain —
    /// `None` unless every level is bare (no `+ I`) with all endpoint
    /// degrees ≥ 2.
    pub bound: Option<f64>,
    /// The accumulated `Π ψ` of the fold, when `bound` is defined.
    pub psi: Option<f64>,
}

/// Thm 7 surface for a product community `S = S_1 γ S_2 γ … γ S_k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainCommunity {
    /// `|S| = Π |S_i|`.
    pub size: u64,
    /// Exact internal edge count `m_in(S)`.
    pub m_in: u64,
    /// Exact external (cut) edge count `m_out(S)`.
    pub m_out: u64,
}

/// An arbitrary Kronecker program over named factors, with compositional
/// ground truth for every query the serving layer answers.
pub struct KronChain {
    atoms: Vec<ChainAtom>,
    levels: Vec<Level>,
    /// Per-level vertex counts `n_i` and row-major strides `Π_{j>i} n_j`.
    sizes: Vec<usize>,
    strides: Vec<usize>,
    n: usize,
    num_edges: u64,
    max_degree: u64,
    global_squares: u64,
    canonical: String,
}

impl KronChain {
    /// Build a chain from named atom graphs and an ordered level list
    /// (`(name, plus_identity)` pairs, e.g. from
    /// [`bikron_sparse::ExprChain`]). Unused bindings are allowed;
    /// unbound names, duplicate names, loopy or empty factors, an
    /// all-lifted chain, and oversized products are rejected.
    pub fn new(
        bindings: Vec<(String, Graph)>,
        level_spec: &[(String, bool)],
    ) -> Result<Self, ChainError> {
        let mut atoms = Vec::with_capacity(bindings.len());
        for (name, graph) in bindings {
            let stats = Self::check_atom(&name, &graph, None)?;
            atoms.push(ChainAtom { name, graph, stats });
        }
        Self::from_atoms(atoms, level_spec)
    }

    /// Build a chain from atoms whose [`FactorStats`] were already computed
    /// (e.g. restored from a snapshot), skipping the O(spgemm) per-atom
    /// recomputation that dominates cold-boot time. Each supplied stats
    /// block is still shape-checked against its graph, and every other
    /// `new()` rejection applies unchanged.
    pub fn with_stats(
        bindings: Vec<(String, Graph, FactorStats)>,
        level_spec: &[(String, bool)],
    ) -> Result<Self, ChainError> {
        let mut atoms = Vec::with_capacity(bindings.len());
        for (name, graph, stats) in bindings {
            let stats = Self::check_atom(&name, &graph, Some(stats))?;
            atoms.push(ChainAtom { name, graph, stats });
        }
        Self::from_atoms(atoms, level_spec)
    }

    /// Validate one named atom; compute its stats unless a precomputed
    /// block is supplied (which is shape-checked instead).
    fn check_atom(
        name: &str,
        graph: &Graph,
        precomputed: Option<FactorStats>,
    ) -> Result<FactorStats, ChainError> {
        if graph.num_vertices() == 0 {
            return Err(ChainError::EmptyFactor(name.to_string()));
        }
        if !graph.has_no_self_loops() {
            return Err(ChainError::SelfLoops(name.to_string()));
        }
        match precomputed {
            Some(stats) => {
                if stats.order() != graph.num_vertices() {
                    return Err(ChainError::Stats(bikron_sparse::SparseError::Malformed(
                        format!(
                            "stats for '{name}' cover {} vertices but the graph has {}",
                            stats.order(),
                            graph.num_vertices()
                        ),
                    )));
                }
                Ok(stats)
            }
            None => FactorStats::compute(graph).map_err(ChainError::Stats),
        }
    }

    /// Shared tail of [`KronChain::new`]/[`KronChain::with_stats`]: resolve
    /// the level spec against the atom list and derive sizes, strides,
    /// edge/degree products and the canonical expression.
    fn from_atoms(
        atoms: Vec<ChainAtom>,
        level_spec: &[(String, bool)],
    ) -> Result<Self, ChainError> {
        if level_spec.is_empty() {
            return Err(ChainError::Empty);
        }
        let mut by_name: HashMap<String, usize> = HashMap::new();
        for (i, atom) in atoms.iter().enumerate() {
            if by_name.insert(atom.name.clone(), i).is_some() {
                return Err(ChainError::DuplicateName(atom.name.clone()));
            }
        }
        let mut levels = Vec::with_capacity(level_spec.len());
        for (name, plus_identity) in level_spec {
            let &atom = by_name
                .get(name)
                .ok_or_else(|| ChainError::UnboundName(name.clone()))?;
            levels.push(Level {
                atom,
                plus_identity: *plus_identity,
            });
        }
        if levels.iter().all(|l| l.plus_identity) {
            return Err(ChainError::NoLoopFreeLevel);
        }

        let sizes: Vec<usize> = levels
            .iter()
            .map(|l| atoms[l.atom].graph.num_vertices())
            .collect();
        let mut n: usize = 1;
        for &s in &sizes {
            n = n.checked_mul(s).ok_or(ChainError::TooLarge)?;
        }
        let mut strides = vec![1usize; sizes.len()];
        for i in (0..sizes.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * sizes[i + 1];
        }

        // |E_C| = ½ Π nnz_eff,i and Δ_C = Π Δ_eff,i — both must fit u64.
        let mut nnz: u128 = 1;
        let mut max_degree: u128 = 1;
        for l in &levels {
            let g = &atoms[l.atom].graph;
            let eps = if l.plus_identity { 1u64 } else { 0 };
            let level_nnz = g.nnz() as u128 + (eps as u128) * g.num_vertices() as u128;
            nnz = nnz.checked_mul(level_nnz).ok_or(ChainError::TooLarge)?;
            let level_max = g.max_degree() as u64 + eps;
            max_degree = max_degree
                .checked_mul(level_max as u128)
                .ok_or(ChainError::TooLarge)?;
        }
        let num_edges = u64::try_from(nnz / 2).map_err(|_| ChainError::TooLarge)?;
        let max_degree = u64::try_from(max_degree).map_err(|_| ChainError::TooLarge)?;

        let canonical = level_spec
            .iter()
            .map(|(name, pi)| {
                if *pi {
                    format!("({name}+I)")
                } else {
                    name.clone()
                }
            })
            .collect::<Vec<_>>()
            .join("⊗");

        let mut chain = KronChain {
            atoms,
            levels,
            sizes,
            strides,
            n,
            num_edges,
            max_degree,
            global_squares: 0,
            canonical,
        };
        chain.global_squares = chain.compute_global_squares()?;
        Ok(chain)
    }

    /// Number of product vertices `Π n_i`.
    pub fn num_vertices(&self) -> Ix {
        self.n
    }

    /// Number of product edges `½ Π nnz_eff,i`.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Maximum product degree `Π Δ_eff,i`.
    pub fn max_degree(&self) -> u64 {
        self.max_degree
    }

    /// Global 4-cycle count (Thm 3/4 summed, chained).
    pub fn global_squares(&self) -> u64 {
        self.global_squares
    }

    /// Number of levels `k` in the chain.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The canonicalised expression string, `⊗`-joined with `(NAME+I)`
    /// spelling — the identity used in cache keys and `/v1/stats`.
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// Number of distinct atoms bound in this chain (≥ levels that use them).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Atom metadata by index: `(name, graph, stats)` — the exact inputs a
    /// snapshot needs to rebuild this chain via [`KronChain::with_stats`].
    pub fn atom_info(&self, i: usize) -> (&str, &Graph, &FactorStats) {
        let a = &self.atoms[i];
        (&a.name, &a.graph, &a.stats)
    }

    /// The ordered `(name, plus_identity)` level spec this chain was built
    /// from, reconstructed from the resolved levels.
    pub fn level_spec(&self) -> Vec<(String, bool)> {
        self.levels
            .iter()
            .map(|l| (self.atoms[l.atom].name.clone(), l.plus_identity))
            .collect()
    }

    /// Level metadata for stats reporting: `(name, graph, plus_identity)`.
    pub fn level_info(&self, i: usize) -> (&str, &Graph, bool) {
        let l = self.levels[i];
        (
            &self.atoms[l.atom].name,
            &self.atoms[l.atom].graph,
            l.plus_identity,
        )
    }

    /// Decompose a product vertex into its per-level coordinates
    /// (level 0 first / most significant).
    pub fn split(&self, p: Ix) -> Vec<Ix> {
        debug_assert!(p < self.n);
        self.strides
            .iter()
            .zip(&self.sizes)
            .map(|(&stride, &size)| (p / stride) % size)
            .collect()
    }

    /// Recompose per-level coordinates into the product vertex.
    pub fn combine(&self, coords: &[Ix]) -> Ix {
        debug_assert_eq!(coords.len(), self.levels.len());
        coords
            .iter()
            .zip(&self.strides)
            .map(|(&c, &stride)| c * stride)
            .sum()
    }

    fn level_graph(&self, i: usize) -> &Graph {
        &self.atoms[self.levels[i].atom].graph
    }

    fn level_stats(&self, i: usize) -> &FactorStats {
        &self.atoms[self.levels[i].atom].stats
    }

    fn level_mode(&self, i: usize) -> SelfLoopMode {
        if self.levels[i].plus_identity {
            SelfLoopMode::FactorA
        } else {
            SelfLoopMode::None
        }
    }

    /// Effective degree of level `i` at factor vertex `v`.
    fn level_degree(&self, i: usize, v: Ix) -> u64 {
        self.level_graph(i).degree(v) as u64 + u64::from(self.levels[i].plus_identity)
    }

    /// Product degree `d_C(p) = Π d_eff,i(p_i)`; fits `u64` because the
    /// constructor bounded `Π Δ_eff,i`.
    pub fn degree(&self, p: Ix) -> u64 {
        self.split(p)
            .iter()
            .enumerate()
            .map(|(i, &v)| self.level_degree(i, v))
            .product()
    }

    /// Effective adjacency test at one level.
    fn level_hit(&self, i: usize, v: Ix, w: Ix) -> bool {
        self.level_graph(i).has_edge(v, w) || (self.levels[i].plus_identity && v == w)
    }

    /// Whether `(p, q)` is a product edge: a hit at **every** level.
    pub fn has_edge(&self, p: Ix, q: Ix) -> bool {
        let (vp, vq) = (self.split(p), self.split(q));
        (0..self.levels.len()).all(|i| self.level_hit(i, vp[i], vq[i]))
    }

    /// One page of `p`'s neighbors in ascending order — the k-factor
    /// generalisation of [`KroneckerProduct::neighbors_page`]: per-level
    /// sorted effective neighbor lists, with ranks decomposed in mixed
    /// radix over the per-level effective degrees. O(Σ d_i + limit).
    pub fn neighbors_page(&self, p: Ix, offset: u64, limit: usize) -> Vec<Ix> {
        let coords = self.split(p);
        // Sorted effective neighbor list per level (self spliced in at its
        // sorted position under `+ I`).
        let eff: Vec<Vec<Ix>> = coords
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let nbrs = self.level_graph(i).neighbors(v);
                if self.levels[i].plus_identity {
                    let at = nbrs.partition_point(|&w| w < v);
                    let mut row = Vec::with_capacity(nbrs.len() + 1);
                    row.extend_from_slice(&nbrs[..at]);
                    row.push(v);
                    row.extend_from_slice(&nbrs[at..]);
                    row
                } else {
                    nbrs.to_vec()
                }
            })
            .collect();
        let radix: Vec<u64> = eff.iter().map(|row| row.len() as u64).collect();
        let total: u64 = radix.iter().product();
        // Rank strides mirror the index strides: level 0 most significant.
        let mut rank_stride = vec![1u64; radix.len()];
        for i in (0..radix.len().saturating_sub(1)).rev() {
            rank_stride[i] = rank_stride[i + 1] * radix[i + 1];
        }
        let start = offset.min(total);
        let end = total.min(offset.saturating_add(limit as u64));
        (start..end)
            .map(|r| {
                (0..eff.len())
                    .map(|i| eff[i][((r / rank_stride[i]) % radix[i]) as usize] * self.strides[i])
                    .sum()
            })
            .collect()
    }

    /// Thm 3/4 chained: 4-cycles at product vertex `p`, as the 4-term
    /// product-of-levels formula `2s(p) = Π walk₄ − Π d² − Π w₂ + Π d`.
    pub fn vertex_squares_at(&self, p: Ix) -> u64 {
        let coords = self.split(p);
        let (mut walk4, mut deg_sq, mut w2, mut deg) = (1i128, 1i128, 1i128, 1i128);
        for (i, &v) in coords.iter().enumerate() {
            let t = single_terms(self.level_stats(i), v, self.levels[i].plus_identity);
            walk4 *= t.0;
            deg_sq *= t.1;
            w2 *= t.2;
            deg *= t.3;
        }
        let twice = walk4 - deg_sq - w2 + deg;
        debug_assert!(twice >= 0 && twice % 2 == 0);
        (twice / 2) as u64
    }

    /// Thm 5 chained: `◇_pq = Π (M_i³)_{p_i q_i} − d_p − d_q + 1`;
    /// `None` when `(p, q)` is not a product edge.
    pub fn edge_squares_at(&self, p: Ix, q: Ix) -> Option<u64> {
        let (vp, vq) = (self.split(p), self.split(q));
        let mut w3: i128 = 1;
        for i in 0..self.levels.len() {
            w3 *= w3_effective_a(self.level_stats(i), self.level_mode(i), vp[i], vq[i])?;
        }
        let (dp, dq) = (self.degree(p) as i128, self.degree(q) as i128);
        let v = w3 - dp - dq + 1;
        debug_assert!(v >= 0);
        Some(v as u64)
    }

    /// Thm 6 chained: exact `Γ_C` plus the pairwise-folded scaling-law
    /// lower bound (see [`ChainClustering`] for when each is defined).
    ///
    /// The fold applies the two-factor Thm 6 inequality `Γ_{X⊗Y} ≥
    /// ψ(d) Γ_X Γ_Y` to prefixes: `Γ_C ≥ ψ_2 Γ_{1..2} Γ_3 ≥ ψ_2 (ψ_1 Γ_1
    /// Γ_2) Γ_3 ≥ …` — substituting each prefix's bound is valid because
    /// `ψ` and all `Γ` are non-negative. Prefix degrees multiply, so each
    /// `ψ` is evaluated at `(d_prefix(p), d_prefix(q), d_i(p_i), d_i(q_i))`.
    pub fn clustering_at(&self, p: Ix, q: Ix) -> ChainClustering {
        let squares = self.edge_squares_at(p, q);
        let gamma = squares.and_then(|s| {
            let denom = (self.degree(p) as i128 - 1) * (self.degree(q) as i128 - 1);
            (denom > 0).then(|| s as f64 / denom as f64)
        });
        let (vp, vq) = (self.split(p), self.split(q));
        let bound_defined = gamma.is_some()
            && self.levels.iter().all(|l| !l.plus_identity)
            && (0..self.levels.len())
                .all(|i| self.level_degree(i, vp[i]) >= 2 && self.level_degree(i, vq[i]) >= 2);
        let (mut bound, mut psi_total) = (None, None);
        if bound_defined {
            let fold = (|| -> Option<(f64, f64)> {
                let mut acc = factor_gamma(self.level_stats(0), vp[0], vq[0])?;
                let mut psi_acc = 1.0;
                let mut dp = self.level_degree(0, vp[0]) as i128;
                let mut dq = self.level_degree(0, vq[0]) as i128;
                for i in 1..self.levels.len() {
                    let di = self.level_degree(i, vp[i]) as i128;
                    let dj = self.level_degree(i, vq[i]) as i128;
                    let f = psi(dp, dq, di, dj);
                    acc = f * acc * factor_gamma(self.level_stats(i), vp[i], vq[i])?;
                    psi_acc *= f;
                    dp *= di;
                    dq *= dj;
                }
                Some((acc, psi_acc))
            })();
            if let Some((b, f)) = fold {
                bound = Some(b);
                psi_total = Some(f);
            }
        }
        ChainClustering {
            squares,
            gamma,
            bound,
            psi: psi_total,
        }
    }

    /// Thm 7 chained: **exact** internal/external edge counts for the
    /// product community `S = S_1 γ … γ S_k` from per-level counts alone:
    ///
    /// ```text
    /// 2·m_in(S) = 1_Sᵀ C 1_S = Π_i (2·m_in,i + ε_i |S_i|)
    /// vol(S)    = 1_Sᵀ C 1_V = Π_i (2·m_in,i + m_out,i + ε_i |S_i|)
    /// m_out(S)  = vol(S) − 2·m_in(S)
    /// ```
    ///
    /// With `k = 2` and `ε = (1, 0)` this is literally the paper's Thm 7.
    /// Level sets are deduplicated; out-of-range members or a wrong set
    /// count are errors.
    pub fn community(&self, sets: &[Vec<Ix>]) -> Result<ChainCommunity, ChainError> {
        if sets.len() != self.levels.len() {
            return Err(ChainError::Empty);
        }
        let (mut size, mut in_all, mut vol_all) = (1u128, 1u128, 1u128);
        for (i, set) in sets.iter().enumerate() {
            let g = self.level_graph(i);
            let mut members = set.clone();
            members.sort_unstable();
            members.dedup();
            if members.last().is_some_and(|&v| v >= g.num_vertices()) {
                return Err(ChainError::TooLarge);
            }
            let in_set = |v: Ix| members.binary_search(&v).is_ok();
            let (mut m_in2, mut m_out) = (0u128, 0u128); // m_in2 = 2·m_in
            for &u in &members {
                for &v in g.neighbors(u) {
                    if in_set(v) {
                        m_in2 += 1;
                    } else {
                        m_out += 1;
                    }
                }
            }
            let eps = u128::from(self.levels[i].plus_identity) * members.len() as u128;
            size = size
                .checked_mul(members.len() as u128)
                .ok_or(ChainError::TooLarge)?;
            in_all = in_all
                .checked_mul(m_in2 + eps)
                .ok_or(ChainError::TooLarge)?;
            vol_all = vol_all
                .checked_mul(m_in2 + m_out + eps)
                .ok_or(ChainError::TooLarge)?;
        }
        debug_assert_eq!(in_all % 2, 0, "some level is loop-free, so Π is even");
        let to_u64 = |x: u128| u64::try_from(x).map_err(|_| ChainError::TooLarge);
        Ok(ChainCommunity {
            size: to_u64(size)?,
            m_in: to_u64(in_all / 2)?,
            m_out: to_u64(vol_all - in_all)?,
        })
    }

    /// Global 4-cycle count in O(Σ n_i): each of the four Thm 3/4 term
    /// vectors sums per level, and sums of Kronecker vectors factor —
    /// `Σ 2s(p) = Π Σ walk₄ − Π Σ d² − Π Σ w₂ + Π Σ d = 8·#squares`.
    fn compute_global_squares(&self) -> Result<u64, ChainError> {
        let overflow = ChainError::Stats(SparseError::Overflow {
            op: "chain.global_squares",
        });
        let mut sums = [1i128, 1, 1, 1];
        for l in &self.levels {
            let stats = &self.atoms[l.atom].stats;
            let mut level = [0i128; 4];
            for v in 0..stats.order() {
                let t = single_terms(stats, v, l.plus_identity);
                for (acc, term) in level.iter_mut().zip([t.0, t.1, t.2, t.3]) {
                    *acc = acc.checked_add(term).ok_or_else(|| overflow.clone())?;
                }
            }
            for (acc, s) in sums.iter_mut().zip(level) {
                *acc = acc.checked_mul(s).ok_or_else(|| overflow.clone())?;
            }
        }
        let eight = sums[0]
            .checked_sub(sums[1])
            .and_then(|x| x.checked_sub(sums[2]))
            .and_then(|x| x.checked_add(sums[3]))
            .ok_or(overflow)?;
        if eight < 0 || eight % 8 != 0 {
            return Err(ChainError::Stats(SparseError::Malformed(format!(
                "chain global squares broke the /8 invariant: {eight}"
            ))));
        }
        u64::try_from(eight / 8).map_err(|_| ChainError::TooLarge)
    }

    /// Materialise the product as a [`Graph`] by folding [`kron()`] over the
    /// per-level effective adjacencies. Memory `O(nnz(C))` — validation
    /// only, like [`KroneckerProduct::materialize`].
    pub fn materialize(&self) -> Graph {
        let eff = |i: usize| -> Csr<u64> {
            let g = self.level_graph(i);
            if self.levels[i].plus_identity {
                let eye = Csr::diagonal(g.num_vertices(), 1u64);
                ewise_add(g.adjacency(), &eye, |x, y| x + y, |&v| v == 0).expect("same shape")
            } else {
                g.adjacency().clone()
            }
        };
        let mut acc = eff(0);
        for i in 1..self.levels.len() {
            acc = kron(&Times, &acc, &eff(i)).expect("factor shapes are compatible");
        }
        Graph::from_adjacency(acc).expect("kron of symmetric factors is symmetric")
    }
}

// `KroneckerProduct` is only referenced in doc comments; keep the link
// target imported for rustdoc.
#[allow(unused_imports)]
use crate::product::KroneckerProduct;

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_generators::{complete_bipartite, cycle, path, star};

    fn bind(names: &[(&str, Graph)]) -> Vec<(String, Graph)> {
        names
            .iter()
            .map(|(n, g)| (n.to_string(), g.clone()))
            .collect()
    }

    fn spec(levels: &[(&str, bool)]) -> Vec<(String, bool)> {
        levels.iter().map(|(n, p)| (n.to_string(), *p)).collect()
    }

    /// The differential workhorse: every per-vertex/per-edge statistic of
    /// the chain against brute force on its own materialisation.
    fn check_against_materialized(chain: &KronChain) {
        let mat = chain.materialize();
        let n = chain.num_vertices();
        assert_eq!(mat.num_vertices(), n);
        assert_eq!(mat.num_edges() as u64, chain.num_edges());
        assert_eq!(mat.max_degree() as u64, chain.max_degree());
        let per_vertex = bikron_analytics_squares(&mat);
        let total: u64 = per_vertex.iter().sum::<u64>() / 4;
        assert_eq!(total, chain.global_squares(), "global squares");
        for (p, &squares) in per_vertex.iter().enumerate() {
            assert_eq!(mat.degree(p) as u64, chain.degree(p), "degree at {p}");
            assert_eq!(squares, chain.vertex_squares_at(p), "squares at {p}");
            assert_eq!(
                mat.neighbors(p).to_vec(),
                chain.neighbors_page(p, 0, usize::MAX),
                "neighbors at {p}"
            );
            for q in 0..n {
                assert_eq!(mat.has_edge(p, q), chain.has_edge(p, q), "edge ({p},{q})");
                let expect = mat.has_edge(p, q).then(|| brute_edge_squares(&mat, p, q));
                assert_eq!(expect, chain.edge_squares_at(p, q), "◇ at ({p},{q})");
            }
        }
    }

    /// 4-cycles per vertex, enumerated on the materialised graph.
    fn bikron_analytics_squares(g: &Graph) -> Vec<u64> {
        bikron_analytics::butterfly::butterflies_per_vertex(g)
    }

    /// 4-cycles through edge (p, q), enumerated on the materialised graph.
    fn brute_edge_squares(g: &Graph, p: usize, q: usize) -> u64 {
        bikron_analytics::butterfly::butterflies_per_edge(g)
            .get(p, q)
            .expect("(p, q) is an edge")
    }

    fn three_factor() -> KronChain {
        KronChain::new(
            bind(&[
                ("A", cycle(3)),
                ("B", path(3)),
                ("C", complete_bipartite(2, 2)),
            ]),
            &spec(&[("A", true), ("B", false), ("C", false)]),
        )
        .unwrap()
    }

    #[test]
    fn three_factor_chain_matches_materialized() {
        check_against_materialized(&three_factor());
    }

    #[test]
    fn tower_matches_materialized() {
        let chain = KronChain::new(
            bind(&[("A", cycle(3))]),
            &spec(&[("A", false), ("A", false), ("A", false)]),
        )
        .unwrap();
        assert_eq!(chain.canonical(), "A⊗A⊗A");
        check_against_materialized(&chain);
    }

    #[test]
    fn bare_pair_matches_materialized() {
        let chain = KronChain::new(
            bind(&[("A", cycle(5)), ("B", star(3))]),
            &spec(&[("A", false), ("B", false)]),
        )
        .unwrap();
        check_against_materialized(&chain);
    }

    #[test]
    fn two_level_chain_agrees_with_kronecker_product() {
        use crate::{KroneckerProduct, SelfLoopMode};
        let (a, b) = (cycle(5), complete_bipartite(2, 3));
        let chain = KronChain::new(
            bind(&[("A", a.clone()), ("B", b.clone())]),
            &spec(&[("A", true), ("B", false)]),
        )
        .unwrap();
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        assert_eq!(chain.num_vertices(), prod.num_vertices());
        assert_eq!(chain.num_edges(), prod.num_edges());
        for p in 0..chain.num_vertices() {
            assert_eq!(chain.degree(p), prod.degree(p));
            assert_eq!(
                chain.neighbors_page(p, 1, 3),
                prod.neighbors_page(p, 1, 3),
                "page at {p}"
            );
        }
    }

    #[test]
    fn split_combine_round_trip() {
        let chain = three_factor();
        for p in 0..chain.num_vertices() {
            assert_eq!(chain.combine(&chain.split(p)), p);
        }
    }

    #[test]
    fn clustering_bound_holds_on_bare_chain() {
        // All-bare chain of degree-≥2 factors: the Thm 6 fold must be
        // defined on every edge and lower-bound the exact Γ.
        let chain = KronChain::new(
            bind(&[("A", cycle(3)), ("B", cycle(4)), ("C", cycle(5))]),
            &spec(&[("A", false), ("B", false), ("C", false)]),
        )
        .unwrap();
        let mat = chain.materialize();
        let mut checked = 0;
        for (p, q) in mat.edges() {
            let c = chain.clustering_at(p, q);
            let gamma = c.gamma.expect("edge with degrees ≥ 2");
            let bound = c.bound.expect("all-bare chain");
            assert!(
                bound <= gamma + 1e-12,
                "Thm 6 violated at ({p},{q}): bound {bound} > gamma {gamma}"
            );
            assert!(c.psi.unwrap() > 0.0 && c.psi.unwrap() < 1.0);
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn clustering_has_no_bound_under_identity_lift() {
        let chain = three_factor();
        let mat = chain.materialize();
        let (p, q) = mat.edges().next().unwrap();
        let c = chain.clustering_at(p, q);
        assert!(c.squares.is_some());
        assert_eq!(c.bound, None);
        assert_eq!(c.psi, None);
    }

    #[test]
    fn community_counts_match_brute_force() {
        let chain = three_factor();
        let mat = chain.materialize();
        let sets = vec![vec![0usize, 1], vec![0, 2], vec![1, 2, 3]];
        let truth = chain.community(&sets).unwrap();
        // Brute force: product membership via per-level coordinates.
        let member = |p: usize| chain.split(p).iter().zip(&sets).all(|(c, s)| s.contains(c));
        let (mut m_in, mut m_out, mut size) = (0u64, 0u64, 0u64);
        for p in 0..chain.num_vertices() {
            if !member(p) {
                continue;
            }
            size += 1;
            for &q in mat.neighbors(p) {
                if member(q) {
                    m_in += 1;
                } else {
                    m_out += 1;
                }
            }
        }
        assert_eq!(truth.size, size);
        assert_eq!(truth.m_in, m_in / 2);
        assert_eq!(truth.m_out, m_out);
    }

    #[test]
    fn construction_error_matrix() {
        let ok = |levels: &[(&str, bool)]| KronChain::new(bind(&[("A", cycle(3))]), &spec(levels));
        assert_eq!(ok(&[]).err().unwrap(), ChainError::Empty);
        assert_eq!(
            ok(&[("B", false)]).err().unwrap(),
            ChainError::UnboundName("B".into())
        );
        assert_eq!(
            ok(&[("A", true)]).err().unwrap(),
            ChainError::NoLoopFreeLevel
        );
        assert_eq!(
            KronChain::new(
                bind(&[("A", cycle(3)), ("A", cycle(4))]),
                &spec(&[("A", false)])
            )
            .err()
            .unwrap(),
            ChainError::DuplicateName("A".into())
        );
    }
}
