//! Structure prediction for Kronecker products (paper §III, Thms. 1–2 and
//! Weichsel's classical theorem).
//!
//! Given the factors and the self-loop mode, [`predict_structure`] states —
//! without building the product — whether `G_C` is bipartite, whether it is
//! connected, and how many components it has. The predictions:
//!
//! * `C = A ⊗ B`, both factors connected:
//!   * at least one factor non-bipartite → connected (Weichsel; Thm. 1 is
//!     the case `A` non-bipartite, `B` bipartite);
//!   * both factors bipartite (loop-free) → exactly **2** components, the
//!     pairing of the four direct-product blocks
//!     `{U_A⊕U_B ∪ W_A⊕W_B}` and `{U_A⊕W_B ∪ W_A⊕U_B}` (§III-A);
//! * `C = (A + I_A) ⊗ B`, both factors bipartite connected → connected
//!   (Thm. 2);
//! * disconnected factors multiply: components of `C` refine the products
//!   of factor components, so `C` is never connected if a factor isn't.
//!
//! `C` is bipartite iff at least one *effective* factor is bipartite
//! (`A + I_A` is never bipartite, so under `FactorA` mode bipartiteness
//! must come from `B`). The witness side assignment for a bipartite `B` is
//! `side_C(p) = side_B(β(p))`, which is also the part structure behind
//! Table I's `|U_C| = n_A·|U_B|`.

use bikron_graph::{bipartition, is_connected, Bipartition};
use bikron_sparse::Ix;

use crate::product::{KroneckerProduct, SelfLoopMode};

/// Predicted structure of the product graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProductStructure {
    /// Whether `G_C` is bipartite.
    pub bipartite: bool,
    /// Part sizes `(|U_C|, |W_C|)` when bipartite.
    pub parts: Option<(usize, usize)>,
    /// Whether `G_C` is connected.
    pub connected: bool,
    /// Exact component count of `G_C`, predicted for *arbitrary* factors
    /// by applying the §III-A dichotomy to every pair of factor
    /// components (see [`predicted_components`]).
    pub num_components: Option<usize>,
    /// Which theorem (if any) guarantees bipartite + connected.
    pub theorem: Option<Theorem>,
}

/// The guaranteeing theorem for a connected bipartite product.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Theorem {
    /// Thm. 1: `A` non-bipartite connected, `B` bipartite connected,
    /// `C = A ⊗ B`.
    NonBipartiteFactor,
    /// Thm. 2: both bipartite connected, `C = (A + I_A) ⊗ B`.
    SelfLoopsInA,
}

/// Predict the structure of a product from its factors (no materialisation).
pub fn predict_structure(prod: &KroneckerProduct<'_>) -> ProductStructure {
    let a = prod.factor_a();
    let b = prod.factor_b();
    let bip_a = bipartition(a);
    let bip_b = bipartition(b);
    let conn_a = is_connected(a);
    let conn_b = is_connected(b);

    // Effective factor A: loops destroy bipartiteness.
    let eff_a_bipartite = match prod.mode() {
        SelfLoopMode::None => bip_a.is_some(),
        SelfLoopMode::FactorA => false,
    };
    let bipartite = eff_a_bipartite || bip_b.is_some();

    let parts = product_parts(prod, bip_a.as_ref(), bip_b.as_ref());

    // Exact component count, generalising §III-A to arbitrary factors:
    // components of C refine the direct products of factor components,
    // and for each component pair (c_A, c_B) the classical dichotomy
    // applies locally — edge-free pairs shatter into isolated vertices,
    // bipartite × bipartite pairs split in two, anything else is one
    // component (Weichsel / Thm. 1 / Thm. 2).
    let num_components = Some(predicted_components(prod));
    let connected = num_components == Some(1);

    let theorem = match prod.mode() {
        SelfLoopMode::None => (bip_a.is_none() && conn_a && bip_b.is_some() && conn_b)
            .then_some(Theorem::NonBipartiteFactor),
        SelfLoopMode::FactorA => (bip_a.is_some() && conn_a && bip_b.is_some() && conn_b)
            .then_some(Theorem::SelfLoopsInA),
    };

    ProductStructure {
        bipartite,
        parts,
        connected,
        num_components,
        theorem,
    }
}

/// Exact number of connected components of the product, for arbitrary
/// factors. For each pair `(c_A, c_B)` of factor components:
///
/// * if either side contributes no adjacency entries (an edge-free
///   component under mode `None`; an edge-free `B` component under
///   `FactorA`, where the `+I_A` loops only pair with `B` edges), the
///   block is `|c_A|·|c_B|` isolated vertices;
/// * otherwise, under `FactorA` the lazy loops break all parity
///   constraints → 1 component (Thm. 2's local form);
/// * otherwise both components are bipartite → 2 components (§III-A), or
///   at least one is non-bipartite → 1 (Weichsel / Thm. 1).
pub fn predicted_components(prod: &KroneckerProduct<'_>) -> usize {
    let a = prod.factor_a();
    let b = prod.factor_b();
    let comp_a = bikron_graph::connected_components(a);
    let comp_b = bikron_graph::connected_components(b);
    // Per-component facts: size, has an edge, is bipartite.
    let facts = |g: &bikron_graph::Graph, comps: &bikron_graph::Components| {
        let bip = bikron_graph::bipartition(g);
        let mut size = vec![0usize; comps.count];
        let mut has_edge = vec![false; comps.count];
        let mut odd = vec![false; comps.count]; // contains an odd cycle
        for v in 0..g.num_vertices() {
            size[comps.label[v]] += 1;
        }
        for (u, v) in g.edges() {
            has_edge[comps.label[u]] = true;
            let _ = v;
        }
        match bip {
            Some(_) => {}
            None => {
                // Find which components are non-bipartite by colouring
                // each component independently.
                for (c, odd_c) in odd.iter_mut().enumerate() {
                    let members = comps.members(c);
                    let sub_edges: Vec<(usize, usize)> = g
                        .edges()
                        .filter(|&(u, _)| comps.label[u] == c)
                        .map(|(u, v)| {
                            let iu = members.binary_search(&u).unwrap();
                            let iv = members.binary_search(&v).unwrap();
                            (iu, iv)
                        })
                        .collect();
                    let sub = bikron_graph::Graph::from_edges(members.len(), &sub_edges).unwrap();
                    *odd_c = bikron_graph::bipartition(&sub).is_none();
                }
            }
        }
        (size, has_edge, odd)
    };
    let (size_a, edge_a, odd_a) = facts(a, &comp_a);
    let (size_b, edge_b, odd_b) = facts(b, &comp_b);

    let mut total = 0usize;
    for ca in 0..comp_a.count {
        for cb in 0..comp_b.count {
            let a_active = match prod.mode() {
                SelfLoopMode::None => edge_a[ca],
                SelfLoopMode::FactorA => true, // every vertex carries a loop
            };
            if !a_active || !edge_b[cb] {
                total += size_a[ca] * size_b[cb];
                continue;
            }
            let a_breaks_parity = match prod.mode() {
                SelfLoopMode::None => odd_a[ca],
                SelfLoopMode::FactorA => true,
            };
            total += if a_breaks_parity || odd_b[cb] { 1 } else { 2 };
        }
    }
    total
}

/// Part sizes of the product when bipartite. When `B` is bipartite the
/// parts are `V_A ⊗ U_B` and `V_A ⊗ W_B`; otherwise, if effective `A` is
/// bipartite, symmetrically `U_A ⊗ V_B` / `W_A ⊗ V_B`.
fn product_parts(
    prod: &KroneckerProduct<'_>,
    bip_a: Option<&Bipartition>,
    bip_b: Option<&Bipartition>,
) -> Option<(usize, usize)> {
    let na = prod.factor_a().num_vertices();
    let nb = prod.factor_b().num_vertices();
    if let Some(bb) = bip_b {
        return Some((na * bb.u_len(), na * bb.w_len()));
    }
    if prod.mode() == SelfLoopMode::None {
        if let Some(ba) = bip_a {
            return Some((ba.u_len() * nb, ba.w_len() * nb));
        }
    }
    None
}

/// The bipartition of the product induced by a bipartite factor `B`:
/// `side_C(p) = side_B(β(p))`.
pub fn product_bipartition(prod: &KroneckerProduct<'_>) -> Option<Bipartition> {
    let bb = bipartition(prod.factor_b())?;
    let ix = prod.indexer();
    let n = prod.num_vertices();
    let side: Vec<u8> = (0..n).map(|p| bb.side_of(ix.beta(p))).collect();
    let u: Vec<Ix> = (0..n).filter(|&p| side[p] == 0).collect();
    let w: Vec<Ix> = (0..n).filter(|&p| side[p] == 1).collect();
    Some(Bipartition { u, w, side })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_generators::{complete_bipartite, cycle, path, petersen, star};
    use bikron_graph::{connected_components, is_bipartite};

    fn check_against_reality(prod: &KroneckerProduct<'_>) {
        let pred = predict_structure(prod);
        let g = prod.materialize();
        assert_eq!(
            pred.bipartite,
            is_bipartite(&g),
            "bipartiteness prediction failed for {:?}",
            prod.mode()
        );
        assert_eq!(pred.connected, is_connected(&g), "connectivity prediction");
        if let Some(nc) = pred.num_components {
            assert_eq!(nc, connected_components(&g).count, "component count");
        }
        if let Some((u, w)) = pred.parts {
            assert!(bipartition(&g).is_some(), "predicted bipartite");
            if pred.connected {
                // Connected bipartite graphs have a unique bipartition
                // (up to swapping sides).
                let bip = bipartition(&g).unwrap();
                let got = (bip.u_len(), bip.w_len());
                assert!(
                    got == (u, w) || got == (w, u),
                    "parts {got:?} vs predicted {:?}",
                    (u, w)
                );
            } else if let Some(pb) = super::product_bipartition(prod) {
                // Disconnected: BFS recolours per component, so instead
                // verify the predicted B-induced assignment is a proper
                // colouring with the predicted sizes.
                for (x, y) in g.edges() {
                    assert_ne!(pb.side_of(x), pb.side_of(y));
                }
                assert_eq!((pb.u_len(), pb.w_len()), (u, w));
            }
        }
    }

    #[test]
    fn thm1_nonbipartite_times_bipartite_connected() {
        let a = cycle(5); // non-bipartite connected
        let b = complete_bipartite(2, 3);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let pred = predict_structure(&p);
        assert!(pred.bipartite && pred.connected);
        assert_eq!(pred.theorem, Some(Theorem::NonBipartiteFactor));
        assert_eq!(pred.parts, Some((10, 15)));
        check_against_reality(&p);
    }

    #[test]
    fn fig1_top_two_bipartite_factors_disconnect() {
        let a = path(3);
        let b = cycle(4);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let pred = predict_structure(&p);
        assert!(pred.bipartite);
        assert!(!pred.connected);
        assert_eq!(pred.num_components, Some(2));
        assert_eq!(pred.theorem, None);
        check_against_reality(&p);
    }

    #[test]
    fn thm2_self_loops_reconnect() {
        let a = path(3);
        let b = cycle(4);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let pred = predict_structure(&p);
        assert!(pred.bipartite && pred.connected);
        assert_eq!(pred.theorem, Some(Theorem::SelfLoopsInA));
        check_against_reality(&p);
    }

    #[test]
    fn petersen_factor_no_squares_still_connected() {
        let a = petersen();
        let b = star(3);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let pred = predict_structure(&p);
        assert!(pred.bipartite && pred.connected);
        check_against_reality(&p);
    }

    #[test]
    fn disconnected_factor_propagates() {
        let a = bikron_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let b = cycle(4);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let pred = predict_structure(&p);
        assert!(!pred.connected);
        // Two A-components × one B-component, each pair Thm-2-connected.
        assert_eq!(pred.num_components, Some(2));
        check_against_reality(&p);
    }

    #[test]
    fn component_count_exact_on_messy_factors() {
        // A: triangle + edge + isolated vertex (3 components, mixed parity).
        let a = bikron_graph::Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        // B: square + isolated vertex (2 components).
        let b = bikron_graph::Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        for mode in [SelfLoopMode::None, SelfLoopMode::FactorA] {
            let p = KroneckerProduct::new(&a, &b, mode).unwrap();
            let pred = predict_structure(&p);
            let real = connected_components(&p.materialize()).count;
            assert_eq!(pred.num_components, Some(real), "mode {mode:?}");
        }
        // Spot-check the mode-None arithmetic:
        // pairs with B-square: triangle→1, edge→2, isolated→1·4=4... wait
        // the isolated A vertex has no edge → 1·4 = 4 isolated vertices.
        // pairs with B-isolated: 3·1 + 2·1 + 1·1 = 6 isolated vertices.
        // total = 1 + 2 + 4 + 6 = 13.
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        assert_eq!(predict_structure(&p).num_components, Some(13));
    }

    #[test]
    fn both_non_bipartite_product_not_bipartite() {
        let a = cycle(3);
        let b = cycle(5);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let pred = predict_structure(&p);
        assert!(!pred.bipartite);
        assert!(pred.connected);
        assert_eq!(pred.parts, None);
        check_against_reality(&p);
    }

    #[test]
    fn bipartite_a_nonbipartite_b_mode_none() {
        // Bipartiteness can come from either factor in mode None.
        let a = path(4);
        let b = cycle(3);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let pred = predict_structure(&p);
        assert!(pred.bipartite);
        assert!(pred.connected);
        assert_eq!(pred.parts, Some((2 * 3, 2 * 3)));
        check_against_reality(&p);
    }

    #[test]
    fn factor_a_loops_with_nonbipartite_b_not_bipartite() {
        let a = path(3);
        let b = cycle(5);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let pred = predict_structure(&p);
        assert!(!pred.bipartite);
        assert!(pred.connected);
        check_against_reality(&p);
    }

    #[test]
    fn single_vertex_factors() {
        let a = bikron_graph::Graph::from_edges(1, &[]).unwrap();
        let b = path(2);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let pred = predict_structure(&p);
        // 1×2 product with no A edges: two isolated vertices.
        assert!(!pred.connected);
        assert_eq!(pred.num_components, Some(2));
        check_against_reality(&p);
    }

    #[test]
    fn product_bipartition_sides() {
        let a = cycle(3);
        let b = path(2);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let bip = product_bipartition(&p).unwrap();
        // β(p) even-index vertices of B (vertex 0) are U.
        for pvert in 0..p.num_vertices() {
            assert_eq!(bip.side_of(pvert), (pvert % 2) as u8);
        }
        // Proper colouring on the materialised graph.
        let g = p.materialize();
        for (u, v) in g.edges() {
            assert_ne!(bip.side_of(u), bip.side_of(v));
        }
    }
}
