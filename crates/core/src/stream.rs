//! Partitioned, annotated edge streaming — generation at scale.
//!
//! The paper's conclusion sketches the deployment model: a distributed
//! generator that "compute\[s\] ground truth values during generation".
//! This module is the shared-memory version of that pipeline:
//!
//! * the product's edge set is split into `num_parts` **balanced,
//!   disjoint partitions** (by factor-`A` adjacency entries, each of
//!   which owns exactly `nnz(B)` product entries, so balance is exact up
//!   to one `A`-entry);
//! * each partition streams its edges independently (distribute across
//!   ranks, threads, or files), optionally **annotated with exact
//!   per-edge ground truth** (`◇_pq`, and the endpoint degrees) computed
//!   on the fly from factor statistics — no post-processing pass over the
//!   product is ever needed;
//! * writers emit plain or annotated edge-list files that the [`bikron_graph::io`]
//!   readers (and any external tool) can consume.

use std::io::{self, Write};

use bikron_sparse::Ix;

use crate::product::{KroneckerProduct, SelfLoopMode};
use crate::truth::walks::FactorStats;

/// One product edge with its ground-truth annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnnotatedEdge {
    /// Product endpoint `p < q`.
    pub p: Ix,
    /// Product endpoint.
    pub q: Ix,
    /// Degree of `p`.
    pub degree_p: u64,
    /// Degree of `q`.
    pub degree_q: u64,
    /// Exact 4-cycle participation `◇_pq`.
    pub squares: u64,
}

/// A partitioned view of a product's edge set.
pub struct PartitionedStream<'a> {
    prod: &'a KroneckerProduct<'a>,
    stats_a: &'a FactorStats,
    stats_b: &'a FactorStats,
    /// All effective `A`-entries `(i, j)` (including the diagonal under
    /// `FactorA` mode), in a fixed order.
    a_entries: Vec<(Ix, Ix)>,
    /// All CSR entries of `B` in iteration order — indexable, so pages
    /// can start mid-entry without rescanning the CSR.
    b_entries: Vec<(Ix, Ix)>,
    /// Canonical (`k < l`) `B`-entries, the ones a diagonal `A`-entry
    /// materialises after the `p < q` filter.
    b_canonical: Vec<(Ix, Ix)>,
    num_parts: usize,
}

impl<'a> PartitionedStream<'a> {
    /// Split the product into `num_parts ≥ 1` partitions.
    pub fn new(
        prod: &'a KroneckerProduct<'a>,
        stats_a: &'a FactorStats,
        stats_b: &'a FactorStats,
        num_parts: usize,
    ) -> Self {
        assert!(num_parts >= 1, "need at least one partition");
        // Canonical entries only (`i < j`, plus the diagonal under
        // `FactorA`): the mirrored entry `(j, i)` regenerates the same
        // undirected edges, so keeping one orientation makes partitions
        // exactly balanced — `nnz(B)` edges per off-diagonal entry,
        // `nnz(B)/2` per diagonal entry.
        let mut a_entries: Vec<(Ix, Ix)> = prod
            .factor_a()
            .adjacency()
            .iter()
            .filter(|&(i, j, _)| i < j)
            .map(|(i, j, _)| (i, j))
            .collect();
        if prod.mode() == SelfLoopMode::FactorA {
            a_entries.extend((0..prod.factor_a().num_vertices()).map(|i| (i, i)));
        }
        let b_entries: Vec<(Ix, Ix)> = prod
            .factor_b()
            .adjacency()
            .iter()
            .map(|(k, l, _)| (k, l))
            .collect();
        let b_canonical: Vec<(Ix, Ix)> =
            b_entries.iter().copied().filter(|&(k, l)| k < l).collect();
        PartitionedStream {
            prod,
            stats_a,
            stats_b,
            a_entries,
            b_entries,
            b_canonical,
            num_parts,
        }
    }

    /// Number of partitions.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// The `A`-entry range owned by `part` — the shared
    /// [`crate::partition::block_range`] tiling, so streaming, distsim,
    /// and the serve/router cluster all agree on ownership.
    fn slice(&self, part: usize) -> &[(Ix, Ix)] {
        let (lo, hi) = crate::partition::block_range(self.a_entries.len(), self.num_parts, part);
        &self.a_entries[lo..hi]
    }

    /// Stream the undirected edges (`p < q`) owned by `part`.
    ///
    /// Partitions are disjoint and their union is exactly the product's
    /// edge set: each undirected edge `{p, q}` materialises from exactly
    /// one canonical `A`-entry. An off-diagonal entry `(i, j)` (`i < j`)
    /// yields `p = γ(i,k) < γ(j,l) = q` for *every* `B`-entry; a diagonal
    /// entry yields one orientation per undirected `B` edge.
    pub fn edges(&self, part: usize) -> impl Iterator<Item = (Ix, Ix)> + '_ {
        let ix = self.prod.indexer();
        let b = self.prod.factor_b();
        self.slice(part).iter().flat_map(move |&(i, j)| {
            b.adjacency()
                .iter()
                .map(move |(k, l, _)| (ix.gamma(i, k), ix.gamma(j, l)))
                .filter(move |&(p, q)| i < j || p < q)
        })
    }

    /// Exact number of edges owned by `part` — `O(|slice|)` arithmetic,
    /// no streaming: an off-diagonal `A`-entry owns `nnz(B)` edges, a
    /// diagonal one owns the `|E_B|` canonical `B`-entries.
    pub fn part_len(&self, part: usize) -> u64 {
        self.slice(part)
            .iter()
            .map(|&(i, j)| {
                if i < j {
                    self.b_entries.len() as u64
                } else {
                    self.b_canonical.len() as u64
                }
            })
            .sum()
    }

    /// A resumable page of `part`'s edge stream: the edges at positions
    /// `[offset, offset + limit)` of [`PartitionedStream::edges`]`(part)`,
    /// in the same order. Whole `A`-entries are skipped arithmetically,
    /// so the cost is `O(|slice| + limit)` — independent of `offset`'s
    /// magnitude within an entry. This is what lets a long-lived service
    /// hand out a multi-million-edge partition in bounded-size chunks
    /// with a client-held cursor.
    pub fn edges_page(&self, part: usize, offset: u64, limit: usize) -> Vec<(Ix, Ix)> {
        let ix = self.prod.indexer();
        let mut out = Vec::with_capacity(limit.min(self.b_entries.len().max(16)));
        let mut skip = offset;
        for &(i, j) in self.slice(part) {
            if out.len() >= limit {
                break;
            }
            let list: &[(Ix, Ix)] = if i < j {
                &self.b_entries
            } else {
                &self.b_canonical
            };
            let n = list.len() as u64;
            if skip >= n {
                skip -= n;
                continue;
            }
            for &(k, l) in &list[skip as usize..] {
                if out.len() >= limit {
                    break;
                }
                out.push((ix.gamma(i, k), ix.gamma(j, l)));
            }
            skip = 0;
        }
        out
    }

    /// Stream annotated edges: ground truth attached during generation.
    pub fn annotated_edges(&self, part: usize) -> impl Iterator<Item = AnnotatedEdge> + '_ {
        let prod = self.prod;
        let sa = self.stats_a;
        let sb = self.stats_b;
        self.edges(part).map(move |(p, q)| AnnotatedEdge {
            p,
            q,
            degree_p: prod.degree(p),
            degree_q: prod.degree(q),
            squares: crate::truth::squares_edge::edge_squares_at(prod, sa, sb, p, q)
                .expect("streamed pairs are edges"),
        })
    }

    /// Write `part`'s edges as a plain `p q` edge list. Returns the edge
    /// count written.
    pub fn write_edges<W: Write>(&self, part: usize, mut w: W) -> io::Result<u64> {
        let obs = bikron_obs::global();
        let _phase = obs.phase("stream.write_edges");
        let mut count = 0u64;
        for (p, q) in self.edges(part) {
            writeln!(w, "{p} {q}")?;
            count += 1;
        }
        obs.counter("product.edges_streamed").add(count);
        Ok(count)
    }

    /// Write `part`'s annotated edges as TSV:
    /// `p  q  degree_p  degree_q  squares`.
    pub fn write_annotated<W: Write>(&self, part: usize, mut w: W) -> io::Result<u64> {
        let obs = bikron_obs::global();
        let _phase = obs.phase("stream.write_annotated");
        let mut count = 0u64;
        for e in self.annotated_edges(part) {
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}",
                e.p, e.q, e.degree_p, e.degree_q, e.squares
            )?;
            count += 1;
        }
        obs.counter("product.edges_streamed").add(count);
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::squares_edge::edge_squares_with;
    use bikron_generators::{complete_bipartite, crown, cycle, path};
    use std::collections::BTreeSet;

    fn setup<'a>(
        prod: &'a KroneckerProduct<'a>,
        sa: &'a FactorStats,
        sb: &'a FactorStats,
        parts: usize,
    ) -> PartitionedStream<'a> {
        PartitionedStream::new(prod, sa, sb, parts)
    }

    #[test]
    fn partitions_are_disjoint_and_complete() {
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        for mode in [SelfLoopMode::None, SelfLoopMode::FactorA] {
            let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
            let sa = FactorStats::compute(&a).unwrap();
            let sb = FactorStats::compute(&b).unwrap();
            for parts in [1, 2, 3, 7] {
                let ps = setup(&prod, &sa, &sb, parts);
                let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
                for part in 0..parts {
                    for (p, q) in ps.edges(part) {
                        assert!(seen.insert((p, q)), "duplicate edge ({p},{q})");
                    }
                }
                let expected: BTreeSet<(usize, usize)> = prod.edges().collect();
                assert_eq!(seen, expected, "parts {parts} mode {mode:?}");
            }
        }
    }

    #[test]
    fn partition_balance() {
        let a = crown(4);
        let b = crown(4);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let parts = 4;
        let ps = setup(&prod, &sa, &sb, parts);
        let sizes: Vec<usize> = (0..parts).map(|p| ps.edges(p).count()).collect();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        // Each A-entry yields the same number of product entries, so the
        // imbalance is at most one A-entry's worth.
        assert!(max - min <= b.nnz(), "sizes {sizes:?}");
    }

    #[test]
    fn pages_tile_the_stream() {
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        for mode in [SelfLoopMode::None, SelfLoopMode::FactorA] {
            let prod = KroneckerProduct::new(&a, &b, mode).unwrap();
            let sa = FactorStats::compute(&a).unwrap();
            let sb = FactorStats::compute(&b).unwrap();
            for parts in [1, 3] {
                let ps = setup(&prod, &sa, &sb, parts);
                for part in 0..parts {
                    let full: Vec<(usize, usize)> = ps.edges(part).collect();
                    assert_eq!(ps.part_len(part), full.len() as u64, "mode {mode:?}");
                    // Arbitrary windows match skip/take of the stream.
                    for (offset, limit) in [(0u64, 5usize), (3, 4), (7, 1000), (10_000, 3)] {
                        let page = ps.edges_page(part, offset, limit);
                        let lo = (offset as usize).min(full.len());
                        let hi = (lo + limit).min(full.len());
                        assert_eq!(page, &full[lo..hi], "offset {offset} limit {limit}");
                    }
                    // Resumable cursor: chunks of 4 reassemble the stream.
                    let mut cursor = 0u64;
                    let mut rebuilt = Vec::new();
                    loop {
                        let chunk = ps.edges_page(part, cursor, 4);
                        if chunk.is_empty() {
                            break;
                        }
                        cursor += chunk.len() as u64;
                        rebuilt.extend(chunk);
                    }
                    assert_eq!(rebuilt, full);
                }
            }
        }
    }

    #[test]
    fn annotations_match_batch_ground_truth() {
        let a = path(3);
        let b = cycle(4);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let batch = edge_squares_with(&prod, &sa, &sb).unwrap();
        let ps = setup(&prod, &sa, &sb, 3);
        let mut total = 0usize;
        for part in 0..3 {
            for e in ps.annotated_edges(part) {
                assert_eq!(batch.get(e.p, e.q), Some(e.squares));
                assert_eq!(e.degree_p, prod.degree(e.p));
                total += 1;
            }
        }
        assert_eq!(total as u64, prod.num_edges());
    }

    #[test]
    fn written_edges_reload_as_the_product() {
        let a = cycle(3);
        let b = path(4);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let ps = setup(&prod, &sa, &sb, 2);
        let mut buf = Vec::new();
        let mut written = 0;
        for part in 0..2 {
            written += ps.write_edges(part, &mut buf).unwrap();
        }
        assert_eq!(written, prod.num_edges());
        let reloaded =
            bikron_graph::io::read_edge_list(&buf[..], false, Some(prod.num_vertices())).unwrap();
        assert_eq!(reloaded, prod.materialize());
    }

    #[test]
    fn annotated_tsv_shape() {
        let a = path(3);
        let b = path(3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let ps = setup(&prod, &sa, &sb, 1);
        let mut buf = Vec::new();
        let n = ps.write_annotated(0, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count() as u64, n);
        for line in text.lines() {
            assert_eq!(line.split('\t').count(), 5);
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_parts_rejected() {
        let a = path(3);
        let b = path(3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let _ = PartitionedStream::new(&prod, &sa, &sb, 0);
    }
}
