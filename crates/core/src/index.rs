//! Block index maps (paper §II-A, zero-based).
//!
//! The paper defines, for block size `n` and 1-based indices,
//! `α_n(i) = ⌊(i−1)/n⌋ + 1`, `β_n(i) = ((i−1) mod n) + 1`, and the inverse
//! `γ_n(x, y) = (x−1)n + y`. This crate is zero-based throughout, so the
//! maps reduce to division and remainder:
//!
//! * `alpha(p) = p / n` — which factor-`A` vertex the product vertex
//!   belongs to,
//! * `beta(p) = p % n` — which factor-`B` vertex,
//! * `gamma(i, k) = i·n + k` — the product vertex for factor pair `(i, k)`.

use bikron_sparse::Ix;

/// Index mapper for a Kronecker product whose *second* factor has `n_b`
/// vertices (the block size).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct KronIndexer {
    n_b: Ix,
}

impl KronIndexer {
    /// Build for second-factor order `n_b` (must be positive).
    pub fn new(n_b: Ix) -> Self {
        assert!(n_b > 0, "block size must be positive");
        KronIndexer { n_b }
    }

    /// Block size (order of factor `B`).
    #[inline]
    pub fn block_size(&self) -> Ix {
        self.n_b
    }

    /// `α`: the factor-`A` vertex of product vertex `p`.
    #[inline]
    pub fn alpha(&self, p: Ix) -> Ix {
        p / self.n_b
    }

    /// `β`: the factor-`B` vertex of product vertex `p`.
    #[inline]
    pub fn beta(&self, p: Ix) -> Ix {
        p % self.n_b
    }

    /// `γ`: the product vertex of factor pair `(i, k)`.
    #[inline]
    pub fn gamma(&self, i: Ix, k: Ix) -> Ix {
        i * self.n_b + k
    }

    /// Split `p` into `(α(p), β(p))`.
    #[inline]
    pub fn split(&self, p: Ix) -> (Ix, Ix) {
        (self.alpha(p), self.beta(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let ix = KronIndexer::new(7);
        for i in 0..5 {
            for k in 0..7 {
                let p = ix.gamma(i, k);
                assert_eq!(ix.split(p), (i, k));
            }
        }
    }

    #[test]
    fn gamma_is_dense_and_ordered() {
        let ix = KronIndexer::new(3);
        let ps: Vec<_> = (0..4)
            .flat_map(|i| (0..3).map(move |k| (i, k)))
            .map(|(i, k)| ix.gamma(i, k))
            .collect();
        assert_eq!(ps, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn block_boundaries() {
        let ix = KronIndexer::new(4);
        assert_eq!(ix.alpha(3), 0);
        assert_eq!(ix.alpha(4), 1);
        assert_eq!(ix.beta(4), 0);
        assert_eq!(ix.beta(7), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_block_rejected() {
        KronIndexer::new(0);
    }
}
