//! Sampled ground truth without materialisation.
//!
//! The generator's economics (paper §I): for an analytic costing
//! `O(|E_C|^p)` directly, the Kronecker form gives ground truth from a
//! data structure of size `O(|E_C|^{p/2})` — the factors' statistics.
//! [`GroundTruth`] packages that: build once in `O(|factor|)` time, then
//! answer per-vertex, per-edge and global queries about a product that is
//! never materialised.

use bikron_graph::Graph;
use bikron_sparse::{Ix, SparseResult};

use crate::product::{KroneckerProduct, SelfLoopMode};
use crate::truth::distance::ParityTables;
use crate::truth::squares_edge::edge_squares_at;
use crate::truth::squares_vertex::{global_squares_with, vertex_squares_at, vertex_squares_with};
use crate::truth::walks::FactorStats;

/// Precomputed factor statistics bound to a product descriptor.
///
/// ```
/// use bikron_core::{GroundTruth, KroneckerProduct, SelfLoopMode};
/// use bikron_graph::Graph;
///
/// // C = (P3 + I) ⊗ C4: bipartite and connected by Thm. 2.
/// let a = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let b = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
///
/// let gt = GroundTruth::new(prod).unwrap().with_distances();
/// let global = gt.global_squares().unwrap();   // exact, sublinear
/// assert!(global > 0);
/// assert_eq!(gt.degree(0), 4);                 // (d_A(0)+1)·d_B(0) = 2·2
/// assert!(gt.diameter().is_some());            // connected (Thm. 2)
/// assert!(gt.validate_global(global).unwrap().ok);
/// assert!(!gt.validate_global(global + 1).unwrap().ok);
/// ```
pub struct GroundTruth<'a> {
    prod: KroneckerProduct<'a>,
    stats_a: FactorStats,
    stats_b: FactorStats,
    distances: Option<(ParityTables, ParityTables)>,
}

impl<'a> GroundTruth<'a> {
    /// Build the oracle: two factor-stat computations, nothing
    /// product-sized.
    pub fn new(prod: KroneckerProduct<'a>) -> SparseResult<Self> {
        let stats_a = FactorStats::compute(prod.factor_a())?;
        let stats_b = FactorStats::compute(prod.factor_b())?;
        Ok(GroundTruth {
            prod,
            stats_a,
            stats_b,
            distances: None,
        })
    }

    /// Additionally precompute the all-pairs factor parity-distance
    /// tables, enabling [`GroundTruth::hops`], [`GroundTruth::eccentricity`]
    /// and [`GroundTruth::diameter`]. Costs `O(n_A·(n_A+m_A) + n_B·(n_B+m_B))`.
    pub fn with_distances(mut self) -> Self {
        self.distances = Some((
            ParityTables::compute(self.prod.factor_a()),
            ParityTables::compute(self.prod.factor_b()),
        ));
        self
    }

    /// The underlying product descriptor.
    pub fn product(&self) -> &KroneckerProduct<'a> {
        &self.prod
    }

    /// Factor-`A` statistics.
    pub fn stats_a(&self) -> &FactorStats {
        &self.stats_a
    }

    /// Factor-`B` statistics.
    pub fn stats_b(&self) -> &FactorStats {
        &self.stats_b
    }

    /// `|V_C|`.
    pub fn num_vertices(&self) -> Ix {
        self.prod.num_vertices()
    }

    /// `|E_C|`.
    pub fn num_edges(&self) -> u64 {
        self.prod.num_edges()
    }

    /// Exact degree of a product vertex — O(1).
    pub fn degree(&self, p: Ix) -> u64 {
        self.prod.degree(p)
    }

    /// Exact 4-cycle count at a product vertex — O(1).
    pub fn squares_at_vertex(&self, p: Ix) -> u64 {
        vertex_squares_at(&self.prod, &self.stats_a, &self.stats_b, p)
    }

    /// Exact 4-cycle count at a product edge — O(log d) lookups; `None`
    /// for non-edges.
    pub fn squares_at_edge(&self, p: Ix, q: Ix) -> Option<u64> {
        edge_squares_at(&self.prod, &self.stats_a, &self.stats_b, p, q)
    }

    /// Exact global 4-cycle count — `O(n_A + n_B)`, sublinear in `|E_C|`.
    pub fn global_squares(&self) -> SparseResult<u64> {
        global_squares_with(&self.prod, &self.stats_a, &self.stats_b)
    }

    fn distance_tables(&self) -> &(ParityTables, ParityTables) {
        self.distances
            .as_ref()
            .expect("call with_distances() before distance queries")
    }

    /// Exact hop distance between product vertices (`u64::MAX` when
    /// unreachable). Requires [`GroundTruth::with_distances`].
    pub fn hops(&self, p: Ix, q: Ix) -> u64 {
        let (ta, tb) = self.distance_tables();
        crate::truth::distance::hops_at(&self.prod, ta, tb, p, q)
    }

    /// Exact eccentricity of a product vertex (`None` when the product is
    /// disconnected). Requires [`GroundTruth::with_distances`].
    pub fn eccentricity(&self, p: Ix) -> Option<u64> {
        let (ta, tb) = self.distance_tables();
        crate::truth::distance::eccentricity_at(&self.prod, ta, tb, p)
    }

    /// Exact product diameter (`None` when disconnected), from factor
    /// signatures only. Requires [`GroundTruth::with_distances`].
    pub fn diameter(&self) -> Option<u64> {
        let (ta, tb) = self.distance_tables();
        crate::truth::distance::diameter(&self.prod, ta, tb)
    }

    /// Full per-vertex ground-truth vector — `O(|V_C|)` output time.
    pub fn all_vertex_squares(&self) -> SparseResult<Vec<u64>> {
        vertex_squares_with(&self.prod, &self.stats_a, &self.stats_b)
    }

    /// The `k` product vertices with the most 4-cycles, as
    /// `(vertex, squares)` sorted descending — `O(|V_C| log k)` time,
    /// `O(k)` memory, nothing product-sized retained. The Fig.-5 "hot
    /// vertices" query.
    pub fn top_k_square_vertices(&self, k: usize) -> Vec<(Ix, u64)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(u64, Ix)>> = BinaryHeap::with_capacity(k + 1);
        for p in 0..self.prod.num_vertices() {
            let s = self.squares_at_vertex(p);
            if heap.len() < k {
                heap.push(Reverse((s, p)));
            } else if let Some(&Reverse((min_s, _))) = heap.peek() {
                if s > min_s {
                    heap.pop();
                    heap.push(Reverse((s, p)));
                }
            }
        }
        let mut out: Vec<(Ix, u64)> = heap.into_iter().map(|Reverse((s, p))| (p, s)).collect();
        out.sort_unstable_by_key(|&(p, s)| (Reverse(s), p));
        out
    }

    /// Validate a claimed global count, reporting the discrepancy. The
    /// intended workflow for implementation validation: run *your*
    /// counter on the materialised product, then call this.
    pub fn validate_global(&self, claimed: u64) -> SparseResult<Validation> {
        let truth = self.global_squares()?;
        Ok(Validation {
            truth,
            claimed,
            ok: truth == claimed,
        })
    }
}

/// Outcome of a validation check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Validation {
    /// Ground-truth value.
    pub truth: u64,
    /// The implementation's claim.
    pub claimed: u64,
    /// Whether they agree.
    pub ok: bool,
}

/// Build the standard Table-I-style product from one bipartite factor:
/// `C = (A + I_A) ⊗ A` (the paper's experiment uses the same graph for
/// both factors).
pub fn self_product(a: &Graph) -> Result<KroneckerProduct<'_>, crate::product::ProductError> {
    KroneckerProduct::new(a, a, SelfLoopMode::FactorA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_analytics::{butterflies_global, butterflies_per_edge, butterflies_per_vertex};
    use bikron_generators::{complete_bipartite, crown};

    #[test]
    fn oracle_matches_direct_everywhere() {
        let a = crown(3);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let gt = GroundTruth::new(prod.clone()).unwrap();
        let g = prod.materialize();
        let direct_v = butterflies_per_vertex(&g);
        for (p, &dv) in direct_v.iter().enumerate() {
            assert_eq!(gt.squares_at_vertex(p), dv);
            assert_eq!(gt.degree(p), g.degree(p) as u64);
        }
        let direct_e = butterflies_per_edge(&g);
        for &(p, q, c) in &direct_e.counts {
            assert_eq!(gt.squares_at_edge(p, q), Some(c));
        }
        assert_eq!(gt.global_squares().unwrap(), butterflies_global(&g));
        assert_eq!(gt.all_vertex_squares().unwrap(), direct_v);
    }

    #[test]
    fn distance_queries_match_bfs() {
        use bikron_graph::traversal::{bfs_distances, diameter as direct_diameter};
        let a = crown(3);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let gt = GroundTruth::new(prod.clone()).unwrap().with_distances();
        let g = prod.materialize();
        let d0 = bfs_distances(&g, 0);
        for (q, &dq) in d0.iter().enumerate() {
            assert_eq!(gt.hops(0, q), dq);
        }
        assert_eq!(gt.diameter(), direct_diameter(&g));
        assert_eq!(
            gt.eccentricity(0),
            bikron_graph::traversal::eccentricity(&g, 0)
        );
    }

    #[test]
    #[should_panic(expected = "with_distances")]
    fn distance_queries_require_opt_in() {
        let a = crown(3);
        let prod = self_product(&a).unwrap();
        let gt = GroundTruth::new(prod).unwrap();
        let _ = gt.hops(0, 1);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let a = crown(3);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let gt = GroundTruth::new(prod).unwrap();
        let all = gt.all_vertex_squares().unwrap();
        let mut ranked: Vec<(usize, u64)> = all.iter().copied().enumerate().collect();
        ranked.sort_unstable_by_key(|&(p, s)| (std::cmp::Reverse(s), p));
        for k in [1, 3, 7, all.len() + 5] {
            let top = gt.top_k_square_vertices(k);
            assert_eq!(top.len(), k.min(all.len()));
            assert_eq!(&top[..], &ranked[..top.len()]);
        }
        assert!(gt.top_k_square_vertices(0).is_empty());
    }

    #[test]
    fn validation_reports() {
        let a = crown(3);
        let prod = self_product(&a).unwrap();
        let gt = GroundTruth::new(prod).unwrap();
        let truth = gt.global_squares().unwrap();
        assert!(gt.validate_global(truth).unwrap().ok);
        let bad = gt.validate_global(truth + 1).unwrap();
        assert!(!bad.ok);
        assert_eq!(bad.truth, truth);
    }

    #[test]
    fn self_product_shape_matches_table1_formulas() {
        // |U_C| = n_A·|U_A|, |W_C| = n_A·|W_A| for C = (A+I)⊗A.
        let a = complete_bipartite(2, 3);
        let prod = self_product(&a).unwrap();
        let st = crate::connectivity::predict_structure(&prod);
        assert_eq!(st.parts, Some((5 * 2, 5 * 3)));
        assert!(st.connected);
    }
}
