#![warn(missing_docs)]

//! # bikron-core
//!
//! The paper's contribution: **nonstochastic Kronecker products of small
//! factor graphs that generate massive bipartite graphs with exact
//! ("ground truth") local and global statistics**.
//!
//! Given small factors `A` and `B`, the product graph `G_C` with adjacency
//! `C = A ⊗ B` (Assump. 1(i)) or `C = (A + I_A) ⊗ B` (Assump. 1(ii)) is:
//!
//! * **bipartite** whenever `B` is bipartite,
//! * **connected** under either assumption (Thms. 1–2, [`connectivity`]),
//!
//! and carries closed-form per-vertex / per-edge 4-cycle counts
//! (Thms. 3–5, [`truth::squares_vertex`], [`truth::squares_edge`]),
//! edge clustering coefficient bounds (Thm. 6, [`truth::clustering`]) and
//! community edge counts and density bounds (Thm. 7, Cors. 1–2,
//! [`truth::community`]).
//!
//! The central object is [`KroneckerProduct`]: a *descriptor* holding the
//! two factors and the self-loop mode. Every statistic is available
//! without materialising the product ([`truth`] and [`sample`]); the
//! product can also be streamed edge-by-edge or materialised into a
//! [`bikron_graph::Graph`] when a direct algorithm needs it
//! ([`product`]).
//!
//! ## Quick start
//!
//! ```
//! use bikron_core::{KroneckerProduct, SelfLoopMode};
//! use bikron_core::truth::squares_vertex::vertex_squares;
//! use bikron_graph::Graph;
//!
//! // Factor A: a triangle (non-bipartite, connected).
//! let a = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
//! // Factor B: a 4-cycle (bipartite, connected).
//! let b = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
//!
//! let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
//! assert_eq!(prod.num_vertices(), 12);
//!
//! // Ground-truth 4-cycle participation at every product vertex,
//! // computed from the factors alone (Thm. 3).
//! let s = vertex_squares(&prod).unwrap();
//! assert_eq!(s.len(), 12);
//! ```

pub mod chain;
pub mod connectivity;
pub mod index;
pub mod partition;
pub mod power;
pub mod product;
pub mod sample;
pub mod snap;
pub mod stream;
pub mod truth;

pub use chain::{ChainClustering, ChainCommunity, ChainError, KronChain};
pub use connectivity::{predict_structure, ProductStructure};
pub use index::KronIndexer;
pub use power::KroneckerPower;
pub use product::{KroneckerProduct, ProductError, SelfLoopMode};
pub use sample::GroundTruth;
