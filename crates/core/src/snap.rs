//! Graph and [`FactorStats`] codecs for the `bikron-snap/1` snapshot format.
//!
//! Layered on the byte primitives in [`bikron_sparse::snap`]. Decoding is
//! paranoid by design: a graph is rebuilt through [`Graph::from_adjacency`]
//! (square + symmetric re-validation) and every CSR goes through
//! `Csr::from_parts`, so bytes that pass the section checksum but encode an
//! inconsistent structure still fail with a named [`SnapError`] instead of
//! corrupting ground-truth answers after a warm boot.

use crate::truth::FactorStats;
use bikron_graph::Graph;
use bikron_sparse::snap::{
    put_csr_i128, put_csr_u64, put_i128_slice, read_csr_i128, read_csr_u64, ByteReader, SnapError,
};

/// Append a graph as its adjacency CSR.
pub fn put_graph(buf: &mut Vec<u8>, g: &Graph) {
    put_csr_u64(buf, g.adjacency());
}

/// Decode a graph, re-validating squareness and symmetry.
pub fn read_graph(r: &mut ByteReader<'_>, what: &'static str) -> Result<Graph, SnapError> {
    let adj = read_csr_u64(r, what)?;
    Graph::from_adjacency(adj)
        .map_err(|e| SnapError::Malformed(format!("{what}: invalid graph: {e}")))
}

/// Append a full [`FactorStats`] block: five per-vertex vectors then the
/// three edge-indexed CSRs, in declaration order.
pub fn put_factor_stats(buf: &mut Vec<u8>, s: &FactorStats) {
    put_i128_slice(buf, &s.degrees);
    put_i128_slice(buf, &s.w2);
    put_i128_slice(buf, &s.diag_a3);
    put_i128_slice(buf, &s.diag_a4);
    put_i128_slice(buf, &s.squares);
    put_csr_i128(buf, &s.edge_w3);
    put_csr_i128(buf, &s.edge_w2);
    put_csr_i128(buf, &s.edge_squares);
}

/// Decode a [`FactorStats`] block and check the vectors agree on the order.
pub fn read_factor_stats(
    r: &mut ByteReader<'_>,
    what: &'static str,
) -> Result<FactorStats, SnapError> {
    let degrees = r.i128_slice(what)?;
    let w2 = r.i128_slice(what)?;
    let diag_a3 = r.i128_slice(what)?;
    let diag_a4 = r.i128_slice(what)?;
    let squares = r.i128_slice(what)?;
    let edge_w3 = read_csr_i128(r, what)?;
    let edge_w2 = read_csr_i128(r, what)?;
    let edge_squares = read_csr_i128(r, what)?;
    let n = degrees.len();
    if w2.len() != n || diag_a3.len() != n || diag_a4.len() != n || squares.len() != n {
        return Err(SnapError::Malformed(format!(
            "{what}: per-vertex statistic vectors disagree on the factor order"
        )));
    }
    if edge_w3.nrows() != n || edge_squares.nrows() != n {
        return Err(SnapError::Malformed(format!(
            "{what}: edge statistic matrices disagree with the factor order {n}"
        )));
    }
    Ok(FactorStats {
        degrees,
        w2,
        diag_a3,
        diag_a4,
        squares,
        edge_w3,
        edge_w2,
        edge_squares,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    fn kmn(m: usize, n: usize) -> Graph {
        let mut edges = Vec::new();
        for u in 0..m {
            for v in 0..n {
                edges.push((u, m + v));
            }
        }
        Graph::from_edges(m + n, &edges).unwrap()
    }

    #[test]
    fn graph_round_trips() {
        let g = cycle(5);
        let mut buf = Vec::new();
        put_graph(&mut buf, &g);
        let mut r = ByteReader::new(&buf);
        let back = read_graph(&mut r, "g").unwrap();
        assert_eq!(g, back);
        assert!(r.is_empty());
    }

    #[test]
    fn factor_stats_round_trip_byte_identically() {
        let g = kmn(2, 3);
        let s = FactorStats::compute(&g).unwrap();
        let mut buf = Vec::new();
        put_factor_stats(&mut buf, &s);
        let mut r = ByteReader::new(&buf);
        let back = read_factor_stats(&mut r, "s").unwrap();
        assert_eq!(s, back);
        assert!(r.is_empty());

        // Re-encoding the decoded value reproduces the exact bytes.
        let mut buf2 = Vec::new();
        put_factor_stats(&mut buf2, &back);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn asymmetric_adjacency_is_rejected() {
        use bikron_sparse::snap::{put_u64, put_usize_slice};
        // 2×2 with a single directed edge 0→1: passes CSR validation but
        // must fail Graph::from_adjacency's symmetry check.
        let mut buf = Vec::new();
        put_u64(&mut buf, 2);
        put_u64(&mut buf, 2);
        put_usize_slice(&mut buf, &[0, 1, 1]);
        put_usize_slice(&mut buf, &[1]);
        put_u64(&mut buf, 1);
        put_u64(&mut buf, 1);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            read_graph(&mut r, "g"),
            Err(SnapError::Malformed(_))
        ));
    }

    #[test]
    fn stats_truncations_never_panic() {
        let g = cycle(4);
        let s = FactorStats::compute(&g).unwrap();
        let mut buf = Vec::new();
        put_factor_stats(&mut buf, &s);
        for cut in (0..buf.len()).step_by(7) {
            let mut r = ByteReader::new(&buf[..cut]);
            assert!(read_factor_stats(&mut r, "s").is_err());
        }
    }
}
