//! The [`KroneckerProduct`] descriptor and product materialisation.
//!
//! A `KroneckerProduct` owns nothing: it borrows two factor graphs and a
//! [`SelfLoopMode`] selecting between the paper's two constructions
//! (Assump. 1(i)/(ii)). All counting statistics (`|V_C|`, `|E_C|`, degrees)
//! are O(1)–O(|factor|); the product itself can be streamed edge-by-edge
//! ([`KroneckerProduct::edges`], [`KroneckerProduct::par_for_each_edge`])
//! or materialised ([`KroneckerProduct::materialize`]) when a direct
//! algorithm needs the whole graph.
//!
//! Both constructions require the *stored* factors to be loop-free; the
//! `FactorA` mode adds `I_A` logically, never mutating the input. This
//! mirrors the paper's design choice (§II-B): keeping at least one true
//! factor loop-free keeps every ground-truth formula's term count small,
//! and `C` itself is then loop-free because `B` is.

use std::fmt;

use bikron_graph::Graph;
use bikron_sparse::semiring::Times;
use bikron_sparse::{ewise_add, kron, Csr, Ix};

use crate::index::KronIndexer;

/// Which construction of Assump. 1 to use.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SelfLoopMode {
    /// Assump. 1(i): `C = A ⊗ B`. For a connected bipartite product, `A`
    /// should be non-bipartite + connected and `B` bipartite + connected.
    None,
    /// Assump. 1(ii): `C = (A + I_A) ⊗ B` with both factors bipartite.
    FactorA,
}

/// Errors raised by product construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProductError {
    /// A factor has self loops stored; loops are added only logically.
    FactorHasSelfLoops {
        /// `"A"` or `"B"`.
        factor: &'static str,
    },
    /// A factor is empty (no vertices).
    EmptyFactor {
        /// `"A"` or `"B"`.
        factor: &'static str,
    },
    /// An arithmetic result exceeded the index or count range.
    Overflow,
}

impl fmt::Display for ProductError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProductError::FactorHasSelfLoops { factor } => {
                write!(
                    f,
                    "factor {factor} has stored self loops; use SelfLoopMode::FactorA to add \
                     loops logically"
                )
            }
            ProductError::EmptyFactor { factor } => write!(f, "factor {factor} has no vertices"),
            ProductError::Overflow => write!(f, "product size overflows the index type"),
        }
    }
}

impl std::error::Error for ProductError {}

/// A nonstochastic Kronecker product `C = A ⊗ B` or `C = (A + I_A) ⊗ B`.
///
/// ```
/// use bikron_core::{KroneckerProduct, SelfLoopMode};
/// use bikron_graph::Graph;
///
/// let a = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap(); // C3
/// let b = Graph::from_edges(2, &[(0, 1)]).unwrap();                 // K2
/// let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
///
/// // Exact size and degrees without materialisation:
/// assert_eq!(prod.num_vertices(), 6);
/// assert_eq!(prod.num_edges(), 6);       // C3 ⊗ K2 = C6
/// assert_eq!(prod.degree(0), 2);
/// assert!(prod.has_edge(0, 3));          // (0,0)–(1,1)
///
/// // Materialise only when a direct algorithm needs the whole graph:
/// let g = prod.materialize();
/// assert_eq!(g.num_edges(), 6);
/// ```
#[derive(Clone, Debug)]
pub struct KroneckerProduct<'a> {
    a: &'a Graph,
    b: &'a Graph,
    mode: SelfLoopMode,
    indexer: KronIndexer,
}

impl<'a> KroneckerProduct<'a> {
    /// Build a product descriptor. Both stored factors must be loop-free
    /// and non-empty.
    pub fn new(a: &'a Graph, b: &'a Graph, mode: SelfLoopMode) -> Result<Self, ProductError> {
        if a.num_vertices() == 0 {
            return Err(ProductError::EmptyFactor { factor: "A" });
        }
        if b.num_vertices() == 0 {
            return Err(ProductError::EmptyFactor { factor: "B" });
        }
        if !a.has_no_self_loops() {
            return Err(ProductError::FactorHasSelfLoops { factor: "A" });
        }
        if !b.has_no_self_loops() {
            return Err(ProductError::FactorHasSelfLoops { factor: "B" });
        }
        a.num_vertices()
            .checked_mul(b.num_vertices())
            .ok_or(ProductError::Overflow)?;
        Ok(KroneckerProduct {
            a,
            b,
            mode,
            indexer: KronIndexer::new(b.num_vertices()),
        })
    }

    /// Factor `A`.
    #[inline]
    pub fn factor_a(&self) -> &Graph {
        self.a
    }

    /// Factor `B`.
    #[inline]
    pub fn factor_b(&self) -> &Graph {
        self.b
    }

    /// The self-loop mode.
    #[inline]
    pub fn mode(&self) -> SelfLoopMode {
        self.mode
    }

    /// The `(α, β, γ)` index mapper.
    #[inline]
    pub fn indexer(&self) -> KronIndexer {
        self.indexer
    }

    /// `|V_C| = n_A · n_B`.
    #[inline]
    pub fn num_vertices(&self) -> Ix {
        self.a.num_vertices() * self.b.num_vertices()
    }

    /// Stored adjacency entries of `C` (`= 2|E_C|`, since `C` is loop-free).
    pub fn nnz(&self) -> u64 {
        let nnz_a = self.a.nnz() as u64
            + match self.mode {
                SelfLoopMode::None => 0,
                SelfLoopMode::FactorA => self.a.num_vertices() as u64,
            };
        nnz_a * self.b.nnz() as u64
    }

    /// `|E_C|` (undirected edges; `C` never has self loops because `B`
    /// has none).
    pub fn num_edges(&self) -> u64 {
        self.nnz() / 2
    }

    /// Exact degree of product vertex `p` without materialisation:
    /// `d_C(p) = d_A(α(p))·d_B(β(p))`, plus `d_B(β(p))` in `FactorA` mode.
    pub fn degree(&self, p: Ix) -> u64 {
        let (i, k) = self.indexer.split(p);
        let da = self.a.degree(i) as u64
            + match self.mode {
                SelfLoopMode::None => 0,
                SelfLoopMode::FactorA => 1,
            };
        da * self.b.degree(k) as u64
    }

    /// Whether product vertices `p` and `q` are adjacent, in
    /// O(log d_A + log d_B).
    pub fn has_edge(&self, p: Ix, q: Ix) -> bool {
        let (i, k) = self.indexer.split(p);
        let (j, l) = self.indexer.split(q);
        let a_hit = self.a.has_edge(i, j) || (self.mode == SelfLoopMode::FactorA && i == j);
        a_hit && self.b.has_edge(k, l)
    }

    /// A page of the neighbour list of product vertex `p`, in ascending
    /// vertex order: the neighbours at positions `[offset, offset+limit)`
    /// of the full list `{γ(j, l) : j ∈ N'_A(α(p)), l ∈ N_B(β(p))}`
    /// (where `N'_A` includes `α(p)` itself under [`SelfLoopMode::FactorA`]).
    ///
    /// Cost is `O(d_A + limit)` — never product-sized — which is what
    /// makes paged neighbourhood queries servable: the full list has
    /// `degree(p)` entries but only the requested window is formed.
    pub fn neighbors_page(&self, p: Ix, offset: u64, limit: usize) -> Vec<Ix> {
        let (i, k) = self.indexer.split(p);
        let a_nbrs = self.a.neighbors(i);
        // Effective A-side neighbour list, kept sorted: N_A(i) with `i`
        // spliced in under FactorA (the logical self loop).
        let merged: Vec<Ix>;
        let eff: &[Ix] = match self.mode {
            SelfLoopMode::None => a_nbrs,
            SelfLoopMode::FactorA => {
                let pos = a_nbrs.partition_point(|&j| j < i);
                let mut v = Vec::with_capacity(a_nbrs.len() + 1);
                v.extend_from_slice(&a_nbrs[..pos]);
                v.push(i);
                v.extend_from_slice(&a_nbrs[pos..]);
                merged = v;
                &merged
            }
        };
        let b_nbrs = self.b.neighbors(k);
        let db = b_nbrs.len() as u64;
        if db == 0 {
            return Vec::new();
        }
        let total = eff.len() as u64 * db;
        let start = offset.min(total);
        let end = start.saturating_add(limit as u64).min(total);
        // γ(j, l) is strictly increasing over (j asc, l asc), so indexing
        // r → (eff[r / d_B], N_B[r % d_B]) enumerates in sorted order.
        (start..end)
            .map(|r| {
                self.indexer
                    .gamma(eff[(r / db) as usize], b_nbrs[(r % db) as usize])
            })
            .collect()
    }

    /// Iterate every *stored adjacency entry* `(p, q)` of `C` (each
    /// undirected edge appears in both orientations, matching CSR
    /// iteration of the factors).
    pub fn entries(&self) -> impl Iterator<Item = (Ix, Ix)> + '_ {
        let ix = self.indexer;
        let mode = self.mode;
        let a = self.a;
        let b = self.b;
        let a_entries = a.adjacency().iter().map(|(i, j, _)| (i, j)).chain(
            match mode {
                SelfLoopMode::None => 0..0,
                SelfLoopMode::FactorA => 0..a.num_vertices(),
            }
            .map(|i| (i, i)),
        );
        a_entries.flat_map(move |(i, j)| {
            b.adjacency()
                .iter()
                .map(move |(k, l, _)| (ix.gamma(i, k), ix.gamma(j, l)))
        })
    }

    /// Iterate each undirected edge `(p, q)` of `C` exactly once, with
    /// `p < q`.
    pub fn edges(&self) -> impl Iterator<Item = (Ix, Ix)> + '_ {
        self.entries().filter(|&(p, q)| p < q)
    }

    /// Visit every stored entry in parallel (rayon), partitioned by
    /// factor-`A` entry. `f` must be thread-safe; entries arrive in
    /// deterministic order *within* each partition.
    pub fn par_for_each_edge<F>(&self, f: F)
    where
        F: Fn(Ix, Ix) + Sync,
    {
        use rayon::prelude::*;
        let ix = self.indexer;
        let mut a_entries: Vec<(Ix, Ix)> =
            self.a.adjacency().iter().map(|(i, j, _)| (i, j)).collect();
        if self.mode == SelfLoopMode::FactorA {
            a_entries.extend((0..self.a.num_vertices()).map(|i| (i, i)));
        }
        let b = self.b;
        // Metrics at per-A-entry granularity: each A entry streams
        // nnz(B) product entries, so the three atomics below are amortised
        // over an entire B sweep. The worker gauge's high-water mark is the
        // measured peak thread concurrency of the streaming phase.
        let obs = bikron_obs::global();
        let _phase = obs.phase("product.par_stream");
        let streamed = obs.counter("product.edges_streamed");
        let workers = obs.gauge("product.workers");
        let b_nnz = b.nnz() as u64;
        a_entries.par_iter().for_each(|&(i, j)| {
            let _live = workers.enter();
            for (k, l, _) in b.adjacency().iter() {
                f(ix.gamma(i, k), ix.gamma(j, l));
            }
            streamed.add(b_nnz);
        });
    }

    /// The effective adjacency matrix of factor `A` (with `I_A` folded in
    /// under `FactorA` mode).
    pub fn effective_a(&self) -> Csr<u64> {
        match self.mode {
            SelfLoopMode::None => self.a.adjacency().clone(),
            SelfLoopMode::FactorA => {
                let eye = Csr::diagonal(self.a.num_vertices(), 1u64);
                ewise_add(self.a.adjacency(), &eye, |x, y| x + y, |&v| v == 0).expect("same shape")
            }
        }
    }

    /// Materialise `C` as a [`Graph`]. Memory: `O(nnz(C))` — intended for
    /// validation at moderate scale, not for the massive-graph use case.
    pub fn materialize(&self) -> Graph {
        let _phase = bikron_obs::global().phase("product.materialize");
        let ea = self.effective_a();
        let c = kron(&Times, &ea, self.b.adjacency()).expect("factor shapes are compatible");
        Graph::from_adjacency(c).expect("kron of symmetric factors is symmetric")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_generators::{complete_bipartite, cycle, path};

    #[test]
    fn sizes_mode_none() {
        let a = cycle(3);
        let b = path(4);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        assert_eq!(p.num_vertices(), 12);
        assert_eq!(p.nnz(), (2 * 3) as u64 * (2 * 3) as u64);
        assert_eq!(p.num_edges(), 18);
    }

    #[test]
    fn sizes_mode_factor_a() {
        let a = path(3);
        let b = path(2);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        // nnz(A+I) = 4 + 3 = 7; nnz(B) = 2 → 14 entries, 7 edges.
        assert_eq!(p.num_edges(), 7);
    }

    #[test]
    fn materialize_matches_size_and_degrees() {
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        for mode in [SelfLoopMode::None, SelfLoopMode::FactorA] {
            let p = KroneckerProduct::new(&a, &b, mode).unwrap();
            let g = p.materialize();
            assert_eq!(g.num_vertices(), p.num_vertices());
            assert_eq!(g.num_edges() as u64, p.num_edges());
            assert!(g.has_no_self_loops());
            for v in 0..g.num_vertices() {
                assert_eq!(g.degree(v) as u64, p.degree(v), "degree mismatch at {v}");
            }
        }
    }

    #[test]
    fn edges_iterator_matches_materialized() {
        let a = cycle(3);
        let b = path(3);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let g = p.materialize();
        let mut streamed: Vec<(usize, usize)> = p.edges().collect();
        streamed.sort_unstable();
        let mut direct: Vec<(usize, usize)> = g.edges().collect();
        direct.sort_unstable();
        assert_eq!(streamed, direct);
    }

    #[test]
    fn par_edges_match_sequential() {
        use std::sync::Mutex;
        let a = cycle(4);
        let b = path(3);
        let p = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let collected = Mutex::new(Vec::new());
        p.par_for_each_edge(|u, v| collected.lock().unwrap().push((u, v)));
        let mut par = collected.into_inner().unwrap();
        par.sort_unstable();
        let mut seq: Vec<(usize, usize)> = p.entries().collect();
        seq.sort_unstable();
        assert_eq!(par, seq);
    }

    #[test]
    fn has_edge_agrees_with_materialized() {
        let a = path(3);
        let b = cycle(4);
        for mode in [SelfLoopMode::None, SelfLoopMode::FactorA] {
            let p = KroneckerProduct::new(&a, &b, mode).unwrap();
            let g = p.materialize();
            for u in 0..p.num_vertices() {
                for v in 0..p.num_vertices() {
                    assert_eq!(p.has_edge(u, v), g.has_edge(u, v), "({u},{v}) {mode:?}");
                }
            }
        }
    }

    #[test]
    fn neighbors_page_matches_materialized() {
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        for mode in [SelfLoopMode::None, SelfLoopMode::FactorA] {
            let p = KroneckerProduct::new(&a, &b, mode).unwrap();
            let g = p.materialize();
            for v in 0..p.num_vertices() {
                let full = p.neighbors_page(v, 0, usize::MAX);
                assert_eq!(full, g.neighbors(v), "vertex {v} mode {mode:?}");
                assert_eq!(full.len() as u64, p.degree(v));
                // Paging: windows tile the full list, out-of-range is empty.
                let d = full.len();
                for (offset, limit) in [(0u64, 2usize), (1, 3), (d as u64, 4)] {
                    let page = p.neighbors_page(v, offset, limit);
                    let lo = (offset as usize).min(d);
                    let hi = (lo + limit).min(d);
                    assert_eq!(page, &full[lo..hi]);
                }
            }
        }
    }

    #[test]
    fn rejects_loopy_and_empty_factors() {
        let looped = Graph::from_edges(2, &[(0, 1), (0, 0)]).unwrap();
        let b = path(2);
        assert!(matches!(
            KroneckerProduct::new(&looped, &b, SelfLoopMode::None),
            Err(ProductError::FactorHasSelfLoops { factor: "A" })
        ));
        assert!(matches!(
            KroneckerProduct::new(&b, &looped, SelfLoopMode::None),
            Err(ProductError::FactorHasSelfLoops { factor: "B" })
        ));
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(matches!(
            KroneckerProduct::new(&empty, &b, SelfLoopMode::None),
            Err(ProductError::EmptyFactor { factor: "A" })
        ));
    }

    #[test]
    fn degree_formula_both_modes() {
        let a = path(4); // degrees 1,2,2,1
        let b = complete_bipartite(2, 2); // degrees all 2
        let p0 = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let p1 = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let ix = p0.indexer();
        assert_eq!(p0.degree(ix.gamma(1, 0)), 4); // 2·2
        assert_eq!(p1.degree(ix.gamma(1, 0)), 6); // (2+1)·2
        assert_eq!(p0.degree(ix.gamma(0, 3)), 2); // 1·2
    }
}
