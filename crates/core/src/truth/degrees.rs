//! Ground-truth degree statistics of the product.
//!
//! Degrees multiply — `d_C(γ(i,k)) = d'_A(i)·d_B(k)` with
//! `d'_A = d_A (+1 under `FactorA`)` — so the product's degree
//! *distribution* is the multiplicative convolution of the factor
//! distributions, computable over the **distinct** factor degrees in
//! `O(|D_A|·|D_B|)`. This is the mechanism behind the paper's remark that
//! nonstochastic products lack vertices of large *prime* degree: every
//! product degree factors as `d'_A·d_B`.

use std::collections::BTreeMap;

use crate::product::{KroneckerProduct, SelfLoopMode};

/// Degree histogram of the product, computed from factor histograms —
/// never touches product-sized data.
pub fn degree_histogram(prod: &KroneckerProduct<'_>) -> BTreeMap<u64, u64> {
    let bonus = match prod.mode() {
        SelfLoopMode::None => 0u64,
        SelfLoopMode::FactorA => 1,
    };
    let hist = |g: &bikron_graph::Graph, add: u64| -> BTreeMap<u64, u64> {
        let mut h = BTreeMap::new();
        for v in 0..g.num_vertices() {
            *h.entry(g.degree(v) as u64 + add).or_insert(0) += 1;
        }
        h
    };
    let ha = hist(prod.factor_a(), bonus);
    let hb = hist(prod.factor_b(), 0);
    let mut out: BTreeMap<u64, u64> = BTreeMap::new();
    for (&da, &ca) in &ha {
        for (&db, &cb) in &hb {
            *out.entry(da * db).or_insert(0) += ca * cb;
        }
    }
    out
}

/// Exact maximum degree of the product.
pub fn max_degree(prod: &KroneckerProduct<'_>) -> u64 {
    let bonus = match prod.mode() {
        SelfLoopMode::None => 0u64,
        SelfLoopMode::FactorA => 1,
    };
    let da = prod.factor_a().max_degree() as u64 + bonus;
    let db = prod.factor_b().max_degree() as u64;
    da * db
}

/// Count of product vertices whose degree is a prime number — the
/// paper's "peculiar property": nonzero only when a factor side admits
/// degree 1 (primes can't factor otherwise).
pub fn prime_degree_vertices(prod: &KroneckerProduct<'_>) -> u64 {
    fn is_prime(n: u64) -> bool {
        if n < 2 {
            return false;
        }
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                return false;
            }
            d += 1;
        }
        true
    }
    degree_histogram(prod)
        .iter()
        .filter(|&(&d, _)| is_prime(d))
        .map(|(_, &c)| c)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_generators::{complete_bipartite, crown, cycle, path, star, wheel};
    use bikron_graph::stats::degree_histogram as direct_histogram;

    fn check(a: &bikron_graph::Graph, b: &bikron_graph::Graph, mode: SelfLoopMode) {
        let prod = KroneckerProduct::new(a, b, mode).unwrap();
        let truth = degree_histogram(&prod);
        let g = prod.materialize();
        let direct: BTreeMap<u64, u64> = direct_histogram(&g)
            .into_iter()
            .map(|(d, c)| (d as u64, c as u64))
            .collect();
        assert_eq!(truth, direct, "mode {mode:?}");
        assert_eq!(max_degree(&prod), g.max_degree() as u64);
        let total: u64 = truth.values().sum();
        assert_eq!(total, prod.num_vertices() as u64);
    }

    #[test]
    fn histograms_match_direct() {
        check(&cycle(5), &star(4), SelfLoopMode::None);
        check(&wheel(4), &complete_bipartite(2, 3), SelfLoopMode::None);
        check(&path(4), &crown(3), SelfLoopMode::FactorA);
        check(&star(3), &star(5), SelfLoopMode::FactorA);
    }

    #[test]
    fn regular_times_regular_is_regular() {
        let (a, b) = (cycle(5), crown(3));
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let h = degree_histogram(&prod);
        assert_eq!(h.len(), 1);
        assert_eq!(h.get(&4), Some(&30u64)); // 2·2 everywhere
    }

    #[test]
    fn prime_degrees_need_a_unit_factor() {
        // Crown(3) is 2-regular; K_{2,3} degrees {2,3}: products {4,6} — no primes.
        let (a, b) = (crown(3), complete_bipartite(2, 3));
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        assert_eq!(prime_degree_vertices(&prod), 0);
        // A star's leaves have degree 1, letting B's prime degrees through.
        let s = star(4);
        let prod2 = KroneckerProduct::new(&s, &b, SelfLoopMode::None).unwrap();
        assert!(prime_degree_vertices(&prod2) > 0);
    }
}
