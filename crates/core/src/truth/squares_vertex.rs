//! Ground-truth 4-cycles at product vertices (Thm. 3 and Thm. 4).
//!
//! With `diag(C⁴)`, `d_C ∘ d_C`, `w_C^{(2)}` and `d_C` all factoring into
//! Kronecker products of factor vectors, Def. 8 applied to `C` gives
//!
//! `s_C = ½( diag(C⁴) − d_C∘d_C − w_C^{(2)} + d_C )`
//!
//! where, per mode:
//!
//! | term | `C = A ⊗ B` (Thm. 3) | `C = (A+I_A) ⊗ B` (Thm. 4, generalised) |
//! |------|----------------------|------------------------------------------|
//! | `diag(C⁴)` | `diag(A⁴) ⊗ diag(B⁴)` | `(diag(A⁴) + 4·diag(A³) + 6d_A + 1) ⊗ diag(B⁴)` |
//! | `d_C∘d_C`  | `d_A² ⊗ d_B²`          | `(d_A + 1)² ⊗ d_B²` |
//! | `w_C^{(2)}`| `w_A^{(2)} ⊗ w_B^{(2)}`| `(w_A^{(2)} + 2d_A + 1) ⊗ w_B^{(2)}` |
//! | `d_C`      | `d_A ⊗ d_B`            | `(d_A + 1) ⊗ d_B` |
//!
//! The paper states Thm. 4 for bipartite `A` (where `diag(A³) = 0`); the
//! implementation keeps the `4·diag(A³)` term so the formula is exact for
//! *any* loop-free `A` — verified against direct counting in the tests.

use bikron_sparse::dense::{halve_exact, to_u64_counts};
use bikron_sparse::SparseResult;

use crate::product::{KroneckerProduct, SelfLoopMode};
use crate::truth::walks::FactorStats;

/// The four per-factor term vectors entering the product formula.
struct Terms {
    diag4: Vec<i128>,
    deg_sq: Vec<i128>,
    w2: Vec<i128>,
    deg: Vec<i128>,
}

fn factor_terms(stats: &FactorStats, add_loops: bool) -> Terms {
    let n = stats.order();
    let mut diag4 = Vec::with_capacity(n);
    let mut deg_sq = Vec::with_capacity(n);
    let mut w2 = Vec::with_capacity(n);
    let mut deg = Vec::with_capacity(n);
    for i in 0..n {
        let d = stats.degrees[i];
        if add_loops {
            diag4.push(stats.diag_a4[i] + 4 * stats.diag_a3[i] + 6 * d + 1);
            deg_sq.push((d + 1) * (d + 1));
            w2.push(stats.w2[i] + 2 * d + 1);
            deg.push(d + 1);
        } else {
            diag4.push(stats.diag_a4[i]);
            deg_sq.push(d * d);
            w2.push(stats.w2[i]);
            deg.push(d);
        }
    }
    Terms {
        diag4,
        deg_sq,
        w2,
        deg,
    }
}

/// Ground-truth 4-cycle participation `s_C` at every product vertex,
/// computed from factor statistics alone — `O(|V_C|)` output work after
/// `O(|factor|)` preprocessing.
pub fn vertex_squares(prod: &KroneckerProduct<'_>) -> SparseResult<Vec<u64>> {
    let stats_a = FactorStats::compute(prod.factor_a())?;
    let stats_b = FactorStats::compute(prod.factor_b())?;
    vertex_squares_with(prod, &stats_a, &stats_b)
}

/// As [`vertex_squares`], reusing precomputed factor statistics.
pub fn vertex_squares_with(
    prod: &KroneckerProduct<'_>,
    stats_a: &FactorStats,
    stats_b: &FactorStats,
) -> SparseResult<Vec<u64>> {
    let ta = factor_terms(stats_a, prod.mode() == SelfLoopMode::FactorA);
    let tb = factor_terms(stats_b, false);
    let n = prod.num_vertices();
    let ix = prod.indexer();
    let mut out = Vec::with_capacity(n);
    for p in 0..n {
        let (i, k) = ix.split(p);
        let twice = ta.diag4[i] * tb.diag4[k] - ta.deg_sq[i] * tb.deg_sq[k] - ta.w2[i] * tb.w2[k]
            + ta.deg[i] * tb.deg[k];
        out.push(twice);
    }
    let halved = halve_exact(&out, "vertex_squares")?;
    to_u64_counts(&halved, "vertex_squares")
}

/// Point-wise single-vertex query: `s_C(p)` in O(1) given factor stats.
pub fn vertex_squares_at(
    prod: &KroneckerProduct<'_>,
    stats_a: &FactorStats,
    stats_b: &FactorStats,
    p: usize,
) -> u64 {
    let (i, k) = prod.indexer().split(p);
    let ta = single_terms(stats_a, i, prod.mode() == SelfLoopMode::FactorA);
    let tb = single_terms(stats_b, k, false);
    let twice = ta.0 * tb.0 - ta.1 * tb.1 - ta.2 * tb.2 + ta.3 * tb.3;
    debug_assert!(twice >= 0 && twice % 2 == 0);
    (twice / 2) as u64
}

/// The four per-factor Thm 3/4 terms `(walk4, deg², w2, deg)` at factor
/// vertex `i`, under the effective (`+ I` when `add_loops`) adjacency.
/// Shared with the k-factor chain evaluator in `crate::chain`.
pub(crate) fn single_terms(
    stats: &FactorStats,
    i: usize,
    add_loops: bool,
) -> (i128, i128, i128, i128) {
    let d = stats.degrees[i];
    if add_loops {
        (
            stats.diag_a4[i] + 4 * stats.diag_a3[i] + 6 * d + 1,
            (d + 1) * (d + 1),
            stats.w2[i] + 2 * d + 1,
            d + 1,
        )
    } else {
        (stats.diag_a4[i], d * d, stats.w2[i], d)
    }
}

/// Global 4-cycle count of the product in `O(n_A + n_B)` — the paper's
/// sublinear headline. Uses `Σ_p s_p = ½ Σ(terms)` where every term's sum
/// factors: `Σ kron(x, y) = (Σx)(Σy)`; then `global = Σ_p s_p / 4`.
pub fn global_squares_with(
    prod: &KroneckerProduct<'_>,
    stats_a: &FactorStats,
    stats_b: &FactorStats,
) -> SparseResult<u64> {
    let ta = factor_terms(stats_a, prod.mode() == SelfLoopMode::FactorA);
    let tb = factor_terms(stats_b, false);
    let sum = |v: &[i128]| -> i128 { v.iter().sum() };
    let twice_total = sum(&ta.diag4) * sum(&tb.diag4)
        - sum(&ta.deg_sq) * sum(&tb.deg_sq)
        - sum(&ta.w2) * sum(&tb.w2)
        + sum(&ta.deg) * sum(&tb.deg);
    if twice_total < 0 || twice_total % 8 != 0 {
        return Err(bikron_sparse::SparseError::Malformed(format!(
            "global_squares: 2·Σs = {twice_total} violates the /8 invariant"
        )));
    }
    u64::try_from(twice_total / 8).map_err(|_| bikron_sparse::SparseError::Overflow {
        op: "global_squares",
    })
}

/// Convenience: compute factor stats then the global count.
pub fn global_squares(prod: &KroneckerProduct<'_>) -> SparseResult<u64> {
    let sa = FactorStats::compute(prod.factor_a())?;
    let sb = FactorStats::compute(prod.factor_b())?;
    global_squares_with(prod, &sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_analytics::{butterflies_global, butterflies_per_vertex};
    use bikron_generators::{
        complete, complete_bipartite, crown, cycle, path, petersen, star, wheel,
    };
    use bikron_graph::Graph;

    fn check(a: &Graph, b: &Graph, mode: SelfLoopMode) {
        let prod = KroneckerProduct::new(a, b, mode).unwrap();
        let truth = vertex_squares(&prod).unwrap();
        let direct = butterflies_per_vertex(&prod.materialize());
        assert_eq!(truth, direct, "mode {mode:?}");
        // Global agrees through both paths.
        let sa = FactorStats::compute(a).unwrap();
        let sb = FactorStats::compute(b).unwrap();
        let g = global_squares_with(&prod, &sa, &sb).unwrap();
        assert_eq!(g, butterflies_global(&prod.materialize()));
        // Point-wise matches the vector.
        for p in [0, prod.num_vertices() / 2, prod.num_vertices() - 1] {
            assert_eq!(vertex_squares_at(&prod, &sa, &sb, p), truth[p]);
        }
    }

    #[test]
    fn thm3_nonbipartite_times_bipartite() {
        check(&cycle(5), &complete_bipartite(2, 3), SelfLoopMode::None);
        check(&complete(4), &path(4), SelfLoopMode::None);
        check(&wheel(5), &crown(3), SelfLoopMode::None);
    }

    #[test]
    fn thm4_bipartite_with_loops() {
        check(&path(3), &cycle(4), SelfLoopMode::FactorA);
        check(
            &complete_bipartite(2, 2),
            &complete_bipartite(2, 3),
            SelfLoopMode::FactorA,
        );
        check(&star(3), &crown(3), SelfLoopMode::FactorA);
    }

    #[test]
    fn thm4_generalised_to_non_bipartite_a() {
        // The paper restricts Thm. 4 to bipartite A; the diag(A³) term
        // makes the formula exact for any loop-free A.
        check(&complete(4), &cycle(4), SelfLoopMode::FactorA);
        check(&wheel(4), &path(3), SelfLoopMode::FactorA);
    }

    #[test]
    fn rem1_products_always_have_squares() {
        // Petersen (girth 5) ⊗ star: both factors square-free, both have a
        // vertex of degree ≥ 2 ⇒ the product must contain 4-cycles.
        let a = petersen();
        let b = star(3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        assert_eq!(sa.global_squares(), 0);
        assert_eq!(sb.global_squares(), 0);
        let g = global_squares_with(&prod, &sa, &sb).unwrap();
        assert!(g > 0, "Rem. 1: product of square-free factors has squares");
        check(&a, &b, SelfLoopMode::None);
    }

    #[test]
    fn disjoint_edges_product_square_free() {
        // Rem. 1's only escape: all-degree-1 factors (disjoint edges).
        let a = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let b = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        assert_eq!(global_squares(&prod).unwrap(), 0);
    }

    #[test]
    fn bipartite_times_bipartite_mode_none() {
        // Disconnected product, but the formulas hold regardless.
        check(&path(4), &cycle(6), SelfLoopMode::None);
    }
}
