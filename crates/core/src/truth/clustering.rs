//! Bipartite edge clustering coefficients and the Thm. 6 scaling law.
//!
//! Def. 10: `Γ(i,j) = ◇_ij / ((d_i − 1)(d_j − 1))`. Thm. 6 (mode `None`,
//! all four factor degrees ≥ 2):
//!
//! `Γ_C(p,q) ≥ ψ(i,j,k,l) · Γ_A(i,j) · Γ_B(k,l)` with
//! `ψ = (d_i−1)(d_k−1)(d_j−1)(d_l−1) / ((d_i d_k − 1)(d_j d_l − 1))`
//! and `ψ ∈ [1/9, 1)`.
//!
//! The functions here compute both sides of the inequality from factor
//! statistics so benches and tests can verify the law and measure its
//! slack.

use bikron_sparse::Ix;

use crate::product::{KroneckerProduct, SelfLoopMode};
use crate::truth::squares_edge::edge_squares_at;
use crate::truth::walks::FactorStats;

/// `Γ` for a factor edge, `None` when undefined (a degree-1 endpoint) or
/// when `(i,j)` is not an edge.
pub fn factor_gamma(stats: &FactorStats, i: Ix, j: Ix) -> Option<f64> {
    let diamond = stats.squares_at_edge(i, j)?;
    let denom = (stats.degrees[i] - 1) * (stats.degrees[j] - 1);
    (denom > 0).then(|| diamond as f64 / denom as f64)
}

/// `Γ_C` for a product edge from ground truth, `None` when not an edge or
/// undefined.
pub fn product_gamma(
    prod: &KroneckerProduct<'_>,
    stats_a: &FactorStats,
    stats_b: &FactorStats,
    p: Ix,
    q: Ix,
) -> Option<f64> {
    let diamond = edge_squares_at(prod, stats_a, stats_b, p, q)?;
    let dp = prod.degree(p) as i128;
    let dq = prod.degree(q) as i128;
    let denom = (dp - 1) * (dq - 1);
    (denom > 0).then(|| diamond as f64 / denom as f64)
}

/// The Thm. 6 prefactor `ψ(i,j,k,l)`; requires all degrees ≥ 2.
pub fn psi(di: i128, dj: i128, dk: i128, dl: i128) -> f64 {
    assert!(
        di >= 2 && dj >= 2 && dk >= 2 && dl >= 2,
        "psi requires factor degrees >= 2"
    );
    let num = ((di - 1) * (dk - 1) * (dj - 1) * (dl - 1)) as f64;
    let den = ((di * dk - 1) * (dj * dl - 1)) as f64;
    num / den
}

/// One verified instance of the Thm. 6 inequality on a product edge.
#[derive(Clone, Copy, Debug)]
pub struct ScalingLawSample {
    /// Left-hand side `Γ_C(p,q)`.
    pub gamma_c: f64,
    /// The bound `ψ · Γ_A · Γ_B`.
    pub bound: f64,
    /// `ψ` itself.
    pub psi: f64,
}

/// Evaluate the Thm. 6 inequality on product edge `(p, q)` (mode `None`
/// only — the theorem is stated for `C = A ⊗ B`). Returns `None` if the
/// edge does not exist or any relevant degree is < 2.
pub fn scaling_law_at(
    prod: &KroneckerProduct<'_>,
    stats_a: &FactorStats,
    stats_b: &FactorStats,
    p: Ix,
    q: Ix,
) -> Option<ScalingLawSample> {
    if prod.mode() != SelfLoopMode::None {
        return None;
    }
    let ix = prod.indexer();
    let (i, k) = ix.split(p);
    let (j, l) = ix.split(q);
    let (di, dj) = (stats_a.degrees[i], stats_a.degrees[j]);
    let (dk, dl) = (stats_b.degrees[k], stats_b.degrees[l]);
    if di < 2 || dj < 2 || dk < 2 || dl < 2 {
        return None;
    }
    let gamma_c = product_gamma(prod, stats_a, stats_b, p, q)?;
    let ga = factor_gamma(stats_a, i, j)?;
    let gb = factor_gamma(stats_b, k, l)?;
    let psi_v = psi(di, dj, dk, dl);
    Some(ScalingLawSample {
        gamma_c,
        bound: psi_v * ga * gb,
        psi: psi_v,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::KroneckerProduct;
    use bikron_generators::{complete_bipartite, wheel};

    #[test]
    fn psi_range() {
        // ψ ∈ [1/9, 1): minimum at all degrees 2.
        let lo = psi(2, 2, 2, 2);
        assert!((lo - 1.0 / 9.0).abs() < 1e-12);
        for degs in [(2, 3, 4, 5), (10, 10, 10, 10), (2, 2, 50, 50)] {
            let v = psi(degs.0, degs.1, degs.2, degs.3);
            assert!((1.0 / 9.0..1.0).contains(&v), "psi {v} out of range");
        }
    }

    #[test]
    #[should_panic(expected = "degrees >= 2")]
    fn psi_rejects_degree_one() {
        psi(1, 2, 2, 2);
    }

    #[test]
    fn thm6_holds_on_every_eligible_edge() {
        let a = wheel(5); // non-bipartite, degrees ≥ 3
        let b = complete_bipartite(3, 4);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let mut checked = 0;
        for (p, q) in prod.edges() {
            if let Some(s) = scaling_law_at(&prod, &sa, &sb, p, q) {
                assert!(
                    s.gamma_c >= s.bound - 1e-12,
                    "Thm 6 violated at ({p},{q}): {} < {}",
                    s.gamma_c,
                    s.bound
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "no eligible edges checked");
    }

    #[test]
    fn thm6_strict_when_factor_gammas_positive() {
        // With both factor Γ > 0, the bound is strictly below Γ_C (the
        // paper notes the bound is loose). Wheel edges all carry 4-cycles,
        // so Γ_A > 0 everywhere; K_{3,3} has Γ_B = 1.
        let a = wheel(5);
        let b = complete_bipartite(3, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let mut strict = 0;
        for (p, q) in prod.edges() {
            if let Some(s) = scaling_law_at(&prod, &sa, &sb, p, q) {
                if s.bound > 0.0 {
                    assert!(s.gamma_c > s.bound);
                    strict += 1;
                }
            }
        }
        assert!(strict > 0);
    }

    #[test]
    fn gamma_matches_direct_measurement() {
        let a = wheel(4);
        let b = complete_bipartite(2, 3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let g = prod.materialize();
        let direct = bikron_analytics::clustering::edge_clustering(&g);
        for (u, v, want) in direct {
            let got = product_gamma(&prod, &sa, &sb, u, v);
            match want {
                None => assert_eq!(got, None),
                Some(x) => assert!((got.unwrap() - x).abs() < 1e-12),
            }
        }
    }

    #[test]
    fn factor_a_mode_returns_none() {
        let a = complete_bipartite(2, 2);
        let b = complete_bipartite(2, 2);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let sa = FactorStats::compute(&a).unwrap();
        let sb = FactorStats::compute(&b).unwrap();
        let (p, q) = prod.edges().next().unwrap();
        assert!(scaling_law_at(&prod, &sa, &sb, p, q).is_none());
    }
}
