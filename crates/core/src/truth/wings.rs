//! Ground-truth *bounds* for wing (bitruss) decompositions.
//!
//! Rem. 1 argues exact wing ground truth cannot be planted via Kronecker
//! products; what the generator *can* provide is a per-edge upper bound —
//! `wing(e) ≤ ◇_e`, since membership in a k-wing requires at least `k`
//! butterflies through the edge in a subgraph — and that bound is enough
//! to catch a class of wing-decomposition bugs (any implementation
//! reporting a wing number above its edge's total butterfly count is
//! wrong, at any scale). A second necessary condition is global:
//! a k-wing with any surviving edge needs at least `k` butterflies in the
//! whole graph, so `max_wing ≤ global count`.

use bikron_sparse::{Ix, SparseResult};

use crate::product::KroneckerProduct;
use crate::truth::squares_edge::{edge_squares_with, EdgeSquaresTruth};
use crate::truth::walks::FactorStats;

/// Per-edge wing upper bounds (`= ◇` ground truth) for the product.
pub fn wing_upper_bounds(prod: &KroneckerProduct<'_>) -> SparseResult<EdgeSquaresTruth> {
    let sa = FactorStats::compute(prod.factor_a())?;
    let sb = FactorStats::compute(prod.factor_b())?;
    edge_squares_with(prod, &sa, &sb)
}

/// Outcome of validating a claimed wing decomposition against bounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WingValidation {
    /// Edges whose claimed wing number exceeds its `◇` bound.
    pub violations: Vec<(Ix, Ix, u64, u64)>,
    /// Number of edges checked.
    pub checked: usize,
}

impl WingValidation {
    /// Whether the claim is consistent with ground truth.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Check a claimed decomposition `(u, v, wing)` against the bounds.
/// Edges not present in the product are reported as violations with
/// bound 0.
pub fn validate_wing_claim(bounds: &EdgeSquaresTruth, claimed: &[(Ix, Ix, u64)]) -> WingValidation {
    let mut violations = Vec::new();
    for &(u, v, wing) in claimed {
        let bound = bounds.get(u, v).unwrap_or(0);
        if wing > bound {
            violations.push((u, v, wing, bound));
        }
    }
    WingValidation {
        violations,
        checked: claimed.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::product::SelfLoopMode;
    use bikron_analytics::wing_decomposition;
    use bikron_generators::{complete_bipartite, crown, petersen, star};

    #[test]
    fn real_decomposition_respects_bounds() {
        let a = petersen();
        let b = star(3);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let bounds = wing_upper_bounds(&prod).unwrap();
        let g = prod.materialize();
        let wings = wing_decomposition(&g);
        let claimed: Vec<(usize, usize, u64)> = wings
            .edges
            .iter()
            .zip(&wings.wing)
            .map(|(&(u, v), &w)| (u, v, w))
            .collect();
        let v = validate_wing_claim(&bounds, &claimed);
        assert!(v.ok(), "violations: {:?}", v.violations);
        assert_eq!(v.checked, wings.edges.len());
    }

    #[test]
    fn inflated_claim_detected() {
        let a = crown(3);
        let b = complete_bipartite(2, 2);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::FactorA).unwrap();
        let bounds = wing_upper_bounds(&prod).unwrap();
        let (p, q, d) = bounds.counts[0];
        let v = validate_wing_claim(&bounds, &[(p, q, d + 1)]);
        assert!(!v.ok());
        assert_eq!(v.violations, vec![(p, q, d + 1, d)]);
    }

    #[test]
    fn phantom_edge_detected() {
        let a = crown(3);
        let b = complete_bipartite(2, 2);
        let prod = KroneckerProduct::new(&a, &b, SelfLoopMode::None).unwrap();
        let bounds = wing_upper_bounds(&prod).unwrap();
        // (0,0) is never an edge.
        let v = validate_wing_claim(&bounds, &[(0, 0, 1)]);
        assert_eq!(v.violations.len(), 1);
    }
}
