//! Per-factor walk statistics — the ingredients of every product formula.
//!
//! For a loop-free undirected factor `A`, [`FactorStats`] holds:
//!
//! * `degrees` — `d_A = A·1` (Def. 2, `w^{(1)}`);
//! * `w2` — `w_A^{(2)} = A²·1`;
//! * `diag_a3` — `diag(A³)` (`= 2·t_i`, twice the triangle counts; zero
//!   for bipartite factors);
//! * `diag_a4` — `diag(A⁴)`, the length-4 closed-walk counts of Fig. 2;
//! * `squares` — `s_A` per Def. 8:
//!   `s_A = ½(diag(A⁴) − d∘d − w^{(2)} + d)`;
//! * `edge_w3` — `A³ ∘ A`: length-3 walk counts restricted to edges
//!   (Fig. 4);
//! * `edge_w2` — `A² ∘ A`: length-2 walk counts on edges (nonzero only
//!   when the factor has triangles; needed for the `(A+I)³` expansion);
//! * `edge_squares` — `◇_A` per Def. 9:
//!   `◇_A = A³∘A − (d·1ᵗ + 1·dᵗ)∘A + A`.
//!
//! Cost: one sparse `A²` (SpGEMM) plus one masked SpGEMM for `A³ ∘ A` —
//! `O(|E_A|^{3/2})`-ish for the small factors this method is designed
//! around, and the paper's "sublinear memory" claim is exactly that only
//! these factor-sized objects are ever stored.

use bikron_graph::Graph;
use bikron_sparse::semiring::Times;
use bikron_sparse::{
    ewise_mult, spgemm, spgemm_masked, u64_plus_times, Coo, Csr, SparseError, SparseResult,
};

/// Walk statistics of one factor. All vectors are indexed by factor vertex.
#[derive(Clone, Debug, PartialEq)]
pub struct FactorStats {
    /// `d_A` as `i128` (formula domain).
    pub degrees: Vec<i128>,
    /// `w_A^{(2)} = A²·1`.
    pub w2: Vec<i128>,
    /// `diag(A³)` — twice the per-vertex triangle count.
    pub diag_a3: Vec<i128>,
    /// `diag(A⁴)` — closed 4-walk counts.
    pub diag_a4: Vec<i128>,
    /// `s_A` — 4-cycles at each vertex (Def. 8).
    pub squares: Vec<i128>,
    /// `A³ ∘ A` on the adjacency pattern.
    pub edge_w3: Csr<i128>,
    /// `A² ∘ A` (pattern-intersected; empty for bipartite factors).
    pub edge_w2: Csr<i128>,
    /// `◇_A` on the full adjacency pattern (explicit zeros kept).
    pub edge_squares: Csr<i128>,
}

impl FactorStats {
    /// Compute all statistics for a loop-free factor.
    pub fn compute(g: &Graph) -> SparseResult<Self> {
        if !g.has_no_self_loops() {
            return Err(SparseError::Malformed(
                "FactorStats requires a loop-free factor (paper Defs. 8-9)".into(),
            ));
        }
        let a = g.adjacency();
        let n = a.nrows();
        let semiring = u64_plus_times();

        let degrees: Vec<i128> = (0..n).map(|v| g.degree(v) as i128).collect();

        // A² once; everything else derives from it.
        let a2 = spgemm(&semiring, a, a)?;

        // w2 = A²·1 — row sums of A².
        let w2: Vec<i128> = (0..n)
            .map(|r| a2.row(r).1.iter().map(|&v| v as i128).sum())
            .collect();

        // diag(A⁴)_i = Σ_j (A²_ij)² by symmetry of A².
        let diag_a4: Vec<i128> = (0..n)
            .map(|r| a2.row(r).1.iter().map(|&v| (v as i128) * (v as i128)).sum())
            .collect();

        // diag(A³)_i = Σ_{j ∈ N_i} A²_ij.
        let diag_a3: Vec<i128> = (0..n)
            .map(|i| {
                g.neighbors(i)
                    .iter()
                    .map(|&j| a2.get(i, j).unwrap_or(0) as i128)
                    .sum()
            })
            .collect();

        // s_A = ½(diag(A⁴) − d∘d − w2 + d).
        let squares: Vec<i128> = (0..n)
            .map(|i| {
                let v = diag_a4[i] - degrees[i] * degrees[i] - w2[i] + degrees[i];
                debug_assert!(v >= 0 && v % 2 == 0, "Def. 8 invariant at vertex {i}: {v}");
                v / 2
            })
            .collect();

        // A³ ∘ A via masked SpGEMM (A²·A masked by A's pattern).
        let a3_masked = spgemm_masked(&semiring, &a2, a, a)?;
        let edge_w3 = a3_masked.map(|v| v as i128);

        // A² ∘ A (zero for bipartite factors).
        let edge_w2 = ewise_mult(&a2, a, |x, _| x as i128, |&v| v == 0)?;

        // ◇_A pointwise on every adjacency entry: W3_ij − d_i − d_j + 1.
        // Built with explicit zeros so the pattern stays the full adjacency.
        let mut coo = Coo::with_capacity(n, n, edge_w3.nnz());
        for (i, j, w3) in edge_w3.iter() {
            let v = w3 - degrees[i] - degrees[j] + 1;
            debug_assert!(v >= 0, "Def. 9 invariant at edge ({i},{j}): {v}");
            coo.push(i, j, v)?;
        }
        let edge_squares = Csr::from_coo(coo, |x, _| x, |_| false);
        debug_assert!(edge_squares.same_pattern(a));

        Ok(FactorStats {
            degrees,
            w2,
            diag_a3,
            diag_a4,
            squares,
            edge_w3,
            edge_w2,
            edge_squares,
        })
    }

    /// Number of vertices.
    pub fn order(&self) -> usize {
        self.degrees.len()
    }

    /// `W³(i,j)` on an edge, 0 if `(i,j)` is not an edge.
    pub fn w3_at(&self, i: usize, j: usize) -> i128 {
        self.edge_w3.get(i, j).unwrap_or(0)
    }

    /// `W²(i,j)` on an edge (nonzero only with triangles).
    pub fn w2_at(&self, i: usize, j: usize) -> i128 {
        self.edge_w2.get(i, j).unwrap_or(0)
    }

    /// `◇(i,j)` on an edge, `None` if `(i,j)` is not an edge.
    pub fn squares_at_edge(&self, i: usize, j: usize) -> Option<i128> {
        self.edge_squares.get(i, j)
    }

    /// Total 4-cycles in the factor: `Σ s_i / 4`.
    pub fn global_squares(&self) -> i128 {
        self.squares.iter().sum::<i128>() / 4
    }

    /// Compose statistics under the (loop-free) Kronecker product:
    /// `FactorStats(A ⊗ B)` from `FactorStats(A)` and `FactorStats(B)`,
    /// **without ever forming `A ⊗ B`'s walk matrices**.
    ///
    /// Every component factors by the mixed-product property:
    /// `d_{A⊗B} = d_A ⊗ d_B`, `w² = w²_A ⊗ w²_B`,
    /// `diag((A⊗B)^h) = diag(A^h) ⊗ diag(B^h)`,
    /// `(A⊗B)³∘(A⊗B) = (A³∘A) ⊗ (B³∘B)`, etc.
    ///
    /// Iterating this gives exact ground truth for Kronecker **powers**
    /// `A^{⊗k}` (the construction of the prior-work generators this paper
    /// extends) at cost proportional to the *output* sizes only.
    pub fn kron_compose(&self, other: &FactorStats) -> SparseResult<FactorStats> {
        let kv = |x: &[i128], y: &[i128]| bikron_sparse::kron_vec(x, y);
        let degrees = kv(&self.degrees, &other.degrees);
        let w2 = kv(&self.w2, &other.w2);
        let diag_a3 = kv(&self.diag_a3, &other.diag_a3);
        let diag_a4 = kv(&self.diag_a4, &other.diag_a4);
        let squares: Vec<i128> = (0..degrees.len())
            .map(|i| {
                let v = diag_a4[i] - degrees[i] * degrees[i] - w2[i] + degrees[i];
                debug_assert!(v >= 0 && v % 2 == 0);
                v / 2
            })
            .collect();
        let edge_w3 = bikron_sparse::kron(&Times, &self.edge_w3, &other.edge_w3)?;
        let edge_w2 = bikron_sparse::kron(&Times, &self.edge_w2, &other.edge_w2)?;
        let n = degrees.len();
        let mut coo = Coo::with_capacity(n, n, edge_w3.nnz());
        for (i, j, w3) in edge_w3.iter() {
            coo.push(i, j, w3 - degrees[i] - degrees[j] + 1)?;
        }
        let edge_squares = Csr::from_coo(coo, |x, _| x, |_| false);
        Ok(FactorStats {
            degrees,
            w2,
            diag_a3,
            diag_a4,
            squares,
            edge_w3,
            edge_w2,
            edge_squares,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bikron_analytics::{butterflies_global, butterflies_per_edge, butterflies_per_vertex};
    use bikron_generators::{
        complete, complete_bipartite, crown, cycle, hypercube, path, petersen,
    };

    fn check_against_direct(g: &Graph) {
        let fs = FactorStats::compute(g).unwrap();
        let direct_v = butterflies_per_vertex(g);
        for (i, &s) in fs.squares.iter().enumerate() {
            assert_eq!(s as u64, direct_v[i], "vertex {i}");
        }
        let direct_e = butterflies_per_edge(g);
        for (i, j, v) in fs.edge_squares.iter() {
            if i < j {
                assert_eq!(v as u64, direct_e.get(i, j).unwrap(), "edge ({i},{j})");
            }
        }
        assert_eq!(fs.global_squares() as u64, butterflies_global(g));
    }

    #[test]
    fn named_graphs_match_direct_counting() {
        for g in [
            path(6),
            cycle(4),
            cycle(7),
            complete(5),
            complete_bipartite(3, 4),
            crown(4),
            hypercube(3),
            petersen(),
        ] {
            check_against_direct(&g);
        }
    }

    #[test]
    fn fig2_identity_holds() {
        // W⁴(i,i) = 2s_i + d_i² + Σ_{j∈N_i} d_j − d_i; note Σ_{j∈N_i} d_j = w2_i.
        let g = crown(4);
        let fs = FactorStats::compute(&g).unwrap();
        for i in 0..fs.order() {
            assert_eq!(
                fs.diag_a4[i],
                2 * fs.squares[i] + fs.degrees[i] * fs.degrees[i] + fs.w2[i] - fs.degrees[i]
            );
        }
    }

    #[test]
    fn fig4_identity_holds() {
        // W³(i,j) = ◇_ij + d_i + d_j − 1 on every edge.
        let g = complete_bipartite(3, 3);
        let fs = FactorStats::compute(&g).unwrap();
        for (i, j, w3) in fs.edge_w3.iter() {
            assert_eq!(
                w3,
                fs.squares_at_edge(i, j).unwrap() + fs.degrees[i] + fs.degrees[j] - 1
            );
        }
    }

    #[test]
    fn edge_vertex_relation() {
        // s_A = ½ ◇_A·1 (paper, after Def. 9).
        let g = hypercube(3);
        let fs = FactorStats::compute(&g).unwrap();
        for i in 0..fs.order() {
            let row_sum: i128 = fs.edge_squares.row(i).1.iter().sum();
            assert_eq!(2 * fs.squares[i], row_sum);
        }
    }

    #[test]
    fn diag_a3_is_twice_triangles() {
        let g = complete(4);
        let fs = FactorStats::compute(&g).unwrap();
        let t = bikron_analytics::triangles::triangles_per_vertex(&g);
        for (&da3, &ti) in fs.diag_a3.iter().zip(&t) {
            assert_eq!(da3, 2 * ti as i128);
        }
        let bip = complete_bipartite(2, 3);
        let fs = FactorStats::compute(&bip).unwrap();
        assert!(fs.diag_a3.iter().all(|&x| x == 0));
        assert_eq!(fs.edge_w2.nnz(), 0);
    }

    #[test]
    fn kron_compose_matches_direct_product_stats() {
        let a = cycle(5);
        let b = complete_bipartite(2, 3);
        let fa = FactorStats::compute(&a).unwrap();
        let fb = FactorStats::compute(&b).unwrap();
        let composed = fa.kron_compose(&fb).unwrap();
        // Reference: materialise A ⊗ B and compute stats directly.
        let prod =
            crate::product::KroneckerProduct::new(&a, &b, crate::product::SelfLoopMode::None)
                .unwrap();
        let g = prod.materialize();
        let direct = FactorStats::compute(&g).unwrap();
        assert_eq!(composed.degrees, direct.degrees);
        assert_eq!(composed.w2, direct.w2);
        assert_eq!(composed.diag_a3, direct.diag_a3);
        assert_eq!(composed.diag_a4, direct.diag_a4);
        assert_eq!(composed.squares, direct.squares);
        assert_eq!(composed.edge_w3.to_dense(), direct.edge_w3.to_dense());
        assert_eq!(
            composed.edge_squares.to_dense(),
            direct.edge_squares.to_dense()
        );
    }

    #[test]
    fn kron_power_three_factors() {
        // Third Kronecker power of a path: stats composed twice equal the
        // stats of the materialised triple product.
        let a = path(3);
        let fa = FactorStats::compute(&a).unwrap();
        let f2 = fa.kron_compose(&fa).unwrap();
        let f3 = f2.kron_compose(&fa).unwrap();
        // Materialise ((A⊗A)⊗A) directly via the sparse kernel.
        let k2 = bikron_sparse::kron(&Times, a.adjacency(), a.adjacency()).unwrap();
        let k3 = bikron_sparse::kron(&Times, &k2, a.adjacency()).unwrap();
        let g = Graph::from_adjacency(k3).unwrap();
        let direct = FactorStats::compute(&g).unwrap();
        assert_eq!(f3.squares, direct.squares);
        assert_eq!(f3.global_squares(), direct.global_squares());
        assert_eq!(f3.degrees, direct.degrees);
    }

    #[test]
    fn loopy_factor_rejected() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 0)]).unwrap();
        assert!(FactorStats::compute(&g).is_err());
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::from_edges(3, &[]).unwrap();
        let fs = FactorStats::compute(&g).unwrap();
        assert_eq!(fs.squares, vec![0, 0, 0]);
        assert_eq!(fs.global_squares(), 0);
        assert_eq!(fs.edge_squares.nnz(), 0);
    }
}
